"""The fault-injecting solver wrapper and the engine's containment."""

import pytest

from repro.analysis.activity import ActivityAnalysis
from repro.audit.chaos import (ChaosConfig, ChaosError, ChaosSolver,
                               chaos_factory, uniform_chaos)
from repro.experiments.specs import small_stencil_spec
from repro.formad import FormADEngine
from repro.smt.clausify import ClausifyBudgetError
from repro.smt.solver import SAT, UNKNOWN
from repro.smt.terms import FAtom, Rel, TConst, TVar


def _trivial_formula():
    return FAtom(Rel.EQ, TVar("i"), TConst(1))


class TestChaosConfig:
    def test_rates_must_fit_the_unit_interval(self):
        with pytest.raises(ValueError):
            ChaosConfig(unknown_rate=0.7, budget_rate=0.4)

    def test_fail_kind_validated(self):
        with pytest.raises(ValueError):
            ChaosConfig(fail_kind="segfault")

    def test_uniform_helper(self):
        config = uniform_chaos(0.3, "budget", seed=5)
        assert config.budget_rate == 0.3
        assert config.unknown_rate == config.error_rate == 0.0
        with pytest.raises(ValueError):
            uniform_chaos(0.1, "nonsense")


class TestChaosSolver:
    def test_zero_rate_is_honest(self):
        solver = ChaosSolver(ChaosConfig())
        solver.add(_trivial_formula())
        assert solver.check() is SAT
        assert solver.injected == []

    def test_full_rate_unknown(self):
        solver = ChaosSolver(ChaosConfig(unknown_rate=1.0))
        solver.add(_trivial_formula())
        assert solver.check() is UNKNOWN
        assert solver.injected == [(0, "unknown")]
        with pytest.raises(RuntimeError):
            solver.model()   # no stale model survives the injection

    def test_injected_unknown_recorded_in_stats(self):
        solver = ChaosSolver(ChaosConfig(unknown_rate=1.0))
        solver.add(_trivial_formula())
        solver.check()
        assert solver.stats.unknown == 1

    def test_full_rate_budget_and_error(self):
        budget = ChaosSolver(ChaosConfig(budget_rate=1.0))
        budget.add(_trivial_formula())
        with pytest.raises(ClausifyBudgetError):
            budget.check()
        crash = ChaosSolver(ChaosConfig(error_rate=1.0))
        crash.add(_trivial_formula())
        with pytest.raises(ChaosError):
            crash.check()

    def test_fail_checks_deterministic_targeting(self):
        solver = ChaosSolver(ChaosConfig(fail_checks=frozenset({1}),
                                         fail_kind="unknown"))
        solver.add(_trivial_formula())
        assert solver.check() is SAT          # check 0: honest
        assert solver.check() is UNKNOWN      # check 1: struck
        assert solver.check() is SAT          # check 2: honest again
        assert solver.injected == [(1, "unknown")]

    def test_fail_instance_limits_targeting(self):
        config = ChaosConfig(fail_checks=frozenset({0}),
                             fail_kind="unknown", fail_instance=1)
        untargeted = ChaosSolver(config, instance=0)
        untargeted.add(_trivial_formula())
        assert untargeted.check() is SAT
        targeted = ChaosSolver(config, instance=1)
        targeted.add(_trivial_formula())
        assert targeted.check() is UNKNOWN

    def test_schedule_is_reproducible_per_instance(self):
        config = ChaosConfig(unknown_rate=0.5, seed=9)
        def schedule(instance):
            solver = ChaosSolver(config, instance=instance)
            return [solver._decide(i) for i in range(50)]
        assert schedule(3) == schedule(3)
        assert schedule(3) != schedule(4)

    def test_factory_collects_instances(self):
        factory = chaos_factory(ChaosConfig())
        a = factory(node_budget=10)
        b = factory(node_budget=10)
        assert factory.solvers == [a, b]
        assert (a.instance, b.instance) == (0, 1)


class TestEngineContainment:
    """Faults during buildModel degrade the whole loop, never crash."""

    @pytest.mark.parametrize("kind", ["unknown", "budget", "error"])
    def test_build_model_strike_degrades_all_arrays(self, kind):
        spec = small_stencil_spec()
        activity = ActivityAnalysis(spec.proc, spec.independents,
                                    spec.dependents)
        baseline = FormADEngine(spec.proc, activity).analyze_all()
        config = ChaosConfig(fail_checks=frozenset({0}), fail_kind=kind)
        factory = chaos_factory(config)
        engine = FormADEngine(spec.proc, activity, solver_factory=factory)
        analyses = engine.analyze_all()
        assert analyses, "the stencil has a parallel loop"
        for analysis, honest in zip(analyses, baseline):
            assert analysis.safe_arrays() == set()
            assert analysis.degraded
            for verdict in analysis.verdicts.values():
                assert "degraded" in verdict.reason
            # degraded loops still *count* the questions they would
            # have asked, so Table-1 totals are fault-independent
            # (the stencil is all-safe, so the honest run never
            # breaks early and the counts line up exactly)
            assert analysis.stats.exploitation_checks \
                == honest.stats.exploitation_checks
            assert analysis.stats.exploitation_checks > 0

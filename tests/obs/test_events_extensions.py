"""Schema extensions for distributed traces: worker-re-emitted events,
the new scheduler/cache event types, and metrics-payload validation."""

from repro.obs import validate_event, validate_events
from repro.obs.events import SCHEMA_NAME, SCHEMA_VERSION
from repro.obs.metrics import METRICS_SCHEMA_V2


def _event(etype, seq=1, **fields):
    base = {"v": SCHEMA_VERSION, "seq": seq, "t": 0.1 * seq,
            "type": etype, "thread": "MainThread", "span": None}
    base.update(fields)
    return base


def _meta(seq=0):
    return _event("meta", seq=seq, schema=SCHEMA_NAME, created="now")


def _fact(**extra):
    return _event("fact", loop="0:i", context="root", array="y",
                  formula="i' != i", **extra)


class TestUniversalOptionalFields:
    def test_worker_id_accepted_on_any_event_type(self):
        assert validate_event(_fact(worker_id="w0")) == []
        assert validate_event(_event(
            "verdict", loop="0:i", array="y", safe=True, pairs_total=1,
            pairs_proven=1, reason="proved", worker_id="w1")) == []

    def test_partial_accepted_on_any_event_type(self):
        assert validate_event(_fact(worker_id="w0", partial=True)) == []

    def test_other_unknown_fields_still_rejected(self):
        errors = validate_event(_fact(walker_id="w0"))
        assert any("unknown field 'walker_id'" in e for e in errors)


class TestNewEventTypes:
    def test_queue_wait(self):
        assert validate_event(_event("queue_wait", loop="0:i",
                                     wait_s=0.01, worker_id="w0")) == []

    def test_steal_with_optional_position(self):
        assert validate_event(_event("steal", loop="0:i",
                                     worker_id="w1")) == []
        assert validate_event(_event("steal", loop="0:i", worker_id="w1",
                                     position=7)) == []

    def test_cancel(self):
        assert validate_event(_event("cancel", loop="0:i", count=3)) == []

    def test_clock_sync(self):
        assert validate_event(_event("clock_sync", worker_id="w0",
                                     offset_s=-1.5, rtt_s=0.002)) == []

    def test_cache_summary_with_optional_misses(self):
        event = _event("cache_summary", path="/tmp/c.jsonl", loop_hits=1,
                       question_hits=2, loop_stores=3, question_stores=4)
        assert validate_event(event) == []
        event.update(loop_misses=0, question_misses=5, dropped_lines=0)
        assert validate_event(event) == []


class TestSchemaVersionRejection:
    def test_unknown_trace_schema_in_meta(self):
        errors = validate_event(_event("meta", seq=0,
                                       schema="repro-trace/99",
                                       created="now"))
        assert any("unknown trace schema 'repro-trace/99'" in e
                   for e in errors)
        assert any(SCHEMA_NAME in e for e in errors)

    def test_unknown_event_version(self):
        bad = _fact()
        bad["v"] = 99
        assert any("version" in e for e in validate_event(bad))


class TestMetricsPayloadValidation:
    def _metrics(self, **payload):
        base = _event("metrics", counters={}, gauges={})
        base.update(payload)
        return base

    def test_valid_v2_payload(self):
        event = self._metrics(
            schema=METRICS_SCHEMA_V2,
            counters={"scheduler.dispatched": 2}, gauges={},
            histograms={"solver.check_seconds": {
                "buckets": [0.1], "counts": [1, 0], "count": 1,
                "sum": 0.01}})
        assert validate_event(event) == []

    def test_bad_histogram_flagged_as_metrics_payload(self):
        event = self._metrics(
            schema=METRICS_SCHEMA_V2, counters={}, gauges={},
            histograms={"h": {"buckets": [0.1], "counts": [1],
                              "count": 1, "sum": 0.01}})
        errors = validate_event(event)
        assert any(e.startswith("metrics payload:") for e in errors)

    def test_unknown_metrics_schema_flagged(self):
        errors = validate_event(self._metrics(schema="repro-metrics/99",
                                              counters={}, gauges={},
                                              histograms={}))
        assert any("repro-metrics/99" in e for e in errors)

    def test_legacy_metrics_event_without_schema_passes(self):
        # Traces recorded before /2: bare counters/gauges, no payload
        # schema tag — still valid, payload validation skipped.
        assert validate_event(self._metrics()) == []


class TestStreamLevel:
    def test_worker_tagged_stream_validates(self):
        events = [_meta(),
                  _event("span_begin", seq=1, id=0, name="shard.request",
                         parent=None, attrs={}),
                  _fact(seq=2, worker_id="w0", span=0),
                  _event("span_end", seq=3, id=0, name="shard.request",
                         dur_s=0.5),
                  _event("metrics", seq=4, counters={}, gauges={})]
        assert validate_events(events) == []

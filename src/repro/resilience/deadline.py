"""Wall-clock deadlines with cooperative expiry checks.

A :class:`Deadline` is minted once (per run, or per question) and then
flows *down* the stack — engine, solver, DPLL(T) search, integer branch
& bound — where the hot loops poll :meth:`Deadline.expired` between
units of work (one theory check, one branch-and-bound node). Expiry is
therefore detected within one solver step, without signals or threads,
and the answer is always a plain UNKNOWN with reason ``"timeout"`` —
the safe FormAD fallback, never an exception out of the search.

Everything uses ``time.monotonic``; a deadline never goes backwards
when the system clock is adjusted. ``None`` is the universal "no
deadline" value throughout the code base (the hot paths guard with
``if deadline is not None`` so the default configuration pays nothing).
"""

from __future__ import annotations

import math
import time
from typing import Optional


class Deadline:
    """A fixed point on the monotonic clock.

    ``Deadline(5.0)`` expires five seconds from now; the object is
    shared by reference, so every layer polls the *same* budget.
    """

    __slots__ = ("expires_at",)

    def __init__(self, seconds: float) -> None:
        if seconds < 0:
            seconds = 0.0
        self.expires_at = time.monotonic() + seconds

    @classmethod
    def at(cls, expires_at: float) -> "Deadline":
        """A deadline at an absolute ``time.monotonic`` timestamp."""
        deadline = cls.__new__(cls)
        deadline.expires_at = expires_at
        return deadline

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def tightened(self, seconds: Optional[float]) -> "Deadline":
        """A child deadline: at most *seconds* from now, and never later
        than this deadline (per-question timeouts under a run budget)."""
        if seconds is None:
            return self
        return Deadline.at(min(self.expires_at,
                               time.monotonic() + max(seconds, 0.0)))

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"Deadline(remaining={self.remaining():.3f}s)"


def combine(a: Optional[Deadline], b: Optional[Deadline]) -> Optional[Deadline]:
    """The tighter of two optional deadlines (``None`` = unbounded)."""
    if a is None:
        return b
    if b is None:
        return a
    return a if a.expires_at <= b.expires_at else b


def per_question(run: Optional[Deadline],
                 timeout: Optional[float]) -> Optional[Deadline]:
    """The deadline for one exploitation question: the per-question
    *timeout* capped by the *run* deadline (either may be absent)."""
    if timeout is None:
        return run
    if run is None:
        return Deadline(timeout)
    return run.tightened(timeout)


#: A deadline that never expires — for call sites that want a real
#: object rather than ``None`` (tests, mostly).
NEVER = Deadline.at(math.inf)

"""Safeguard policies for adjoint parallel loops.

The AD engine asks a :class:`GuardPolicy` what to do with each adjoint
increment to a *shared* array inside an adjoint parallel loop:

* ``SHARED`` — plain update, no safeguard (only FormAD proves this);
* ``ATOMIC`` — ``!$omp atomic`` on each increment (paper: "Adjoint
  Atomic");
* ``REDUCTION`` — privatize the adjoint array in a ``reduction(+)``
  clause (paper: "Adjoint Reduction").

Policies correspond to the paper's program versions; the FormAD policy
(deciding SHARED per proven-safe array) lives in :mod:`repro.formad`
and implements the same interface.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..ir.stmt import Loop


class GuardKind(enum.Enum):
    SHARED = "shared"
    ATOMIC = "atomic"
    REDUCTION = "reduction"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class GuardPolicy:
    """Decides the safeguard per (parallel loop, primal array)."""

    def decide(self, loop: Loop, primal_array: str) -> GuardKind:
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantPolicy(GuardPolicy):
    """Always answers the same kind (paper's atomic/reduction versions)."""

    kind: GuardKind

    def decide(self, loop: Loop, primal_array: str) -> GuardKind:
        return self.kind


ALL_ATOMIC = ConstantPolicy(GuardKind.ATOMIC)
ALL_REDUCTION = ConstantPolicy(GuardKind.REDUCTION)
ALL_SHARED = ConstantPolicy(GuardKind.SHARED)

"""Regression tests for the verdict-cache identity bug (PR 3).

The exploitation-question memo and the fact/dedup maps used ``id(ctx)``
as the context component of their keys. CPython reuses the addresses of
collected objects, so a memo keyed on ``id`` can alias a dead context
with a live one allocated at the same address and serve a stale verdict.
These tests pin the fix: every context carries a process-unique ``uid``
and every key derives from it.
"""

import gc

from repro.cfg.contexts import Context, build_contexts
from repro.formad.engine import FormADEngine
from repro.ir import parse_procedure
from repro.smt.terms import FAtom, Rel, TVar

QUESTION = FAtom(Rel.EQ, TVar("i_0'"), TVar("i_0"))

SRC = """
subroutine k(x, y, n)
  real, intent(in) :: x(100)
  real, intent(out) :: y(100)
  integer, intent(in) :: n
  !$omp parallel do
  do i = 1, n
    if (i .gt. 2) then
      y(i) = x(i)
    end if
  end do
end subroutine k
"""


class TestContextUid:
    def test_uids_are_process_unique_across_collected_trees(self):
        """Create and drop many context trees; ids get reused, uids
        must not (the aliasing scenario the id-keyed memo fell for)."""
        uids = set()
        reused_ids = False
        seen_ids = set()
        for _ in range(500):
            proc = parse_procedure(SRC)
            loop = next(iter(proc.parallel_loops()))
            cmap = build_contexts(loop.body)
            for ctx in cmap.all_contexts():
                uids.add(ctx.uid)
                if id(ctx) in seen_ids:
                    reused_ids = True
                seen_ids.add(id(ctx))
            del proc, loop, cmap
            gc.collect()
        # 500 trees x (root + then-branch) = 1000 distinct contexts
        assert len(uids) == 1000
        # Documentation of the hazard, not a requirement: on CPython
        # the allocator virtually always reuses at least one address.
        if reused_ids:
            assert len(uids) > len(seen_ids)

    def test_identity_semantics_preserved(self):
        root = Context("root")
        a = root.child("a")
        b = root.child("b")
        assert a != b and a == a
        assert a.common_root(b) is root
        assert root.includes(a) and not a.includes(b)
        assert len({a, b, root}) == 3  # hashable by identity


class TestMemoKeyStability:
    def test_memo_keys_never_collide_across_context_lifetimes(self):
        """The engine's memo key must stay unique when contexts die and
        new ones are allocated at recycled addresses. With the old
        ``(id(ctx), question)`` key this set collapses as soon as one
        address is reused; with ``(ctx.uid, question)`` it cannot."""
        keys = set()
        for n in range(2000):
            ctx = Context("root")
            keys.add(FormADEngine._memo_key(ctx, QUESTION))
            del ctx  # eligible for collection: its address can recycle
        assert len(keys) == 2000

    def test_memo_key_shares_entries_within_one_tree(self):
        """Same live context + same question must still hit the memo."""
        ctx = Context("root")
        assert FormADEngine._memo_key(ctx, QUESTION) \
            == FormADEngine._memo_key(ctx, QUESTION)
        other = ctx.child("if1/then")
        assert FormADEngine._memo_key(ctx, QUESTION) \
            != FormADEngine._memo_key(other, QUESTION)

"""Command-line interface — a Tapenade-flavored front end.

::

    python -m repro analyze kernel.f90 -i x -o y
    python -m repro differentiate kernel.f90 -i x -o y --strategy formad
    python -m repro tangent kernel.f90 -i x -o y
    python -m repro experiments

``analyze`` prints the FormAD verdicts and Table-1 statistics for every
parallel loop; ``differentiate``/``tangent`` print generated Fortran-
flavored source to stdout (or ``-O out.f90``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from . import (STRATEGIES, analyze_formad, differentiate,
               differentiate_tangent, format_procedure)
from .ad import GuardKind
from .formad import format_verdicts
from .ir import ParseError, parse_program


def _add_io_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("file", help="source file in the Fortran-flavored "
                                "mini-language")
    p.add_argument("-i", "--independents", required=True,
                   help="comma-separated independent inputs")
    p.add_argument("-o", "--dependents", required=True,
                   help="comma-separated dependent outputs")
    p.add_argument("--head", default=None,
                   help="procedure to differentiate (default: the only "
                        "procedure, or the first one)")


def _load(args) -> "Procedure":
    with open(args.file) as fh:
        program = parse_program(fh.read())
    procs = list(program)
    if not procs:
        raise SystemExit("no procedures found")
    if args.head is None:
        return procs[0]
    try:
        return program[args.head]
    except KeyError:
        names = ", ".join(p.name for p in procs)
        raise SystemExit(f"no procedure {args.head!r}; available: {names}")


def _names(text: str) -> List[str]:
    return [n.strip() for n in text.split(",") if n.strip()]


def _emit(text: str, out: Optional[str]) -> None:
    if out is None:
        print(text)
    else:
        with open(out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {out}", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FormAD: automatic differentiation of parallel loops "
                    "with formal methods (ICPP 2022 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="run the FormAD analysis only")
    _add_io_args(p)
    p.add_argument("--jobs", type=int, default=None,
                   help="analyze independent parallel regions over N "
                        "worker threads")

    p = sub.add_parser("differentiate", help="generate the reverse-mode "
                                             "(adjoint) procedure")
    _add_io_args(p)
    p.add_argument("--strategy", choices=STRATEGIES, default="formad")
    p.add_argument("--fallback", choices=["atomic", "reduction"],
                   default="atomic",
                   help="safeguard for arrays FormAD cannot prove safe")
    p.add_argument("-O", "--output", default=None, help="output file")

    p = sub.add_parser("tangent", help="generate the forward-mode "
                                       "(tangent) procedure")
    _add_io_args(p)
    p.add_argument("-O", "--output", default=None, help="output file")

    p = sub.add_parser("experiments", help="regenerate EXPERIMENTS.md "
                                           "(Table 1 and Figures 3-10)")
    p.add_argument("--jobs", type=int, default=None,
                   help="fan independent kernels and program versions out "
                        "over N worker threads")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "experiments":
        from .experiments.report import main as experiments_main
        experiments_main(jobs=args.jobs)
        return 0
    try:
        proc = _load(args)
        independents = _names(args.independents)
        dependents = _names(args.dependents)
        if args.command == "analyze":
            analyses = analyze_formad(proc, independents, dependents,
                                      jobs=args.jobs)
            if not analyses:
                print("no parallel loops found")
                return 0
            for analysis in analyses:
                print(format_verdicts(analysis))
                s = analysis.stats
                print(f"  stats: time={s.time_seconds:.3f}s "
                      f"model_size={s.model_size} queries={s.queries} "
                      f"exprs={s.unique_exprs} loc={s.region_loc}")
                print(f"  phases: translate={s.translate_seconds:.4f}s "
                      f"clausify={s.clausify_seconds:.4f}s "
                      f"search={s.search_seconds:.4f}s "
                      f"solver_checks={s.solver_checks} "
                      f"memo_hits={s.memo_hits}")
            return 0
        if args.command == "differentiate":
            result = differentiate(proc, independents, dependents,
                                   strategy=args.strategy,
                                   fallback=GuardKind(args.fallback))
            _emit(format_procedure(result.procedure), args.output)
            return 0
        if args.command == "tangent":
            result = differentiate_tangent(proc, independents, dependents)
            _emit(format_procedure(result.procedure), args.output)
            return 0
    except (ParseError, KeyError, TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

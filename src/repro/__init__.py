"""FormAD reproduction: automatic differentiation of parallel loops
with formal methods (Hückelheim & Hascoët, ICPP 2022).

The top-level API covers the common workflow::

    from repro import parse_procedure, differentiate, analyze_formad

    proc = parse_procedure(source)            # Fortran-flavored input
    result = differentiate(proc, ["x"], ["y"], strategy="formad")
    print(format_procedure(result.procedure)) # the adjoint code

Strategies mirror the paper's program versions — ``"serial"``,
``"atomic"``, ``"reduction"``, ``"formad"`` (and ``"shared"``, which
drops every safeguard without proof — only for experiments) — plus the
related-work safeguards ``"preaccumulate"`` and ``"transposed"`` from
the pluggable registry in :mod:`repro.ad.strategies`.
"""

import logging
from typing import List, Optional, Sequence

from .ir import (Procedure, Program, ProcedureBuilder, format_procedure,
                 parse_expression, parse_procedure, parse_program, validate)
from .obs import (NULL_TRACER, CollectingTracer, JsonlTracer, NullTracer,
                  Tracer)
from .ad import (ALL_ATOMIC, ALL_PREACCUMULATE, ALL_REDUCTION, ALL_SHARED,
                 ALL_TRANSPOSED, ConstantPolicy, GuardPolicy, ReverseResult,
                 SafeguardStrategy, TangentResult, differentiate_reverse,
                 differentiate_tangent, get_strategy, register_strategy,
                 registered_strategies, resolve_strategy, strategy_names)
from .analysis import ActivityAnalysis
from .formad import (AnalysisReport, FormADEngine, FormADGuardPolicy,
                     LoopAnalysis, PrimalRaceError, format_table1)
from .runtime import (BROADWELL_18, MachineModel, Memory, detect_races,
                      profile_run, run_procedure, simulate_thread_sweep)

__version__ = "1.0.0"

# Library convention: the `repro` root logger stays silent unless the
# application configures handlers (the CLI's --log-level does).
logging.getLogger(__name__).addHandler(logging.NullHandler())

#: Strategy names accepted by :func:`differentiate`.
STRATEGIES = ("serial", "atomic", "reduction", "shared", "formad",
              "preaccumulate", "transposed")


def differentiate(
    proc: Procedure,
    independents: Sequence[str],
    dependents: Sequence[str],
    *,
    strategy: str = "formad",
    fallback: str = "atomic",
) -> ReverseResult:
    """Reverse-differentiate *proc* with the given safeguard strategy.

    ``strategy`` is one of :data:`STRATEGIES`; ``fallback`` names the
    registered safeguard used for arrays the requested strategy cannot
    handle (for ``"formad"``: arrays whose safety could not be proven).
    Arrays a fixed strategy's applicability predicate rejects always
    fall back to atomics.
    """
    if strategy == "serial":
        return differentiate_reverse(proc, independents, dependents,
                                     serial=True)
    if strategy == "formad":
        policy = FormADGuardPolicy(proc, independents, dependents,
                                   fallback=fallback)
        return differentiate_reverse(proc, independents, dependents,
                                     policy=policy)
    if strategy in STRATEGIES:
        policy = ConstantPolicy(get_strategy(strategy))
        return differentiate_reverse(proc, independents, dependents,
                                     policy=policy)
    raise ValueError(f"unknown strategy {strategy!r}; pick from {STRATEGIES}")


def analyze_formad(
    proc: Procedure,
    independents: Sequence[str],
    dependents: Sequence[str],
    *,
    jobs: Optional[int] = None,
    tracer: NullTracer = NULL_TRACER,
    deadline=None,
    question_timeout: Optional[float] = None,
    escalation=None,
    journal=None,
    resume=None,
) -> List[LoopAnalysis]:
    """Run the FormAD analysis on every parallel loop of *proc*.

    ``jobs`` > 1 analyzes independent parallel regions concurrently.
    ``tracer`` receives the structured provenance/span event stream
    (see :mod:`repro.obs`); the no-op default records nothing.

    The resilience knobs (all optional, see docs/RESILIENCE.md):
    ``deadline`` (a :class:`repro.resilience.Deadline`) bounds the whole
    run in wall-clock time, ``question_timeout`` each exploitation
    question; ``escalation`` (an :class:`repro.resilience.
    EscalationPolicy`) retries timed-out questions with enlarged
    budgets; ``journal``/``resume`` are the crash-safe verdict journal
    writer and a recovered :class:`repro.resilience.ResumeState`.
    """
    activity = ActivityAnalysis(proc, independents, dependents)
    engine = FormADEngine(proc, activity, tracer=tracer, deadline=deadline,
                          question_timeout=question_timeout,
                          escalation=escalation, journal=journal,
                          resume=resume)
    return engine.analyze_all(jobs=jobs)


__all__ = [
    "Procedure", "Program", "ProcedureBuilder", "format_procedure",
    "parse_expression", "parse_procedure", "parse_program", "validate",
    "ALL_ATOMIC", "ALL_PREACCUMULATE", "ALL_REDUCTION", "ALL_SHARED",
    "ALL_TRANSPOSED", "ConstantPolicy", "GuardPolicy", "SafeguardStrategy",
    "get_strategy", "register_strategy", "registered_strategies",
    "resolve_strategy", "strategy_names",
    "ReverseResult", "differentiate_reverse",
    "TangentResult", "differentiate_tangent",
    "ActivityAnalysis",
    "AnalysisReport", "FormADEngine", "FormADGuardPolicy", "LoopAnalysis",
    "PrimalRaceError", "format_table1",
    "BROADWELL_18", "MachineModel", "Memory", "detect_races", "profile_run",
    "run_procedure", "simulate_thread_sweep",
    "NULL_TRACER", "CollectingTracer", "JsonlTracer", "NullTracer", "Tracer",
    "STRATEGIES", "differentiate", "analyze_formad", "__version__",
]

"""Normalization of terms into linear forms.

A :class:`LinForm` is ``Σ coeff_i · var_i + const`` with integer
coefficients. Atoms normalize to ``LinForm REL 0`` and then to the
canonical shapes the simplex core consumes (``lhs <= c`` / ``lhs = c``
with the constant moved to the right).

UF applications must be eliminated (see :mod:`repro.smt.ackermann`)
before terms reach this module; encountering one raises.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from .terms import (FAtom, NonLinearTermError, Rel, TAdd, TApp, TConst, TMul,
                    Term, TVar, _Interned, _hashcons)


class LinForm(_Interned):
    """An immutable, hash-consed linear form over named integer variables.

    Like the term nodes, LinForms are interned: the canonical constraint
    pipeline (atom → linearize → canonicalize → simplex row lookup)
    rebuilds the same handful of forms thousands of times per loop, so
    structural equality is a pointer comparison and the hash is
    precomputed. ``coeffs`` is sorted by name and zero-free — callers
    constructing ``LinForm`` directly must preserve that invariant (use
    :meth:`from_dict` otherwise).
    """

    __slots__ = ("coeffs", "const", "_hash", "__weakref__")
    _table: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    coeffs: Tuple[Tuple[str, int], ...]  # sorted by name, zero-free
    const: int

    def __new__(cls, coeffs: Tuple[Tuple[str, int], ...], const: int = 0):
        coeffs = tuple(coeffs)
        return _hashcons(cls, (coeffs, const),
                         (("coeffs", coeffs), ("const", const)))

    def _key(self):
        return (self.coeffs, self.const)

    def __repr__(self) -> str:
        return f"LinForm({self.coeffs!r}, {self.const!r})"

    @staticmethod
    def from_dict(coeffs: Mapping[str, int], const: int = 0) -> "LinForm":
        items = tuple(sorted((n, c) for n, c in coeffs.items() if c != 0))
        return LinForm(items, const)

    @staticmethod
    def constant(value: int) -> "LinForm":
        return LinForm((), value)

    @staticmethod
    def variable(name: str) -> "LinForm":
        return LinForm(((name, 1),), 0)

    def coeff_dict(self) -> Dict[str, int]:
        return dict(self.coeffs)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def __add__(self, other: "LinForm") -> "LinForm":
        coeffs = self.coeff_dict()
        for name, c in other.coeffs:
            coeffs[name] = coeffs.get(name, 0) + c
        return LinForm.from_dict(coeffs, self.const + other.const)

    def __sub__(self, other: "LinForm") -> "LinForm":
        return self + other.scale(-1)

    def scale(self, factor: int) -> "LinForm":
        if factor == 0:
            return LinForm.constant(0)
        return LinForm(tuple((n, c * factor) for n, c in self.coeffs),
                       self.const * factor)

    def variables(self) -> set[str]:
        return {n for n, _ in self.coeffs}

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        return self.const + sum(c * assignment[n] for n, c in self.coeffs)

    def content(self) -> int:
        """GCD of the variable coefficients (0 for constant forms)."""
        from math import gcd
        g = 0
        for _, c in self.coeffs:
            g = gcd(g, abs(c))
        return g

    def __str__(self) -> str:
        parts = [f"{c}*{n}" for n, c in self.coeffs]
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


def linearize(term: Term) -> LinForm:
    """Convert *term* to a linear form. Raises on UF applications and
    nonlinear products (which cannot be built via the term API anyway)."""
    if isinstance(term, TConst):
        return LinForm.constant(term.value)
    if isinstance(term, TVar):
        return LinForm.variable(term.name)
    if isinstance(term, TAdd):
        acc = LinForm.constant(0)
        for t in term.terms:
            acc = acc + linearize(t)
        return acc
    if isinstance(term, TMul):
        return linearize(term.term).scale(term.coeff)
    if isinstance(term, TApp):
        raise NonLinearTermError(
            f"uninterpreted application {term} must be Ackermann-eliminated "
            f"before linearization")
    raise TypeError(f"not a term: {term!r}")  # pragma: no cover


@dataclass(frozen=True)
class Constraint:
    """A canonical theory constraint: ``form <= bound`` or ``form = bound``.

    ``form`` has const 0 (the constant is folded into ``bound``). Strict
    relations are tightened using integrality before reaching this type,
    and GE is flipped into LE, so ``rel`` is only ``LE`` or ``EQ``.
    """

    form: LinForm
    rel: Rel
    bound: int

    def __post_init__(self):
        if self.rel not in (Rel.LE, Rel.EQ):
            raise ValueError(f"canonical constraints are LE or EQ, got {self.rel}")
        if self.form.const != 0:
            raise ValueError("canonical constraint form must have zero constant")

    def holds(self, assignment: Mapping[str, int]) -> bool:
        value = self.form.evaluate(assignment)
        return value <= self.bound if self.rel is Rel.LE else value == self.bound

    def __str__(self) -> str:
        return f"{self.form} {'<=' if self.rel is Rel.LE else '='} {self.bound}"


class TrivialConstraint(Exception):
    """Signals a constraint with no variables; carries its truth value."""

    def __init__(self, truth: bool) -> None:
        super().__init__(f"trivially {truth}")
        self.truth = truth


def canonicalize(atom: FAtom) -> Tuple[Constraint, ...]:
    """Normalize an atom into canonical constraints (conjunction).

    * ``a <= b``  →  one LE constraint.
    * ``a <  b``  →  ``a <= b - 1`` (integer tightening).
    * ``a >= b``, ``a > b`` → flipped forms of the above.
    * ``a == b``  →  one EQ constraint.
    * ``a != b``  →  **rejected**: disequalities are case-split by the
      search layer before canonicalization.

    Raises :class:`TrivialConstraint` when the atom contains no
    variables; the payload carries its truth value. Coefficient GCD
    reduction tightens LE bounds (``2x <= 3`` → ``x <= 1``) and can
    prove EQ atoms false outright (``2x = 3``).
    """
    diff = linearize(atom.left) - linearize(atom.right)
    rel = atom.rel
    if rel is Rel.GE:
        diff, rel = diff.scale(-1), Rel.LE
    elif rel is Rel.GT:
        diff, rel = diff.scale(-1), Rel.LT
    if rel is Rel.LT:
        diff = diff + LinForm.constant(1)
        rel = Rel.LE
    if rel is Rel.NE:
        raise ValueError("disequalities must be split before canonicalization")

    bound = -diff.const
    form = LinForm(diff.coeffs, 0)
    if form.is_constant:
        raise TrivialConstraint(0 <= bound if rel is Rel.LE else bound == 0)

    g = form.content()
    if g > 1:
        if rel is Rel.LE:
            # Python's // is floor division, which is exactly the integer
            # tightening floor(bound/g) for both signs of the bound.
            form = LinForm(tuple((n, c // g) for n, c in form.coeffs), 0)
            bound = bound // g
        else:
            if bound % g != 0:
                raise TrivialConstraint(False)
            form = LinForm(tuple((n, c // g) for n, c in form.coeffs), 0)
            bound = bound // g
    return (Constraint(form, rel, bound),)

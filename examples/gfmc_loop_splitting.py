#!/usr/bin/env python3
"""GFMC and the loop-splitting story (§7.2).

The original CORAL kernel (GFMC*) fuses the spin-exchange and spin-flip
computations into one parallel loop over pairs. One read in that loop
(``cr(k12 + q, j)``) overlaps across pairs; its adjoint increment is
unprovable, and because FormAD's verdicts are per array *per loop*,
every increment to ``crb`` in the fused loop must stay guarded.

Splitting the computation into two loops (the paper's "GFMC") isolates
the regular flip part; the irregular ``mss``-indexed exchange loop is
then *provably* safe despite its data-dependent indices, and the
adjoint runs guard-free. This script shows the verdicts, the atomic
counts in the generated code, and the simulated cost of the difference.
"""

from repro import analyze_formad, differentiate
from repro.experiments import gfmc_spec, gfmc_star_spec, run_kernel_experiment
from repro.ir import Assign, walk_stmts
from repro.programs import build_gfmc, build_gfmc_star, make_gfmc_workload
from repro.runtime import detect_races


def atomics_in(adj) -> int:
    return sum(1 for s in walk_stmts(adj.procedure.body)
               if isinstance(s, Assign) and s.atomic)


def main() -> None:
    actives = (["cl", "cr"], ["cl", "cr"])

    print("=== GFMC* (fused, the original) ===")
    fused = build_gfmc_star()
    (analysis,) = analyze_formad(fused, *actives)
    for verdict in analysis.verdicts.values():
        print(f"  {verdict}")
    fused_adj = differentiate(fused, *actives, strategy="formad")
    print(f"  atomics in the FormAD adjoint: {atomics_in(fused_adj)}")

    print("\n=== GFMC (split into exchange + flip) ===")
    split = build_gfmc()
    exchange, flip = analyze_formad(split, *actives)
    print("  exchange loop:")
    for verdict in exchange.verdicts.values():
        print(f"    {verdict}")
    print("  flip loop:")
    for verdict in flip.verdicts.values():
        print(f"    {verdict}")
    split_adj = differentiate(split, *actives, strategy="formad")
    print(f"  atomics in the FormAD adjoint: {atomics_in(split_adj)}")

    # The guard-free adjoint is genuinely race-free on concrete data.
    import numpy as np
    w = make_gfmc_workload(npair=16, nwalk=4, ngroups_max=6)
    bindings = dict(w)
    for name in ("cl", "cr"):
        bindings[split_adj.adjoint_name(name)] = np.ones_like(w[name])
    report = detect_races(split_adj.procedure, bindings)
    print(f"  dynamic race check on the split adjoint: {report}")

    print("\n=== simulated cost of the difference (18 threads) ===")
    split_exp = run_kernel_experiment(gfmc_spec(npair=32),
                                      strategies=("formad",))
    fused_exp = run_kernel_experiment(gfmc_star_spec(npair=32),
                                      strategies=("formad",))
    s18 = split_exp.adjoints["formad"].times[18]
    f18 = fused_exp.adjoints["formad"].times[18]
    print(f"  split adjoint:  {s18:8.3f} s")
    print(f"  fused adjoint:  {f18:8.3f} s   ({f18 / s18:.1f}x slower — "
          f"every crb/clb update carries an atomic)")


if __name__ == "__main__":
    main()

"""Mini-language intermediate representation.

A Fortran-flavored imperative language with OpenMP-style parallel
loops — the substrate on which the AD engine (:mod:`repro.ad`) and the
FormAD analysis (:mod:`repro.formad`) operate, playing the role
Tapenade's internal representation plays in the paper.
"""

from .types import (ArrayType, Dim, INTEGER, Intent, Kind, LOGICAL, REAL,
                    ScalarType, Type, integer_array, real_array)
from .expr import (ArrayRef, BinOp, Call, CmpOp, Compare, Const, Expr,
                   INTRINSICS, Logical, LogicOp, Op, UnOp, Var, arrays_in,
                   as_expr, children, names_in, rename_arrays, substitute,
                   variables_in, walk)
from .stmt import (Assign, If, Loop, Pop, Push, Stmt, copy_body, copy_stmt,
                   find_parallel_loops, strip_parallel, walk_stmts)
from .program import Param, Procedure, Program
from .builder import ProcedureBuilder
from .printer import format_body, format_expr, format_procedure, format_stmt
from .parser import ParseError, parse_expression, parse_procedure, parse_program
from .simplify import simplify
from .validate import ValidationError, is_valid, validate

__all__ = [
    # types
    "ArrayType", "Dim", "INTEGER", "Intent", "Kind", "LOGICAL", "REAL",
    "ScalarType", "Type", "integer_array", "real_array",
    # expressions
    "ArrayRef", "BinOp", "Call", "CmpOp", "Compare", "Const", "Expr",
    "INTRINSICS", "Logical", "LogicOp", "Op", "UnOp", "Var", "arrays_in",
    "as_expr", "children", "names_in", "rename_arrays", "substitute",
    "variables_in", "walk",
    # statements
    "Assign", "If", "Loop", "Pop", "Push", "Stmt", "copy_body", "copy_stmt",
    "find_parallel_loops", "strip_parallel", "walk_stmts",
    # program
    "Param", "Procedure", "Program", "ProcedureBuilder",
    # printing / parsing / validation
    "format_body", "format_expr", "format_procedure", "format_stmt",
    "ParseError", "parse_expression", "parse_procedure", "parse_program",
    "ValidationError", "is_valid", "validate", "simplify",
]

"""Resilience soundness property over the four paper kernels.

The guarantee (ISSUE acceptance, docs/RESILIENCE.md): no deadline,
per-question timeout, or escalation configuration may ever *change* a
verdict — it may only turn SAT/UNSAT answers into UNKNOWN, which
degrades arrays toward safeguards. And because degraded loops still
enumerate the questions they would have asked, the Table-1 question
counts are identical under every configuration (the paper kernels are
all-safe, so the honest runs never break early and the counts line up
exactly).
"""

import pytest

from repro.analysis.activity import ActivityAnalysis
from repro.experiments.specs import ALL_FIGURE_SPECS
from repro.formad import FormADEngine
from repro.resilience import Deadline, EscalationPolicy

#: name -> engine kwargs factory (deadlines must be minted per run,
#: not at collection time, so these are thunks)
CONFIGS = {
    "expired_deadline": lambda: {"deadline": Deadline(0.0)},
    "zero_question_timeout": lambda: {"question_timeout": 0.0},
    "tiny_deadline": lambda: {"deadline": Deadline(0.005)},
    "timeout_with_escalation": lambda: {
        "question_timeout": 0.0,
        "escalation": EscalationPolicy(max_attempts=3),
    },
}


def _analyze(spec, **kwargs):
    activity = ActivityAnalysis(spec.proc, spec.independents,
                                spec.dependents)
    engine = FormADEngine(spec.proc, activity, **kwargs)
    return engine.analyze_all()


@pytest.mark.parametrize("kernel", sorted(ALL_FIGURE_SPECS))
@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_resource_bounds_only_degrade(kernel, config):
    spec = ALL_FIGURE_SPECS[kernel]()
    baseline = _analyze(spec)
    bounded = _analyze(spec, **CONFIGS[config]())  # must never raise

    assert len(bounded) == len(baseline)
    for tight, honest in zip(bounded, baseline):
        assert tight.loop.uid == honest.loop.uid
        # monotone: a bounded run may lose safety proofs, never gain
        assert tight.safe_arrays() <= honest.safe_arrays()
        for name, verdict in tight.verdicts.items():
            if verdict.safe:
                assert honest.verdicts[name].safe, \
                    f"{kernel}/{config}: {name} upgraded under bounds"
        # fault-independent accounting: the same questions are counted
        # whether they were solved, timed out, or skipped by degradation
        assert tight.stats.exploitation_checks \
            == honest.stats.exploitation_checks, (kernel, config)
        assert tight.stats.consistency_checks \
            <= honest.stats.consistency_checks, (kernel, config)


@pytest.mark.parametrize("kernel", sorted(ALL_FIGURE_SPECS))
def test_paper_kernels_are_all_safe_at_baseline(kernel):
    # the premise of exact count equality above: no SAT early-breaks
    spec = ALL_FIGURE_SPECS[kernel]()
    for analysis in _analyze(spec):
        unsafe = {n for n, v in analysis.verdicts.items() if not v.safe}
        assert unsafe == set(), f"{kernel}: unexpectedly unsafe {unsafe}"


@pytest.mark.parametrize("kernel", sorted(ALL_FIGURE_SPECS))
def test_expired_deadline_reports_timeouts_not_verdict_flips(kernel):
    spec = ALL_FIGURE_SPECS[kernel]()
    bounded = _analyze(spec, deadline=Deadline(0.0))
    for analysis in bounded:
        assert analysis.safe_arrays() == set()
        total_unknown = (analysis.stats.unknown_timeout
                         + analysis.stats.unknown_budget
                         + analysis.stats.unknown_solver
                         + analysis.stats.timed_out_questions)
        assert analysis.degraded or total_unknown > 0

"""The per-worker clock-offset handshake (repro.obs.clock.ClockSync)."""

import pytest

from repro.obs import ClockSync


class TestClockSync:
    def test_unsynced_maps_to_none(self):
        assert ClockSync().to_parent(1.0) is None

    def test_midpoint_offset_recovers_parent_time(self):
        sync = ClockSync()
        # Parent sends at 10.0, worker's clock reads 3.0 at reply time,
        # parent receives at 10.2: the worker replied at parent-time
        # ~10.1, so offset = 10.1 - 3.0 = 7.1.
        sync.update(worker_clock=3.0, send_pc=10.0, recv_pc=10.2)
        assert sync.offset == pytest.approx(7.1)
        assert sync.rtt == pytest.approx(0.2)
        assert sync.to_parent(3.0) == pytest.approx(10.1)

    def test_lowest_rtt_sample_wins(self):
        sync = ClockSync()
        sync.update(worker_clock=3.0, send_pc=10.0, recv_pc=11.0)  # rtt 1.0
        sync.update(worker_clock=4.0, send_pc=12.0, recv_pc=12.1)  # rtt 0.1
        assert sync.rtt == pytest.approx(0.1)
        assert sync.offset == pytest.approx(12.05 - 4.0)
        # A later, noisier sample must not displace the sharp one.
        sync.update(worker_clock=5.0, send_pc=13.0, recv_pc=14.0)
        assert sync.rtt == pytest.approx(0.1)

    def test_equal_rtt_prefers_the_fresher_sample(self):
        sync = ClockSync()
        sync.update(worker_clock=3.0, send_pc=10.0, recv_pc=10.2)
        sync.update(worker_clock=9.0, send_pc=20.0, recv_pc=20.2)
        assert sync.offset == pytest.approx(20.1 - 9.0)

    def test_window_clamp_guarantees_monotonicity(self):
        """A normalized worker timestamp never escapes the (send, recv)
        bracket of the request that carried it — so re-emitted worker
        events can never appear to precede the parent-side dispatch or
        follow the parent-side receipt that surrounds them."""
        sync = ClockSync()
        sync.update(worker_clock=0.0, send_pc=100.0, recv_pc=100.2)
        window = (200.0, 200.5)
        # Offset maps these far outside the window; the clamp pins them.
        assert sync.to_parent(0.0, window=window) == 200.0
        assert sync.to_parent(1000.0, window=window) == 200.5
        # In-window values pass through unclamped.
        inside = sync.to_parent(100.25, window=window)
        assert 200.0 <= inside <= 200.5

    def test_normalized_sequence_is_monotonic(self):
        """Worker-side ordering survives normalization + clamping."""
        sync = ClockSync()
        sync.update(worker_clock=50.0, send_pc=1000.0, recv_pc=1000.1)
        window = (1000.0, 1000.1)
        worker_times = [49.9, 49.95, 50.0, 50.05, 50.2]
        parent_times = [sync.to_parent(t, window=window)
                        for t in worker_times]
        assert parent_times == sorted(parent_times)
        assert all(window[0] <= t <= window[1] for t in parent_times)

    def test_negative_elapsed_is_floored(self):
        sync = ClockSync()
        sync.update(worker_clock=1.0, send_pc=5.0, recv_pc=4.9)
        assert sync.rtt == 0.0

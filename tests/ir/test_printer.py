"""Dedicated printer tests: precedence, parenthesization, pragmas."""

import pytest

from repro.ir import (Assign, BinOp, Call, Const, If, Loop, Op, Push, Pop,
                      UnOp, Var, format_expr, format_stmt, parse_expression)


class TestExpressionFormatting:
    def test_precedence_minimal_parens(self):
        e = parse_expression("a + b * c")
        assert format_expr(e) == "a + b * c"

    def test_left_grouping_preserved(self):
        e = parse_expression("(a + b) * c")
        assert format_expr(e) == "(a + b) * c"

    def test_right_nested_addition_parenthesized(self):
        # a + (b + c) must NOT print as a + b + c: reparsing would
        # re-associate left and change float semantics.
        e = BinOp(Op.ADD, Var("a"), BinOp(Op.ADD, Var("b"), Var("c")))
        assert format_expr(e) == "a + (b + c)"
        left = BinOp(Op.ADD, BinOp(Op.ADD, Var("a"), Var("b")), Var("c"))
        assert format_expr(left) == "a + b + c"

    def test_subtraction_right_parens(self):
        e = BinOp(Op.SUB, Var("a"), BinOp(Op.SUB, Var("b"), Var("c")))
        assert format_expr(e) == "a - (b - c)"

    def test_power_right_associative(self):
        e = parse_expression("a ** b ** c")
        text = format_expr(e)
        assert parse_expression(text) == e

    def test_negative_literal_parenthesized_in_context(self):
        e = BinOp(Op.ADD, Var("a"), Const(-2.0))
        assert format_expr(e) == "a + (-2.0)"
        assert format_expr(Const(-2.0)) == "-2.0"  # bare at top level

    def test_unary_minus(self):
        e = UnOp(Op.NEG, BinOp(Op.ADD, Var("a"), Var("b")))
        text = format_expr(e)
        assert parse_expression(text) == e

    def test_fortran_comparison_spelling(self):
        e = parse_expression("i /= j")
        assert ".ne." in format_expr(e)

    def test_logical_literals(self):
        assert format_expr(Const(True)) == ".true."
        assert format_expr(Const(False)) == ".false."

    def test_call_formatting(self):
        e = Call("max", (Var("a"), Const(0.5)))
        assert format_expr(e) == "max(a, 0.5)"


class TestStatementFormatting:
    def test_atomic_pragma_line(self):
        lines = format_stmt(Assign(Var("x")[Var("i")],
                                   Var("x")[Var("i")] + 1.0, atomic=True))
        assert lines[0].strip() == "!$omp atomic"

    def test_parallel_do_clauses(self):
        loop = Loop("i", 1, 10, body=[], parallel=True,
                    private=("t", "u"), reduction=(("+", "s"),))
        lines = format_stmt(loop)
        assert "!$omp parallel do private(t, u) reduction(+:s)" == lines[0].strip()

    def test_nonunit_step_printed(self):
        lines = format_stmt(Loop("i", 1, 10, 2, body=[]))
        assert "do i = 1, 10, 2" == lines[0].strip()

    def test_unit_step_omitted(self):
        lines = format_stmt(Loop("i", 1, 10, body=[]))
        assert "do i = 1, 10" == lines[0].strip()

    def test_if_without_else(self):
        stmt = If(Var("x").gt(0.0), [Assign(Var("y"), 1.0)])
        lines = format_stmt(stmt)
        assert not any(l.strip() == "else" for l in lines)

    def test_push_pop_render_as_calls(self):
        lines = format_stmt(Push("v1", Var("x")))
        assert "push" in lines[0]
        lines = format_stmt(Pop("v1", Var("x")))
        assert "pop" in lines[0]

    def test_indentation_nesting(self):
        inner = Assign(Var("y"), 1.0)
        loop = Loop("i", 1, 3, body=[If(Var("y").gt(0.0), [inner])])
        lines = format_stmt(loop)
        assign_line = next(l for l in lines if "y = " in l)
        assert assign_line.startswith("    ")

"""Concurrent writers, conflicting records, and store maintenance.

The bug this PR fixes: the append-only cache let two unlocked writers
interleave contradictory records into one file, and the loader silently
trusted whichever landed last. What must hold now
(docs/SCALING.md, "The verdict cache"):

* a second concurrent writer on one fingerprint cannot append — it
  degrades to read-only lookups with a warning (``lock_contended``);
* a file that *already* carries contradictory records never answers
  from either side: the conflicting key is dropped and re-asked;
* compaction squashes duplicates, refuses to pick a conflict winner
  unless told to drop, and survives a crash at any point;
* the size budget evicts least-recently-used fingerprints but never a
  file whose writer lock is live.
"""

import logging
import os

import pytest

from repro.resilience.cache import (CACHE_SCHEMA, CacheConflictError,
                                    CacheStore, CacheStoreError, FileLock,
                                    VerdictCache, reconcile_records)
from repro.resilience.journal import JournalWriter, read_journal


def _raw_writer(tmp_path, fingerprint="fp"):
    """An unlocked append handle — simulates a pre-lock-era writer that
    can land contradictory records."""
    path = os.path.join(str(tmp_path), f"{fingerprint}.jsonl")
    append = os.path.exists(path)
    return JournalWriter(path, append=append,
                         meta={"schema": CACHE_SCHEMA,
                               "fingerprint": fingerprint})


def _question(result, loop="0:i", q="q1", **extra):
    return dict({"kind": "question", "loop": loop, "array": "y",
                 "ctx": "[root]", "q": q, "result": result}, **extra)


class TestWriterExclusion:
    def test_second_writer_degrades_to_readonly(self, tmp_path, caplog):
        first = VerdictCache(str(tmp_path), "fp")
        with caplog.at_level(logging.WARNING):
            second = VerdictCache(str(tmp_path), "fp")
        assert not first.lock_contended
        assert second.lock_contended and second.readonly
        assert any("held by another writer" in r.message
                   for r in caplog.records)

        first.store_question("0:i", "y", "[root]", "q1", "unsat")
        second.store_question("0:i", "y", "[root]", "q1", "sat")
        assert first.question_stores == 1
        assert second.question_stores == 0  # the no-op, not the race
        first.close()
        second.close()

        # one writer's records only — nothing contradictory on disk
        reopened = VerdictCache(str(tmp_path), "fp")
        assert reopened.conflicts == 0
        assert reopened.question("0:i", "[root]", "q1") == ("unsat", None)
        reopened.close()

    def test_lock_is_released_on_close(self, tmp_path):
        first = VerdictCache(str(tmp_path), "fp")
        first.close()
        second = VerdictCache(str(tmp_path), "fp")
        assert not second.lock_contended and not second.readonly
        second.close()

    def test_readonly_open_takes_no_lock(self, tmp_path):
        writer = VerdictCache(str(tmp_path), "fp")
        reader = VerdictCache(str(tmp_path), "fp", readonly=True)
        assert not reader.lock_contended
        reader.close()
        writer.close()


class TestConflictDetection:
    def test_conflicting_question_is_dropped_not_last_writer_wins(
            self, tmp_path, caplog):
        writer = _raw_writer(tmp_path)
        writer.record("question", **{k: v for k, v in
                                     _question("unsat").items()
                                     if k != "kind"})
        writer.record("question", **{k: v for k, v in
                                     _question("sat").items()
                                     if k != "kind"})
        writer.record("question", **{k: v for k, v in
                                     _question("unsat", q="q2").items()
                                     if k != "kind"})
        writer.close()

        with caplog.at_level(logging.WARNING):
            cache = VerdictCache(str(tmp_path), "fp")
        assert cache.conflicts == 1
        assert any("conflicting records" in r.message
                   and "--drop-conflicts" in r.message
                   for r in caplog.records)
        # neither answer is trusted; the question is re-asked
        assert cache.question("0:i", "[root]", "q1") is None
        # the untainted sibling key still answers
        assert cache.question("0:i", "[root]", "q2") == ("unsat", None)
        cache.close()

    def test_conflicting_loop_done_withdraws_the_wholesale_replay(
            self, tmp_path):
        writer = _raw_writer(tmp_path)
        writer.record("verdict", loop="0:i", array="y", safe=True)
        writer.record("loop_done", loop="0:i", degraded=False,
                      stats={"model_size": 7})
        writer.record("loop_done", loop="0:i", degraded=False,
                      stats={"model_size": 8})
        writer.record("question", **{k: v for k, v in
                                     _question("unsat").items()
                                     if k != "kind"})
        writer.close()

        cache = VerdictCache(str(tmp_path), "fp")
        assert cache.conflicts == 1
        # the loop replay is withdrawn entirely — verdicts included
        assert cache.loop_done("0:i") is None
        assert cache.verdicts("0:i") == []
        # but the loop's question records survive on their own keys
        assert cache.question("0:i", "[root]", "q1") == ("unsat", None)
        cache.close()

    def test_exact_duplicates_squash_silently(self, tmp_path, caplog):
        writer = _raw_writer(tmp_path)
        for _ in range(3):
            writer.record("question", **{k: v for k, v in
                                         _question("unsat").items()
                                         if k != "kind"})
        writer.close()

        with caplog.at_level(logging.WARNING):
            cache = VerdictCache(str(tmp_path), "fp")
        assert cache.conflicts == 0
        assert cache.duplicate_records == 2
        assert not caplog.records
        assert cache.question("0:i", "[root]", "q1") == ("unsat", None)
        cache.close()

    def test_reconcile_records_reports_conflict_keys(self):
        kept, duplicates, conflicts = reconcile_records(
            [_question("unsat"), _question("unsat"), _question("sat")])
        assert kept == []
        assert duplicates == 1
        assert conflicts == ["question:0:i:[root]:q1"]

    def test_summary_data_surfaces_hits_and_conflicts(self, tmp_path):
        cache = VerdictCache(str(tmp_path), "fp")
        cache.store_question("0:i", "y", "[root]", "q1", "unsat")
        cache.close()
        warm = VerdictCache(str(tmp_path), "fp")
        assert warm.question("0:i", "[root]", "q1") is not None
        data = warm.summary_data()
        assert data["hits"] == 1 == warm.hits
        assert data["conflicts"] == 0
        warm.close()


class TestCompaction:
    def _conflicted_file(self, tmp_path):
        writer = _raw_writer(tmp_path)
        writer.record("question", **{k: v for k, v in
                                     _question("unsat").items()
                                     if k != "kind"})
        writer.record("question", **{k: v for k, v in
                                     _question("unsat").items()
                                     if k != "kind"})
        writer.record("question", **{k: v for k, v in
                                     _question("sat").items()
                                     if k != "kind"})
        writer.record("question", **{k: v for k, v in
                                     _question("unsat", q="q2").items()
                                     if k != "kind"})
        writer.close()
        return writer.path

    def test_conflict_raises_unless_dropping(self, tmp_path):
        path = self._conflicted_file(tmp_path)
        store = CacheStore(str(tmp_path))
        with pytest.raises(CacheConflictError) as err:
            store.compact("fp")
        assert err.value.path == path
        assert err.value.conflicts == ["question:0:i:[root]:q1"]
        # the refusing pass rewrote nothing
        _, records, _ = read_journal(path)
        assert len(records) == 4

    def test_drop_conflicts_rewrites_a_clean_file(self, tmp_path):
        path = self._conflicted_file(tmp_path)
        summaries = CacheStore(str(tmp_path)).compact(
            "fp", drop_conflicts=True)
        assert summaries == [{
            "fingerprint": "fp", "records_before": 4,
            "records_after": 1, "duplicates_squashed": 1,
            "conflicts_dropped": 1, "damaged_lines_dropped": 0}]
        cache = VerdictCache(str(tmp_path), "fp")
        assert cache.conflicts == 0 and cache.duplicate_records == 0
        assert cache.question("0:i", "[root]", "q1") is None  # re-asked
        assert cache.question("0:i", "[root]", "q2") == ("unsat", None)
        cache.close()

    def test_compact_refuses_a_live_writer(self, tmp_path):
        live = VerdictCache(str(tmp_path), "fp")
        live.store_question("0:i", "y", "[root]", "q1", "unsat")
        store = CacheStore(str(tmp_path))
        with pytest.raises(CacheStoreError, match="live writer"):
            store.compact("fp")
        live.close()
        assert store.compact("fp")[0]["records_after"] == 1

    def test_reader_during_compaction_keeps_its_answers(self, tmp_path):
        writer = VerdictCache(str(tmp_path), "fp")
        writer.store_question("0:i", "y", "[root]", "q1", "unsat")
        writer.close()
        reader = VerdictCache(str(tmp_path), "fp", readonly=True)
        CacheStore(str(tmp_path)).compact("fp")
        # the reader's loaded index survives the atomic rename under it
        assert reader.question("0:i", "[root]", "q1") == ("unsat", None)
        reader.close()
        # and a fresh open reads the compacted file
        fresh = VerdictCache(str(tmp_path), "fp", readonly=True)
        assert fresh.question("0:i", "[root]", "q1") == ("unsat", None)
        fresh.close()

    def test_crashed_compaction_leaves_a_loadable_store(self, tmp_path):
        writer = VerdictCache(str(tmp_path), "fp")
        writer.store_question("0:i", "y", "[root]", "q1", "unsat")
        writer.close()
        # a compaction that died before the atomic rename leaves only
        # its scratch file; the original is untouched and loadable
        stray = os.path.join(str(tmp_path), "fp.jsonl.compact.tmp")
        with open(stray, "w", encoding="utf-8") as fh:
            fh.write("torn half-written garbage")
        cache = VerdictCache(str(tmp_path), "fp")
        assert cache.question("0:i", "[root]", "q1") == ("unsat", None)
        cache.close()
        # the scratch file is not a cache file: the store ignores it
        store = CacheStore(str(tmp_path))
        assert [fp for fp, _, _ in store.usage()] == ["fp"]
        # the next compaction overwrites the stray scratch and succeeds
        assert store.compact("fp")[0]["records_after"] == 1

    def test_missing_fingerprint_is_an_error(self, tmp_path):
        with pytest.raises(CacheStoreError, match="no cache file"):
            CacheStore(str(tmp_path)).compact("nowhere")

    def test_headerless_file_refuses_to_compact(self, tmp_path):
        path = os.path.join(str(tmp_path), "fp.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("not a journal\n")
        with pytest.raises(CacheStoreError, match="header"):
            CacheStore(str(tmp_path)).compact("fp")


class TestEviction:
    def _populate(self, tmp_path, fingerprints):
        for age, fingerprint in enumerate(fingerprints):
            cache = VerdictCache(str(tmp_path), fingerprint)
            cache.store_question("0:i", "y", "[root]", "q1", "unsat")
            cache.close()
            # deterministic LRU order: older files get older mtimes
            path = os.path.join(str(tmp_path), f"{fingerprint}.jsonl")
            os.utime(path, (1000.0 + age, 1000.0 + age))

    def test_lru_eviction_under_budget(self, tmp_path):
        self._populate(tmp_path, ["old", "mid", "new"])
        store = CacheStore(str(tmp_path))
        size = store.usage()[0][1]
        evicted = store.evict(max_bytes=2 * size)
        assert evicted == ["old"]
        assert sorted(fp for fp, _, _ in store.usage()) == ["mid", "new"]
        assert store.total_bytes() <= 2 * size

    def test_valid_readonly_open_bumps_recency(self, tmp_path):
        self._populate(tmp_path, ["old", "new"])
        # a lookup hit makes "old" the most recently used file
        ro = VerdictCache(str(tmp_path), "old", readonly=True)
        ro.close()
        store = CacheStore(str(tmp_path))
        size = store.usage()[0][1]
        assert store.evict(max_bytes=size) == ["new"]

    def test_live_writer_is_never_evicted(self, tmp_path):
        self._populate(tmp_path, ["old", "new"])
        live = VerdictCache(str(tmp_path), "old")  # re-takes the lock
        store = CacheStore(str(tmp_path))
        evicted = store.evict(max_bytes=0)
        assert evicted == ["new"]
        assert [fp for fp, _, _ in store.usage()] == ["old"]
        live.close()

    def test_no_budget_means_no_eviction(self, tmp_path):
        self._populate(tmp_path, ["a", "b"])
        store = CacheStore(str(tmp_path))
        assert store.evict() == []
        assert store.stats()["files"] == 2

    def test_stats_shape(self, tmp_path):
        self._populate(tmp_path, ["a"])
        stats = CacheStore(str(tmp_path), max_bytes=4096).stats()
        assert stats["files"] == 1
        assert stats["max_bytes"] == 4096
        assert stats["total_bytes"] > 0
        assert stats["cache_dir"] == str(tmp_path)


class TestFileLock:
    def test_two_locks_conflict_in_one_process(self, tmp_path):
        path = os.path.join(str(tmp_path), "x.lock")
        a, b = FileLock(path), FileLock(path)
        assert a.acquire() and a.held
        assert not b.acquire() and not b.held
        a.release()
        assert b.acquire()
        b.release()

"""Expression AST for the mini-language.

Expressions are immutable and hashable, so analyses can use them as
dictionary keys (the FormAD knowledge base keys assertions by index
expression). Operator overloading gives a compact builder syntax::

    i = Var("i")
    a = Var("a")
    expr = a[i - 1] * 2.0 + 1.5

Array indexing with ``a[i, j]`` produces an :class:`ArrayRef`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Tuple


class _ExprOps:
    """Mixin providing Python operator overloading on expressions."""

    def __add__(self, other) -> "BinOp":
        return BinOp(Op.ADD, self, as_expr(other))

    def __radd__(self, other) -> "BinOp":
        return BinOp(Op.ADD, as_expr(other), self)

    def __sub__(self, other) -> "BinOp":
        return BinOp(Op.SUB, self, as_expr(other))

    def __rsub__(self, other) -> "BinOp":
        return BinOp(Op.SUB, as_expr(other), self)

    def __mul__(self, other) -> "BinOp":
        return BinOp(Op.MUL, self, as_expr(other))

    def __rmul__(self, other) -> "BinOp":
        return BinOp(Op.MUL, as_expr(other), self)

    def __truediv__(self, other) -> "BinOp":
        return BinOp(Op.DIV, self, as_expr(other))

    def __rtruediv__(self, other) -> "BinOp":
        return BinOp(Op.DIV, as_expr(other), self)

    def __pow__(self, other) -> "BinOp":
        return BinOp(Op.POW, self, as_expr(other))

    def __neg__(self) -> "UnOp":
        return UnOp(Op.NEG, self)

    # Comparisons build expression nodes, NOT booleans.  Structural
    # equality for container use is provided by ``same`` / dataclass eq.
    def eq(self, other) -> "Compare":
        return Compare(CmpOp.EQ, self, as_expr(other))

    def ne(self, other) -> "Compare":
        return Compare(CmpOp.NE, self, as_expr(other))

    def lt(self, other) -> "Compare":
        return Compare(CmpOp.LT, self, as_expr(other))

    def le(self, other) -> "Compare":
        return Compare(CmpOp.LE, self, as_expr(other))

    def gt(self, other) -> "Compare":
        return Compare(CmpOp.GT, self, as_expr(other))

    def ge(self, other) -> "Compare":
        return Compare(CmpOp.GE, self, as_expr(other))

    def logical_and(self, other) -> "Logical":
        return Logical(LogicOp.AND, (self, as_expr(other)))

    def logical_or(self, other) -> "Logical":
        return Logical(LogicOp.OR, (self, as_expr(other)))

    def logical_not(self) -> "Logical":
        return Logical(LogicOp.NOT, (self,))


class Op(enum.Enum):
    """Arithmetic operators."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    POW = "**"
    NEG = "neg"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class CmpOp(enum.Enum):
    """Comparison operators (Fortran spellings in the printer)."""

    EQ = "=="
    NE = "/="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def negate(self) -> "CmpOp":
        return _CMP_NEGATIONS[self]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_CMP_NEGATIONS = {
    CmpOp.EQ: CmpOp.NE,
    CmpOp.NE: CmpOp.EQ,
    CmpOp.LT: CmpOp.GE,
    CmpOp.LE: CmpOp.GT,
    CmpOp.GT: CmpOp.LE,
    CmpOp.GE: CmpOp.LT,
}


class LogicOp(enum.Enum):
    AND = ".and."
    OR = ".or."
    NOT = ".not."

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Const(_ExprOps):
    """A literal constant: integer, float, or bool."""

    value: int | float | bool

    def __post_init__(self):
        if not isinstance(self.value, (int, float, bool)):
            raise TypeError(f"bad constant: {self.value!r}")

    @property
    def is_integer(self) -> bool:
        return isinstance(self.value, int) and not isinstance(self.value, bool)

    def __str__(self) -> str:
        return repr(self.value) if not isinstance(self.value, float) else f"{self.value!r}"


@dataclass(frozen=True)
class Var(_ExprOps):
    """A reference to a scalar variable (or a whole array in contexts
    like reduction clauses)."""

    name: str

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"bad variable name: {self.name!r}")

    def __getitem__(self, idx) -> "ArrayRef":
        if not isinstance(idx, tuple):
            idx = (idx,)
        return ArrayRef(self.name, tuple(as_expr(e) for e in idx))

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayRef(_ExprOps):
    """An array element reference ``name(idx_1, ..., idx_r)``."""

    name: str
    indices: Tuple["Expr", ...]

    def __post_init__(self):
        if not self.indices:
            raise ValueError("ArrayRef needs at least one index")

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.indices))})"


@dataclass(frozen=True)
class BinOp(_ExprOps):
    op: Op
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnOp(_ExprOps):
    op: Op
    operand: "Expr"

    def __str__(self) -> str:
        return f"(-{self.operand})" if self.op is Op.NEG else f"({self.op} {self.operand})"


@dataclass(frozen=True)
class Call(_ExprOps):
    """A call to an intrinsic function (``sin``, ``exp``, ``max`` ...)."""

    func: str
    args: Tuple["Expr", ...]

    def __str__(self) -> str:
        return f"{self.func}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class Compare(_ExprOps):
    op: CmpOp
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Logical(_ExprOps):
    op: LogicOp
    operands: Tuple["Expr", ...]

    def __post_init__(self):
        want = 1 if self.op is LogicOp.NOT else 2
        if len(self.operands) != want:
            raise ValueError(f"{self.op} expects {want} operand(s)")

    def __str__(self) -> str:
        if self.op is LogicOp.NOT:
            return f"(.not. {self.operands[0]})"
        return f"({self.operands[0]} {self.op} {self.operands[1]})"


Expr = Const | Var | ArrayRef | BinOp | UnOp | Call | Compare | Logical

#: Intrinsic functions known to the interpreter and the AD engine, with
#: their arity.  ``-1`` means variadic (>= 2).
INTRINSICS: Mapping[str, int] = {
    "sin": 1,
    "cos": 1,
    "tan": 1,
    "exp": 1,
    "log": 1,
    "sqrt": 1,
    "abs": 1,
    "tanh": 1,
    "max": -1,
    "min": -1,
    "mod": 2,
    "int": 1,
    "real": 1,
    "sign": 2,
}


def as_expr(value) -> Expr:
    """Coerce a Python value or expression into an :class:`Expr`."""
    if isinstance(value, (Const, Var, ArrayRef, BinOp, UnOp, Call, Compare, Logical)):
        return value
    if isinstance(value, (int, float, bool)):
        return Const(value)
    raise TypeError(f"cannot convert {value!r} to an IR expression")


def children(expr: Expr) -> Tuple[Expr, ...]:
    """Direct sub-expressions of *expr*."""
    if isinstance(expr, (Const, Var)):
        return ()
    if isinstance(expr, ArrayRef):
        return expr.indices
    if isinstance(expr, BinOp):
        return (expr.left, expr.right)
    if isinstance(expr, UnOp):
        return (expr.operand,)
    if isinstance(expr, Call):
        return expr.args
    if isinstance(expr, Compare):
        return (expr.left, expr.right)
    if isinstance(expr, Logical):
        return expr.operands
    raise TypeError(f"not an expression: {expr!r}")  # pragma: no cover


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield *expr* and all sub-expressions, pre-order."""
    stack = [expr]
    while stack:
        e = stack.pop()
        yield e
        stack.extend(reversed(children(e)))


def variables_in(expr: Expr) -> set[str]:
    """Names of all scalar variables referenced by *expr* (array names
    excluded — use :func:`arrays_in` for those)."""
    return {e.name for e in walk(expr) if isinstance(e, Var)}


def arrays_in(expr: Expr) -> set[str]:
    """Names of all arrays referenced by *expr*."""
    return {e.name for e in walk(expr) if isinstance(e, ArrayRef)}


def names_in(expr: Expr) -> set[str]:
    """All variable and array names referenced by *expr*."""
    return variables_in(expr) | arrays_in(expr)


def substitute(expr: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Replace scalar variable references by name.

    Only :class:`Var` nodes are substituted; array names are left
    untouched (arrays cannot be renamed via this helper).
    """
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Var):
        return mapping.get(expr.name, expr)
    if isinstance(expr, ArrayRef):
        return ArrayRef(expr.name, tuple(substitute(i, mapping) for i in expr.indices))
    if isinstance(expr, BinOp):
        return BinOp(expr.op, substitute(expr.left, mapping), substitute(expr.right, mapping))
    if isinstance(expr, UnOp):
        return UnOp(expr.op, substitute(expr.operand, mapping))
    if isinstance(expr, Call):
        return Call(expr.func, tuple(substitute(a, mapping) for a in expr.args))
    if isinstance(expr, Compare):
        return Compare(expr.op, substitute(expr.left, mapping), substitute(expr.right, mapping))
    if isinstance(expr, Logical):
        return Logical(expr.op, tuple(substitute(o, mapping) for o in expr.operands))
    raise TypeError(f"not an expression: {expr!r}")  # pragma: no cover


def rename_arrays(expr: Expr, mapping: Mapping[str, str]) -> Expr:
    """Rename array references by name (used to build adjoint refs)."""
    if isinstance(expr, ArrayRef):
        return ArrayRef(
            mapping.get(expr.name, expr.name),
            tuple(rename_arrays(i, mapping) for i in expr.indices),
        )
    if isinstance(expr, Const) or isinstance(expr, Var):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(expr.op, rename_arrays(expr.left, mapping), rename_arrays(expr.right, mapping))
    if isinstance(expr, UnOp):
        return UnOp(expr.op, rename_arrays(expr.operand, mapping))
    if isinstance(expr, Call):
        return Call(expr.func, tuple(rename_arrays(a, mapping) for a in expr.args))
    if isinstance(expr, Compare):
        return Compare(expr.op, rename_arrays(expr.left, mapping), rename_arrays(expr.right, mapping))
    if isinstance(expr, Logical):
        return Logical(expr.op, tuple(rename_arrays(o, mapping) for o in expr.operands))
    raise TypeError(f"not an expression: {expr!r}")  # pragma: no cover


def references_location(expr: Expr, ref: "Var | ArrayRef") -> bool:
    """True if *expr* may read the memory location denoted by *ref*.

    This is the syntactic test used by increment detection: for an
    array reference we require the *same array with identical index
    expressions* to count as "the same location"; any other reference
    to the same array counts as *may* overlap and also returns True
    (conservative).
    """
    if isinstance(ref, Var):
        return ref.name in variables_in(expr)
    return any(isinstance(e, ArrayRef) and e.name == ref.name for e in walk(expr))


def is_int_const(expr: Expr) -> bool:
    return isinstance(expr, Const) and expr.is_integer


def const_value(expr: Expr) -> int | float | bool:
    if not isinstance(expr, Const):
        raise TypeError(f"not a constant: {expr!r}")
    return expr.value

"""Experiment harness: regenerates every table and figure of §7."""

from .paper_reference import (PAPER, PAPER_LBM_OFFENDING,
                              PAPER_LBM_SAFE_OFFSETS, PAPER_TABLE1,
                              PAPER_THREADS, PaperKernelNumbers)
from .specs import (ALL_FIGURE_SPECS, KernelSpec, gfmc_spec, gfmc_star_spec,
                    greengauss_spec, large_stencil_spec, lbm_spec,
                    small_stencil_spec)
from .harness import (ADJOINT_STRATEGIES, KernelExperiment, VariantResult,
                      format_figure_pair, run_kernel_experiment)
from .table1 import (TABLE1_PROBLEMS, format_table1_with_reference,
                     run_table1)
from .lbm_listing import LBMListing, run_lbm_listing, safe_offsets_from_listing

__all__ = [
    "PAPER", "PAPER_LBM_OFFENDING", "PAPER_LBM_SAFE_OFFSETS", "PAPER_TABLE1",
    "PAPER_THREADS", "PaperKernelNumbers",
    "ALL_FIGURE_SPECS", "KernelSpec", "gfmc_spec", "gfmc_star_spec",
    "greengauss_spec", "large_stencil_spec", "lbm_spec",
    "small_stencil_spec",
    "ADJOINT_STRATEGIES", "KernelExperiment", "VariantResult",
    "format_figure_pair", "run_kernel_experiment",
    "TABLE1_PROBLEMS", "format_table1_with_reference", "run_table1",
    "LBMListing", "run_lbm_listing", "safe_offsets_from_listing",
]

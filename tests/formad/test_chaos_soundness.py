"""Property test: solver faults on exploitation questions degrade, never
upgrade (ISSUE PR 3 satellite).

For each of the four paper kernels, strike single exploitation
questions (first, middle, last solver-backed question of every
parallel loop) with an injected UNKNOWN, a clausify-budget error, or an
arbitrary exception, and assert the engine

* never raises,
* never marks safe any array the fault-free baseline did not, and
* still asks exactly the baseline's number of exploitation questions
  (the Table-1 columns are fault-independent: a struck question is
  answered UNKNOWN and the engine keeps asking the remaining pairs).

Also sweeps random injection at rates up to 1.0 as a crash/upgrade
smoke over all three kinds at once.
"""

from __future__ import annotations

import pytest

from repro.analysis.activity import ActivityAnalysis
from repro.audit.chaos import ChaosConfig, chaos_factory
from repro.experiments.specs import ALL_FIGURE_SPECS
from repro.formad import FormADEngine

KERNELS = sorted(ALL_FIGURE_SPECS)


def _baseline(spec):
    activity = ActivityAnalysis(spec.proc, spec.independents,
                                spec.dependents)
    engine = FormADEngine(spec.proc, activity)
    return engine.analyze_all()


def _chaos_analyses(spec, config):
    activity = ActivityAnalysis(spec.proc, spec.independents,
                                spec.dependents)
    factory = chaos_factory(config)
    engine = FormADEngine(spec.proc, activity, solver_factory=factory)
    return engine.analyze_all(), factory


@pytest.fixture(scope="module")
def baselines():
    out = {}
    for name in KERNELS:
        spec = ALL_FIGURE_SPECS[name]()
        out[name] = (spec, _baseline(spec))
    return out


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("kind", ["unknown", "budget", "error"])
def test_targeted_fault_on_exploitation_questions(baselines, kernel, kind):
    spec, baseline = baselines[kernel]
    base_safe = {a.loop.uid: a.safe_arrays() for a in baseline}
    base_asked = {a.loop.uid: a.stats.exploitation_checks for a in baseline}

    struck_anything = False
    for instance, analysis in enumerate(baseline):
        consistency = analysis.stats.consistency_checks
        solver_questions = (analysis.stats.exploitation_checks
                            - analysis.stats.memo_hits)
        if solver_questions == 0:
            continue
        # Solver check index of exploitation question k is
        # consistency + k: buildModel checks once per fact, every
        # non-memoized question checks exactly once.
        targets = sorted({consistency,
                          consistency + solver_questions // 2,
                          consistency + solver_questions - 1})
        for target in targets:
            config = ChaosConfig(fail_checks=frozenset({target}),
                                 fail_kind=kind, fail_instance=instance)
            analyses, factory = _chaos_analyses(spec, config)
            assert factory.solvers[instance].injected == [(target, kind)], \
                "the targeted check index must land on the chosen solver"
            struck_anything = True
            for chaotic in analyses:
                uid = chaotic.loop.uid
                # soundness: chaos can only shrink the safe set
                assert chaotic.safe_arrays() <= base_safe[uid]
                # Table-1 stability: the same questions are asked
                assert chaotic.stats.exploitation_checks == base_asked[uid]
                # the struck loop must have lost at least one verdict
                if chaotic.loop is analyses[instance].loop and uid == \
                        baseline[instance].loop.uid:
                    assert chaotic.safe_arrays() < base_safe[uid] or \
                        not base_safe[uid]
    assert struck_anything, "every paper kernel asks at least one question"


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("rate", [0.1, 0.5, 1.0])
def test_random_fault_sweep_never_crashes_or_upgrades(baselines, kernel,
                                                      rate):
    spec, baseline = baselines[kernel]
    base_safe = {a.loop.uid: a.safe_arrays() for a in baseline}
    config = ChaosConfig(unknown_rate=rate / 2, budget_rate=rate / 4,
                         error_rate=rate / 4, seed=7)
    analyses, _ = _chaos_analyses(spec, config)
    assert len(analyses) == len(baseline)
    for chaotic in analyses:
        assert chaotic.safe_arrays() <= base_safe[chaotic.loop.uid]

"""Multiprocess shard scheduler (the ``--backend process`` runtime).

``--jobs N`` with the default thread backend fans loops out over a
``ThreadPoolExecutor`` — but the analysis is pure Python, so the GIL
serializes the actual solving and N threads buy almost nothing. This
module is the fix: N **persistent worker processes** (``python -m
repro.resilience.worker --serve``), each running a real interpreter of
its own, pulling loop-granularity shards from a shared work queue
(work-stealing: a worker that finishes early takes the next loop, so
one slow region never idles the rest of the pool).

Division of labor (docs/SCALING.md):

* **Workers** analyze. They never write the parent's journal, trace
  stream, or verdict cache; each reply carries the journal-shaped
  records, buffered trace events, and cache metadata of one loop.
* **The parent** owns all I/O: it is the single journal writer, the
  single cache writer, and the single trace sink. Each shard's feeder
  thread (named ``shard-<k>`` — the name trace events inherit) applies
  its worker's replies under one lock, so per-loop record blocks stay
  contiguous in the journal.
* **Replay stays parental**: settled loops from a ``--resume`` journal
  and clean loops from the ``--cache-dir`` verdict cache are replayed
  in the parent *before* sharding; only genuinely open loops are
  queued.

Fault handling matches ``--isolate``: a crashed, hung, or killed
worker degrades the loop it was holding (safeguards everywhere,
planned question counts — Table-1 totals stay fault-independent) and
the feeder respawns a fresh worker for its next shard. A
:class:`~repro.formad.engine.PrimalRaceError` reported by any worker
stops the pool and is re-raised, exactly as the inline analysis would.

The default backend stays ``thread``: its output is byte-identical to
the process backend (tests/resilience/test_backend_identity.py keeps
that true), so nothing changes unless ``--backend process`` is asked
for.
"""

from __future__ import annotations

import json
import logging
import queue
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .journal import rebuild_analysis
from .workers import (_DEADLINE_GRACE, IsolationConfig, WorkerOutcome,
                      _worker_env)

logger = logging.getLogger(__name__)


class WorkerGone(RuntimeError):
    """A serve worker died, went silent, or answered garbage."""

    def __init__(self, status: str, detail: str) -> None:
        super().__init__(detail)
        #: ``crash`` or ``timeout`` — becomes the WorkerOutcome status.
        self.status = status
        self.detail = detail


@dataclass(frozen=True)
class ShardConfig:
    """How ``--backend process`` runs its shard workers."""

    #: Number of worker processes (capped by the open-loop count).
    jobs: int = 2
    #: Hard wall-clock cap per shard request, enforced by SIGKILL.
    kill_timeout: float = 60.0
    #: Interpreter for the worker processes.
    python: str = sys.executable
    #: Extra environment entries for the workers (tests inject
    #: ``REPRO_WORKER_FAULT`` here).
    extra_env: Optional[Dict[str, str]] = None

    def isolation(self) -> IsolationConfig:
        """The equivalent one-shot config (shared env construction)."""
        return IsolationConfig(kill_timeout=self.kill_timeout,
                               python=self.python, extra_env=self.extra_env)


class WorkerClient:
    """One persistent serve worker and its line-protocol plumbing.

    stdout is drained by a dedicated reader thread into a queue, so
    every request gets a *timeout-bounded* wait for its reply line — a
    hung worker surfaces as :class:`WorkerGone` (``timeout``) instead
    of blocking the feeder forever. stderr is drained too (into a
    short tail kept for crash diagnostics) so a chatty worker can
    never deadlock on a full pipe.
    """

    def __init__(self, config: ShardConfig, init_request: dict) -> None:
        self._proc = subprocess.Popen(
            [config.python, "-m", "repro.resilience.worker", "--serve"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True,
            env=_worker_env(config.isolation()))
        self._lines: "queue.Queue[Optional[str]]" = queue.Queue()
        self._stderr_tail: deque = deque(maxlen=20)
        threading.Thread(target=self._read_stdout, daemon=True).start()
        threading.Thread(target=self._read_stderr, daemon=True).start()
        reply = self.request(init_request, timeout=config.kill_timeout)
        if not reply.get("ok"):
            raise WorkerGone("crash", f"worker init failed: {reply!r}")
        #: The loop keys the worker sees (a cheap contract check).
        self.loops: List[str] = list(reply.get("loops", []))

    # ------------------------------------------------------------ plumbing
    def _read_stdout(self) -> None:
        try:
            for line in self._proc.stdout:
                self._lines.put(line)
        except ValueError:  # pragma: no cover - file closed under us
            pass
        self._lines.put(None)

    def _read_stderr(self) -> None:
        try:
            for line in self._proc.stderr:
                self._stderr_tail.append(line.rstrip())
        except ValueError:  # pragma: no cover
            pass

    def _death_detail(self, fallback: str) -> str:
        try:
            # The reader saw EOF an instant before the child is
            # reapable; give it a moment so the detail can name the
            # exit status or signal instead of just "closed stdout".
            self._proc.wait(timeout=1.0)
        except subprocess.TimeoutExpired:
            pass
        rc = self._proc.poll()
        if rc is not None and rc < 0:
            detail = f"worker killed by signal {-rc}"
        elif rc is not None:
            detail = f"worker exited with status {rc}"
        else:
            detail = fallback
        if self._stderr_tail:
            detail += f": {self._stderr_tail[-1]}"
        return detail

    # ------------------------------------------------------------ protocol
    def request(self, request: dict, timeout: float) -> dict:
        try:
            self._proc.stdin.write(json.dumps(request) + "\n")
            self._proc.stdin.flush()
        except (BrokenPipeError, OSError) as exc:
            raise WorkerGone(
                "crash", self._death_detail(f"worker pipe broke: {exc}"))
        try:
            line = self._lines.get(timeout=timeout)
        except queue.Empty:
            raise WorkerGone(
                "timeout",
                f"worker exceeded its {timeout:.1f}s kill timeout")
        if line is None:
            raise WorkerGone("crash",
                             self._death_detail("worker closed its stdout"))
        try:
            reply = json.loads(line)
        except ValueError:
            raise WorkerGone("crash", "worker produced unparsable output")
        if not isinstance(reply, dict):
            raise WorkerGone("crash", "worker produced a non-object reply")
        return reply

    def kill(self) -> None:
        if self._proc.poll() is None:
            self._proc.kill()
        try:
            self._proc.wait(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover
            pass

    def shutdown(self) -> None:
        try:
            self._proc.stdin.write(json.dumps({"op": "shutdown"}) + "\n")
            self._proc.stdin.flush()
            self._proc.stdin.close()
        except (BrokenPipeError, OSError):
            pass
        try:
            self._proc.wait(timeout=5)
        except subprocess.TimeoutExpired:
            self.kill()


def _init_request(engine, source: str, head: str,
                  independents: Sequence[str], dependents: Sequence[str], *,
                  resume_path: Optional[str],
                  cache_dir: Optional[str],
                  fingerprint: Optional[str]) -> dict:
    return {
        "op": "init",
        "source": source,
        "head": head,
        "independents": list(independents),
        "dependents": list(dependents),
        "flags": engine.fingerprint_flags(),
        "question_timeout": engine.question_timeout,
        "escalation": {
            "max_attempts": engine.escalation.max_attempts,
            "growth": engine.escalation.growth,
            "max_scale": engine.escalation.max_scale,
            "jitter": engine.escalation.jitter,
        },
        "resume": resume_path,
        "cache_dir": cache_dir,
        "fingerprint": fingerprint,
        "trace": engine.tracer.enabled,
    }


def _apply_reply(engine, cache, loop, key: str, reply: dict):
    """Apply one shard reply in the parent: journal its records, store
    its decided questions (and, if clean, the whole loop) in the
    verdict cache, re-emit its trace events, and rebuild the
    :class:`~repro.formad.engine.LoopAnalysis`. Callers hold the
    scheduler's apply lock, so one loop's records stay contiguous."""
    journal = engine._journal
    tracer = engine.tracer
    done: Optional[dict] = None
    verdicts: List[dict] = []
    for item in reply.get("records", []):
        kind, fields = str(item[0]), dict(item[1])
        if journal is not None:
            journal.record(kind, **fields)
        if kind == "loop_done":
            done = fields
        elif kind == "verdict":
            verdicts.append(fields)
        elif kind == "question" and cache is not None:
            cache.store_question(
                str(fields.get("loop", key)), str(fields.get("array", "")),
                str(fields.get("ctx", "")), str(fields.get("q", "")),
                str(fields.get("result", "")), fields.get("witness"))
    if done is None:
        raise WorkerGone("crash", "worker reply missing its loop_done record")
    if cache is not None:
        cache.question_hits += int(reply.get("cache_hits") or 0)
        if reply.get("cacheable"):
            cache.store_loop(key, done, verdicts)
    if tracer.enabled:
        for item in reply.get("events", []):
            tracer.emit(str(item[0]), **dict(item[1]))
    analysis = rebuild_analysis(loop, done, verdicts, resumed=False)
    analysis.cacheable = bool(reply.get("cacheable"))
    return analysis


def analyze_sharded(
    engine,
    source: str,
    head: str,
    independents: Sequence[str],
    dependents: Sequence[str],
    *,
    config: Optional[ShardConfig] = None,
    resume_path: Optional[str] = None,
    cache_dir: Optional[str] = None,
    fingerprint: Optional[str] = None,
) -> Tuple[List, List[WorkerOutcome]]:
    """Analyze every parallel loop of *engine*'s procedure across a
    pool of persistent worker processes.

    Returns ``(analyses, outcomes)`` in loop order, mirroring
    :func:`~repro.resilience.workers.analyze_isolated` — plus the
    ``resumed``/``cached`` outcomes of loops the parent replayed
    without dispatching a shard.
    """
    from ..formad.engine import PrimalRaceError

    config = config or ShardConfig()
    tracer = engine.tracer
    cache = engine._vcache
    loops = list(engine.proc.parallel_loops())
    slots: List[Optional[object]] = [None] * len(loops)
    outcomes: List[Optional[WorkerOutcome]] = [None] * len(loops)
    pending: "queue.Queue" = queue.Queue()
    for index, loop in enumerate(loops):
        key = engine.loop_key(loop)
        replayed = engine._replay_settled(loop)
        if replayed is not None:
            slots[index] = replayed
            outcomes[index] = WorkerOutcome(key, "resumed")
            continue
        replayed = engine._replay_cached(loop)
        if replayed is not None:
            slots[index] = replayed
            outcomes[index] = WorkerOutcome(key, "cached")
            continue
        pending.put((index, loop))
    if pending.empty():
        return list(slots), list(outcomes)

    init_request = _init_request(engine, source, head, independents,
                                 dependents, resume_path=resume_path,
                                 cache_dir=cache_dir, fingerprint=fingerprint)
    apply_lock = threading.Lock()
    race: List[PrimalRaceError] = []

    def degrade(index: int, loop, key: str, status: str, detail: str,
                elapsed: float, *, phase: str = "worker") -> None:
        with apply_lock:
            if tracer.enabled:
                tracer.emit("worker", loop=key, status=status,
                            dur_s=elapsed, detail=detail)
            slots[index] = engine.degraded_analysis(
                loop, f"shard {detail}", phase=phase)
            outcomes[index] = WorkerOutcome(key, status, detail, elapsed)

    def shard(k: int) -> None:
        client: Optional[WorkerClient] = None
        try:
            while not race:
                try:
                    index, loop = pending.get_nowait()
                except queue.Empty:
                    break
                key = engine.loop_key(loop)
                deadline = engine.deadline
                if deadline is not None and deadline.expired():
                    degrade(index, loop, key, "timeout",
                            "run deadline expired before the shard was "
                            "dispatched", 0.0, phase="deadline")
                    continue
                start = time.perf_counter()
                try:
                    if client is None:
                        client = WorkerClient(config, init_request)
                    budget = config.kill_timeout
                    if deadline is not None:
                        budget = min(budget,
                                     max(deadline.remaining(), 0.0)
                                     + _DEADLINE_GRACE)
                    reply = client.request(
                        {"op": "analyze", "loop_key": key,
                         "deadline_remaining": (deadline.remaining()
                                                if deadline is not None
                                                else None)},
                        timeout=budget)
                except WorkerGone as exc:
                    elapsed = time.perf_counter() - start
                    if client is not None:
                        client.kill()
                        client = None  # a fresh worker serves the next shard
                    degrade(index, loop, key, exc.status, exc.detail, elapsed)
                    continue
                elapsed = time.perf_counter() - start
                error = reply.get("error")
                if error is not None:
                    if error.get("type") == "PrimalRaceError":
                        race.append(PrimalRaceError(error.get("message", "")))
                        break
                    degrade(index, loop, key, "crash",
                            f"worker error: {error.get('message', '')}",
                            elapsed)
                    continue
                with apply_lock:
                    try:
                        analysis = _apply_reply(engine, cache, loop, key,
                                                reply)
                    except WorkerGone as exc:
                        if tracer.enabled:
                            tracer.emit("worker", loop=key, status=exc.status,
                                        dur_s=elapsed, detail=exc.detail)
                        slots[index] = engine.degraded_analysis(
                            loop, f"shard {exc.detail}")
                        outcomes[index] = WorkerOutcome(key, exc.status,
                                                        exc.detail, elapsed)
                        continue
                    if tracer.enabled:
                        tracer.emit("worker", loop=key, status="ok",
                                    dur_s=elapsed)
                    slots[index] = analysis
                    outcomes[index] = WorkerOutcome(key, "ok",
                                                    elapsed=elapsed)
        finally:
            if client is not None:
                client.shutdown()

    n = max(1, min(config.jobs, pending.qsize()))
    threads = [threading.Thread(target=shard, args=(k,), name=f"shard-{k}")
               for k in range(n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if race:
        raise race[0]
    return list(slots), list(outcomes)


def analyze_program_remote(
    source: str,
    head: str,
    independents: Sequence[str],
    dependents: Sequence[str],
    *,
    config: Optional[ShardConfig] = None,
    tracer=None,
    deadline=None,
    flags: Optional[dict] = None,
) -> List:
    """One whole program analyzed through the shard runtime — the
    experiments pipeline's process backend. Builds the parent-side
    engine from *source*, runs :func:`analyze_sharded` over its loops,
    and returns the analyses (loop order). The Table-1 sweep calls
    this once per problem from its worker threads, which gives the
    sweep process-level parallelism across problems."""
    from ..analysis.activity import ActivityAnalysis
    from ..formad.engine import FormADEngine
    from ..ir import parse_program
    from ..obs.tracer import NULL_TRACER

    proc = parse_program(source)[head]
    activity = ActivityAnalysis(proc, independents, dependents)
    engine = FormADEngine(proc, activity, tracer=tracer or NULL_TRACER,
                          deadline=deadline, **(flags or {}))
    analyses, _ = analyze_sharded(engine, source, head, independents,
                                  dependents, config=config)
    return analyses

"""Crash-safe soundness campaigns: the audit at corpus scale.

``repro audit`` runs dozens of differential cases inline; a *campaign*
(``repro campaign``) streams thousands of generated
:class:`~repro.audit.generator.CaseSpec` units — one clean differential
case per index plus one fault-injection case per chaos rate — across
the persistent :class:`~repro.resilience.shards.WorkerPool`, one
subprocess-contained case at a time. The design goals, in order:

* **Nothing stalls the campaign.** Every case runs in a serve worker
  under a per-case deadline; a hung oracle is SIGKILLed by the request
  timeout, a crashed worker is respawned, and the case retries with
  bounded exponential backoff before settling as a contained
  ``unknown``. The campaign always finishes.
* **Nothing is lost to kill -9.** Every settled case is appended to a
  CRC'd JSONL journal (schema ``repro-campaign/1``, the PR-4 journal
  machinery) before the next case dispatches, so an interrupted
  campaign loses at most the cases in flight, and ``--resume`` skips
  every settled one. The final report carries no timers, so a resumed
  campaign's report is *identical* to an uninterrupted run's.
* **Flakes are not soundness violations.** A case must fail twice in a
  row to be confirmed (:class:`QuarantineState`): fail-then-pass on a
  clean retry is *flaky*, re-tried up to ``--flake-cap`` times and then
  parked as ``quarantined`` — recorded, counted, never reported as a
  violation.
* **Every confirmed violation becomes a regression test.** Confirmed
  violations are ddmin-minimized in the parent and committed to the
  content-addressed corpus (:mod:`repro.audit.corpus`) that
  ``repro corpus replay`` re-runs as an ordinary test gate.

Campaign health — cases/sec, retries, quarantines, worker respawns,
violations — flows through the MetricsRegistry
(``campaign.*`` counters) and the ``--progress`` heartbeat.
"""

from __future__ import annotations

import hashlib
import os
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..obs.tracer import NULL_TRACER, NullTracer
from ..resilience.deadline import per_question
from ..resilience.journal import (JournalError, JournalWriter, _canonical,
                                  read_journal)
from ..resilience.shards import ShardConfig, WorkerGone, WorkerPool
from ..resilience.workers import _DEADLINE_GRACE
from .corpus import CorpusEntry, commit_entry
from .generator import CaseSpec, FAMILIES, build_procedure, generate_case, \
    spec_from_json
from .harness import _split_rate, chaos_check, run_case
from .minimize import minimize

#: Campaign journal / report schema identifier.
CAMPAIGN_SCHEMA = "repro-campaign/1"

#: Terminal per-case statuses.
STATUSES = ("pass", "violation", "flaky", "quarantined", "unknown")


# ----------------------------------------------------------------------
# Quarantine: flake containment as an explicit state machine
# ----------------------------------------------------------------------
class QuarantineState:
    """Settles one case from a sequence of pass/fail observations.

    States::

        fresh ──pass──▶ pass (terminal)
        fresh ──fail──▶ suspect
        suspect ──fail──▶ violation (terminal: two consecutive fails)
        suspect ──pass──▶ flaky
        flaky ──fail──▶ suspect        (may still confirm)
        flaky ──pass──▶ flaky
        suspect/flaky ──(runs ≥ 2 + flake_cap)──▶ quarantined (parked)

    A soundness *violation* therefore requires two consecutive failures
    of the identical case on clean workers — an injected or
    environmental fault that killed one run cannot confirm a finding.
    A fail-then-pass case is *flaky*: retried up to ``flake_cap`` more
    times, then parked as ``quarantined`` without ever counting as a
    violation.
    """

    def __init__(self, flake_cap: int = 3) -> None:
        self.flake_cap = max(0, int(flake_cap))
        self.runs = 0
        self.failures = 0
        self.state = "fresh"

    @property
    def settled(self) -> bool:
        return self.state in ("pass", "violation", "quarantined")

    def observe(self, failed: bool) -> str:
        """Fold one run outcome; returns the new state."""
        if self.settled:
            raise RuntimeError(f"observe() on settled state {self.state!r}")
        self.runs += 1
        if failed:
            self.failures += 1
        if self.state == "fresh":
            self.state = "suspect" if failed else "pass"
        elif self.state == "suspect":
            self.state = "violation" if failed else "flaky"
        elif self.state == "flaky":
            if failed:
                self.state = "suspect"
        if self.state in ("suspect", "flaky") \
                and self.runs >= 2 + self.flake_cap:
            self.state = "quarantined"
        return self.state


# ----------------------------------------------------------------------
# Configuration and the unit stream
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignConfig:
    seed: int = 0
    count: int = 1000
    families: Tuple[str, ...] = FAMILIES
    #: Chaos sweep: each rate adds one fault-injection unit per index.
    chaos_rates: Tuple[float, ...] = ()
    #: Extra runs granted to a flaky case before it is parked.
    flake_cap: int = 3
    #: Retries after worker loss / environmental faults per run.
    retry_cap: int = 2
    #: Base of the exponential retry backoff (seconds).
    backoff: float = 0.05
    #: Cooperative per-case deadline (seconds).
    case_timeout: Optional[float] = None
    #: Per-SMT-question timeout forwarded to the engine.
    question_timeout: Optional[float] = None
    jobs: int = 2
    #: Hard per-request cap; a worker that blows past it is SIGKILLed.
    kill_timeout: float = 60.0
    #: ddmin-minimize confirmed violations.
    shrink: bool = True
    #: Commit minimized violations here (None = don't).
    corpus_dir: Optional[str] = None
    #: Worker environment overrides (tests inject REPRO_WORKER_FAULT).
    extra_env: Optional[Dict[str, str]] = None


@dataclass(frozen=True)
class CampaignUnit:
    """One schedulable case: a spec at one chaos rate (0 = clean)."""

    case_id: str
    index: int
    rate: float
    spec: CaseSpec


def campaign_fingerprint(config: CampaignConfig) -> str:
    """Identity of the unit stream — resume refuses a journal whose
    fingerprint disagrees. Resource knobs (jobs, timeouts, backoff) are
    deliberately excluded: resuming on a bigger machine is fine."""
    doc = {"schema": CAMPAIGN_SCHEMA, "seed": config.seed,
           "count": config.count, "families": list(config.families),
           "chaos_rates": list(config.chaos_rates)}
    return hashlib.sha256(_canonical(doc).encode("utf-8")).hexdigest()


def enumerate_units(config: CampaignConfig,
                    generate: Callable[..., CaseSpec] = generate_case,
                    ) -> List[CampaignUnit]:
    """The deterministic unit stream: for each index, the clean
    differential case then one chaos case per sweep rate."""
    units: List[CampaignUnit] = []
    for index in range(config.count):
        spec = generate(index, seed=config.seed,
                        families=tuple(config.families))
        units.append(CampaignUnit(f"{index}", index, 0.0, spec))
        for rate in config.chaos_rates:
            units.append(CampaignUnit(f"{index}@{rate:g}", index,
                                      float(rate), spec))
    return units


# ----------------------------------------------------------------------
# Executing one unit (worker side — also the replay/minimize path)
# ----------------------------------------------------------------------
def run_unit_inline(spec: CaseSpec, *, index: int, rate: float, seed: int,
                    deadline=None,
                    case_timeout: Optional[float] = None,
                    question_timeout: Optional[float] = None) -> dict:
    """Run one campaign unit in this process; returns the wire shape
    ``{"violations", "classifications", "primal_racy", "truncated"}``.

    Deterministic for ``(spec, index, rate, seed)``: the clean case
    seeds every oracle from *index* exactly like ``repro audit``, and
    the chaos case builds a **fresh** fault schedule from ``(rate,
    seed)`` on every call — a ddmin shrink probe or a corpus replay
    sees the identical faults the original run saw.
    """
    deadline = per_question(deadline, case_timeout)
    if rate <= 0.0:
        result = run_case(index, spec, deadline=deadline,
                          question_timeout=question_timeout)
        return {"violations": [{"kind": v.kind, "detail": v.detail}
                               for v in result.violations],
                "classifications": dict(result.classifications),
                "primal_racy": result.primal_racy,
                "truncated": result.truncated}
    if spec.expect_primal_race:
        # FormAD's premise does not hold for deliberately racy primals;
        # there is no baseline to degrade from, so chaos proves nothing.
        return {"violations": [],
                "classifications": {a: "skipped-racy"
                                    for a in spec.dependents()},
                "primal_racy": True, "truncated": False}
    proc = build_procedure(spec, name=f"campaign_{spec.family}_{index}")
    outcome = chaos_check(proc, spec.independents(), spec.dependents(),
                          _split_rate(rate, seed),
                          label=f"case-{index}", case=index,
                          family=spec.family, deadline=deadline)
    return {"violations": [{"kind": v.kind, "detail": v.detail}
                           for v in outcome.violations],
            "classifications": {},
            "primal_racy": False, "truncated": False,
            "injected": outcome.injected, "degraded": outcome.degraded}


def execute_unit(request: dict) -> dict:
    """The worker-side entry point of one ``audit_case`` request."""
    from ..resilience.deadline import Deadline

    deadline = None
    if request.get("deadline_remaining") is not None:
        deadline = Deadline(float(request["deadline_remaining"]))
    payload = run_unit_inline(
        spec_from_json(request["spec"]),
        index=int(request["index"]), rate=float(request["rate"]),
        seed=int(request["seed"]), deadline=deadline,
        question_timeout=request.get("question_timeout"))
    payload["case"] = str(request.get("case", ""))
    return payload


def _unit_reproducer(unit: CampaignUnit, config: CampaignConfig,
                     kinds: frozenset) -> Callable[[CaseSpec], bool]:
    """The ddmin predicate: does *candidate* still exhibit one of the
    confirmed violation kinds under the unit's exact conditions?"""
    def reproduces(candidate: CaseSpec) -> bool:
        try:
            trial = run_unit_inline(candidate, index=unit.index,
                                    rate=unit.rate, seed=config.seed,
                                    case_timeout=config.case_timeout)
        except Exception:
            return False   # a crash on a shrunk spec ≠ the original bug
        return bool(kinds & {v["kind"] for v in trial["violations"]})
    return reproduces


# ----------------------------------------------------------------------
# The report
# ----------------------------------------------------------------------
@dataclass
class CampaignReport:
    config: CampaignConfig
    #: Settled entries in unit-enumeration order (plain dicts: they are
    #: exactly the journal records, so a resumed report is bytewise the
    #: uninterrupted one).
    entries: List[dict] = field(default_factory=list)
    #: Units left unsettled (campaign deadline expired).
    truncated: int = 0
    #: Entries replayed from the resume journal.
    resumed: int = 0

    @property
    def violations(self) -> List[dict]:
        return [e for e in self.entries if e["status"] == "violation"]

    @property
    def ok(self) -> bool:
        return not self.violations

    def statuses(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self.entries:
            counts[entry["status"]] = counts.get(entry["status"], 0) + 1
        return counts

    def to_json(self) -> dict:
        # Deliberately timer-free: a resumed campaign must produce a
        # report *identical* to an uninterrupted run's (wall-clock goes
        # to stderr and the trace stream instead).
        return {"schema": CAMPAIGN_SCHEMA, "seed": self.config.seed,
                "count": self.config.count,
                "families": list(self.config.families),
                "chaos_rates": list(self.config.chaos_rates),
                "units": len(self.entries) + self.truncated,
                "ok": self.ok, "truncated": self.truncated,
                "statuses": self.statuses(),
                "violations": self.violations,
                "cases": self.entries}


def format_campaign(report: CampaignReport) -> str:
    statuses = report.statuses()
    lines = [f"soundness campaign: seed={report.config.seed} "
             f"count={report.config.count} "
             f"chaos_rates={list(report.config.chaos_rates)} "
             f"units={len(report.entries) + report.truncated}"]
    for status in STATUSES:
        if statuses.get(status):
            lines.append(f"  {status:>12}: {statuses[status]}")
    if report.resumed:
        lines.append(f"  resumed: {report.resumed} settled case(s) "
                     f"replayed from the journal")
    if report.truncated:
        lines.append(f"  truncated: deadline expired, {report.truncated} "
                     f"unit(s) left for --resume")
    committed = [e for e in report.entries if e.get("corpus")]
    if committed:
        lines.append(f"  corpus: {len(committed)} minimized repro(s) "
                     f"committed")
    if report.ok:
        lines.append("OK: no confirmed soundness violations")
    else:
        lines.append(f"FAIL: {len(report.violations)} confirmed "
                     f"violation(s)")
        for entry in report.violations[:20]:
            kinds = ",".join(v["kind"] for v in entry["violations"])
            lines.append(f"  [{kinds}] case {entry['case']} "
                         f"({entry['family']})")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The orchestrator
# ----------------------------------------------------------------------
def _load_resume(journal_path: str, fingerprint: str) -> Dict[str, dict]:
    """Settled entries of a prior run, keyed by case id. Raises
    :class:`JournalError` when the journal belongs to a different
    campaign — silently mixing unit streams would corrupt the report."""
    meta, records, _dropped = read_journal(journal_path)
    if meta is None:
        return {}
    if meta.get("schema") != CAMPAIGN_SCHEMA:
        raise JournalError(f"not a {CAMPAIGN_SCHEMA} journal: "
                           f"schema={meta.get('schema')!r}")
    if meta.get("fingerprint") != fingerprint:
        raise JournalError(
            "campaign fingerprint mismatch: the journal was written by a "
            "campaign with a different seed/count/families/chaos sweep")
    settled: Dict[str, dict] = {}
    for record in records:
        if record.get("kind") == "case_done":
            entry = {k: v for k, v in record.items() if k != "kind"}
            settled[str(entry["case"])] = entry
    return settled


def run_campaign(config: CampaignConfig, *,
                 tracer: NullTracer = NULL_TRACER,
                 journal_path: Optional[str] = None,
                 resume: bool = False,
                 deadline=None,
                 generate: Callable[..., CaseSpec] = generate_case,
                 progress: Optional[Callable[[dict], None]] = None,
                 ) -> CampaignReport:
    """Run (or resume) one soundness campaign. See the module docstring
    for the contract; the short version: this function finishes, and
    everything it settled survives kill -9."""
    units = enumerate_units(config, generate)
    fingerprint = campaign_fingerprint(config)
    report = CampaignReport(config)

    settled: Dict[str, dict] = {}
    if resume and journal_path and os.path.exists(journal_path):
        settled = _load_resume(journal_path, fingerprint)
        # Entries for units outside the stream cannot happen (the
        # fingerprint pins the stream), so every settled id is valid.
        report.resumed = sum(1 for u in units if u.case_id in settled)
        if report.resumed:
            tracer.counter("campaign.resumed", report.resumed)

    journal = None
    if journal_path:
        journal = JournalWriter(
            journal_path,
            meta={"schema": CAMPAIGN_SCHEMA, "fingerprint": fingerprint,
                  "seed": config.seed, "count": config.count},
            append=resume)

    pending: "queue.Queue[CampaignUnit]" = queue.Queue()
    for unit in units:
        if unit.case_id not in settled:
            pending.put(unit)
    open_units = pending.qsize()

    lock = threading.Lock()
    started = time.monotonic()
    done_fresh = [0]

    def settle(entry: dict) -> None:
        """The single choke point: journal first, then publish."""
        with lock:
            if journal is not None:
                journal.record("case_done", **entry)
            settled[entry["case"]] = entry
            done_fresh[0] += 1
            tracer.counter("campaign.cases")
            tracer.counter(f"campaign.{entry['status']}")
            if entry["status"] == "violation":
                tracer.counter("campaign.violations",
                               len(entry["violations"]) or 1)
            elapsed = time.monotonic() - started
            if elapsed > 0:
                tracer.gauge("campaign.cases_per_sec",
                             done_fresh[0] / elapsed)
            if progress is not None:
                progress(entry)

    if open_units:
        budget = config.kill_timeout
        if config.case_timeout is not None:
            budget = max(budget, config.case_timeout + _DEADLINE_GRACE)
        shard_config = ShardConfig(jobs=config.jobs, kill_timeout=budget,
                                   extra_env=config.extra_env)
        pool = WorkerPool(shard_config,
                          max(1, min(config.jobs, open_units)))
        pool.begin_run({"op": "init", "mode": "audit"})
        n = pool.size
        threads = [threading.Thread(
            target=_feed, name=f"campaign-{k}",
            args=(k, pool, pending, config, budget, tracer, settle,
                  deadline))
            for k in range(n)]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            pool.shutdown()

    for unit in units:
        entry = settled.get(unit.case_id)
        if entry is None:
            report.truncated += 1
        else:
            report.entries.append(entry)
    if journal is not None:
        journal.close()
    return report


def _feed(k: int, pool: WorkerPool, pending: "queue.Queue[CampaignUnit]",
          config: CampaignConfig, budget: float, tracer: NullTracer,
          settle: Callable[[dict], None], deadline) -> None:
    """One feeder thread: pull units, run each to a settled entry on
    this feeder's pool slot. Worker loss degrades the *case* (bounded
    retry, then a contained ``unknown``), never the campaign."""
    while True:
        try:
            unit = pending.get_nowait()
        except queue.Empty:
            return
        if deadline is not None and deadline.expired():
            # Leave the unit unsettled: --resume picks it up. Draining
            # the queue here lets every sibling feeder exit promptly.
            continue
        settle(_run_unit(k, pool, unit, config, budget, tracer))


def _run_unit(k: int, pool: WorkerPool, unit: CampaignUnit,
              config: CampaignConfig, budget: float,
              tracer: NullTracer) -> dict:
    """Drive one unit through quarantine: dispatch, observe, retry."""
    quarantine = QuarantineState(config.flake_cap)
    retries = 0
    detail = ""
    flaked = False
    request = {"op": "audit_case", "case": unit.case_id,
               "index": unit.index, "spec": unit.spec.to_json(),
               "rate": unit.rate, "seed": config.seed,
               "deadline_remaining": config.case_timeout,
               "question_timeout": config.question_timeout}
    reply = None
    while not quarantine.settled:
        try:
            client = pool.client(k, tracer=tracer)
            reply = client.request(request, timeout=budget)
        except WorkerGone as exc:
            # Environmental or injected fault — the case observed
            # nothing; retry with backoff on a fresh worker.
            pool.drop(k)
            tracer.counter("campaign.respawns")
            retries += 1
            if retries > config.retry_cap:
                return _entry(unit, "unknown", quarantine, retries,
                              detail=f"worker lost: {exc.detail}")
            tracer.counter("campaign.retries")
            time.sleep(config.backoff * (2 ** (retries - 1)))
            continue
        error = reply.get("error")
        if error is not None:
            # The worker survived but the harness machinery crashed
            # (run_case contains oracle crashes, so this is setup-level
            # breakage): same containment as worker loss.
            retries += 1
            if retries > config.retry_cap:
                return _entry(unit, "unknown", quarantine, retries,
                              detail=f"worker error: "
                                     f"{error.get('message', error)}")
            tracer.counter("campaign.retries")
            time.sleep(config.backoff * (2 ** (retries - 1)))
            continue
        if reply.get("truncated"):
            return _entry(unit, "unknown", quarantine, retries,
                          detail="case deadline expired", reply=reply)
        state = quarantine.observe(bool(reply["violations"]))
        if state == "flaky" and not flaked:
            flaked = True
            tracer.counter("campaign.flaky")
        if not quarantine.settled:
            # Clean retry: a *fresh* worker re-runs the identical case,
            # so a confirmation can never ride on poisoned state.
            pool.drop(k)
            tracer.counter("campaign.retries")
    status = quarantine.state
    entry = _entry(unit, status, quarantine, retries,
                   detail="flaky: failed then passed on clean retry"
                   if flaked and status == "quarantined" else detail,
                   reply=reply)
    if status == "violation":
        _minimize_violation(unit, config, entry, tracer)
    return entry


def _entry(unit: CampaignUnit, status: str, quarantine: QuarantineState,
           retries: int, *, detail: str = "",
           reply: Optional[dict] = None) -> dict:
    return {"case": unit.case_id, "index": unit.index, "rate": unit.rate,
            "family": unit.spec.family, "status": status,
            "runs": quarantine.runs, "failures": quarantine.failures,
            "retries": retries,
            "violations": list((reply or {}).get("violations", [])
                               if status == "violation" else []),
            "classifications": dict((reply or {})
                                    .get("classifications", {})),
            "detail": detail, "minimized": None, "corpus": None}


def _minimize_violation(unit: CampaignUnit, config: CampaignConfig,
                        entry: dict, tracer: NullTracer) -> None:
    """ddmin the confirmed violation and commit it to the corpus. Runs
    in the parent *before* the entry is journaled, so a resumed
    campaign never re-minimizes — the journal already has the result."""
    kinds = frozenset(v["kind"] for v in entry["violations"])
    small = unit.spec
    if config.shrink:
        small = minimize(unit.spec, _unit_reproducer(unit, config, kinds))
        entry["minimized"] = small.to_json()
    if config.corpus_dir:
        corpus_entry = CorpusEntry(
            case=unit.case_id, index=unit.index, rate=unit.rate,
            seed=config.seed, family=small.family,
            kinds=tuple(sorted(kinds)), spec=small)
        path, created = commit_entry(config.corpus_dir, corpus_entry)
        entry["corpus"] = os.path.basename(path)
        if created:
            tracer.counter("campaign.corpus_commits")

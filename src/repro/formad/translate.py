"""Translation of IR index expressions into SMT terms (paper §6).

Each scalar variable is rendered with its *instance number* (§5.2) —
``n_cell_entries_0``, ``i_0`` — exactly like the paper's LBM listing.
Private variables (and any scalar assigned inside the region, whose
per-iteration value differs between threads) receive a primed sibling
on the left-hand side of every pair (§5.3). Array reads inside index
expressions (``c(i)``, ``mss(1, ig, k12)``) become uninterpreted
function applications, provided the array is not written in the region
(a written index array has no stable function semantics and makes the
expression untranslatable — the conservative outcome).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from ..cfg.instances import InstanceNumbering
from ..ir.expr import (ArrayRef, BinOp, Const, Expr, Op, UnOp, Var)
from ..ir.stmt import Stmt
from ..smt.terms import TAdd, TApp, TConst, Term, TMul, TVar


class UntranslatableError(ValueError):
    """The expression falls outside the linear+indirection fragment."""


@dataclass
class IndexTranslator:
    """Translates index expressions of one parallel region."""

    instancer: InstanceNumbering
    primed_names: FrozenSet[str]
    written_arrays: FrozenSet[str]

    def scalar_term(self, name: str, stmt: Stmt, primed: bool) -> TVar:
        inst = self.instancer.instance_at(stmt, name)
        base = f"{name}_{inst}"
        if primed and name in self.primed_names:
            base += "'"
        return TVar(base)

    def translate(self, expr: Expr, stmt: Stmt, *, primed: bool) -> Term:
        """Translate one index expression as used at *stmt*.

        ``primed=True`` renders the "other iteration" copy: private
        variables get their sibling names.
        """
        if isinstance(expr, Const):
            if isinstance(expr.value, int) and not isinstance(expr.value, bool):
                return TConst(expr.value)
            raise UntranslatableError(f"non-integer constant {expr}")
        if isinstance(expr, Var):
            return self.scalar_term(expr.name, stmt, primed)
        if isinstance(expr, ArrayRef):
            if expr.name in self.written_arrays:
                raise UntranslatableError(
                    f"index array {expr.name!r} is written inside the region")
            args = tuple(self.translate(i, stmt, primed=primed)
                         for i in expr.indices)
            return TApp(expr.name, args)
        if isinstance(expr, UnOp) and expr.op is Op.NEG:
            return _negate(self.translate(expr.operand, stmt, primed=primed))
        if isinstance(expr, BinOp):
            left = expr.left
            right = expr.right
            if expr.op is Op.ADD:
                return TAdd((self.translate(left, stmt, primed=primed),
                             self.translate(right, stmt, primed=primed)))
            if expr.op is Op.SUB:
                return TAdd((self.translate(left, stmt, primed=primed),
                             _negate(self.translate(right, stmt,
                                                    primed=primed))))
            if expr.op is Op.MUL:
                const = _const_int(left)
                if const is not None:
                    return TMul(const, self.translate(right, stmt, primed=primed))
                const = _const_int(right)
                if const is not None:
                    return TMul(const, self.translate(left, stmt, primed=primed))
                raise UntranslatableError(f"nonlinear product {expr}")
            raise UntranslatableError(f"operator {expr.op} in index expression")
        raise UntranslatableError(f"cannot translate {expr}")

    def translate_tuple(self, indices: Tuple[Expr, ...], stmt: Stmt,
                        *, primed: bool) -> Tuple[Term, ...]:
        return tuple(self.translate(e, stmt, primed=primed) for e in indices)


def _negate(term: Term) -> Term:
    if isinstance(term, TConst):
        return TConst(-term.value)
    if isinstance(term, TMul):
        return TMul(-term.coeff, term.term)
    return TMul(-1, term)


def _const_int(expr: Expr) -> Optional[int]:
    neg = False
    while isinstance(expr, UnOp) and expr.op is Op.NEG:
        neg = not neg
        expr = expr.operand
    if isinstance(expr, Const) and isinstance(expr.value, int) \
            and not isinstance(expr.value, bool):
        return -expr.value if neg else expr.value
    return None


def render_term(term: Term) -> str:
    """Paper-style rendering: ``(w_0 + n_cell_entries_0*-1 + i_0)``."""
    if isinstance(term, TConst):
        return str(term.value)
    if isinstance(term, TVar):
        return term.name
    if isinstance(term, TMul):
        return f"{render_term(term.term)}*{term.coeff}"
    if isinstance(term, TAdd):
        parts: list[str] = []
        stack = list(reversed(term.terms))
        while stack:
            t = stack.pop()
            if isinstance(t, TAdd):  # flatten for the paper's layout
                stack.extend(reversed(t.terms))
            else:
                parts.append(render_term(t))
        return "(" + " + ".join(parts) + ")"
    if isinstance(term, TApp):
        return f"{term.func}({', '.join(render_term(a) for a in term.args)})"
    raise TypeError(f"not a term: {term!r}")  # pragma: no cover

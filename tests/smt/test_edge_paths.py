"""SMT solver edge paths: UF congruence chains, budget-driven UNKNOWNs,
clausification blow-up guards, and solver statistics."""

import pytest

from repro.smt import (And, Int, Not, Or, Result, SAT, UNKNOWN, UNSAT,
                       Solver, TApp, ackermannize, ClausifyBudgetError,
                       clausify)

i, j, k = Int("i"), Int("j"), Int("k")


class TestCongruenceChains:
    def test_nested_applications_congruent(self):
        # i == j must force f(f(i)) == f(f(j)).
        f_i = TApp("f", (i,))
        f_j = TApp("f", (j,))
        ff_i = TApp("f", (f_i,))
        ff_j = TApp("f", (f_j,))
        s = Solver()
        s.add(i.eq(j))
        s.add(ff_i.ne(ff_j))
        assert s.check() is UNSAT

    def test_chain_breaks_without_equality(self):
        f_i = TApp("f", (i,))
        f_j = TApp("f", (j,))
        s = Solver()
        s.add(f_i.ne(f_j))  # fine: i may differ from j
        assert s.check() is SAT

    def test_multiarg_congruence(self):
        g_ij = TApp("g", (i, j))
        g_kj = TApp("g", (k, j))
        s = Solver()
        s.add(i.eq(k), g_ij.ne(g_kj))
        assert s.check() is UNSAT

    def test_transitive_value_equality(self):
        # f(i) = j, f(k) = j is satisfiable even with i != k (not
        # injective), but then asserting "f values differ" contradicts.
        f_i = TApp("f", (i,))
        f_k = TApp("f", (k,))
        s = Solver()
        s.add(f_i.eq(j), f_k.eq(j), i.ne(k))
        assert s.check() is SAT
        s.add(f_i.ne(f_k))
        assert s.check() is UNSAT


class TestBudgets:
    def test_theory_check_budget_unknown(self):
        s = Solver(max_theory_checks=0)
        s.add(Or(i.eq(0), i.eq(1)), Or(j.eq(0), j.eq(1)))
        assert s.check() is UNKNOWN

    def test_clausify_budget_unknown(self):
        # A CNF blow-up: OR of ANDs distributes to 2^n clauses.
        parts = [And(Int(f"a{n}").eq(0), Int(f"b{n}").eq(0))
                 for n in range(18)]
        s = Solver(max_clauses=100)
        s.add(Or(*parts))
        assert s.check() is UNKNOWN

    def test_clausify_raises_directly(self):
        parts = [And(Int(f"a{n}").eq(0), Int(f"b{n}").eq(0))
                 for n in range(18)]
        with pytest.raises(ClausifyBudgetError):
            clausify(Or(*parts), max_clauses=100)

    def test_unknown_never_misreported(self):
        # With a tiny budget the solver may say UNKNOWN but must not
        # claim SAT/UNSAT wrongly on this satisfiable instance.
        s = Solver(max_theory_checks=1)
        s.add(Or(i.eq(5), i.eq(7)))
        result = s.check()
        assert result in (SAT, UNKNOWN)


class TestStatistics:
    def test_stats_track_outcomes(self):
        s = Solver()
        s.add(i.ge(0))
        s.check()                 # SAT
        s.push()
        s.add(i.le(-1))
        s.check()                 # UNSAT
        s.pop()
        assert s.stats.checks == 2
        assert s.stats.sat == 1 and s.stats.unsat == 1
        assert s.stats.time_seconds >= 0.0

    def test_num_assertions_tracks_stack(self):
        s = Solver()
        s.add(i.ge(0))
        s.push()
        s.add(i.le(5), j.ge(0))
        assert s.num_assertions == 3
        s.pop()
        assert s.num_assertions == 1


class TestWarmStart:
    def test_incremental_adds_stay_correct(self):
        # The buildModel pattern: grow the assertion set one
        # disequality at a time, re-checking each time (exercises the
        # warm-start path).
        s = Solver()
        names = [Int(f"v{n}") for n in range(8)]
        s.add(names[0].ge(0))
        assert s.check() is SAT
        for a in range(8):
            for b in range(a + 1, 8):
                s.add(names[a].ne(names[b]))
                assert s.check() is SAT
        # Now force a collision: UNSAT despite the warm model.
        s.add(names[0].eq(names[1]))
        assert s.check() is UNSAT

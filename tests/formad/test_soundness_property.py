"""The paper's core soundness claim as a property test.

For randomly generated parallel loops with affine and indirection-based
index patterns:

    IF the primal executes race-free on concrete data
    AND FormAD declares an adjoint array safe (shared),
    THEN the *unguarded* adjoint must also execute race-free.

Counterexamples here would be genuine soundness bugs in the knowledge
extraction, the translation, or the SMT solver. (FormAD declaring an
array *unsafe* is always allowed — the analysis is approximate — so the
property is one-sided, exactly like the paper's guarantee.)
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import differentiate, parse_procedure
from repro.formad import PrimalRaceError
from repro.runtime import detect_races

N = 24          # parallel iterations
XN = 200        # array extents


@st.composite
def index_patterns(draw):
    """A (write index, read index) pair of Fortran index expressions in
    the loop counter i and an indirection table c."""
    wkind = draw(st.sampled_from(["affine", "indirect"]))
    rkind = draw(st.sampled_from(["affine", "indirect", "shifted_indirect"]))
    wstride = draw(st.sampled_from([1, 2, 3]))
    woff = draw(st.integers(0, 4))
    roff = draw(st.integers(0, 4))
    write = f"{wstride} * i + {woff}" if wkind == "affine" else f"c(i) + {woff}"
    if rkind == "affine":
        rstride = draw(st.sampled_from([1, 2, 3]))
        read = f"{rstride} * i + {roff}"
    elif rkind == "indirect":
        read = f"c(i) + {roff}"
    else:
        read = f"c(i + 1) + {roff}"
    return write, read


def _build(write: str, read: str):
    return parse_procedure(f"""
subroutine randloop(x, y, c, n)
  integer, intent(in) :: n
  real, intent(in) :: x({XN})
  real, intent(inout) :: y({XN})
  integer, intent(in) :: c({XN})
  !$omp parallel do
  do i = 1, n
    y({write}) = y({write}) + 2.5 * x({read})
  end do
end subroutine randloop
""")


@st.composite
def tables(draw):
    """An indirection table; sometimes injective, sometimes colliding."""
    injective = draw(st.booleans())
    rng = np.random.default_rng(draw(st.integers(0, 2 ** 31 - 1)))
    if injective:
        # Spread so that c(i)+offsets stay distinct across iterations.
        vals = rng.permutation(np.arange(1, N + 2) * 6)
    else:
        vals = rng.integers(1, 40, N + 1)
    c = np.ones(XN, dtype=np.int64)
    c[:N + 1] = vals
    return c


class TestSoundness:
    @given(index_patterns(), tables())
    @settings(max_examples=60, deadline=None)
    def test_safe_verdict_implies_race_free_adjoint(self, pattern, c):
        write, read = pattern
        proc = _build(write, read)
        rng = np.random.default_rng(0)
        bindings = {"x": rng.standard_normal(XN), "y": np.zeros(XN),
                    "c": c, "n": N}
        # Premise 1: the primal must be race-free on this data.
        assume(detect_races(proc, bindings).race_free)
        # Run FormAD; a PrimalRaceError is a legitimate (conservative)
        # outcome for collision-prone patterns the engine can refute.
        try:
            adj = differentiate(proc, ["x"], ["y"], strategy="formad")
            adj_shared = differentiate(proc, ["x"], ["y"], strategy="shared")
        except PrimalRaceError:
            assume(False)
            return
        from repro.formad import FormADGuardPolicy
        policy = FormADGuardPolicy(proc, ["x"], ["y"])
        (analysis,) = policy.analyses()
        adj_bindings = dict(bindings)
        adj_bindings[adj.adjoint_name("x")] = np.zeros(XN)
        adj_bindings[adj.adjoint_name("y")] = np.ones(XN)
        if analysis.verdicts["x"].safe and analysis.verdicts["y"].safe:
            # The FormAD adjoint then contains no safeguards; it must be
            # race-free on every input consistent with the premise.
            report = detect_races(adj.procedure, adj_bindings)
            assert report.race_free, (
                f"SOUNDNESS VIOLATION for write={write} read={read}: "
                f"{report}")
        # The guarded adjoint must be race-free regardless of verdicts.
        report = detect_races(adj.procedure, adj_bindings)
        assert report.race_free

    @given(tables())
    @settings(max_examples=20, deadline=None)
    def test_atomic_fallback_always_race_free(self, c):
        # Overlapping reads: x(i) and x(i+1). FormAD must reject xb, and
        # the fallback-guarded adjoint must never race.
        proc = _build("i", "i + 1")
        rng = np.random.default_rng(1)
        bindings = {"x": rng.standard_normal(XN), "y": np.zeros(XN),
                    "c": c, "n": N}
        adj = differentiate(proc, ["x"], ["y"], strategy="formad")
        adj_bindings = dict(bindings)
        adj_bindings[adj.adjoint_name("x")] = np.zeros(XN)
        adj_bindings[adj.adjoint_name("y")] = np.ones(XN)
        assert detect_races(adj.procedure, adj_bindings).race_free

"""Shared helpers: dot-product (adjoint consistency) test via central
finite differences.

For F mapping the initial values of the active variables to their final
values, reverse mode must satisfy  ⟨w, J v⟩ = ⟨J^T w, v⟩  for random
directions v (over the independents) and seeds w (over the dependents).
The left side is measured with central finite differences on the primal
interpreter; the right side runs the generated adjoint procedure.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.ad import ReverseResult
from repro.ir import Procedure
from repro.runtime import Memory, run_procedure


def _as_float_map(memory: Memory, names: Sequence[str]) -> Dict[str, np.ndarray]:
    out = {}
    for name in names:
        if name in memory.arrays:
            out[name] = memory.array(name).data.astype(float).copy()
        else:
            out[name] = np.array(float(memory.get_scalar(name)))
    return out


def _perturbed(bindings: Mapping[str, object], directions: Mapping[str, np.ndarray],
               eps: float) -> Dict[str, object]:
    out = dict(bindings)
    for name, v in directions.items():
        base = np.asarray(out[name], dtype=float)
        out[name] = base + eps * v
    return out


def dot_product_test(
    proc: Procedure,
    adj: ReverseResult,
    bindings: Mapping[str, object],
    independents: Sequence[str],
    dependents: Sequence[str],
    *,
    extents: Mapping[str, Sequence[int]] = (),
    eps: float = 1e-6,
    rtol: float = 1e-4,
    seed: int = 0,
) -> None:
    """Assert ⟨w, Jv⟩ ≈ ⟨J^T w, v⟩; raises AssertionError otherwise."""
    rng = np.random.default_rng(seed)
    directions = {}
    for name in independents:
        base = np.asarray(bindings[name], dtype=float)
        directions[name] = rng.standard_normal(base.shape if base.shape else ())
    seeds = {}
    for name in dependents:
        base = np.asarray(bindings[name], dtype=float)
        seeds[name] = rng.standard_normal(base.shape if base.shape else ())

    # Left side: central finite differences.
    plus = run_procedure(proc, _perturbed(bindings, directions, eps), extents)
    minus = run_procedure(proc, _perturbed(bindings, directions, -eps), extents)
    y_plus = _as_float_map(plus, dependents)
    y_minus = _as_float_map(minus, dependents)
    lhs = 0.0
    for name in dependents:
        dy = (y_plus[name] - y_minus[name]) / (2.0 * eps)
        lhs += float(np.sum(seeds[name] * dy))

    # Right side: one adjoint run.
    adj_bindings = dict(bindings)
    for name in set(independents) | set(dependents):
        bname = adj.adjoint_name(name)
        base = np.asarray(bindings[name], dtype=float)
        seed_val = seeds.get(name, np.zeros(base.shape if base.shape else ()))
        if base.shape == ():
            adj_bindings[bname] = float(seed_val)
        else:
            adj_bindings[bname] = np.array(seed_val, dtype=float)
    adj_mem = run_procedure(adj.procedure, adj_bindings, extents)
    grads = _as_float_map(adj_mem, [adj.adjoint_name(n) for n in independents])
    rhs = 0.0
    for name in independents:
        rhs += float(np.sum(directions[name] * grads[adj.adjoint_name(name)]))

    denom = max(abs(lhs), abs(rhs), 1e-12)
    assert abs(lhs - rhs) / denom < rtol, \
        f"dot-product test failed: FD={lhs!r} vs adjoint={rhs!r}"

"""The replayable regression corpus of minimized soundness failures.

Every violation a campaign (:mod:`repro.audit.campaign`) confirms is
ddmin-minimized and committed here as one small JSON file — the
*complete* recipe for reproducing the failure: the minimized
:class:`~repro.audit.generator.CaseSpec`, the chaos rate and seed (for
fault-injection failures), and the violation kinds observed. Files are
**content-addressed** (the name is a truncated SHA-256 of the
canonical entry JSON), so committing the same failure twice is a
no-op, renames cannot desynchronize name from content, and two
campaigns on two machines produce byte-identical corpus entries.

``repro corpus replay`` re-runs every entry as an ordinary test gate:
an entry that still reproduces its violation exits non-zero (the bug
is still live); once the engine is fixed, the entry passes and stays
in the corpus forever as a regression test. An empty corpus replays
to success, so CI can run the gate unconditionally.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..resilience.journal import _canonical
from .generator import CaseSpec, spec_from_json

#: Corpus entry schema identifier (bump on incompatible change).
CORPUS_SCHEMA = "repro-corpus/1"


@dataclass(frozen=True)
class CorpusEntry:
    """One minimized, reproducible soundness failure."""

    case: str                 # campaign case id, e.g. "17" or "17@0.5"
    index: int                # generator case index (oracle seeds)
    rate: float               # chaos rate (0.0 = clean differential case)
    seed: int                 # campaign seed (chaos fault schedule)
    family: str
    kinds: Tuple[str, ...]    # violation kinds the case exhibited
    spec: CaseSpec            # the minimized spec

    def to_json(self) -> dict:
        return {"schema": CORPUS_SCHEMA, "case": self.case,
                "index": self.index, "rate": self.rate, "seed": self.seed,
                "family": self.family, "kinds": sorted(self.kinds),
                "spec": self.spec.to_json()}


def entry_from_json(doc: dict) -> CorpusEntry:
    if doc.get("schema") != CORPUS_SCHEMA:
        raise ValueError(f"not a {CORPUS_SCHEMA} entry: "
                         f"schema={doc.get('schema')!r}")
    return CorpusEntry(case=str(doc["case"]), index=int(doc["index"]),
                       rate=float(doc["rate"]), seed=int(doc["seed"]),
                       family=str(doc["family"]),
                       kinds=tuple(str(k) for k in doc["kinds"]),
                       spec=spec_from_json(doc["spec"]))


def entry_name(entry: CorpusEntry) -> str:
    """Content address: the file name is a pure function of the entry."""
    digest = hashlib.sha256(
        _canonical(entry.to_json()).encode("utf-8")).hexdigest()
    return f"{digest[:16]}.json"


def commit_entry(corpus_dir: str, entry: CorpusEntry) -> Tuple[str, bool]:
    """Write *entry* into *corpus_dir*; returns ``(path, created)``.

    Idempotent (the address is the content) and crash-safe (write a
    temp file in the same directory, then :func:`os.replace`): a kill
    mid-commit leaves either no entry or a complete one, never a
    half-written JSON the replay gate would choke on.
    """
    os.makedirs(corpus_dir, exist_ok=True)
    name = entry_name(entry)
    path = os.path.join(corpus_dir, name)
    if os.path.exists(path):
        return path, False
    payload = json.dumps(entry.to_json(), indent=2, sort_keys=True) + "\n"
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path, True


def load_corpus(corpus_dir: str) -> List[Tuple[str, CorpusEntry]]:
    """Every ``*.json`` entry of *corpus_dir*, sorted by file name
    (deterministic replay order). A missing directory is an empty
    corpus; a malformed entry raises — a corrupt regression corpus
    must fail the gate loudly, not shrink it silently."""
    if not os.path.isdir(corpus_dir):
        return []
    out: List[Tuple[str, CorpusEntry]] = []
    for name in sorted(os.listdir(corpus_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(corpus_dir, name)
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        out.append((path, entry_from_json(doc)))
    return out


@dataclass
class ReplayResult:
    path: str
    entry: CorpusEntry
    #: Violation kinds the replay observed (possibly beyond the
    #: recorded ones — the engine got worse in a new way).
    found: Tuple[str, ...]

    @property
    def reproduced(self) -> bool:
        return bool(set(self.entry.kinds) & set(self.found))


def replay_entry(entry: CorpusEntry, *,
                 case_timeout: Optional[float] = None) -> Tuple[str, ...]:
    """Re-run one corpus entry; returns the violation kinds observed.

    Clean entries (rate 0) re-run the full differential oracle stack;
    chaos entries re-run the fault-injection check with the recorded
    rate and seed — both deterministic, so replay either reproduces
    the recorded kinds or proves the bug fixed.
    """
    # Imported lazily: campaign imports this module for commits.
    from .campaign import run_unit_inline
    result = run_unit_inline(entry.spec, index=entry.index,
                             rate=entry.rate, seed=entry.seed,
                             case_timeout=case_timeout)
    return tuple(sorted({v["kind"] for v in result["violations"]}))


def replay_corpus(corpus_dir: str, *,
                  case_timeout: Optional[float] = None,
                  progress: Optional[Callable[[ReplayResult], None]] = None,
                  ) -> List[ReplayResult]:
    """Replay every entry of *corpus_dir* (the ``repro corpus replay``
    gate). The caller decides the exit status: any
    :attr:`ReplayResult.reproduced` entry means a recorded bug is
    still live."""
    results: List[ReplayResult] = []
    for path, entry in load_corpus(corpus_dir):
        found = replay_entry(entry, case_timeout=case_timeout)
        result = ReplayResult(path, entry, found)
        results.append(result)
        if progress is not None:
            progress(result)
    return results


def format_replay(results: List[ReplayResult]) -> str:
    lines = [f"corpus replay: {len(results)} entr"
             f"{'y' if len(results) == 1 else 'ies'}"]
    live = [r for r in results if r.reproduced]
    for r in results:
        status = "REPRODUCED" if r.reproduced else "fixed"
        lines.append(f"  [{status:>10}] {os.path.basename(r.path)} "
                     f"case {r.entry.case} ({r.entry.family}): "
                     f"recorded {','.join(r.entry.kinds)}"
                     + (f" found {','.join(r.found)}" if r.found else ""))
    if live:
        lines.append(f"FAIL: {len(live)} recorded bug(s) still reproduce")
    else:
        lines.append("OK: no recorded bug reproduces (corpus is all "
                     "regression-fixed)" if results else
                     "OK: empty corpus")
    return "\n".join(lines)

"""Worker isolation: identity with inline, fault containment, and the
kill -9 + --resume smoke test over the CLI.

The fault-independence contract: a crashed, hung, or killed worker
degrades exactly its own loop (safeguards everywhere, planned question
counts preserved), and a SIGKILLed *run* resumes from the journal to
reproduce the uninterrupted verdicts and counts.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.analysis.activity import ActivityAnalysis
from repro.formad import FormADEngine
from repro.ir import parse_program
from repro.resilience import (IsolationConfig, ResumeState, analyze_isolated,
                              read_journal)

#: Both loops are all-safe (each adjoint hits only its own slot), so
#: the honest analysis never breaks early on a SAT answer and degraded
#: runs must reproduce the exact same exploitation-question counts.
SAFE_TWO_LOOPS = """
subroutine two(x, y, z, n)
  real, intent(in) :: x(1000)
  real, intent(out) :: y(1000)
  real, intent(out) :: z(1000)
  integer, intent(in) :: n
  !$omp parallel do
  do i = 1, n
    y(i) = x(i) * 2.0
  end do
  !$omp parallel do
  do j = 1, n
    z(j) = x(j) + 1.0
  end do
end subroutine two
"""

#: Counters that must survive the worker round-trip bit-for-bit
#: (timers vary with the wall clock and are excluded).
COUNTERS = ("consistency_checks", "exploitation_checks", "memo_hits",
            "model_size", "unique_exprs", "skipped_pairs", "solver_sat",
            "solver_unsat", "solver_unknown")


def _engine(proc):
    activity = ActivityAnalysis(proc, ["x"], ["y", "z"])
    return FormADEngine(proc, activity)


def _isolated(proc, **config_kwargs):
    engine = _engine(proc)
    return analyze_isolated(engine, SAFE_TWO_LOOPS, "two", ["x"],
                            ["y", "z"],
                            config=IsolationConfig(**config_kwargs))


class TestIsolationIdentity:
    def test_isolate_matches_inline(self):
        proc = parse_program(SAFE_TWO_LOOPS)["two"]
        inline = _engine(proc).analyze_all()
        isolated, outcomes = _isolated(proc)

        assert [o.status for o in outcomes] == ["ok", "ok"]
        assert len(isolated) == len(inline) == 2
        for worker, local in zip(isolated, inline):
            assert not worker.degraded
            assert {n: v.safe for n, v in worker.verdicts.items()} \
                == {n: v.safe for n, v in local.verdicts.items()}
            assert worker.safe_write_expressions \
                == local.safe_write_expressions
            for name in COUNTERS:
                assert getattr(worker.stats, name) \
                    == getattr(local.stats, name), name


class TestFaultContainment:
    def test_worker_crash_degrades_only_that_loop(self):
        proc = parse_program(SAFE_TWO_LOOPS)["two"]
        inline = _engine(proc).analyze_all()
        isolated, outcomes = _isolated(
            proc, extra_env={"REPRO_WORKER_FAULT": "exit:3@1:j"})

        assert [o.status for o in outcomes] == ["ok", "crash"]
        assert "status 3" in outcomes[1].detail
        healthy, degraded = isolated
        assert not healthy.degraded
        assert {n: v.safe for n, v in healthy.verdicts.items()} \
            == {n: v.safe for n, v in inline[0].verdicts.items()}
        assert degraded.degraded
        assert degraded.safe_arrays() == set()
        # fault-independent accounting: the degraded loop still counts
        # every question it would have asked
        assert degraded.stats.exploitation_checks \
            == inline[1].stats.exploitation_checks
        assert degraded.stats.exploitation_checks > 0

    def test_worker_exception_is_contained(self):
        proc = parse_program(SAFE_TWO_LOOPS)["two"]
        isolated, outcomes = _isolated(
            proc, extra_env={"REPRO_WORKER_FAULT": "raise@0:i"})
        assert outcomes[0].status == "crash"
        assert "injected worker fault" in outcomes[0].detail
        assert isolated[0].degraded
        assert outcomes[1].status == "ok"
        assert not isolated[1].degraded

    def test_hung_worker_is_killed_and_degraded(self):
        proc = parse_program(SAFE_TWO_LOOPS)["two"]
        start = time.monotonic()
        isolated, outcomes = _isolated(
            proc, kill_timeout=1.5,
            extra_env={"REPRO_WORKER_FAULT": "hang:30@0:i"})
        assert time.monotonic() - start < 20.0
        assert outcomes[0].status == "timeout"
        assert "kill timeout" in outcomes[0].detail
        assert isolated[0].degraded
        assert isolated[0].safe_arrays() == set()
        assert outcomes[1].status == "ok"
        assert not isolated[1].degraded


def _cli(tmp_path, src_path, *extra, env=None, check=True):
    cmd = [sys.executable, "-m", "repro", "analyze", str(src_path),
           "-i", "x", "-o", "y,z", "--json", *extra]
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env,
                          cwd=str(tmp_path))
    if check:
        assert proc.returncode == 0, proc.stderr
    return proc


def _loop_views(doc):
    return [(entry["loop"], entry["all_safe"], entry["verdicts"])
            for entry in doc["loops"]]


def _env():
    env = dict(os.environ)
    src_root = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src_root)
    env.pop("REPRO_WORKER_FAULT", None)
    return env


class TestKillParentResume:
    """SIGKILL the whole process group mid-run; ``--resume`` must
    reproduce the uninterrupted verdicts and question counts."""

    @pytest.mark.slow
    def test_sigkill_then_resume_reproduces_counts(self, tmp_path):
        src = tmp_path / "two.f"
        src.write_text(SAFE_TWO_LOOPS)
        env = _env()

        baseline = _cli(tmp_path, src, "--isolate", env=env)
        base_doc = json.loads(baseline.stdout)

        # interrupted run: loop 1:j's worker hangs; the parent would
        # wait out the generous kill timeout, but we SIGKILL the whole
        # group as soon as loop 0:i's verdicts are durable
        journal = tmp_path / "run.jsonl"
        hang_env = dict(env, REPRO_WORKER_FAULT="hang:120@1:j")
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", "analyze", str(src),
             "-i", "x", "-o", "y,z", "--json", "--isolate",
             "--kill-timeout", "120", "--journal", str(journal)],
            cwd=str(tmp_path), env=hang_env, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 60.0
            settled = False
            while time.monotonic() < deadline:
                if journal.exists():
                    _, records, _ = read_journal(str(journal))
                    if any(r.get("kind") == "loop_done"
                           and r.get("loop") == "0:i" for r in records):
                        settled = True
                        break
                time.sleep(0.1)
            assert settled, "first loop never settled in the journal"
        finally:
            os.killpg(victim.pid, signal.SIGKILL)
            victim.wait()

        # the journal survived the kill: loop 0:i is settled, 1:j not
        state = ResumeState.load(str(journal))
        assert state.loop_done("0:i") is not None
        assert state.loop_done("1:j") is None

        resumed = _cli(tmp_path, src, "--isolate",
                       "--journal", str(journal),
                       "--resume", str(journal), env=env)
        doc = json.loads(resumed.stdout)

        assert _loop_views(doc) == _loop_views(base_doc)
        assert doc["all_safe"] == base_doc["all_safe"]
        for key in ("exploitation_checks", "consistency_checks",
                    "solver_sat", "solver_unsat"):
            assert doc["totals"][key] == base_doc["totals"][key], key
        assert doc["resilience"]["resumed_loops"] == 1
        assert doc["resilience"]["degraded_loops"] == 0
        statuses = {w["loop"]: w["status"] for w in doc["workers"]}
        assert statuses == {"0:i": "resumed", "1:j": "ok"}

    def test_strict_flags_degraded_runs(self, tmp_path):
        src = tmp_path / "two.f"
        src.write_text(SAFE_TWO_LOOPS)
        env = dict(_env(), REPRO_WORKER_FAULT="exit:3@1:j")
        proc = _cli(tmp_path, src, "--isolate", "--strict", env=env,
                    check=False)
        assert proc.returncode == 3
        doc = json.loads(proc.stdout)
        assert doc["resilience"]["degraded_loops"] == 1

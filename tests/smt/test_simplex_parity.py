"""Pivot-for-pivot parity between the simplex engines.

The vectorized :class:`DenseSimplexSolver` must make *exactly* the same
Bland's-rule choices as the original :class:`FractionSimplexSolver` —
same pivot count, same (basic, entering) sequence, same verdict, same
rational model — on every constraint system the solver test suite
exercises plus a deterministic randomized sweep. This is what licenses
swapping the engine under the whole FormAD stack without re-validating
any verdict.
"""

import random
from fractions import Fraction

import pytest

from repro.smt import Int, canonicalize
from repro.smt.linform import TrivialConstraint
from repro.smt.simplex import (DenseSimplexSolver, FractionSimplexSolver,
                               ResourceError)

x, y, z = Int("x"), Int("y"), Int("z")


def cons(*atoms):
    out = []
    for a in atoms:
        try:
            for c in canonicalize(a):
                out.append(c)
        except TrivialConstraint:
            pass
    return out


#: Every constraint system TestSimplex exercises, plus shapes from the
#: integer layer (the branch & bound nodes re-check these with extra
#: bounds, so covering the roots covers the hot shapes).
SYSTEMS = {
    "satisfiable_bounds": cons(x.ge(1), x.le(10)),
    "direct_conflict": cons(x.ge(5), x.le(3)),
    "chained_inequalities": cons(x.lt(y), y.lt(z), z.lt(x)),
    "equality_propagation": cons((x + y).eq(10), (x - y).eq(4)),
    "mixed_polytope": cons((2 * x + 3 * y).le(12), (x - y).ge(-1),
                           x.ge(0), y.ge(2)),
    "shared_slack_conflict": cons((x + y).le(3), (x + y).ge(5)),
    "unconstrained": [],
    "diophantine_box": cons((2 * x + 3 * y).eq(7), x.ge(0), y.ge(0)),
    "three_var_system": cons((x + y + z).eq(6), (x - y).eq(1), (y - z).eq(1)),
    "formad_disjoint": cons(Int("ci").le(Int("cip") - 1),
                            (Int("ci") + 7).eq(Int("cip") + 7)),
}


def _run(engine_cls, constraints, max_pivots=100_000):
    s = engine_cls()
    for c in constraints:
        s.assert_constraint(c)
    try:
        verdict = s.check(max_pivots=max_pivots)
    except ResourceError:
        verdict = "resource"
    return verdict, s.model() if verdict is True else None, s.pivots, s.pivot_log


@pytest.mark.parametrize("name", sorted(SYSTEMS))
def test_engines_agree_pivot_for_pivot(name):
    constraints = SYSTEMS[name]
    fv, fm, fp, flog = _run(FractionSimplexSolver, constraints)
    dv, dm, dp, dlog = _run(DenseSimplexSolver, constraints)
    assert dv == fv
    assert dp == fp, f"pivot counts diverge: dense={dp} fraction={fp}"
    assert dlog == flog, "pivot sequences diverge"
    assert dm == fm  # identical rational models, not just both-SAT


def test_randomized_sweep_agrees():
    rng = random.Random(20260808)
    vars_ = [Int(n) for n in "abcde"]
    for trial in range(60):
        atoms = []
        for _ in range(rng.randint(1, 7)):
            lhs = sum((rng.randint(-4, 4) * v for v in
                       rng.sample(vars_, rng.randint(1, 3))),
                      0 * vars_[0])
            rel = rng.choice(["le", "ge", "eq", "lt", "gt"])
            atoms.append(getattr(lhs, rel)(rng.randint(-10, 10)))
        constraints = cons(*atoms)
        fv, fm, fp, flog = _run(FractionSimplexSolver, constraints)
        dv, dm, dp, dlog = _run(DenseSimplexSolver, constraints)
        assert (dv, dp, dlog, dm) == (fv, fp, flog, fm), f"trial {trial}"


def test_overflow_promotes_to_exact_objects():
    """Huge coefficients force the object-dtype fallback mid-pivot; the
    verdict and pivot sequence still match the Fraction engine."""
    big = 3 ** 45  # ~2^71: the raw coefficients already exceed int64
    w = Int("w")
    atoms = [(big * x + (big + 1) * y).eq(1), (x + y).ge(10 ** 9),
             ((big - 1) * y + w).le(-(10 ** 12)), (w - x).ge(7)]
    constraints = cons(*atoms)
    fv, fm, fp, flog = _run(FractionSimplexSolver, constraints)
    dv, dm, dp, dlog = _run(DenseSimplexSolver, constraints)
    assert (dv, dp, dlog, dm) == (fv, fp, flog, fm)


def test_copy_preserves_parity_through_branching():
    """Branch & bound copies nodes and tightens bounds; parity must
    survive the copy path too."""
    constraints = cons((2 * x + 3 * y).eq(7), x.ge(0), y.ge(0))
    engines = []
    for cls in (FractionSimplexSolver, DenseSimplexSolver):
        root = cls()
        for c in constraints:
            root.assert_constraint(c)
        assert root.check() is True
        child = root.copy()
        child.assert_upper("x", Fraction(1))
        child.assert_lower("y", Fraction(2))
        verdict = child.check()
        engines.append((verdict, child.pivots, child.pivot_log,
                        child.model() if verdict else None))
    assert engines[0] == engines[1]

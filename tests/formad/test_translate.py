"""Unit tests for the index-expression translation (§5.2/§5.3/§6)."""

import pytest

from repro.cfg import number_instances
from repro.formad import IndexTranslator, UntranslatableError, render_term
from repro.ir import Assign, Var, parse_expression
from repro.smt import TApp, TVar
from repro.smt.terms import TAdd, TConst, TMul


def _translator(body, scalars, primed=(), written=()):
    inst = number_instances(body, scalars)
    return IndexTranslator(inst, frozenset(primed), frozenset(written))


def _stmt():
    return Assign(Var("sink"), Var("i"))


class TestScalars:
    def test_instance_suffix(self):
        s = _stmt()
        tr = _translator([s], ["i", "sink"])
        t = tr.translate(parse_expression("i"), s, primed=False)
        assert t == TVar("i_0")

    def test_priming_private_names(self):
        s = _stmt()
        tr = _translator([s], ["i", "sink"], primed={"i"})
        assert tr.translate(parse_expression("i"), s, primed=True) == TVar("i_0'")
        # Shared names stay unprimed even on the primed side.
        tr2 = _translator([s], ["i", "sink"], primed=set())
        assert tr2.translate(parse_expression("i"), s, primed=True) == TVar("i_0")

    def test_instance_changes_after_redefinition(self):
        use1 = Assign(Var("a"), Var("k"))
        redef = Assign(Var("k"), Var("k") + 1)
        use2 = Assign(Var("a"), Var("k"))
        body = [use1, redef, use2]
        tr = _translator(body, ["k", "a"])
        t1 = tr.translate(parse_expression("k"), use1, primed=False)
        t2 = tr.translate(parse_expression("k"), use2, primed=False)
        assert t1 != t2


class TestStructure:
    def test_linear_expression(self):
        s = _stmt()
        tr = _translator([s], ["i", "n", "sink"])
        t = tr.translate(parse_expression("2 * i + n - 1"), s, primed=False)
        assert "i_0" in render_term(t) and "n_0" in render_term(t)

    def test_negative_offsets(self):
        s = _stmt()
        tr = _translator([s], ["i", "sink"])
        t = tr.translate(parse_expression("i - 3"), s, primed=False)
        assert render_term(t) == "(i_0 + -3)"

    def test_indirection_becomes_uf(self):
        s = _stmt()
        tr = _translator([s], ["i", "sink"])
        t = tr.translate(parse_expression("c(i) + 7", array_names={"c"}),
                         s, primed=False)
        apps = [x for x in [t] if isinstance(x, TAdd)]
        assert apps
        inner = t.terms[0]
        assert isinstance(inner, TApp) and inner.func == "c"

    def test_priming_reaches_uf_arguments(self):
        s = _stmt()
        tr = _translator([s], ["i", "sink"], primed={"i"})
        t = tr.translate(parse_expression("c(i)", array_names={"c"}),
                         s, primed=True)
        assert isinstance(t, TApp)
        assert t.args == (TVar("i_0'"),)


class TestUntranslatable:
    def test_written_index_array_rejected(self):
        s = _stmt()
        tr = _translator([s], ["i", "sink"], written={"c"})
        with pytest.raises(UntranslatableError):
            tr.translate(parse_expression("c(i)", array_names={"c"}),
                         s, primed=False)

    def test_nonlinear_product_rejected(self):
        s = _stmt()
        tr = _translator([s], ["i", "j", "sink"])
        with pytest.raises(UntranslatableError):
            tr.translate(parse_expression("i * j"), s, primed=False)

    def test_division_rejected(self):
        s = _stmt()
        tr = _translator([s], ["i", "sink"])
        with pytest.raises(UntranslatableError):
            tr.translate(parse_expression("i / 2"), s, primed=False)

    def test_float_constant_rejected(self):
        s = _stmt()
        tr = _translator([s], ["i", "sink"])
        with pytest.raises(UntranslatableError):
            tr.translate(parse_expression("i + 1.5"), s, primed=False)

    def test_const_times_var_allowed_both_ways(self):
        s = _stmt()
        tr = _translator([s], ["i", "sink"])
        t1 = tr.translate(parse_expression("3 * i"), s, primed=False)
        t2 = tr.translate(parse_expression("i * 3"), s, primed=False)
        assert isinstance(t1, TMul) and isinstance(t2, TMul)
        assert t1.coeff == 3 and t2.coeff == 3


class TestRendering:
    def test_paper_style_lbm_expression(self):
        s = _stmt()
        tr = _translator([s], ["i", "w", "n_cell_entries", "sink"])
        t = tr.translate(
            parse_expression("w + n_cell_entries * -1 + i"), s, primed=False)
        assert render_term(t) == "(w_0 + n_cell_entries_0*-1 + i_0)"

"""§7.3 regeneration: the LBM rejection listing.

The paper prints the set of known-safe write expressions FormAD builds
for the LBM kernel (19 expressions of the form
``(dir_0 + n_cell_entries_0 * off + i_0)``), and the offending adjoint
increment expression (``eb_0 + n_cell_entries_0*0 + i_0``) that is not
a member of that set — the reason no safeguard is removed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .. import analyze_formad
from ..formad import LoopAnalysis
from ..programs import build_lbm
from .paper_reference import PAPER_LBM_OFFENDING, PAPER_LBM_SAFE_OFFSETS


@dataclass
class LBMListing:
    analysis: LoopAnalysis
    safe_writes: List[str]
    offending: List[str]
    srcgrid_safe: bool

    def render(self) -> str:
        lines = ["known-safe write expressions (from the primal):"]
        lines += [f"  {e}" for e in self.safe_writes]
        lines.append("")
        lines.append("adjoint increment expression(s) not in this set:")
        lines += [f"  {e}" for e in self.offending] or ["  (none)"]
        lines.append("")
        verdict = ("srcgrid adjoint UNSAFE: safeguards kept"
                   if not self.srcgrid_safe else "srcgrid adjoint safe (?)")
        lines.append(verdict)
        return "\n".join(lines)


def run_lbm_listing() -> LBMListing:
    (analysis,) = analyze_formad(build_lbm(), ["srcgrid"], ["dstgrid"])
    return LBMListing(
        analysis=analysis,
        safe_writes=list(analysis.safe_write_expressions),
        offending=list(analysis.offending_expressions),
        srcgrid_safe=analysis.verdicts["srcgrid"].safe,
    )


def safe_offsets_from_listing(listing: LBMListing) -> Dict[str, int]:
    """Extract (direction, offset) pairs from the rendered expressions,
    for comparison with the paper's listed set."""
    import re
    out: Dict[str, int] = {}
    for expr in listing.safe_writes:
        m = re.match(
            r"\((\w+)_\d+ \+ (?:n_cell_entries_\d+\*(-?\d+) \+ )?i_\d+\)|"
            r"\((\w+)_\d+ \+ i_\d+\)", expr)
        if m:
            if m.group(1):
                out[m.group(1)] = int(m.group(2)) if m.group(2) else 0
            else:
                out[m.group(3)] = 0
    return out

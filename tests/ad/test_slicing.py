"""Direct tests for the adjoint slicing pass."""

import numpy as np
import pytest

from repro import differentiate, parse_procedure
from repro.ad import differentiate_reverse, ALL_SHARED
from repro.ir import Assign, Loop, Push, walk_stmts
from repro.runtime import run_procedure

STENCIL = """
subroutine sten(uold, unew, n)
  integer, intent(in) :: n
  real, intent(in) :: uold(40)
  real, intent(inout) :: unew(40)
  !$omp parallel do
  do i = 2, n - 1
    unew(i) = unew(i) + 0.3 * uold(i - 1)
  end do
end subroutine sten
"""

CHAIN = """
subroutine chain(x, y)
  real, intent(in) :: x
  real, intent(inout) :: y
  real :: t
  t = x * x
  y = t * t
end subroutine chain
"""


class TestSlicing:
    def test_forward_sweep_removed_for_linear_accumulator(self):
        proc = parse_procedure(STENCIL)
        adj = differentiate_reverse(proc, ["uold"], ["unew"])
        # unew is never read: its increments are sliced away, leaving a
        # single (reverse) parallel loop.
        loops = [s for s in walk_stmts(adj.procedure.body)
                 if isinstance(s, Loop) and s.parallel]
        assert len(loops) == 1
        writes = [s for s in walk_stmts(adj.procedure.body)
                  if isinstance(s, Assign) and s.target.name == "unew"]
        assert not writes

    def test_slicing_can_be_disabled(self):
        proc = parse_procedure(STENCIL)
        adj = differentiate_reverse(proc, ["uold"], ["unew"],
                                    slice_primal=False)
        loops = [s for s in walk_stmts(adj.procedure.body)
                 if isinstance(s, Loop) and s.parallel]
        assert len(loops) == 2  # forward sweep retained

    def test_needed_primal_values_survive(self):
        proc = parse_procedure(CHAIN)
        adj = differentiate_reverse(proc, ["x"], ["y"])
        # t is read by y's partial: its computation must survive.
        t_writes = [s for s in walk_stmts(adj.procedure.body)
                    if isinstance(s, Assign) and s.target.name == "t"]
        assert t_writes

    def test_sliced_and_unsliced_gradients_agree(self):
        proc = parse_procedure(STENCIL)
        rng = np.random.default_rng(0)
        bindings = {"uold": rng.standard_normal(40),
                    "unew": rng.standard_normal(40), "n": 40}
        grads = []
        for flag in (True, False):
            adj = differentiate_reverse(proc, ["uold"], ["unew"],
                                        policy=ALL_SHARED, slice_primal=flag)
            ab = dict(bindings)
            ab[adj.adjoint_name("unew")] = np.ones(40)
            ab[adj.adjoint_name("uold")] = np.zeros(40)
            mem = run_procedure(adj.procedure, ab)
            grads.append(mem.array(adj.adjoint_name("uold")).data.copy())
        np.testing.assert_allclose(grads[0], grads[1])

    def test_pushes_keep_their_loops_alive(self):
        src = """
subroutine keep(x, y, n)
  integer, intent(in) :: n
  real, intent(in) :: x(10)
  real, intent(inout) :: y(10)
  real :: t
  do i = 1, n
    t = x(i) * 2.0
    y(i) = t * t
  end do
end subroutine keep
"""
        proc = parse_procedure(src)
        adj = differentiate_reverse(proc, ["x"], ["y"])
        pushes = [s for s in walk_stmts(adj.procedure.body)
                  if isinstance(s, Push)]
        assert pushes  # t is overwritten and read: taped
        loops = [s for s in walk_stmts(adj.procedure.body)
                 if isinstance(s, Loop)]
        assert len(loops) == 2  # both sweeps alive

    def test_adjoint_outputs_protected(self):
        # Even if nothing "reads" xb, its increments are the result and
        # must never be sliced.
        proc = parse_procedure(STENCIL)
        adj = differentiate_reverse(proc, ["uold"], ["unew"])
        xb_writes = [s for s in walk_stmts(adj.procedure.body)
                     if isinstance(s, Assign)
                     and s.target.name == adj.adjoint_name("uold")]
        assert xb_writes

"""Tests for the rational simplex and the integer branch & bound layer."""

from fractions import Fraction

import pytest

from repro.smt import (Int, Result, SimplexSolver, canonicalize, check_int)

x, y, z = Int("x"), Int("y"), Int("z")


def cons(*atoms):
    out = []
    for a in atoms:
        out.extend(canonicalize(a))
    return out


class TestSimplex:
    def test_satisfiable_bounds(self):
        s = SimplexSolver()
        for c in cons(x.ge(1), x.le(10)):
            s.assert_constraint(c)
        assert s.check() is True
        v = s.model()["x"]
        assert 1 <= v <= 10

    def test_direct_conflict(self):
        s = SimplexSolver()
        for c in cons(x.ge(5), x.le(3)):
            s.assert_constraint(c)
        assert s.check() is False

    def test_chained_inequalities(self):
        s = SimplexSolver()
        for c in cons(x.lt(y), y.lt(z), z.lt(x)):
            s.assert_constraint(c)
        assert s.check() is False

    def test_equality_propagation(self):
        s = SimplexSolver()
        for c in cons((x + y).eq(10), (x - y).eq(4)):
            s.assert_constraint(c)
        assert s.check() is True
        m = s.model()
        assert m["x"] + m["y"] == 10 and m["x"] - m["y"] == 4

    def test_model_satisfies_all_constraints(self):
        atoms = [(2 * x + 3 * y).le(12), (x - y).ge(-1), x.ge(0), y.ge(2)]
        constraints = cons(*atoms)
        s = SimplexSolver()
        for c in constraints:
            s.assert_constraint(c)
        assert s.check() is True
        m = {k: v for k, v in s.model().items()}
        for c in constraints:
            value = sum(coef * m.get(n, Fraction(0)) for n, coef in c.form.coeffs)
            if c.rel.value == "<=":
                assert value <= c.bound
            else:
                assert value == c.bound

    def test_copy_independent(self):
        s = SimplexSolver()
        for c in cons(x.ge(0)):
            s.assert_constraint(c)
        dup = s.copy()
        dup.assert_upper("x", Fraction(-1))
        assert dup.check() is False
        assert s.check() is True

    def test_shared_slack_conflict(self):
        # Same linear form bounded from both sides inconsistently.
        s = SimplexSolver()
        for c in cons((x + y).le(3), (x + y).ge(5)):
            s.assert_constraint(c)
        assert s.check() is False

    def test_unconstrained_is_sat(self):
        s = SimplexSolver()
        assert s.check() is True


class TestIntegerLayer:
    def test_simple_sat(self):
        out = check_int(cons(x.ge(1), x.le(1)))
        assert out.result is Result.SAT
        assert out.model == {"x": 1}

    def test_simple_unsat(self):
        out = check_int(cons(x.gt(0), x.lt(1)))
        # No integer strictly between 0 and 1: strict tightening makes
        # this a direct rational conflict.
        assert out.result is Result.UNSAT

    def test_branching_needed(self):
        # 2x = y, 3 <= y <= 3 -> y=3 odd: UNSAT over ints.
        out = check_int(cons((2 * x).eq(y), y.eq(3)))
        assert out.result is Result.UNSAT

    def test_branching_finds_model(self):
        out = check_int(cons((2 * x + 3 * y).eq(7), x.ge(0), y.ge(0)))
        assert out.result is Result.SAT
        m = out.model
        assert 2 * m["x"] + 3 * m["y"] == 7

    def test_disjoint_index_question(self):
        # The FormAD shape: knowledge c_i != c_ip, question c_i + 7 == c_ip + 7.
        ci, cip = Int("ci"), Int("cip")
        out = check_int(cons(ci.le(cip - 1), (ci + 7).eq(cip + 7)))
        assert out.result is Result.UNSAT

    def test_boxed_diophantine_refuted(self):
        # LP-feasible but integer-infeasible; the Omega equality
        # elimination in the presolve refutes it without branching.
        boxed = cons((2 * x + 3 * y).eq(1), x.ge(0), x.le(1), y.ge(0), y.le(1))
        assert check_int(boxed).result is Result.UNSAT

    def test_pivot_budget_exhaustion_returns_unknown(self):
        # (x + y) >= 1 needs at least one pivot to become feasible; a
        # zero pivot budget forces an honest UNKNOWN.
        out = check_int(cons((x + y).ge(1)), pivot_budget=0)
        assert out.result is Result.UNKNOWN

    def test_unbounded_equality_with_coprime_coeffs(self):
        # 2x - 2y - 3z = 1 has integer solutions; pure branch & bound
        # wanders on the unbounded polyhedron, the Omega elimination
        # solves it exactly.
        out = check_int(cons((x - 2 * y).eq(-x + 3 * z + 1)))
        assert out.result is Result.SAT
        m = out.model
        assert 2 * m["x"] - 2 * m["y"] - 3 * m["z"] == 1

    def test_implicit_equality_folded(self):
        # 2x - 2y - 3z <= 1 and >= 1 form an implicit equality that
        # would stall branch & bound if left as two inequalities.
        out = check_int(cons((2 * x - 2 * y - 3 * z).le(1),
                             (2 * x - 2 * y - 3 * z).ge(1)))
        assert out.result is Result.SAT
        m = out.model
        assert 2 * m["x"] - 2 * m["y"] - 3 * m["z"] == 1

    def test_parity_system_decided_by_presolve(self):
        # i = 2k, i' = 2k', i' = i - 1 has no integer solution; pure
        # branch & bound diverges here, the equality-elimination
        # presolve refutes it instantly.
        i, ip, k, kp = Int("i"), Int("ip"), Int("k"), Int("kp")
        out = check_int(cons(i.eq(2 * k), ip.eq(2 * kp), ip.eq(i - 1)))
        assert out.result is Result.UNSAT

    def test_empty_conjunction_sat(self):
        out = check_int([])
        assert out.result is Result.SAT

    def test_negative_solutions_found(self):
        out = check_int(cons(x.le(-5), x.ge(-7), (x + y).eq(0)))
        assert out.result is Result.SAT
        assert out.model["x"] + out.model["y"] == 0
        assert -7 <= out.model["x"] <= -5

    def test_three_var_system(self):
        out = check_int(cons(
            (x + y + z).eq(6), (x - y).eq(1), (y - z).eq(1)))
        assert out.result is Result.SAT
        m = out.model
        assert (m["x"], m["y"], m["z"]) == (3, 2, 1)

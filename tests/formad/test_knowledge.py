"""Direct tests for knowledge extraction (§5, phase 1)."""

import pytest

from repro.analysis import collect_region_references
from repro.cfg import number_instances
from repro.formad import (IndexTranslator, disjointness_formula,
                          extract_knowledge)
from repro.ir import parse_procedure
from repro.smt import FOr, FAtom, Rel, TVar


def _region(src, scalars):
    proc = parse_procedure(src)
    loop = proc.parallel_loops()[0]
    refs = collect_region_references(loop.body)
    inst = number_instances(loop.body, scalars)
    assigned = {s.target.name for s in proc.statements()
                if hasattr(s, "target") and hasattr(s.target, "name")
                and not hasattr(s.target, "indices")}
    written = frozenset(n for n in refs.arrays()
                        if any(a.kind.is_write for a in refs.of_array(n)))
    primed = frozenset({loop.var} | assigned)
    return refs, IndexTranslator(inst, primed, written)


SIMPLE = """
subroutine s(x, y, n)
  integer, intent(in) :: n
  real, intent(in) :: x(30)
  real, intent(inout) :: y(30)
  !$omp parallel do
  do i = 1, n
    y(i) = x(i) + x(i + 1)
  end do
end subroutine s
"""


class TestExtraction:
    def test_write_self_pair_only(self):
        refs, tr = _region(SIMPLE, ["i", "n"])
        kb = extract_knowledge(refs, tr)
        # y: one write expr -> one self pair. x: reads only, no facts.
        assert kb.size == 1
        (fact,) = kb.facts
        assert fact.source_array == "y"

    def test_write_read_pairs_same_array(self):
        src = """
subroutine s(y, n)
  integer, intent(in) :: n
  real, intent(inout) :: y(30)
  !$omp parallel do
  do i = 1, n
    y(2 * i) = y(2 * i + 1) * 0.5
  end do
end subroutine s
"""
        refs, tr = _region(src, ["i", "n"])
        kb = extract_knowledge(refs, tr)
        # write x (write + read) pairs: (w,w) and (w,r) = 2 facts.
        assert kb.size == 2

    def test_primed_left_side(self):
        refs, tr = _region(SIMPLE, ["i", "n"])
        kb = extract_knowledge(refs, tr)
        (fact,) = kb.facts
        (left_term,) = fact.left
        assert "'" in str(left_term)
        (right_term,) = fact.right
        assert "'" not in str(right_term)

    def test_atomic_accesses_excluded(self):
        src = """
subroutine s(y, n)
  integer, intent(in) :: n
  real, intent(inout) :: y(30)
  !$omp parallel do
  do i = 1, n
    !$omp atomic
    y(1) = y(1) + 1.0
  end do
end subroutine s
"""
        refs, tr = _region(src, ["i", "n"])
        kb = extract_knowledge(refs, tr)
        assert kb.size == 0  # atomics may collide: no knowledge

    def test_deduplication_by_expression(self):
        src = """
subroutine s(y, n)
  integer, intent(in) :: n
  real, intent(inout) :: y(30)
  !$omp parallel do
  do i = 1, n
    y(i) = 1.0
    y(i) = 2.0
    y(i) = 3.0
  end do
end subroutine s
"""
        refs, tr = _region(src, ["i", "n"])
        kb = extract_knowledge(refs, tr)
        assert kb.size == 1  # three writes, one unique expression

    def test_rank_mismatch_skipped(self):
        # Cannot happen with a validated program (one array has one
        # rank), so simulate via the formula helper directly instead.
        f = disjointness_formula((TVar("a"),), (TVar("b"),))
        assert isinstance(f, FAtom) and f.rel is Rel.NE

    def test_multidim_disjointness_is_a_disjunction(self):
        f = disjointness_formula((TVar("a"), TVar("b")),
                                 (TVar("c"), TVar("d")))
        assert isinstance(f, FOr) and len(f.operands) == 2

    def test_facts_for_inherits_ancestors(self):
        src = """
subroutine s(x, y, c, n)
  integer, intent(in) :: n
  real, intent(in) :: x(30)
  real, intent(inout) :: y(30)
  integer, intent(in) :: c(30)
  !$omp parallel do
  do i = 1, n
    y(i) = 0.0
    if (c(i) .gt. 0) then
      y(c(i) + 10) = x(i)
    end if
  end do
end subroutine s
"""
        refs, tr = _region(src, ["i", "n"])
        kb = extract_knowledge(refs, tr)
        root = refs.contexts.root
        branch = [c for c in refs.contexts.all_contexts() if c is not root][0]
        root_facts = kb.facts_for(root)
        branch_facts = kb.facts_for(branch)
        # The branch context sees everything the root sees (and more:
        # the branch-local write pair).
        assert set(map(id, root_facts)) <= set(map(id, branch_facts))
        assert len(branch_facts) > len(root_facts)

"""Detection of exact increment statements (paper §5.4, Fig. 1 right).

A statement ``x = x + e`` (or ``x = x - e``, or ``x(i) = x(i) + e``)
where ``e`` does not reference ``x``'s memory is an *increment*. Its
adjoint only **reads** the adjoint of ``x`` (``eb = eb + xb*...``) and
neither overwrites nor increments it, which removes reference pairs
from FormAD's conflict analysis and lets the AD engine skip the
save/restore of the overwritten value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ir.expr import (ArrayRef, BinOp, Expr, Op, UnOp, Var,
                       references_location)
from ..ir.stmt import Assign, Stmt


@dataclass(frozen=True)
class IncrementInfo:
    """The decomposition of ``target = target ± delta``."""

    target: Var | ArrayRef
    delta: Expr
    negated: bool  # True for ``target = target - delta``


def match_increment(stmt: Stmt) -> Optional[IncrementInfo]:
    """Return the increment decomposition of *stmt*, or ``None``.

    Recognized shapes (with ``t`` the syntactically identical target):

    * ``t = t + e`` and ``t = e + t``
    * ``t = t - e``

    ``e`` must not reference the target's array/variable at all, else
    the "the rest is independent of t" reading is unsound and we
    conservatively refuse.
    """
    if not isinstance(stmt, Assign):
        return None
    value = stmt.value
    target = stmt.target
    if not isinstance(value, BinOp) or value.op not in (Op.ADD, Op.SUB):
        return None
    if value.op is Op.ADD:
        if value.left == target:
            rest = value.right
        elif value.right == target:
            rest = value.left
        else:
            return None
        negated = False
    else:  # SUB: only t - e keeps the increment reading
        if value.left != target:
            return None
        rest = value.right
        negated = True
    if references_location(rest, target):
        return None
    return IncrementInfo(target, rest, negated)


def is_increment(stmt: Stmt) -> bool:
    return match_increment(stmt) is not None

"""Operation counting and simulated-time computation.

The :class:`CostTracer` rides along an interpreted execution and
collects :class:`OpCounts` — split into serial segments and per-
iteration counts of each parallel loop. :func:`loop_time` then turns a
parallel loop's profile into simulated wall time for a given thread
count: static chunking over the actual per-iteration costs (so data-
dependent load imbalance, like GFMC's spin-exchange, emerges naturally),
a roofline-style split between streaming and gather memory traffic,
atomic contention, reduction privatization/merge, and fork/join.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ad.strategies import registered_strategies
from ..ir.expr import ArrayRef, Const, Expr, Var, walk
from ..ir.stmt import Loop
from .interp import Tracer
from .machine import MachineModel


@dataclass
class OpCounts:
    """Operation counts of one execution slice."""

    flops: int = 0
    intrinsics: int = 0
    stream_mem: int = 0
    gather_mem: int = 0
    scalar_ops: int = 0
    atomics: int = 0
    tape_ops: int = 0

    def add(self, other: "OpCounts") -> None:
        self.flops += other.flops
        self.intrinsics += other.intrinsics
        self.stream_mem += other.stream_mem
        self.gather_mem += other.gather_mem
        self.scalar_ops += other.scalar_ops
        self.atomics += other.atomics
        self.tape_ops += other.tape_ops

    def scaled(self, factor: float) -> "OpCounts":
        return OpCounts(
            flops=int(self.flops * factor),
            intrinsics=int(self.intrinsics * factor),
            stream_mem=int(self.stream_mem * factor),
            gather_mem=int(self.gather_mem * factor),
            scalar_ops=int(self.scalar_ops * factor),
            atomics=int(self.atomics * factor),
            tape_ops=int(self.tape_ops * factor),
        )

    def compute_seconds(self, machine: MachineModel) -> float:
        """Non-memory, non-atomic work."""
        return (self.flops * machine.flop_s
                + self.intrinsics * machine.intrinsic_s
                + self.scalar_ops * machine.scalar_s
                + self.tape_ops * machine.tape_s)

    def serial_seconds(self, machine: MachineModel) -> float:
        """Wall time of this slice executed by one thread, atomics
        uncontended."""
        return (self.compute_seconds(machine)
                + self.stream_mem * machine.stream_mem_s
                + self.gather_mem * machine.gather_mem_s
                + self.atomics * machine.atomic_s)

    @property
    def total_ops(self) -> int:
        return (self.flops + self.intrinsics + self.stream_mem
                + self.gather_mem + self.scalar_ops + self.atomics
                + self.tape_ops)


def classify_ref_streaming(ref: ArrayRef, counter_names: frozenset) -> bool:
    """Is this reference prefetch-friendly?

    Streaming = every subscript is an affine expression of loop counters
    and constants (no array indirection, no data-dependent scalars).
    """
    for idx in ref.indices:
        for node in walk(idx):
            if isinstance(node, ArrayRef):
                return False
            if isinstance(node, Var) and node.name not in counter_names:
                # A scalar that is not a loop counter: if it was computed
                # from indirection (e.g. GFMC's idd=mss(...)), accesses
                # through it are gathers. We cannot see the provenance
                # here, so data-dependent scalars count as gather unless
                # they are loop-invariant names (conservative).
                return False
    return True


@dataclass
class ParallelLoopRecord:
    """Per-iteration cost profile of one dynamic parallel loop instance."""

    loop: Loop
    iteration_values: List[int] = field(default_factory=list)
    per_iteration: List[OpCounts] = field(default_factory=list)
    #: Reduction arrays (name, element count) privatized by this loop.
    reduction_arrays: List[Tuple[str, int]] = field(default_factory=list)
    #: Distinct 64-byte cache lines touched by gather accesses: the
    #: loop's true bandwidth footprint (high line reuse => scaling).
    distinct_gather_lines: int = 0

    def total(self) -> OpCounts:
        out = OpCounts()
        for c in self.per_iteration:
            out.add(c)
        return out


@dataclass
class ExecutionProfile:
    """Everything the cost model needs from one run."""

    serial: OpCounts = field(default_factory=OpCounts)
    parallel_loops: List[ParallelLoopRecord] = field(default_factory=list)


class CostTracer(Tracer):
    """Collects an :class:`ExecutionProfile` during interpretation."""

    def __init__(self, counter_names: Sequence[str] = (),
                 array_sizes: Optional[Dict[str, int]] = None) -> None:
        self.profile = ExecutionProfile()
        self._current: OpCounts = self.profile.serial
        self._loop_record: Optional[ParallelLoopRecord] = None
        self._counters = frozenset(counter_names)
        self._stream_cache: Dict[int, bool] = {}
        self._array_sizes = array_sizes or {}
        self._gather_lines: set = set()

    # -- classification -------------------------------------------------
    def _is_streaming(self, ref: Optional[ArrayRef]) -> bool:
        if ref is None:
            return True
        key = id(ref)
        cached = self._stream_cache.get(key)
        if cached is None:
            cached = classify_ref_streaming(ref, self._counters)
            self._stream_cache[key] = cached
        return cached

    # -- events ----------------------------------------------------------
    def on_flop(self, n: int = 1) -> None:
        self._current.flops += n

    def on_intrinsic(self, name: str) -> None:
        self._current.intrinsics += 1

    def on_atomic_begin(self, array: str, flat: int) -> None:
        self._atomic_target = (array, flat)

    def on_atomic_end(self) -> None:
        self._atomic_target = None

    def on_read(self, array: str, flat: int, ref=None) -> None:
        if getattr(self, "_atomic_target", None) == (array, flat):
            return  # covered by the atomic RMW cost
        if self._is_streaming(ref):
            self._current.stream_mem += 1
        else:
            self._current.gather_mem += 1
            if self._loop_record is not None:
                self._gather_lines.add((array, flat >> 3))

    def on_write(self, array: str, flat: int, *, atomic: bool, ref=None) -> None:
        if atomic:
            self._current.atomics += 1
            return
        if self._is_streaming(ref):
            self._current.stream_mem += 1
        else:
            self._current.gather_mem += 1
            if self._loop_record is not None:
                self._gather_lines.add((array, flat >> 3))

    def on_scalar_read(self, name: str) -> None:
        self._current.scalar_ops += 1

    def on_scalar_write(self, name: str) -> None:
        self._current.scalar_ops += 1

    def on_push(self) -> None:
        self._current.tape_ops += 1

    def on_pop(self) -> None:
        self._current.tape_ops += 1

    def on_parallel_loop_begin(self, loop: Loop, iterations: Sequence[int]) -> None:
        self._gather_lines = set()
        record = ParallelLoopRecord(loop, list(iterations))
        for _, name in loop.reduction:
            size = self._array_sizes.get(name)
            if size is not None and size > 1:
                record.reduction_arrays.append((name, size))
        self.profile.parallel_loops.append(record)
        self._loop_record = record

    def on_parallel_iteration_begin(self, loop: Loop, value: int) -> None:
        assert self._loop_record is not None
        counts = OpCounts()
        self._loop_record.per_iteration.append(counts)
        self._current = counts

    def on_parallel_iteration_end(self, loop: Loop, value: int) -> None:
        self._current = self.profile.serial

    def on_parallel_loop_end(self, loop: Loop) -> None:
        if self._loop_record is not None:
            self._loop_record.distinct_gather_lines = len(self._gather_lines)
        self._gather_lines = set()
        self._loop_record = None
        self._current = self.profile.serial


def static_chunks(n_iterations: int, threads: int) -> List[Tuple[int, int]]:
    """OpenMP static schedule: contiguous [begin, end) slices."""
    chunks: List[Tuple[int, int]] = []
    base = n_iterations // threads
    extra = n_iterations % threads
    begin = 0
    for t in range(threads):
        size = base + (1 if t < extra else 0)
        chunks.append((begin, begin + size))
        begin += size
    return chunks


def loop_time(record: ParallelLoopRecord, machine: MachineModel,
              threads: int, *, iter_scale: float = 1.0,
              elem_scale: float = 1.0) -> float:
    """Simulated wall time of one parallel loop instance.

    ``iter_scale`` extrapolates a run profiled at reduced trip count to
    a larger one (per-thread work, atomics, and bandwidth terms scale
    linearly; fork/join does not). ``elem_scale`` scales the privatized
    reduction-array volume, for workloads whose array sizes grow with
    the problem size.
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    iters = record.per_iteration
    if not iters:
        return machine.fork_join_cost(threads)
    # Static schedule: per-thread totals capture load imbalance.
    thread_compute: List[float] = []
    thread_stream: List[float] = []
    thread_gather: List[float] = []
    for begin, end in static_chunks(len(iters), threads):
        compute = stream = gather = 0.0
        for c in iters[begin:end]:
            compute += c.compute_seconds(machine)
            stream += c.stream_mem * machine.stream_mem_s
            gather += c.gather_mem * machine.gather_mem_s
        thread_compute.append(compute)
        thread_stream.append(stream)
        thread_gather.append(gather)
    # Roofline-style bandwidth saturation. Streaming traffic scales to
    # the bandwidth-saturating thread count; gather traffic is floored
    # by the loop's true footprint — the distinct cache lines it
    # touches — so high-line-reuse indirection (GFMC) keeps scaling
    # while low-reuse sweeps (Green-Gauss) saturate early.
    stream_total = sum(thread_stream) * iter_scale
    stream_floor = stream_total / min(threads, machine.stream_bw_threads)
    # Tape traffic streams through memory once out (push) and once back
    # (pop); per-thread stacks are far larger than caches at real
    # problem sizes, so they consume shared bandwidth: 8 bytes per op.
    tape_ops_total = sum(c.tape_ops for c in iters)
    tape_lines = tape_ops_total / 8.0
    gather_floor = ((record.distinct_gather_lines + tape_lines)
                    * machine.dram_line_s * iter_scale)
    per_thread = [
        (thread_compute[t] + thread_stream[t] + thread_gather[t]) * iter_scale
        for t in range(threads)
    ]
    # Core-bound work slows with the all-core turbo drop; bandwidth
    # floors are frequency-independent.
    body_time = max(max(per_thread) * machine.frequency_factor(threads),
                    stream_floor + gather_floor)
    time = body_time
    # Safeguard overhead is owned by the strategies themselves: each
    # registered strategy charges for the construct it emits (atomic
    # contention, reduction privatize/merge, ...). Scaled counts stay
    # floats — truncating them to int silently zeroed small-but-real
    # costs at fractional profiling scales.
    for strategy in registered_strategies():
        time += strategy.loop_cost(record, machine, threads,
                                   iter_scale=iter_scale,
                                   elem_scale=elem_scale)
    time += machine.fork_join_cost(threads)
    return time


def serial_region_time(counts: OpCounts, machine: MachineModel) -> float:
    return counts.serial_seconds(machine)


def total_time(profile: ExecutionProfile, machine: MachineModel,
               threads: int, *, iter_scale: float = 1.0,
               invocation_scale: float = 1.0,
               elem_scale: Optional[float] = None) -> float:
    """Simulated wall time of the whole profiled execution.

    ``invocation_scale`` multiplies the whole execution (more sweeps /
    repetitions of the same structure); ``iter_scale`` scales every
    parallel loop's trip count (a larger grid); ``elem_scale`` scales
    reduction-array volumes and defaults to ``iter_scale`` when not
    given — pass it explicitly for workloads whose arrays do not grow
    with the iteration count.
    """
    if elem_scale is None:
        elem_scale = iter_scale
    time = serial_region_time(profile.serial, machine) * invocation_scale
    for record in profile.parallel_loops:
        time += loop_time(record, machine, threads, iter_scale=iter_scale,
                          elem_scale=elem_scale) * invocation_scale
    return time

"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper. The
kernels are interpreted at reduced size and extrapolated to the paper's
problem sizes by the cost model (see DESIGN.md); pytest-benchmark
measures the end-to-end regeneration cost, and the assertions check the
reproduced *shapes* against the paper's captions.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): marks which paper artifact a benchmark "
        "regenerates")


#: Reduced problem sizes used by the figure benchmarks: large enough for
#: stable per-iteration profiles, small enough for quick runs.
BENCH_SIZES = {
    "stencil_small_n": 6000,
    "stencil_large_n": 3000,
    "gfmc_npair": 40,
    "greengauss_nodes": 8000,
}


@pytest.fixture(scope="session")
def bench_sizes():
    return dict(BENCH_SIZES)

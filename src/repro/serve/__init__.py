"""Analysis-as-a-service: the ``repro serve`` daemon and its client
(schema ``repro-serve/1``, docs/SCALING.md §7).

* :mod:`~repro.serve.protocol` — the newline-JSON wire format and
  address parsing shared by both sides;
* :mod:`~repro.serve.daemon` — the long-lived server: warm
  :class:`~repro.resilience.shards.WorkerPool`, fingerprint-keyed
  memo with in-flight deduplication, the
  :class:`~repro.resilience.cache.CacheStore` with size budgets, and
  graceful SIGTERM drain;
* :mod:`~repro.serve.client` — ``repro analyze --connect ADDR``:
  ships the request, rebuilds real ``LoopAnalysis`` objects from the
  reply so CLI output is byte-identical to in-process analysis
  (modulo wall-clock timers).
"""

from .client import ServeClient, analyze_connected
from .daemon import AnalysisService, ServeConfig, build_server, run_daemon
from .protocol import (SERVE_SCHEMA, ServeError, open_connection,
                       parse_address, read_message, write_message)

__all__ = [
    "SERVE_SCHEMA", "ServeError", "open_connection", "parse_address",
    "read_message", "write_message",
    "AnalysisService", "ServeConfig", "build_server", "run_daemon",
    "ServeClient", "analyze_connected",
]

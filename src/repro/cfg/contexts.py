"""Control contexts (paper §5.1).

A *context* represents the set of control decisions that lead to
executing an instruction. Knowledge extracted from a pair of references
is attached to the innermost context guaranteed to execute both; during
exploitation, a question about a pair may only use knowledge attached
to the common root of their contexts.

Our IR is fully structured (``if``/``do`` only), so contexts form a
tree built directly from the AST: the region body is the *root*
context, each branch of an ``if`` opens a child context, and the body
of a nested sequential loop opens a child context (its body may execute
zero times, so statements inside are only *may*-executed relative to
the loop's own context). This is exactly the recursive construction the
paper describes for well-structured code; the dominator-based
construction for arbitrary CFGs coincides with it on structured input
(tested against :mod:`repro.cfg.dominators`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from ..ir.stmt import Assign, If, Loop, Pop, Push, Stmt

#: Process-wide unique ids for contexts. ``id()`` must never be used as
#: a context key: CPython reuses addresses of collected objects, so an
#: ``id``-keyed memo can alias a dead context with a live one and serve
#: a stale entry (the PR-3 verdict-cache bug). ``uid`` is never reused.
_uids = itertools.count()


@dataclass(eq=False)
class Context:
    """A node in the context tree.

    ``eq=False`` keeps identity comparison (the default dataclass
    ``__eq__`` would recurse through ``parent``/``children``); use
    ``uid`` as the stable hashable key.
    """

    label: str
    parent: Optional["Context"] = None
    children: List["Context"] = field(default_factory=list)
    depth: int = 0
    uid: int = field(default_factory=lambda: next(_uids))

    def child(self, label: str) -> "Context":
        c = Context(label, self, depth=self.depth + 1)
        self.children.append(c)
        return c

    def ancestors(self) -> Iterator["Context"]:
        """This context and all its ancestors, innermost first."""
        node: Optional[Context] = self
        while node is not None:
            yield node
            node = node.parent

    def includes(self, other: "Context") -> bool:
        """True if every iteration executing *other* executes *self*
        (i.e. *self* is *other* or an ancestor of it)."""
        return any(a is self for a in other.ancestors())

    def common_root(self, other: "Context") -> "Context":
        """Deepest context including both *self* and *other*."""
        mine_set = {c.uid for c in self.ancestors()}
        for c in other.ancestors():
            if c.uid in mine_set:
                return c
        raise ValueError("contexts belong to different trees")  # pragma: no cover

    def path(self) -> str:
        return "/".join(reversed([c.label for c in self.ancestors()]))

    def __repr__(self) -> str:
        return f"<Context {self.path()}>"


@dataclass
class ContextMap:
    """The context tree of one region plus a statement→context map."""

    root: Context
    of_stmt: Dict[int, Context]

    def context_of(self, stmt: Stmt) -> Context:
        return self.of_stmt[stmt.uid]

    def all_contexts(self) -> List[Context]:
        out: List[Context] = []
        stack = [self.root]
        while stack:
            c = stack.pop()
            out.append(c)
            stack.extend(reversed(c.children))
        return out


def build_contexts(body: Sequence[Stmt], root_label: str = "root") -> ContextMap:
    """Build the context tree for a region body (e.g. a parallel loop)."""
    root = Context(root_label)
    of_stmt: Dict[int, Context] = {}

    def visit(stmts: Sequence[Stmt], ctx: Context) -> None:
        for stmt in stmts:
            of_stmt[stmt.uid] = ctx
            if isinstance(stmt, If):
                visit(stmt.then_body, ctx.child(f"if{stmt.uid}/then"))
                if stmt.else_body:
                    visit(stmt.else_body, ctx.child(f"if{stmt.uid}/else"))
            elif isinstance(stmt, Loop):
                visit(stmt.body, ctx.child(f"do{stmt.uid}"))
            elif not isinstance(stmt, (Assign, Push, Pop)):  # pragma: no cover
                raise TypeError(f"cannot build context for {stmt!r}")

    visit(body, root)
    return ContextMap(root, of_stmt)

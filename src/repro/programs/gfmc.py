"""GFMC — Green's function Monte Carlo kernel (paper §7.2).

Reconstructed from the CORAL ``gfmcmk`` benchmark as described by the
paper: pair-wise spin-exchange updates of the wavefunction arrays
``cl``/``cr`` through the data-dependent spin-coupling table ``mss``,
plus a spin-flip part.

* **GFMC** (the paper's split version): spin exchange and spin flip in
  two separate parallel loops. FormAD proves the exchange loop's
  adjoint safe — the ``mss`` indirection writes disjoint spin indices
  per pair — and the flip loop is counter-indexed, hence also safe.
* **GFMC*** (the original fused version): both parts inside one
  parallel loop over pairs. The flip part reads ``cr`` over a
  pair-shifted *range* (``cr(k12 + q, j)``) that overlaps across pairs;
  this read yields an unsafe adjoint increment and, because it shares
  the loop with the exchange part, *every* increment to ``crb`` in that
  loop must stay guarded (paper: "this makes all increment accesses to
  the affected array potentially unsafe").

The exchange inner loop length ``ng(k12)`` decays with the pair index,
giving the strong load imbalance the paper highlights ("a dynamic part
with large load imbalance"). The exact CORAL source is not available
offline; this reconstruction preserves the structural properties the
paper's analysis and measurements depend on (see DESIGN.md).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ir.parser import parse_procedure
from ..ir.program import Procedure

#: Paper-scale repetition count (§7.2).
PAPER_REPS = 500

_DECLS = """
  integer, intent(in) :: npair
  integer, intent(in) :: nspin
  integer, intent(in) :: nwalk
  real, intent(inout) :: cl(*, *)
  real, intent(inout) :: cr(*, *)
  integer, intent(in) :: mss(4, *, *)
  real, intent(in) :: xs(2, *)
  integer, intent(in) :: ng(*)
  real, intent(in) :: xflip
  integer :: idd, iud, idu, iuu
  real :: xee, xem
"""

_EXCHANGE = """
  !$omp parallel do private(ig, j, idd, iud, idu, iuu, xee, xem)
  do k12 = 1, npair
    do ig = 1, ng(k12)
      idd = mss(1, ig, k12)
      iud = mss(2, ig, k12)
      idu = mss(3, ig, k12)
      iuu = mss(4, ig, k12)
      xee = xs(1, k12)
      xem = xs(2, k12)
      do j = 1, nwalk
        cl(idd, j) = xee * cr(idd, j) + xem * cr(iud, j)
        cl(iuu, j) = xee * cr(iuu, j) + xem * cr(idu, j)
        cl(iud, j) = xem * cr(iud, j) + xee * cr(idd, j)
        cl(idu, j) = xem * cr(idu, j) + xee * cr(iuu, j)
      end do
    end do
  end do
"""


def build_gfmc(reps: int = 1) -> Procedure:
    """The split two-loop version (the paper's "GFMC")."""
    src = f"""
subroutine gfmc(cl, cr, mss, xs, ng, xflip, npair, nspin, nwalk)
{_DECLS}
  do rep = 1, {reps}
{_EXCHANGE}
  !$omp parallel do private(j)
  do is = 1, nspin
    do j = 1, nwalk
      cl(is, j) = cl(is, j) + xflip * cr(is, j)
    end do
  end do
  end do
end subroutine gfmc
"""
    return parse_procedure(src)


def build_gfmc_star(reps: int = 1) -> Procedure:
    """The original fused single-loop version (the paper's "GFMC*")."""
    src = f"""
subroutine gfmc_star(cl, cr, mss, xs, ng, xflip, npair, nspin, nwalk)
{_DECLS}
  do rep = 1, {reps}
  !$omp parallel do private(ig, q, j, idd, iud, idu, iuu, xee, xem)
  do k12 = 1, npair
    do ig = 1, ng(k12)
      idd = mss(1, ig, k12)
      iud = mss(2, ig, k12)
      idu = mss(3, ig, k12)
      iuu = mss(4, ig, k12)
      xee = xs(1, k12)
      xem = xs(2, k12)
      do j = 1, nwalk
        cl(idd, j) = xee * cr(idd, j) + xem * cr(iud, j)
        cl(iuu, j) = xee * cr(iuu, j) + xem * cr(idu, j)
        cl(iud, j) = xem * cr(iud, j) + xee * cr(idd, j)
        cl(idu, j) = xem * cr(idu, j) + xee * cr(iuu, j)
      end do
    end do
    do q = 1, 4
      idd = mss(q, 1, k12)
      do j = 1, nwalk
        cl(idd, j) = cl(idd, j) + xflip * cr(k12 + q, j)
      end do
    end do
  end do
  end do
end subroutine gfmc_star
"""
    return parse_procedure(src)


def make_gfmc_workload(
    npair: int = 250,
    nwalk: int = 16,
    ngroups_max: int = 40,
    seed: int = 0,
    *,
    imbalance: float = 4.0,
) -> Dict[str, object]:
    """Inputs for GFMC/GFMC*.

    ``mss`` partitions the spin index space so that every ``(ig, k12)``
    group owns four distinct spin states and no two groups share any —
    the property that makes the primal exchange loop correctly
    parallelized over pairs. ``ng`` decays geometrically with the pair
    index, producing the paper's "large load imbalance" under a static
    schedule.
    """
    rng = np.random.default_rng(seed)
    ng = np.maximum(
        1, (ngroups_max * np.exp(-imbalance * np.arange(npair) / npair))
    ).astype(np.int64)
    mss = np.ones((4, ngroups_max, npair), dtype=np.int64)
    total_groups = int(ng.sum())
    # Scatter the spin ids like the real coupling table would: a random
    # permutation keeps per-group blocks disjoint but non-contiguous.
    perm = rng.permutation(4 * total_groups) + 1
    next_slot = 0
    for k12 in range(npair):
        for ig in range(int(ng[k12])):
            for q in range(4):
                mss[q, ig, k12] = perm[next_slot]
                next_slot += 1
    nspin_used = 4 * total_groups
    # GFMC* additionally reads cr(k12 + q, j) for q <= 4: keep headroom.
    nspin_alloc = max(nspin_used, npair + 4)
    return {
        "cl": rng.standard_normal((nspin_alloc, nwalk)),
        "cr": rng.standard_normal((nspin_alloc, nwalk)),
        "mss": mss,
        "xs": rng.uniform(0.2, 0.8, (2, npair)),
        "ng": ng,
        "xflip": 0.37,
        "npair": npair,
        "nspin": nspin_used,
        "nwalk": nwalk,
    }

"""Execution substrate: numpy-backed interpreter, simulated SMP machine
with an operation-level cost model, and a dynamic race detector.

Plays the role of the paper's test hardware (18-core Broadwell socket,
Intel Fortran + OpenMP): real shared-memory parallel speedup is not
reachable from pure Python, so the *figures* are regenerated from a
structural cost model while *correctness* (values, race freedom) is
checked by real interpretation.
"""

from .memory import ArrayStorage, BoundsError, Memory
from .interp import (Interpreter, InterpreterError, InterpreterTimeout,
                     TapeError, Tracer, loop_iterations, run_procedure,
                     NULL_TRACER)
from .machine import BROADWELL_18, MachineModel
from .costmodel import (CostTracer, ExecutionProfile, OpCounts,
                        ParallelLoopRecord, loop_time, static_chunks,
                        total_time)
from .racecheck import Race, RaceDetector
from .executor import (ProfiledRun, RaceReport, detect_races, profile_run,
                       simulate_thread_sweep)

__all__ = [
    "ArrayStorage", "BoundsError", "Memory",
    "Interpreter", "InterpreterError", "InterpreterTimeout",
    "TapeError", "Tracer",
    "loop_iterations", "run_procedure", "NULL_TRACER",
    "BROADWELL_18", "MachineModel",
    "CostTracer", "ExecutionProfile", "OpCounts", "ParallelLoopRecord",
    "loop_time", "static_chunks", "total_time",
    "Race", "RaceDetector",
    "ProfiledRun", "RaceReport", "detect_races", "profile_run",
    "simulate_thread_sweep",
]

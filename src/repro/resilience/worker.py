"""Worker subprocess entry point: ``python -m repro.resilience.worker``.

Reads one JSON request from stdin (see
:mod:`~repro.resilience.workers` for the contract), analyzes exactly
one parallel loop, and writes one JSON reply to stdout. Any unexpected
failure exits non-zero — the parent maps that to a per-loop *degraded*
result. A :class:`~repro.formad.engine.PrimalRaceError` is a genuine
finding, not a failure: it is reported in the reply (``error``) and
re-raised by the parent.

``REPRO_WORKER_FAULT`` injects deterministic faults for tests and the
CI resilience smoke job::

    REPRO_WORKER_FAULT="exit:3"        # exit with status 3
    REPRO_WORKER_FAULT="hang:600"      # sleep past the kill timeout
    REPRO_WORKER_FAULT="raise"         # crash with a RuntimeError
    REPRO_WORKER_FAULT="exit:3@1:j"    # ... only for loop key "1:j"

The optional ``@<loop_key>`` suffix restricts the fault to one loop,
leaving every other worker honest.
"""

from __future__ import annotations

import json
import os
import sys
import time


def _inject_fault(loop_key: str) -> None:
    spec = os.environ.get("REPRO_WORKER_FAULT")
    if not spec:
        return
    if "@" in spec:
        spec, target = spec.split("@", 1)
        if target != loop_key:
            return
    kind, _, arg = spec.partition(":")
    if kind == "exit":
        sys.exit(int(arg or "1"))
    elif kind == "hang":
        time.sleep(float(arg or "3600"))
    elif kind == "raise":
        raise RuntimeError(f"injected worker fault on loop {loop_key!r}")


def main() -> int:
    request = json.load(sys.stdin)
    loop_key = str(request["loop_key"])
    _inject_fault(loop_key)

    from ..analysis.activity import ActivityAnalysis
    from ..formad.engine import (AnalysisStats, FormADEngine,
                                 PrimalRaceError)
    from ..ir import parse_program
    from .deadline import Deadline
    from .escalate import EscalationPolicy
    from .journal import JournalWriter, ResumeState

    program = parse_program(request["source"])
    proc = program[request["head"]]
    activity = ActivityAnalysis(proc, request["independents"],
                                request["dependents"])
    deadline = None
    if request.get("deadline_remaining") is not None:
        deadline = Deadline(float(request["deadline_remaining"]))
    escalation = None
    if request.get("escalation"):
        escalation = EscalationPolicy(**request["escalation"])
    journal = None
    if request.get("journal"):
        # Append: the parent already wrote the meta header, and loops
        # run sequentially, so the offsets never interleave.
        journal = JournalWriter(request["journal"], append=True)
    resume = None
    if request.get("resume"):
        resume = ResumeState.load(request["resume"])
    engine = FormADEngine(proc, activity, deadline=deadline,
                          question_timeout=request.get("question_timeout"),
                          escalation=escalation, journal=journal,
                          resume=resume, **(request.get("flags") or {}))
    target = None
    for loop in proc.parallel_loops():
        if engine.loop_key(loop) == loop_key:
            target = loop
            break
    if target is None:
        print(json.dumps({"error": {
            "type": "KeyError",
            "message": f"no parallel loop with key {loop_key!r}"}}))
        return 1
    try:
        analysis = engine.analyze_loop(target)
    except PrimalRaceError as exc:
        print(json.dumps({"error": {"type": "PrimalRaceError",
                                    "message": str(exc)}}))
        return 0
    finally:
        if journal is not None:
            journal.close()
    stats = {name: getattr(analysis.stats, name)
             for name in AnalysisStats.__dataclass_fields__}
    payload = {
        "done": {
            "loop": loop_key,
            "stats": stats,
            "safe_writes": list(analysis.safe_write_expressions),
            "offending": list(analysis.offending_expressions),
            "degraded": analysis.degraded,
        },
        "verdicts": [
            {"array": v.array, "safe": v.safe,
             "pairs_total": v.pairs_total, "pairs_proven": v.pairs_proven,
             "reason": v.reason}
            for v in analysis.verdicts.values()
        ],
    }
    print(json.dumps(payload))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via --isolate
    sys.exit(main())

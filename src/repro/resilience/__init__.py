"""Resilience runtime: deadlines, escalation, isolation, resume.

The analysis must degrade, never fail (docs/RESILIENCE.md):

* :class:`Deadline` — a wall-clock budget threaded cooperatively from
  the CLI through :class:`~repro.formad.engine.FormADEngine` into the
  SMT search; an expired question answers UNKNOWN (``timeout``),
  which FormAD already treats as "keep the safeguard".
* :class:`EscalationPolicy` — retry timed-out / budget-exhausted
  questions with exponentially enlarged budgets before giving up.
* :mod:`~repro.resilience.journal` — an append-only, checksummed
  verdict journal (schema ``repro-journal/1``) that survives ``kill
  -9`` and lets ``analyze --resume`` skip settled work.
* :mod:`~repro.resilience.workers` — opt-in per-loop subprocess
  isolation with a hard kill timeout; a crashed or hung worker becomes
  a per-loop *degraded* result instead of a failed run.
"""

from .deadline import Deadline
from .escalate import EscalationPolicy
from .journal import (JOURNAL_SCHEMA, JournalError, JournalWriter,
                      ResumeState, journal_fingerprint, read_journal,
                      rebuild_analysis)
from .workers import IsolationConfig, WorkerOutcome, analyze_isolated

__all__ = [
    "Deadline", "EscalationPolicy",
    "JOURNAL_SCHEMA", "JournalError", "JournalWriter", "ResumeState",
    "journal_fingerprint", "read_journal", "rebuild_analysis",
    "IsolationConfig", "WorkerOutcome", "analyze_isolated",
]

"""Provenance correctness on the paper kernels (Table 1, §7).

Two properties gate the observability layer:

* **one provenance event per exploitation question** — the trace is a
  complete record: ``question`` events match ``exploitation_checks``
  exactly, memo-hit flags match ``memo_hits``, and every analyzed
  array gets exactly one ``verdict`` event;
* **zero-overhead identity** — running with the no-op tracer (the
  default) leaves verdicts, exploitation-query counts, and memo-hit
  counts byte-identical to the instrumented run, on all four paper
  kernels.
"""

import pytest

from repro import analyze_formad
from repro.obs import CollectingTracer, validate_events
from repro.programs import (build_gfmc, build_greengauss, build_lbm,
                            build_stencil)

#: kernel -> (builder, independents, dependents, expected verdicts,
#: expected exploitation_checks, expected memo_hits). The counts are
#: the pre-observability baselines; the no-op identity requirement
#: pins them.
KERNELS = {
    "stencil1": (lambda: build_stencil(1), ["uold"], ["unew"],
                 {"unew": True, "uold": True}, 3, 0),
    "gfmc": (build_gfmc, ["cl", "cr"], ["cl", "cr"],
             {"cl": True, "cr": True}, 21, 9),
    "greengauss": (build_greengauss, ["dv"], ["grad"],
                   {"dv": True, "grad": True}, 3, 0),
    "lbm": (build_lbm, ["srcgrid"], ["dstgrid"],
            {"dstgrid": True, "srcgrid": False}, 192, 1),
}


def summarize(analyses):
    verdicts = {}
    exploitation = memo = 0
    for a in analyses:
        for name, v in a.verdicts.items():
            verdicts[name] = v.safe
        exploitation += a.stats.exploitation_checks
        memo += a.stats.memo_hits
    return verdicts, exploitation, memo


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_traced_run_matches_untraced_baseline(kernel):
    builder, ind, dep, verdicts, exploitation, memo = KERNELS[kernel]

    plain = summarize(analyze_formad(builder(), ind, dep))
    assert plain == (verdicts, exploitation, memo)

    tracer = CollectingTracer()
    traced = summarize(analyze_formad(builder(), ind, dep, tracer=tracer))
    tracer.close()
    assert traced == plain
    assert validate_events(tracer.events) == []


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_one_question_event_per_exploitation_check(kernel):
    builder, ind, dep, _, exploitation, memo = KERNELS[kernel]
    tracer = CollectingTracer()
    analyses = analyze_formad(builder(), ind, dep, tracer=tracer)
    tracer.close()

    questions = [e for e in tracer.events if e["type"] == "question"]
    assert len(questions) == exploitation
    assert sum(1 for q in questions if q["memo_hit"]) == memo

    # every question carries its full provenance
    for q in questions:
        assert q["loop"] and q["array"] and q["question"]
        assert q["result"] in ("SAT", "UNSAT", "UNKNOWN")
        assert isinstance(q["instances"], list)
        # SAT questions carry the counterexample model
        assert (q["result"] == "SAT") == ("witness" in q)

    # exactly one verdict event per analyzed array
    verdict_events = [e for e in tracer.events if e["type"] == "verdict"]
    expected = [(a.loop.var, name) for a in analyses
                for name in a.verdicts]
    assert sorted((v["loop"], v["array"]) for v in verdict_events) \
        == sorted(expected)
    for v, a_pair in zip(verdict_events, expected):
        analysis = next(a for a in analyses if a.loop.var == v["loop"])
        assert v["safe"] == analysis.verdicts[v["array"]].safe


def test_lbm_sat_witness_is_a_counterexample():
    """The failing srcgrid query's witness assigns distinct iterations
    to the clashing references (the root axiom i' != i holds)."""
    tracer = CollectingTracer()
    analyze_formad(build_lbm(), ["srcgrid"], ["dstgrid"], tracer=tracer)
    tracer.close()
    sat = [e for e in tracer.events
           if e["type"] == "question" and e["result"] == "SAT"]
    assert len(sat) == 1
    witness = sat[0]["witness"]
    primed = [k for k in witness if k.endswith("'")]
    assert primed, witness
    for k in primed:
        assert witness[k] != witness[k[:-1]]


def test_fact_events_carry_knowledge_provenance():
    tracer = CollectingTracer()
    analyze_formad(build_stencil(1), ["uold"], ["unew"], tracer=tracer)
    tracer.close()
    facts = [e for e in tracer.events if e["type"] == "fact"]
    assert facts
    for f in facts:
        assert f["loop"] == "i"
        assert f["context"]
        assert f["formula"]

"""Conversion of formulas to clause form.

The pipeline is NNF → disequality splitting → CNF by distribution.
FormAD's formulas are shallow (knowledge assertions are disjunctions of
atoms, questions are conjunctions of atoms), so naive distribution is
fine; a blow-up guard raises :class:`ClausifyBudgetError` if a
pathological input is ever fed in, which the solver maps to UNKNOWN.

The output is a list of clauses; each clause is a tuple of *positive*
:class:`~repro.smt.terms.FAtom` literals with relations restricted to
``LE``/``LT``/``GE``/``GT``/``EQ`` (``NE`` is split into ``LT ∨ GT``,
valid over the integers; negations are folded into the relation).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Tuple

from .terms import (FAnd, FAtom, FFalse, FNot, FOr, Formula, FTrue, Rel)

Clause = Tuple[FAtom, ...]


class ClausifyBudgetError(RuntimeError):
    """CNF distribution exceeded the clause budget."""


def to_nnf(formula: Formula, negate: bool = False) -> Formula:
    """Negation normal form with negations folded into atom relations."""
    if isinstance(formula, FAtom):
        return FAtom(formula.rel.negate(), formula.left, formula.right) if negate else formula
    if isinstance(formula, FNot):
        return to_nnf(formula.operand, not negate)
    if isinstance(formula, FAnd):
        parts = tuple(to_nnf(f, negate) for f in formula.operands)
        return FOr(parts) if negate else FAnd(parts)
    if isinstance(formula, FOr):
        parts = tuple(to_nnf(f, negate) for f in formula.operands)
        return FAnd(parts) if negate else FOr(parts)
    if isinstance(formula, FTrue):
        return FFalse() if negate else formula
    if isinstance(formula, FFalse):
        return FTrue() if negate else formula
    raise TypeError(f"not a formula: {formula!r}")  # pragma: no cover


def split_atom(atom: FAtom) -> Tuple[FAtom, ...]:
    """Replace NE by its integer case split; pass other atoms through."""
    if atom.rel is Rel.NE:
        return (FAtom(Rel.LT, atom.left, atom.right),
                FAtom(Rel.GT, atom.left, atom.right))
    return (atom,)


@lru_cache(maxsize=100_000)
def _clausify_cached(formula: Formula, max_clauses: int) -> Tuple[Clause, ...]:
    return tuple(_cnf(to_nnf(formula), max_clauses))


def clausify(formula: Formula, *, max_clauses: int = 100_000) -> List[Clause]:
    """CNF clauses for *formula*. ``[]`` means trivially true; a clause
    ``()`` (empty) means trivially false. Cached per formula — the same
    knowledge assertions and congruence axioms recur across thousands of
    checks in a FormAD analysis."""
    return list(_clausify_cached(formula, max_clauses))


def clausify_cached(formula: Formula, *, max_clauses: int = 100_000) -> Tuple[Clause, ...]:
    """Like :func:`clausify` but returns the (shared, immutable) cached
    tuple without copying — callers must not mutate it."""
    return _clausify_cached(formula, max_clauses)


def clausify_cache_info():
    """``functools.lru_cache`` statistics of the per-formula clause
    cache. The cache is process-global; per-solver phase stats take
    deltas around their translation phase, which is approximate when
    several solver threads translate concurrently."""
    return _clausify_cached.cache_info()


def clausify_cache_clear() -> None:
    """Drop the per-formula clause cache (benchmarks use this to keep
    mode-vs-mode comparisons fair)."""
    _clausify_cached.cache_clear()


def _cnf(formula: Formula, budget: int) -> List[Clause]:
    if isinstance(formula, FTrue):
        return []
    if isinstance(formula, FFalse):
        return [()]
    if isinstance(formula, FAtom):
        return [split_atom(formula)]
    if isinstance(formula, FAnd):
        out: List[Clause] = []
        for f in formula.operands:
            out.extend(_cnf(f, budget))
            if len(out) > budget:
                raise ClausifyBudgetError(f"more than {budget} clauses")
        return out
    if isinstance(formula, FOr):
        # Distribute: clauses(A ∨ B) = {a ∪ b : a ∈ clauses(A), b ∈ clauses(B)}
        acc: List[Clause] = [()]
        for f in formula.operands:
            sub = _cnf(f, budget)
            if not sub:  # operand is true ⇒ whole disjunction true
                return []
            nxt: List[Clause] = []
            for a in acc:
                for b in sub:
                    nxt.append(a + b)
                    if len(nxt) > budget:
                        raise ClausifyBudgetError(f"more than {budget} clauses")
            acc = nxt
        return acc
    raise TypeError(f"not an NNF formula: {formula!r}")  # pragma: no cover


def clausify_all(formulas: Sequence[Formula], *, max_clauses: int = 100_000) -> List[Clause]:
    out: List[Clause] = []
    for f in formulas:
        out.extend(clausify(f, max_clauses=max_clauses))
        if len(out) > max_clauses:
            raise ClausifyBudgetError(f"more than {max_clauses} clauses")
    return out

"""``python -m repro.experiments`` — regenerate every table and figure,
writing EXPERIMENTS.md to the current directory."""

import argparse

from .report import main

if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="regenerate EXPERIMENTS.md (Table 1 and Figures 3-10)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="fan independent kernels and program versions "
                             "out over N worker threads")
    main(jobs=parser.parse_args().jobs)

"""Unit tests for the expression AST."""

import pytest

from repro.ir import (ArrayRef, BinOp, Call, CmpOp, Compare, Const, Logical,
                      LogicOp, Op, UnOp, Var, arrays_in, as_expr, children,
                      names_in, rename_arrays, substitute, variables_in, walk)


class TestConstruction:
    def test_operator_overloading_builds_binops(self):
        x, y = Var("x"), Var("y")
        e = x + y
        assert isinstance(e, BinOp) and e.op is Op.ADD
        assert (x - y).op is Op.SUB
        assert (x * y).op is Op.MUL
        assert (x / y).op is Op.DIV
        assert (x ** 2).op is Op.POW

    def test_python_scalars_coerce_to_constants(self):
        x = Var("x")
        e = x + 1
        assert e.right == Const(1)
        e = 2.5 * x
        assert e.left == Const(2.5)

    def test_negation(self):
        e = -Var("x")
        assert isinstance(e, UnOp) and e.op is Op.NEG

    def test_indexing_builds_arrayref(self):
        a, i, j = Var("a"), Var("i"), Var("j")
        ref = a[i, j + 1]
        assert isinstance(ref, ArrayRef)
        assert ref.name == "a"
        assert ref.indices == (i, BinOp(Op.ADD, j, Const(1)))

    def test_single_index(self):
        ref = Var("a")[3]
        assert ref.indices == (Const(3),)

    def test_comparison_builders(self):
        x = Var("x")
        assert x.eq(0).op is CmpOp.EQ
        assert x.ne(0).op is CmpOp.NE
        assert x.lt(0).op is CmpOp.LT
        assert x.le(0).op is CmpOp.LE
        assert x.gt(0).op is CmpOp.GT
        assert x.ge(0).op is CmpOp.GE

    def test_logical_builders(self):
        a = Var("x").gt(0)
        b = Var("y").lt(1)
        assert a.logical_and(b).op is LogicOp.AND
        assert a.logical_or(b).op is LogicOp.OR
        assert a.logical_not().op is LogicOp.NOT

    def test_bad_constant_rejected(self):
        with pytest.raises(TypeError):
            Const("nope")

    def test_bad_variable_name_rejected(self):
        with pytest.raises(ValueError):
            Var("")

    def test_arrayref_requires_indices(self):
        with pytest.raises(ValueError):
            ArrayRef("a", ())

    def test_as_expr_rejects_junk(self):
        with pytest.raises(TypeError):
            as_expr(object())

    def test_logical_arity_enforced(self):
        with pytest.raises(ValueError):
            Logical(LogicOp.NOT, (Var("a"), Var("b")))
        with pytest.raises(ValueError):
            Logical(LogicOp.AND, (Var("a"),))


class TestStructuralEquality:
    def test_equal_expressions_compare_equal(self):
        e1 = Var("x") + Var("y") * 2
        e2 = Var("x") + Var("y") * 2
        assert e1 == e2
        assert hash(e1) == hash(e2)

    def test_different_expressions_differ(self):
        assert (Var("x") + 1) != (Var("x") + 2)
        assert Var("x") != Var("y")

    def test_usable_as_dict_keys(self):
        d = {Var("c")[Var("i")]: "write"}
        assert d[Var("c")[Var("i")]] == "write"


class TestTraversal:
    def test_walk_yields_all_nodes(self):
        e = Var("a")[Var("i") + 1] * Var("b") + Call("sin", (Var("t"),))
        kinds = [type(n).__name__ for n in walk(e)]
        assert kinds.count("BinOp") == 3
        assert "ArrayRef" in kinds and "Call" in kinds

    def test_children_of_leaves_empty(self):
        assert children(Const(1)) == ()
        assert children(Var("x")) == ()

    def test_variables_in_excludes_array_names(self):
        e = Var("a")[Var("i")] + Var("x")
        assert variables_in(e) == {"i", "x"}
        assert arrays_in(e) == {"a"}
        assert names_in(e) == {"a", "i", "x"}

    def test_variables_in_nested_indices(self):
        e = Var("y")[Var("c")[Var("i")] + 7]
        assert variables_in(e) == {"i"}
        assert arrays_in(e) == {"y", "c"}


class TestSubstitution:
    def test_substitute_scalar(self):
        e = Var("i") + Var("j")
        out = substitute(e, {"i": Var("ip")})
        assert out == Var("ip") + Var("j")

    def test_substitute_inside_indices(self):
        e = Var("a")[Var("i") + 1]
        out = substitute(e, {"i": Var("k")})
        assert out == Var("a")[Var("k") + 1]

    def test_substitute_does_not_touch_array_names(self):
        e = Var("a")[Var("a_scalar")]
        out = substitute(e, {"a": Var("b")})
        assert isinstance(out, ArrayRef) and out.name == "a"

    def test_substitute_compare_and_logical(self):
        e = Var("i").eq(Var("j")).logical_and(Var("k").gt(0))
        out = substitute(e, {"i": Var("x"), "k": Var("y")})
        assert "x" in variables_in(out) and "y" in variables_in(out)
        assert "i" not in variables_in(out)

    def test_rename_arrays(self):
        e = Var("x")[Var("i")] + Var("y")[Var("x")[Var("i")]]
        out = rename_arrays(e, {"x": "xb"})
        assert arrays_in(out) == {"xb", "y"}

    def test_rename_arrays_in_call_args(self):
        e = Call("sin", (Var("x")[Var("i")],))
        out = rename_arrays(e, {"x": "xb"})
        assert arrays_in(out) == {"xb"}


class TestStringForms:
    def test_str_is_readable(self):
        e = Var("u")[Var("i") - 1]
        assert "u(" in str(e)

    def test_const_str(self):
        assert str(Const(3)) == "3"

"""Reference interpreter for the mini-language.

Executes procedures over a :class:`~repro.runtime.memory.Memory`. The
interpreter is the semantic ground truth: AD correctness tests compare
interpreted adjoints against finite differences, and the parallel
executor drives it iteration-by-iteration to attribute costs and detect
races.

Parallel loops are executed sequentially in iteration order (which is a
valid schedule; correct parallel programs are schedule-independent).
A :class:`Tracer` receives fine-grained events — operation counts,
memory accesses with thread attribution, tape traffic — so cost models
and race detectors can observe execution without touching semantics.

Tape semantics: ``push``/``pop`` operate on named channels. Inside a
parallel loop every iteration owns an independent stack (keyed by the
loop counter's value), mirroring Tapenade's per-thread stacks while
staying deterministic; outside parallel loops a channel is one global
stack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.expr import (ArrayRef, BinOp, Call, CmpOp, Compare, Const, Expr,
                       Logical, LogicOp, Op, UnOp, Var)
from ..ir.program import Procedure
from ..ir.stmt import Assign, If, Loop, Pop, Push, Stmt
from .memory import ArrayStorage, Memory


class TapeError(RuntimeError):
    """Pop from an empty tape channel (an AD engine bug if it happens)."""


class InterpreterError(RuntimeError):
    """A runtime semantic error (bad intrinsic argument, etc.)."""


class InterpreterTimeout(RuntimeError):
    """A cooperative deadline expired mid-execution.

    The interpreter polls its optional ``deadline`` between loop
    iterations (the only places a mini-language program can spend
    unbounded time), so a pathological kernel is interrupted within one
    iteration instead of stalling its caller. The audit harness maps
    this to a *truncated* case, never a soundness violation.
    """


class Tracer:
    """Event sink; the default implementation ignores everything."""

    def on_flop(self, n: int = 1) -> None: ...

    def on_intrinsic(self, name: str) -> None: ...

    def on_read(self, array: str, flat: int, ref=None) -> None: ...

    def on_write(self, array: str, flat: int, *, atomic: bool, ref=None) -> None: ...

    def on_scalar_read(self, name: str) -> None: ...

    def on_scalar_write(self, name: str) -> None: ...

    def on_push(self) -> None: ...

    def on_pop(self) -> None: ...

    def on_atomic_begin(self, array: str, flat: int) -> None: ...

    def on_atomic_end(self) -> None: ...

    def on_parallel_loop_begin(self, loop: Loop, iterations: Sequence[int]) -> None: ...

    def on_parallel_iteration_begin(self, loop: Loop, value: int) -> None: ...

    def on_parallel_iteration_end(self, loop: Loop, value: int) -> None: ...

    def on_parallel_loop_end(self, loop: Loop) -> None: ...


NULL_TRACER = Tracer()


def loop_iterations(start: int, stop: int, step: int) -> List[int]:
    """Fortran do-loop trip values."""
    if step == 0:
        raise InterpreterError("loop step is zero")
    trips = (stop - start + step) // step
    if trips <= 0:
        return []
    return [start + k * step for k in range(trips)]


_UNARY_INTRINSICS: Dict[str, Callable[[float], float]] = {
    "sin": math.sin, "cos": math.cos, "tan": math.tan,
    "exp": math.exp, "log": math.log, "sqrt": math.sqrt,
    "tanh": math.tanh, "abs": abs,
}


class Interpreter:
    """Executes one procedure invocation."""

    def __init__(self, proc: Procedure, memory: Memory,
                 tracer: Tracer = NULL_TRACER, *, deadline=None) -> None:
        self.proc = proc
        self.memory = memory
        self.tracer = tracer
        #: Optional :class:`repro.resilience.Deadline`-shaped object
        #: (anything with ``expired()``), polled between loop
        #: iterations; ``None`` (the default) costs nothing.
        self.deadline = deadline
        self.tape: Dict[Tuple[str, Optional[int]], List[float]] = {}
        self._par_key: Optional[int] = None
        self._in_parallel: Optional[Loop] = None

    def _check_deadline(self, loop: Loop) -> None:
        if self.deadline is not None and self.deadline.expired():
            raise InterpreterTimeout(
                f"deadline expired inside loop over {loop.var!r} "
                f"of {self.proc.name!r}")

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self) -> Memory:
        self.exec_body(self.proc.body)
        return self.memory

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def exec_body(self, body: Sequence[Stmt]) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            if stmt.atomic and isinstance(stmt.target, ArrayRef):
                self._exec_atomic_update(stmt)
                return
            value = self.eval(stmt.value)
            self.store(stmt.target, value, atomic=stmt.atomic)
        elif isinstance(stmt, If):
            if self.eval(stmt.cond):
                self.exec_body(stmt.then_body)
            else:
                self.exec_body(stmt.else_body)
        elif isinstance(stmt, Loop):
            if stmt.parallel:
                self.exec_parallel_loop(stmt)
            else:
                self.exec_sequential_loop(stmt)
        elif isinstance(stmt, Push):
            value = self.eval(stmt.value)
            self.tape.setdefault((stmt.channel, self._par_key), []).append(value)
            self.tracer.on_push()
        elif isinstance(stmt, Pop):
            stack = self.tape.get((stmt.channel, self._par_key))
            if not stack:
                raise TapeError(
                    f"pop from empty tape channel {stmt.channel!r} "
                    f"(iteration key {self._par_key!r})")
            self.tracer.on_pop()
            self.store(stmt.target, stack.pop(), atomic=False)
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot execute {stmt!r}")

    def exec_sequential_loop(self, loop: Loop) -> None:
        start = int(self.eval(loop.start))
        stop = int(self.eval(loop.stop))
        step = int(self.eval(loop.step))
        values = loop_iterations(start, stop, step)
        for v in values:
            self._check_deadline(loop)
            self.memory.set_scalar(loop.var, v)
            self.exec_body(loop.body)
        # Fortran: counter holds the first value past the last iteration.
        self.memory.set_scalar(loop.var, start + len(values) * step)

    def exec_parallel_loop(self, loop: Loop) -> None:
        if self._in_parallel is not None:
            raise InterpreterError("nested parallel loops are not supported")
        start = int(self.eval(loop.start))
        stop = int(self.eval(loop.stop))
        step = int(self.eval(loop.step))
        values = loop_iterations(start, stop, step)
        self.tracer.on_parallel_loop_begin(loop, values)
        self._in_parallel = loop
        try:
            for v in values:
                self._check_deadline(loop)
                self._par_key = v
                self.memory.set_scalar(loop.var, v)
                self.tracer.on_parallel_iteration_begin(loop, v)
                self.exec_body(loop.body)
                self.tracer.on_parallel_iteration_end(loop, v)
        finally:
            self._par_key = None
            self._in_parallel = None
        self.tracer.on_parallel_loop_end(loop)

    def _exec_atomic_update(self, stmt: Assign) -> None:
        """An ``!$omp atomic`` array update: the load of the target
        location inside the RHS is part of the atomic read-modify-write,
        so tracers must not see it as an independent plain read."""
        target = stmt.target
        assert isinstance(target, ArrayRef)
        indices = [int(self.eval(i)) for i in target.indices]
        storage = self.memory.array(target.name)
        flat = storage.flat_index(indices)
        self.tracer.on_atomic_begin(target.name, flat)
        try:
            value = self.eval(stmt.value)
        finally:
            self.tracer.on_atomic_end()
        storage.set(indices, value)
        self.tracer.on_write(target.name, flat, atomic=True, ref=target)

    # ------------------------------------------------------------------
    # Loads and stores
    # ------------------------------------------------------------------
    def store(self, target: Var | ArrayRef, value, *, atomic: bool) -> None:
        if isinstance(target, Var):
            self.memory.set_scalar(target.name, value)
            self.tracer.on_scalar_write(target.name)
        else:
            indices = [int(self.eval(i)) for i in target.indices]
            storage = self.memory.array(target.name)
            storage.set(indices, value)
            self.tracer.on_write(target.name, storage.flat_index(indices),
                                 atomic=atomic, ref=target)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def eval(self, expr: Expr):
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Var):
            self.tracer.on_scalar_read(expr.name)
            return self.memory.get_scalar(expr.name)
        if isinstance(expr, ArrayRef):
            indices = [int(self.eval(i)) for i in expr.indices]
            storage = self.memory.array(expr.name)
            self.tracer.on_read(expr.name, storage.flat_index(indices), ref=expr)
            return storage.get(indices)
        if isinstance(expr, BinOp):
            left = self.eval(expr.left)
            right = self.eval(expr.right)
            self.tracer.on_flop()
            if expr.op is Op.ADD:
                return left + right
            if expr.op is Op.SUB:
                return left - right
            if expr.op is Op.MUL:
                return left * right
            if expr.op is Op.DIV:
                if isinstance(left, int) and isinstance(right, int):
                    # Fortran integer division truncates toward zero.
                    q = abs(left) // abs(right)
                    return q if (left >= 0) == (right >= 0) else -q
                return left / right
            if expr.op is Op.POW:
                return left ** right
            raise InterpreterError(f"bad binary op {expr.op}")  # pragma: no cover
        if isinstance(expr, UnOp):
            self.tracer.on_flop()
            return -self.eval(expr.operand)
        if isinstance(expr, Call):
            return self.eval_call(expr)
        if isinstance(expr, Compare):
            left = self.eval(expr.left)
            right = self.eval(expr.right)
            self.tracer.on_flop()
            return {
                CmpOp.EQ: left == right, CmpOp.NE: left != right,
                CmpOp.LT: left < right, CmpOp.LE: left <= right,
                CmpOp.GT: left > right, CmpOp.GE: left >= right,
            }[expr.op]
        if isinstance(expr, Logical):
            if expr.op is LogicOp.NOT:
                return not self.eval(expr.operands[0])
            left = self.eval(expr.operands[0])
            if expr.op is LogicOp.AND:
                return bool(left) and bool(self.eval(expr.operands[1]))
            return bool(left) or bool(self.eval(expr.operands[1]))
        raise TypeError(f"cannot evaluate {expr!r}")  # pragma: no cover

    def eval_call(self, call: Call):
        self.tracer.on_intrinsic(call.func)
        if call.func == "size":
            # size(a[, dim]) takes the array *name*, which must not be
            # evaluated as data.
            name = call.args[0]
            if not isinstance(name, (Var, ArrayRef)):
                raise InterpreterError("size() expects an array name")
            storage = self.memory.array(name.name)
            if len(call.args) >= 2:
                axis = int(self.eval(call.args[1])) - 1
                return storage.shape[axis]
            return storage.size
        args = [self.eval(a) for a in call.args]
        fn = _UNARY_INTRINSICS.get(call.func)
        if fn is not None:
            try:
                return fn(args[0])
            except ValueError as exc:
                raise InterpreterError(f"{call.func}({args[0]}): {exc}") from exc
        if call.func == "max":
            return max(args)
        if call.func == "min":
            return min(args)
        if call.func == "mod":
            a, b = args
            return math.fmod(a, b) if isinstance(a, float) or isinstance(b, float) \
                else int(math.fmod(a, b))
        if call.func == "int":
            return int(args[0])
        if call.func == "real":
            return float(args[0])
        if call.func == "sign":
            a, b = args
            return abs(a) if b >= 0 else -abs(a)
        raise InterpreterError(f"unknown intrinsic {call.func!r}")


def run_procedure(
    proc: Procedure,
    bindings: Mapping[str, object] = (),
    extents: Mapping[str, Sequence[int]] = (),
    tracer: Tracer = NULL_TRACER,
    *,
    deadline=None,
) -> Memory:
    """Allocate memory, run, return the final memory."""
    memory = Memory.for_procedure(proc, bindings, extents)
    Interpreter(proc, memory, tracer, deadline=deadline).run()
    return memory

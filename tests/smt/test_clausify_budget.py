"""Clause *budget* vs. clause-cache *capacity* — two different knobs.

Regression for the conflated-constant bug: clausify's CNF blow-up guard
and the process-global LRU cache bound were the same ``100_000``
literal, so shrinking the cache for a memory-constrained long-lived
process (a ``--backend process`` serve worker) would have silently
turned mid-sized formulas into ``ClausifyBudgetError`` → UNKNOWN
verdicts. The budget is solver *semantics*; the cache size is a memory
knob. These tests pin them apart:

* ``DEFAULT_MAX_CLAUSES`` is the signature default of the clausify
  entry points, independently of ``CACHE_MAXSIZE``;
* a formula bigger than a (monkeypatched tiny) cache still clausifies
  — capacity only evicts, it never rejects;
* the budget still rejects, regardless of cache capacity;
* a budget blow-up is never cached, so a later probe with a larger
  budget succeeds;
* ``clausify_cache_clear`` fully resets entries *and* counters — the
  serve-worker run-boundary hygiene call.
"""

import importlib
import inspect
import threading

import pytest

from repro.smt import Int
from repro.smt.clausify import (CACHE_MAXSIZE, DEFAULT_MAX_CLAUSES,
                                ClausifyBudgetError, clausify,
                                clausify_cache_clear, clausify_cache_info,
                                clausify_cached, clausify_probe)
from repro.smt.terms import FAnd, FOr

# ``repro.smt``'s __init__ re-exports the clausify *function* under the
# submodule's name, so attribute imports resolve to the function; go
# through the module registry for the module object itself.
clausify_mod = importlib.import_module("repro.smt.clausify")


def _blowup(width: int, depth: int, tag: str) -> FOr:
    """An FOr of *depth* FAnds of *width* atoms: distributes to
    ``width ** depth`` clauses."""
    return FOr(tuple(
        FAnd(tuple(Int(f"b{tag}_{d}_{w}").ge(w) for w in range(width)))
        for d in range(depth)))


class TestConstantsAreIndependent:
    def test_signature_defaults_are_the_budget(self):
        for fn in (clausify, clausify_cached, clausify_probe):
            default = inspect.signature(fn).parameters["max_clauses"].default
            assert default == DEFAULT_MAX_CLAUSES, fn.__name__

    def test_budget_is_not_read_from_the_cache_bound(self, monkeypatch):
        """Shrinking the cache must not shrink the budget: with a
        2-entry cache, a formula distributing to 16 clauses still
        clausifies (capacity evicts, never rejects)."""
        monkeypatch.setattr(clausify_mod, "CACHE_MAXSIZE", 2)
        clausify_cache_clear()
        try:
            clauses = clausify(_blowup(4, 2, "tiny"))  # 16 > 2
            assert len(clauses) == 16
            # and capacity is enforced: the cache never exceeds it
            assert clausify_cache_info().currsize <= 2
        finally:
            clausify_cache_clear()

    def test_budget_rejects_regardless_of_cache_capacity(self, monkeypatch):
        monkeypatch.setattr(clausify_mod, "CACHE_MAXSIZE", 1_000_000)
        clausify_cache_clear()
        try:
            with pytest.raises(ClausifyBudgetError):
                clausify(_blowup(4, 3, "rej"), max_clauses=10)  # 64 > 10
        finally:
            clausify_cache_clear()


class TestBudgetBlowupsAreNotCached:
    def test_larger_budget_succeeds_after_blowup(self):
        clausify_cache_clear()
        try:
            formula = _blowup(3, 3, "retry")  # 27 clauses
            with pytest.raises(ClausifyBudgetError):
                clausify(formula, max_clauses=5)
            # the failed attempt must not have poisoned the cache
            clauses, hit = clausify_probe(formula, max_clauses=100)
            assert not hit
            assert len(clauses) == 27
        finally:
            clausify_cache_clear()


class TestProbeLocking:
    """The probe takes the cache lock exactly once on the hit path and
    resolves racing duplicate computations first-insert-wins, so every
    caller shares one tuple object per formula (see the miss-path
    comment in :mod:`repro.smt.clausify`)."""

    def test_hit_returns_the_shared_cached_object(self):
        clausify_cache_clear()
        try:
            formula = FAnd((Int("bid_a").ge(0), Int("bid_b").le(3)))
            first, hit0 = clausify_probe(formula)
            again, hit1 = clausify_probe(formula)
            assert (hit0, hit1) == (False, True)
            assert again is first
        finally:
            clausify_cache_clear()

    def test_racing_duplicates_share_the_first_inserted_tuple(self, monkeypatch):
        """N threads miss on the same formula simultaneously (the CNF
        distribution runs outside the lock, so all of them compute a
        candidate tuple) — only the first insert may land, and *every*
        caller must get that one shared object. A later overwrite would
        silently fork the identity that translated clauses key on and
        double peak memory for recurring assertions."""
        n = 4
        barrier = threading.Barrier(n)
        real_nnf = clausify_mod.to_nnf

        def rendezvous_nnf(formula, negate=False):
            # nobody inserts until everyone has missed
            barrier.wait(timeout=10)
            return real_nnf(formula, negate)

        clausify_cache_clear()
        try:
            monkeypatch.setattr(clausify_mod, "to_nnf", rendezvous_nnf)
            formula = FOr((Int("brace").ge(0), Int("brace").le(9)))
            results = [None] * n

            def probe(i):
                results[i] = clausify_probe(formula)

            threads = [threading.Thread(target=probe, args=(i,))
                       for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert all(r is not None for r in results)
            clauses0 = results[0][0]
            # per-call attribution: every concurrent caller missed ...
            assert [hit for _, hit in results] == [False] * n
            # ... yet they all share the one first-inserted tuple
            assert all(clauses is clauses0 for clauses, _ in results)

            monkeypatch.setattr(clausify_mod, "to_nnf", real_nnf)
            later, hit = clausify_probe(formula)
            assert hit and later is clauses0
            info = clausify_cache_info()
            assert (info.misses, info.hits, info.currsize) == (n, 1, 1)
        finally:
            clausify_cache_clear()


class TestCacheClearResetsEverything:
    def test_entries_and_counters_reset(self):
        """Long-lived serve workers call this at every run boundary;
        both the entries and the hit/miss counters must go to zero so
        per-run statistics start from a clean slate."""
        clausify_cache_clear()
        formula = Int("bclear").ge(0)
        clausify(formula)   # miss
        clausify(formula)   # hit
        info = clausify_cache_info()
        assert info.misses == 1 and info.hits == 1 and info.currsize == 1
        clausify_cache_clear()
        info = clausify_cache_info()
        assert info == (0, 0, CACHE_MAXSIZE, 0)

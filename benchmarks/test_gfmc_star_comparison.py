"""Extension bench (DESIGN.md §6): GFMC vs GFMC*.

The paper only reports analysis statistics for GFMC* (its performance
figures cover the split version). This bench quantifies what the loop
split *buys*: in the fused GFMC* the one overlapping read poisons the
whole array, so every adjoint increment in the loop carries the
fallback safeguard, while the split version's exchange loop runs
guard-free.
"""

import pytest

from repro import analyze_formad, differentiate
from repro.experiments import gfmc_spec, gfmc_star_spec, run_kernel_experiment
from repro.ir import Assign, walk_stmts
from repro.programs import build_gfmc, build_gfmc_star


def _atomic_count(adj) -> int:
    return sum(1 for s in walk_stmts(adj.procedure.body)
               if isinstance(s, Assign) and s.atomic)


@pytest.mark.figure("gfmc-star")
def test_split_vs_fused(benchmark):
    def run():
        split = run_kernel_experiment(gfmc_spec(npair=40),
                                      strategies=("formad",))
        fused = run_kernel_experiment(gfmc_star_spec(npair=40),
                                      strategies=("formad",))
        return split, fused

    split, fused = benchmark.pedantic(run, rounds=1, iterations=1)

    # Analysis outcomes: split fully proven, fused rejected.
    split_analyses = analyze_formad(build_gfmc(), ["cl", "cr"], ["cl", "cr"])
    (fused_analysis,) = analyze_formad(build_gfmc_star(),
                                       ["cl", "cr"], ["cl", "cr"])
    assert all(a.all_safe for a in split_analyses)
    assert not fused_analysis.verdicts["cr"].safe

    # Generated code: the split FormAD adjoint carries no atomics, the
    # fused one falls back to atomics for the poisoned arrays.
    split_adj = differentiate(build_gfmc(), ["cl", "cr"], ["cl", "cr"],
                              strategy="formad")
    fused_adj = differentiate(build_gfmc_star(), ["cl", "cr"], ["cl", "cr"],
                              strategy="formad")
    assert _atomic_count(split_adj) == 0
    assert _atomic_count(fused_adj) > 0

    # Simulated performance: at 18 threads the split version's FormAD
    # adjoint is several times faster than the fused version's (which is
    # effectively the atomic version for cr/cl).
    split18 = split.adjoints["formad"].times[18]
    fused18 = fused.adjoints["formad"].times[18]
    print(f"\nFormAD adjoint @18 threads: split {split18:.3f}s, "
          f"fused {fused18:.3f}s ({fused18 / split18:.1f}x slower)")
    assert fused18 > 3 * split18

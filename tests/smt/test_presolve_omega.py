"""Targeted + property tests for the integer presolve (unit-coefficient
substitution, Omega-test equality elimination, implicit equalities)."""

import itertools

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.smt import Int, Result, canonicalize, check_int
from repro.smt.linform import Constraint, LinForm
from repro.smt.presolve import (PresolveInfeasible, _mod_hat, presolve,
                                reduce_constraint, ConstraintEntailed,
                                Substitution)
from repro.smt.terms import Rel

x, y, z = Int("x"), Int("y"), Int("z")


def cons(*atoms):
    out = []
    for a in atoms:
        out.extend(canonicalize(a))
    return out


class TestModHat:
    def test_symmetric_range(self):
        for m in (2, 3, 5, 7):
            for a in range(-20, 21):
                r = _mod_hat(a, m)
                assert (a - r) % m == 0
                assert -m / 2 < r <= m / 2

    def test_examples(self):
        assert _mod_hat(2, 3) == -1
        assert _mod_hat(7, 3) == 1
        assert _mod_hat(-7, 3) == -1
        assert _mod_hat(4, 8) == 4


class TestPresolve:
    def test_unit_equality_substituted(self):
        res = presolve(cons(x.eq(y + 3), x.le(10)))
        # x eliminated; remaining constraint over y only.
        names = set()
        for c in res.constraints:
            names |= c.form.variables()
        assert "x" not in names
        assert len(res.substitutions) == 1

    def test_model_reconstruction(self):
        res = presolve(cons(x.eq(2 * y + 1)))
        model = res.reconstruct({"y": 4})
        assert model["x"] == 9

    def test_omega_eliminates_all_equalities(self):
        res = presolve(cons((2 * x + 3 * y).eq(7)))
        assert all(c.rel is not Rel.EQ for c in res.constraints)

    def test_infeasible_equality_detected(self):
        with pytest.raises(PresolveInfeasible):
            presolve(cons(x.eq(y), x.eq(y + 1)))

    def test_implicit_equality_folded(self):
        res = presolve(cons((2 * x - 3 * y).le(5), (2 * x - 3 * y).ge(5)))
        # Folded to an equality and eliminated by the Omega step.
        assert all(c.rel is not Rel.EQ for c in res.constraints)

    def test_reduce_constraint_paths(self):
        subs = [Substitution("x", LinForm.from_dict({"y": 1}))]  # x := y
        (lt,) = cons(x.lt(y))    # becomes y < y: false
        with pytest.raises(PresolveInfeasible):
            reduce_constraint(lt, subs)
        (le,) = cons(x.le(y))    # becomes y <= y: true
        with pytest.raises(ConstraintEntailed):
            reduce_constraint(le, subs)
        (open_,) = cons(x.le(z))  # y <= z: stays
        reduced = reduce_constraint(open_, subs)
        assert reduced.form.variables() == {"y", "z"}


def _brute_force(constraints, box=range(-6, 7), names=("x", "y", "z")):
    for values in itertools.product(box, repeat=len(names)):
        env = dict(zip(names, values))
        if all(c.holds({**env, **{n: 0 for c2 in constraints
                                  for n in c2.form.variables()
                                  if n not in env}})
               for c in constraints):
            return env
    return None


coef = st.integers(min_value=-4, max_value=4)
rhs = st.integers(min_value=-8, max_value=8)


class TestOmegaProperty:
    @given(coef, coef, coef, rhs, st.integers(0, 2 ** 16))
    @settings(max_examples=150, deadline=None)
    def test_random_diophantine_equalities(self, a, b, c, d, _seed):
        assume(any(v != 0 for v in (a, b, c)))
        atoms = [(a * x + b * y + c * z).eq(d),
                 x.ge(-6), x.le(6), y.ge(-6), y.le(6), z.ge(-6), z.le(6)]
        constraints = []
        infeasible = False
        try:
            for atom in atoms:
                constraints.extend(canonicalize(atom))
        except Exception:
            infeasible = True
        if infeasible:
            return
        out = check_int(constraints)
        witness = _brute_force(constraints)
        if witness is not None:
            assert out.result is Result.SAT
            m = out.model
            assert a * m.get("x", 0) + b * m.get("y", 0) + c * m.get("z", 0) == d
        else:
            # Solutions may exist outside the box only if the box bounds
            # don't actually constrain... they do (|v| <= 6), so:
            assert out.result is Result.UNSAT

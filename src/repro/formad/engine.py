"""The FormAD engine: buildModel / testVar (paper §5.5).

Phase 1 (*knowledge extraction*) turns the assumed-correct primal
parallelization into per-context disjointness assertions. This module
then builds the context tree's models on **one shared incremental
solver**: a context's model holds the root axiom ``i ≠ i'`` plus every
fact attached to it or inherited from its ancestors, and the solver
reaches each context by push/pop along a DFS of the tree instead of
re-asserting the inherited prefix into a fresh solver per context.
Satisfiability is asserted after every fact addition (a failing check
means the *primal* was racy: :class:`PrimalRaceError`).

Phase 2 (*knowledge exploitation*) derives, for each active shared
array, the index tuples its adjoint will write and read:

* a plain primal **read** becomes an adjoint *increment* (write),
* a plain primal **write** becomes an adjoint *load + zero* (write),
* a primal **exact increment** becomes an adjoint *read only* (§5.4).

For every pair of future adjoint references with at least one write,
the solver is asked — under the knowledge of the pair's common-root
context — whether the primed and unprimed index tuples can coincide.
``UNSAT`` proves the pair conflict-free; anything else (including
solver resource exhaustion) keeps the safeguards in place. Identical
questions under the same common-root context are answered once and
memoized (``AnalysisStats.memo_hits`` counts the cached answers;
``exploitation_checks`` still counts every question asked, so Table-1
query totals are unchanged by the memo).
"""

from __future__ import annotations

import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.activity import ActivityAnalysis
from ..analysis.references import (AccessKind, ArrayAccess, RegionReferences,
                                   collect_region_references)
from ..cfg.contexts import Context
from ..cfg.instances import number_instances
from ..ir.printer import format_stmt
from ..ir.program import Procedure
from ..ir.stmt import Assign, Loop
from ..obs.tracer import NULL_TRACER, NullTracer
from ..resilience.deadline import Deadline, per_question
from ..resilience.escalate import NO_ESCALATION, EscalationPolicy
from ..smt.intsolver import Result
from ..smt.solver import SAT, UNKNOWN, UNSAT, Solver
from ..smt.terms import And, FAtom, Formula, Rel, Term, formula_vars
from .knowledge import KnowledgeBase, extract_knowledge, is_atomic_access
from .translate import IndexTranslator, UntranslatableError, render_term

logger = logging.getLogger(__name__)


class PrimalRaceError(RuntimeError):
    """The knowledge base is inconsistent: the primal parallel loop
    cannot be race-free (or FormAD itself is buggy — paper §5.5)."""


class KnowledgeDegradedError(RuntimeError):
    """buildModel could not establish the knowledge base: a consistency
    check came back UNKNOWN or the solver failed outright. Unlike
    :class:`PrimalRaceError` this says nothing about the primal — the
    engine must degrade to safeguards for every candidate array (the
    soundness bias: an unproven array is never left ``shared``)."""


@dataclass
class AnalysisStats:
    """The Table-1 columns for one analyzed parallel region, plus the
    per-phase performance breakdown.

    ``exploitation_checks`` counts every testVar question *asked*
    (matching the paper's counting); ``memo_hits`` counts the subset
    answered from the question memo instead of the solver, so the
    number of actual solver question checks is
    ``exploitation_checks - memo_hits``.
    """

    time_seconds: float = 0.0
    model_size: int = 0            # assertions incl. the root axiom
    consistency_checks: int = 0    # buildModel's per-add SAT checks
    exploitation_checks: int = 0   # testVar questions asked
    memo_hits: int = 0             # ... of which answered from the memo
    unique_exprs: int = 0
    region_loc: int = 0
    skipped_pairs: int = 0
    # Per-phase solver breakdown (see repro.smt.solver.SolverStats).
    translate_seconds: float = 0.0
    clausify_seconds: float = 0.0
    search_seconds: float = 0.0
    solver_time_seconds: float = 0.0
    theory_checks: int = 0
    search_branches: int = 0
    search_propagations: int = 0
    solver_sat: int = 0
    solver_unsat: int = 0
    solver_unknown: int = 0
    formulas_translated: int = 0
    congruence_axioms: int = 0
    clausify_hits: int = 0
    clausify_misses: int = 0
    # Resilience accounting (docs/RESILIENCE.md). The ``unknown_*``
    # triple is the structured breakdown of ``solver_unknown``;
    # ``timed_out_questions`` counts exploitation questions whose
    # *final* answer (after any escalation) was a deadline expiry;
    # ``escalations`` counts ladder retries; ``resumed_questions``
    # counts answers replayed from a ``--resume`` journal.
    unknown_timeout: int = 0
    unknown_budget: int = 0
    unknown_solver: int = 0
    timed_out_questions: int = 0
    escalations: int = 0
    resumed_questions: int = 0

    @property
    def queries(self) -> int:
        return self.consistency_checks + self.exploitation_checks

    @property
    def solver_checks(self) -> int:
        """Checks actually answered by the solver (memo hits excluded)."""
        return self.consistency_checks + self.exploitation_checks - self.memo_hits

    #: ``SolverStats`` field -> ``AnalysisStats`` field, for folding
    #: solver counters into this record. Every ``SolverStats`` field
    #: except ``checks`` (recoverable as ``solver_sat + solver_unsat +
    #: solver_unknown``; see ``tests/smt/test_solver_stats_merge.py``
    #: for the audit that keeps this mapping complete).
    SOLVER_FIELD_MAP = (
        ("translate_seconds", "translate_seconds"),
        ("clausify_seconds", "clausify_seconds"),
        ("search_seconds", "search_seconds"),
        ("time_seconds", "solver_time_seconds"),
        ("theory_checks", "theory_checks"),
        ("branches", "search_branches"),
        ("propagations", "search_propagations"),
        ("sat", "solver_sat"),
        ("unsat", "solver_unsat"),
        ("unknown", "solver_unknown"),
        ("formulas_translated", "formulas_translated"),
        ("congruence_axioms", "congruence_axioms"),
        ("clausify_hits", "clausify_hits"),
        ("clausify_misses", "clausify_misses"),
        ("unknown_timeout", "unknown_timeout"),
        ("unknown_budget", "unknown_budget"),
        ("unknown_solver", "unknown_solver"),
    )

    def absorb_solver(self, solver: Solver) -> None:
        """Fold one solver's counters into this record."""
        s = solver.stats
        self.absorb_solver_totals(
            {src: getattr(s, src) for src, _ in self.SOLVER_FIELD_MAP})

    def absorb_solver_totals(self, totals: Dict[str, float]) -> None:
        """Fold a ``SolverStats``-shaped dict of counters into this
        record — the question-sharding parent's merge path, where the
        counters arrive as JSON (one build delta plus one delta per
        consumed answer) instead of as a live solver."""
        for src, dst in self.SOLVER_FIELD_MAP:
            setattr(self, dst, getattr(self, dst) + totals.get(src, 0))


@dataclass
class ArrayVerdict:
    """FormAD's answer for one adjoint array in one region."""

    array: str
    safe: bool
    pairs_total: int = 0
    pairs_proven: int = 0
    reason: str = ""

    def __str__(self) -> str:
        state = "safe (shared)" if self.safe else f"unsafe ({self.reason})"
        return f"{self.array}: {state} [{self.pairs_proven}/{self.pairs_total}]"


@dataclass
class LoopAnalysis:
    """Complete FormAD result for one parallel loop."""

    loop: Loop
    verdicts: Dict[str, ArrayVerdict]
    stats: AnalysisStats
    safe_write_expressions: List[str] = field(default_factory=list)
    offending_expressions: List[str] = field(default_factory=list)
    #: True when this result is a safeguard fallback rather than an
    #: analysis: the knowledge base could not be established, the run
    #: deadline expired before phase 2, or an isolated worker died.
    degraded: bool = False
    #: True when this result was replayed from a resume journal
    #: instead of being analyzed in this process.
    resumed: bool = False
    #: True when this result is eligible for the cross-run verdict
    #: cache: a genuine, *clean* analysis — not degraded, no timed-out
    #: or UNKNOWN questions, no solver failures, and no answers that
    #: were themselves replayed from a journal or cache. Only such
    #: loops replay wholesale with counter-identical stats, which is
    #: the cache's byte-identity guarantee (docs/SCALING.md).
    cacheable: bool = False

    def safe_arrays(self) -> Set[str]:
        return {name for name, v in self.verdicts.items() if v.safe}

    @property
    def all_safe(self) -> bool:
        return all(v.safe for v in self.verdicts.values())


@dataclass
class _QuestionRef:
    """One unique future adjoint reference (already translated)."""

    plain: Tuple[Term, ...]
    primed: Tuple[Term, ...]
    context: Context
    rendering: str


@dataclass
class _ScheduledQuestion:
    """One planned exploitation question, at its serial ask position.

    The schedule is a pure function of the region source and the engine
    flags: candidate arrays in reference order, each array's pairs in
    ``_question_pairs`` order, truncated at the first rank mismatch
    exactly where the serial loop breaks. Parent and worker processes
    therefore compute *identical* schedules independently, which lets
    the question-sharding wire protocol ship bare positions instead of
    formulas (docs/SCALING.md)."""

    position: int
    array: str
    w: _QuestionRef
    other: _QuestionRef
    ctx: Context
    question: Formula


@dataclass
class QuestionContext:
    """A worker's warm per-loop state for question-granularity sharding:
    the built context model on its live solver, plus the question
    schedule it answers positions from. ``degraded`` carries the
    buildModel failure message when the knowledge base could not be
    established (the parent then never asks; it degrades the loop the
    same way the serial path does)."""

    loop: Loop
    model: _ContextModel
    solver: Solver
    schedule: List[_ScheduledQuestion]
    stats: AnalysisStats
    degraded: Optional[str] = None


@dataclass(frozen=True)
class _EngineConfig:
    """Immutable analysis configuration (see the satellite bugfix note
    on :class:`FormADEngine`: the per-loop result cache keys on the
    loop's uid only, which is sound precisely because this record
    cannot change after construction)."""

    max_theory_checks: int
    node_budget: int
    use_increment_detection: bool
    use_activity: bool
    use_instances: bool
    use_contexts: bool
    incremental: bool
    use_question_memo: bool
    #: Constructor used for every solver the engine builds; receives
    #: the standard ``Solver`` keyword arguments. The audit subsystem
    #: swaps in its fault-injecting ``ChaosSolver`` here.
    solver_factory: Optional[object] = None
    #: Wall-clock cap per exploitation question (seconds); None means
    #: only the run deadline (if any) applies.
    question_timeout: Optional[float] = None
    #: Retry ladder for timed-out / budget-exhausted questions. The
    #: default never retries, so runs without resilience flags are
    #: byte-identical to builds without the resilience layer.
    escalation: EscalationPolicy = NO_ESCALATION


class _ZeroInstances:
    """Degenerate instance numbering for the §5.2 ablation: every use
    of a variable maps to instance 0."""

    def instance_at(self, stmt, var: str) -> int:
        return 0

    def qualified_name(self, stmt, var: str) -> str:
        return f"{var}_0"


def _render_tuple(terms: Sequence[Term]) -> str:
    if len(terms) == 1:
        return render_term(terms[0])
    return "(" + ", ".join(render_term(t) for t in terms) + ")"


class _ContextModel:
    """The paper's buildModel on one shared incremental solver.

    The seed built one solver per context, re-asserting the inherited
    prefix each time and re-translating the whole stack on every check.
    Here a single solver walks the context tree: the root axiom and the
    root context's facts live at the solver's base level, every deeper
    context is one push level holding its own facts, and navigation
    between contexts pops up to the common ancestor and pushes back
    down. With the incremental solver this makes each consistency check
    translate one new fact and each exploitation question translate only
    the question.
    """

    def __init__(self, solver: Solver, axiom: FAtom,
                 facts_by_context: Dict[int, List],
                 stats: AnalysisStats) -> None:
        self._solver = solver
        self._facts = facts_by_context
        self._stats = stats
        self._path: List[Context] = []
        solver.add(axiom)

    def build(self, root: Context) -> None:
        """DFS consistency pass: every fact is asserted exactly once in
        its owning context, with a satisfiability safeguard check after
        each addition (the paper's recursive buildModel)."""
        self._add_facts(root, check=True)

        def rec(ctx: Context) -> None:
            for child in ctx.children:
                self._solver.push()
                self._add_facts(child, check=True)
                rec(child)
                self._solver.pop()

        rec(root)
        self._path = [root]

    def ask(self, ctx: Context, question: Formula, *,
            deadline: Optional[Deadline] = None,
            budget_scale: float = 1.0,
            ) -> Tuple[Result, Optional[Dict[str, int]], Optional[str]]:
        """Answer one exploitation question under *ctx*'s knowledge.

        Returns ``(result, witness, reason)``: for SAT answers the
        witness model — the concrete counter/scalar values under which
        the two adjoint references collide (the provenance trail's
        counterexample) — and for UNKNOWN answers the structured
        reason (timeout / budget / solver-unknown). ``deadline`` caps
        this one question; ``budget_scale`` is the escalation ladder's
        retry-with-bigger-budgets knob."""
        self._navigate(ctx)
        solver = self._solver
        solver.push()
        try:
            solver.add(question)
            result = solver.check(deadline=deadline,
                                  budget_scale=budget_scale)
            witness = solver.model() if result is SAT else None
            reason = (getattr(solver, "last_unknown_reason", None)
                      if result is UNKNOWN else None)
            return result, witness, reason
        finally:
            solver.pop()

    # ------------------------------------------------------------------
    def _add_facts(self, ctx: Context, check: bool) -> None:
        for fact in self._facts.get(ctx.uid, []):
            self._solver.add(fact.formula)
            if check:
                self._stats.consistency_checks += 1
                try:
                    result = self._solver.check()
                except Exception as exc:
                    # Solver failure (budget blown, injected fault, bug)
                    # is NOT evidence of a primal race — degrade to
                    # safeguards instead of accusing the input.
                    raise KnowledgeDegradedError(
                        f"solver failure during buildModel at {fact}: "
                        f"{exc}") from exc
                if result is UNSAT:
                    raise PrimalRaceError(
                        f"inconsistent knowledge while adding {fact}: the "
                        f"primal parallel loop cannot be correctly "
                        f"parallelized")
                if result is not SAT:
                    reason = getattr(self._solver, "last_unknown_reason",
                                     None) or "solver-unknown"
                    raise KnowledgeDegradedError(
                        f"consistency check UNKNOWN ({reason}) while "
                        f"adding {fact}")

    def _navigate(self, ctx: Context) -> None:
        """Pop/push the solver to *ctx*'s model state. Re-descending
        re-asserts facts without consistency checks — they were proven
        consistent during :meth:`build`."""
        target = list(ctx.ancestors())
        target.reverse()                 # root ... ctx
        keep = 0
        limit = min(len(self._path), len(target))
        while keep < limit and self._path[keep] is target[keep]:
            keep += 1
        keep = max(keep, 1)              # the root level is never popped
        while len(self._path) > keep:
            self._solver.pop()
            self._path.pop()
        for c in target[len(self._path):]:
            self._solver.push()
            self._path.append(c)
            self._add_facts(c, check=False)


class FormADEngine:
    """Analyzes the parallel loops of one procedure.

    The ``use_*`` flags disable individual analysis ingredients for
    ablation studies (see ``benchmarks/test_ablations.py``):

    * ``use_increment_detection`` — §5.4: with it off, primal exact
      increments are treated as plain read+write, so their adjoints
      count as writes and the pair count grows;
    * ``use_activity`` — §5.4: with it off, every real array is tested,
      not only the active ones;
    * ``use_instances`` — §5.2: with it off, every use of a scalar gets
      instance 0. **Unsound** — knowledge about one definition would be
      applied to another; kept only to demonstrate why the paper needs
      instance numbering (the tests show a wrong proof without it);
    * ``use_contexts`` — §5.1: with it off, all knowledge attaches to
      the root context. **Unsound** for may-executed branches, kept for
      the same demonstrative purpose.

    Performance knobs: ``incremental`` selects the incremental solver
    pipeline (the from-scratch baseline is kept for benchmarking), and
    ``use_question_memo`` enables the per-region (common-root context,
    question) → result memo.

    All configuration is **immutable after construction** — the flags
    are read-only properties over a frozen record. This is what makes
    the per-loop result cache (keyed on ``loop.uid`` alone) sound: a
    cached :class:`LoopAnalysis` can never describe a different flag
    combination than the engine's current one. To analyze under other
    flags, build another engine.
    """

    def __init__(
        self,
        proc: Procedure,
        activity: ActivityAnalysis,
        *,
        max_theory_checks: int = 20000,
        node_budget: int = 2000,
        use_increment_detection: bool = True,
        use_activity: bool = True,
        use_instances: bool = True,
        use_contexts: bool = True,
        incremental: bool = True,
        use_question_memo: bool = True,
        solver_factory=None,
        tracer: NullTracer = NULL_TRACER,
        deadline: Optional[Deadline] = None,
        question_timeout: Optional[float] = None,
        escalation: Optional[EscalationPolicy] = None,
        journal=None,
        resume=None,
        cache=None,
    ) -> None:
        self.proc = proc
        self.activity = activity
        self.tracer = tracer
        self._config = _EngineConfig(
            max_theory_checks=max_theory_checks,
            node_budget=node_budget,
            use_increment_detection=use_increment_detection,
            use_activity=use_activity,
            use_instances=use_instances,
            use_contexts=use_contexts,
            incremental=incremental,
            use_question_memo=use_question_memo,
            solver_factory=solver_factory,
            question_timeout=question_timeout,
            escalation=escalation or NO_ESCALATION,
        )
        # Run state, deliberately outside the frozen config: the
        # deadline is a live clock and the journal/resume handles are
        # I/O seams (see docs/RESILIENCE.md). They can only ever turn
        # verdicts into UNKNOWN or replay identical ones, so the
        # per-loop result cache stays sound.
        self._deadline = deadline
        self._journal = journal
        self._resume = resume
        self._vcache = cache
        self._loop_keys: Dict[int, str] = {
            loop.uid: f"{ordinal}:{loop.var}"
            for ordinal, loop in enumerate(proc.parallel_loops())}
        self._cache: Dict[int, LoopAnalysis] = {}
        self._cache_lock = threading.Lock()

    # Read-only views of the frozen configuration.
    @property
    def max_theory_checks(self) -> int:
        return self._config.max_theory_checks

    @property
    def node_budget(self) -> int:
        return self._config.node_budget

    @property
    def use_increment_detection(self) -> bool:
        return self._config.use_increment_detection

    @property
    def use_activity(self) -> bool:
        return self._config.use_activity

    @property
    def use_instances(self) -> bool:
        return self._config.use_instances

    @property
    def use_contexts(self) -> bool:
        return self._config.use_contexts

    @property
    def incremental(self) -> bool:
        return self._config.incremental

    @property
    def use_question_memo(self) -> bool:
        return self._config.use_question_memo

    @property
    def question_timeout(self) -> Optional[float]:
        return self._config.question_timeout

    @property
    def escalation(self) -> EscalationPolicy:
        return self._config.escalation

    @property
    def deadline(self) -> Optional[Deadline]:
        return self._deadline

    def attach_run_state(self, *, journal=None, resume=None,
                         cache=None, deadline=None) -> None:
        """Late-bind the journal writer, resume state, cross-run
        verdict cache, and/or run deadline.

        The CLI needs this ordering seam: the journal and cache
        fingerprints are computed from :meth:`fingerprint_flags`, which
        needs a constructed engine. All four are run state, not
        configuration (see ``__init__``), so binding them late cannot
        invalidate the per-loop result cache — but attach them before
        the first ``analyze_loop`` call or early loops go unjournaled.
        The serve workers of ``--backend process`` rebind ``deadline``
        per shard request: the parent ships the remaining run budget
        with every request, and a fresh :class:`Deadline` anchors it to
        the worker's own clock.
        """
        if journal is not None:
            self._journal = journal
        if resume is not None:
            self._resume = resume
        if cache is not None:
            self._vcache = cache
        if deadline is not None:
            self._deadline = deadline

    def loop_key(self, loop: Loop) -> str:
        """The structural journal key of *loop* (``"<ordinal>:<var>"``
        — stable across processes, unlike ``loop.uid``)."""
        return self._loop_keys[loop.uid]

    def fingerprint_flags(self) -> Dict[str, object]:
        """The configuration flags that shape the question stream —
        folded into the journal fingerprint so a journal is only ever
        replayed into an identically-configured analysis. Deadlines,
        timeouts, and escalation are deliberately excluded: resuming
        an interrupted run with a *longer* deadline is the intended
        recovery flow, and replayed SAT/UNSAT answers stay sound under
        any resource configuration."""
        return {
            "max_theory_checks": self.max_theory_checks,
            "node_budget": self.node_budget,
            "use_increment_detection": self.use_increment_detection,
            "use_activity": self.use_activity,
            "use_instances": self.use_instances,
            "use_contexts": self.use_contexts,
            "incremental": self.incremental,
            "use_question_memo": self.use_question_memo,
        }

    def analyze_all(self, jobs: Optional[int] = None) -> List[LoopAnalysis]:
        """Analyze every parallel loop of the procedure.

        ``jobs`` > 1 fans independent regions out over a thread pool
        (regions share no solver state; the global formula caches are
        thread-safe). The result order matches the loop order either
        way.
        """
        loops = list(self.proc.parallel_loops())
        if jobs is not None and jobs > 1 and len(loops) > 1:
            with ThreadPoolExecutor(max_workers=min(jobs, len(loops))) as pool:
                return list(pool.map(self.analyze_loop, loops))
        return [self.analyze_loop(loop) for loop in loops]

    def analyze_loop(self, loop: Loop) -> LoopAnalysis:
        with self._cache_lock:
            cached = self._cache.get(loop.uid)
        if cached is None:
            analysis = self._replay_settled(loop)
            if analysis is None:
                analysis = self._replay_cached(loop)
            if analysis is None:
                analysis = self._analyze(loop)
            with self._cache_lock:
                cached = self._cache.setdefault(loop.uid, analysis)
        return cached

    def _replay_settled(self, loop: Loop) -> Optional[LoopAnalysis]:
        """The ``--resume`` fast path: rebuild a loop the journal
        records as fully settled instead of re-analyzing it."""
        if self._resume is None:
            return None
        key = self.loop_key(loop)
        done = self._resume.loop_done(key)
        if done is None or done.get("degraded"):
            # A degraded record is a safeguard fallback, not settled
            # knowledge — the resumed run re-analyzes that loop (its
            # individual SAT/UNSAT question records still replay).
            return None
        from ..resilience.journal import rebuild_analysis
        analysis = rebuild_analysis(loop, done, self._resume.verdicts(key))
        logger.info("loop over %r: replayed settled verdicts from the "
                    "resume journal", loop.var)
        if self.tracer.enabled:
            self.tracer.emit("resumed", loop=loop.var)
        # ``appending`` is part of the journal writer contract (see
        # JournalWriter) — a writer that cannot answer it is a bug, so
        # no duck-typed default here.
        if self._journal is not None and not self._journal.appending:
            # Resuming into a *fresh* journal: re-emit the settled
            # records so the new journal is itself resumable.
            self._journal_loop(key, analysis)
        return analysis

    def _replay_cached(self, loop: Loop) -> Optional[LoopAnalysis]:
        """The ``--cache-dir`` fast path: rebuild a loop the cross-run
        verdict cache holds as fully settled *and clean*. Unlike the
        resume path the rebuilt analysis is not marked ``resumed`` —
        the cache stores only clean loops with their complete counters,
        so the replay is presented (and JSON-serialized) exactly as the
        cold analysis was (docs/SCALING.md)."""
        if self._vcache is None:
            return None
        key = self.loop_key(loop)
        done = self._vcache.loop_done(key)
        if done is None or done.get("degraded"):
            return None
        from ..resilience.journal import rebuild_analysis
        analysis = rebuild_analysis(loop, done, self._vcache.verdicts(key),
                                    resumed=False)
        # The cache stores only clean loops, so the replay *is* settled
        # clean knowledge: mark it cacheable so run-level consumers
        # (the serve daemon's memo) treat warm and cold runs alike.
        analysis.cacheable = True
        self._vcache.loop_hits += 1
        logger.info("loop over %r: replayed settled verdicts from the "
                    "cross-run cache", loop.var)
        if self.tracer.enabled:
            self.tracer.emit("cached", loop=loop.var)
        if self._journal is not None:
            # The journal describes *this* run, which never asked these
            # questions — record the settled result so the journal
            # stays resumable on its own.
            self._journal_loop(key, analysis)
        return analysis

    def _loop_records(self, key: str, analysis: LoopAnalysis,
                      ) -> List[Tuple[str, dict]]:
        """*analysis* as journal-shaped ``(kind, fields)`` records —
        the shared serialization of the journal, the worker reply
        channel, and the verdict cache."""
        records: List[Tuple[str, dict]] = []
        for verdict in analysis.verdicts.values():
            records.append(("verdict", {
                "loop": key, "array": verdict.array, "safe": verdict.safe,
                "pairs_total": verdict.pairs_total,
                "pairs_proven": verdict.pairs_proven,
                "reason": verdict.reason}))
        stats = {name: getattr(analysis.stats, name)
                 for name in AnalysisStats.__dataclass_fields__}
        records.append(("loop_done", {
            "loop": key, "stats": stats,
            "safe_writes": list(analysis.safe_write_expressions),
            "offending": list(analysis.offending_expressions),
            "degraded": analysis.degraded}))
        return records

    def _journal_loop(self, key: str, analysis: LoopAnalysis) -> None:
        for kind, fields in self._loop_records(key, analysis):
            self._journal.record(kind, **fields)

    def knowledge(self, loop: Loop) -> Tuple[FAtom, KnowledgeBase]:
        """Phase-1 output for *loop*: the root axiom and the knowledge
        base (exposed for tests and tooling, e.g. the incremental-solver
        property harness)."""
        refs, translator, kb, axiom = self._extract(loop)
        return axiom, kb

    # ------------------------------------------------------------------
    def _new_solver(self) -> Solver:
        factory = self._config.solver_factory or Solver
        return factory(max_theory_checks=self.max_theory_checks,
                       node_budget=self.node_budget,
                       incremental=self.incremental,
                       tracer=self.tracer,
                       deadline=self._deadline)

    def _extract(self, loop: Loop):
        """Shared phase-1 setup: references, translator, knowledge."""
        refs = collect_region_references(loop.body)
        if self.use_instances:
            instancer = number_instances(loop.body, list(self.proc.scalars()))
        else:
            instancer = _ZeroInstances()
        assigned_scalars = self._scalars_assigned_in(loop)
        primed = frozenset(loop.private_names() | assigned_scalars)
        written_arrays = frozenset(
            name for name in refs.arrays()
            if any(a.kind.is_write for a in refs.of_array(name)))
        translator = IndexTranslator(instancer, primed, written_arrays)
        kb = extract_knowledge(refs, translator,
                               use_contexts=self.use_contexts)
        axiom = self._root_axiom(loop, translator)
        return refs, translator, kb, axiom

    def _analyze(self, loop: Loop, remote=None) -> LoopAnalysis:
        with self.tracer.span("analysis.loop", loop=loop.var, uid=loop.uid):
            return self._analyze_traced(loop, remote)

    def _analyze_traced(self, loop: Loop, remote=None) -> LoopAnalysis:
        start = time.perf_counter()
        tracer = self.tracer
        stats = AnalysisStats()
        refs, translator, kb, axiom = self._extract(loop)
        stats.skipped_pairs = kb.skipped_pairs
        stats.model_size = 1 + kb.size
        logger.debug("loop over %r: %d knowledge facts, %d pairs skipped",
                     loop.var, kb.size, kb.skipped_pairs)
        if tracer.enabled:
            for fact in kb.facts:
                tracer.emit("fact", loop=loop.var,
                            context=fact.context.path(),
                            array=fact.source_array,
                            formula=str(fact.formula))

        solver: Optional[Solver] = None
        model: Optional[_ContextModel] = None
        degraded: Optional[KnowledgeDegradedError] = None
        if remote is not None:
            # Question-granularity sharding: the worker pool holds the
            # solvers and context models; this process keeps the plan,
            # the merge, and every side effect (memo, journal, verdict
            # cache, trace) — single-writer by construction.
            with tracer.span("analysis.build_model", loop=loop.var):
                prep = remote.prepare(refs, translator)
                stats.consistency_checks += prep["consistency_checks"]
                if prep.get("degraded"):
                    degraded = KnowledgeDegradedError(prep["degraded"])
        else:
            solver = self._new_solver()
            by_context: Dict[int, List] = {}
            for fact in kb.facts:
                by_context.setdefault(fact.context.uid, []).append(fact)
            model = _ContextModel(solver, axiom, by_context, stats)
            with tracer.span("analysis.build_model", loop=loop.var):
                try:
                    model.build(refs.contexts.root)
                except KnowledgeDegradedError as exc:
                    # The knowledge base could not be established (solver
                    # failure/UNKNOWN, not a primal race): every candidate
                    # array keeps its safeguard. Never crash, never share.
                    degraded = exc

        verdicts: Dict[str, ArrayVerdict] = {}
        safe_writes: List[str] = []
        offending: List[str] = []
        memo: Optional[Dict[Tuple[int, Formula],
                            Tuple[Result, Optional[Dict[str, int]]]]] = (
            {} if self.use_question_memo else None)
        # Paper Table 1: "number of unique index expressions included in
        # the model" — the knowledge side (LBM: the 19 safe write
        # expressions), not the question expressions.
        unique_exprs: Set[str] = set()
        for fact in kb.facts:
            unique_exprs.add(_render_tuple(fact.right))

        if degraded is not None:
            logger.warning("loop over %r: knowledge degraded (%s); all "
                           "candidate arrays keep their safeguards",
                           loop.var, degraded)
            if tracer.enabled:
                tracer.emit("degraded", loop=loop.var, phase="build_model",
                            reason=str(degraded))

        # Loop health, for the verdict cache's cleanliness rule: any
        # contained solver failure or cache-replayed answer makes the
        # loop's counters non-canonical, so it must not be stored.
        health = {"failures": 0, "cached": 0}
        for array in self._candidate_arrays(refs):
            if degraded is not None:
                # Count the questions this array *would* have asked
                # (without solving) so Table-1 totals stay independent
                # of where a fault struck, then keep every safeguard.
                verdict = self._degraded_verdict(
                    loop, array, refs, translator, stats,
                    f"knowledge degraded: {degraded}")
            else:
                with tracer.span("analysis.array", loop=loop.var,
                                 array=array):
                    verdict = self._test_array(
                        loop, array, refs, translator, model, memo, stats,
                        offending, health,
                        asker=remote.answer if remote is not None else None)
            verdicts[array] = verdict
            logger.debug("loop over %r: %s", loop.var, verdict)
            if tracer.enabled:
                tracer.emit("verdict", loop=loop.var, array=array,
                            safe=verdict.safe,
                            pairs_total=verdict.pairs_total,
                            pairs_proven=verdict.pairs_proven,
                            reason=verdict.reason)

        # The paper's LBM listing: the set of known-safe write
        # expressions extracted from the primal.
        seen: Set[str] = set()
        for fact in kb.facts:
            r = _render_tuple(fact.right)
            if r not in seen:
                seen.add(r)
                safe_writes.append(r)

        stats.unique_exprs = len(unique_exprs)
        stats.region_loc = max(0, len(format_stmt(loop)) - 2)
        if remote is not None:
            stats.absorb_solver_totals(remote.solver_totals())
        else:
            stats.absorb_solver(solver)
        stats.time_seconds = time.perf_counter() - start
        logger.info(
            "analyzed loop over %r: %d/%d arrays safe, %d queries "
            "(%d memo hits) in %.3fs", loop.var,
            sum(v.safe for v in verdicts.values()), len(verdicts),
            stats.queries, stats.memo_hits, stats.time_seconds)
        analysis = LoopAnalysis(loop, verdicts, stats, safe_writes,
                                offending, degraded=degraded is not None)
        analysis.cacheable = (degraded is None
                              and health["failures"] == 0
                              and health["cached"] == 0
                              and stats.timed_out_questions == 0
                              and stats.solver_unknown == 0
                              and stats.resumed_questions == 0)
        key = self.loop_key(loop)
        if self._journal is not None:
            self._journal_loop(key, analysis)
        if self._vcache is not None and analysis.cacheable:
            records = self._loop_records(key, analysis)
            self._vcache.store_loop(
                key, next(f for k, f in records if k == "loop_done"),
                [f for k, f in records if k == "verdict"])
        return analysis

    def _candidate_arrays(self, refs: RegionReferences) -> List[str]:
        """The arrays whose adjoints this region must prove or guard:
        active arrays (or every real array with §5.4 activity ablated)."""
        from ..ir.types import Kind
        out: List[str] = []
        for array in refs.arrays():
            if self.use_activity:
                if array not in self.activity.active:
                    continue
            elif not (self.proc.has_symbol(array)
                      and self.proc.type_of(array).kind is Kind.REAL):
                continue
            out.append(array)
        return out

    def _scalars_assigned_in(self, loop: Loop) -> Set[str]:
        from ..ir.expr import Var
        from ..ir.stmt import walk_stmts
        out: Set[str] = set()
        for stmt in walk_stmts(loop.body):
            if isinstance(stmt, Assign) and isinstance(stmt.target, Var):
                out.add(stmt.target.name)
            elif isinstance(stmt, Loop):
                out.add(stmt.var)
        return out

    def _root_axiom(self, loop: Loop, translator: IndexTranslator) -> FAtom:
        """``i' ≠ i``: two threads never share a counter value (§5.3)."""
        from ..ir.expr import Var
        body = loop.body
        if body:
            stmt = body[0]
            plain = translator.translate(Var(loop.var), stmt, primed=False)
            prime = translator.translate(Var(loop.var), stmt, primed=True)
        else:  # pragma: no cover - empty parallel loops are pointless
            from ..smt.terms import TVar
            plain, prime = TVar(f"{loop.var}_0"), TVar(f"{loop.var}_0'")
        return FAtom(Rel.NE, prime, plain)

    def _adjoint_refs(
        self, array: str, refs: RegionReferences, translator: IndexTranslator,
    ) -> Tuple[List[_QuestionRef], List[_QuestionRef]]:
        """Future adjoint (writes, reads) for one array, deduplicated by
        rendered index tuple + context."""
        writes: List[_QuestionRef] = []
        reads: List[_QuestionRef] = []
        seen: Set[Tuple[str, int, bool]] = set()
        for access in refs.of_array(array):
            if is_atomic_access(access):
                raise UntranslatableError(
                    f"atomic primal access to active array {array!r}")
            plain = translator.translate_tuple(access.indices, access.stmt,
                                               primed=False)
            prime = translator.translate_tuple(access.indices, access.stmt,
                                               primed=True)
            ctx = (refs.context_of(access) if self.use_contexts
                   else refs.contexts.root)
            # §5.4: primal exact increments yield read-only adjoints.
            # With increment detection ablated they count as writes too.
            is_write = access.kind in (AccessKind.READ, AccessKind.WRITE) \
                or not self.use_increment_detection
            key = (_render_tuple(plain), ctx.uid, is_write)
            if key in seen:
                continue
            seen.add(key)
            q = _QuestionRef(plain, prime, ctx, _render_tuple(plain))
            # read -> adjoint increment (write); write -> adjoint zero
            # (write); increment -> adjoint read (§5.4).
            if is_write:
                writes.append(q)
            else:
                reads.append(q)
        return writes, reads

    @staticmethod
    def _memo_key(ctx: Context, question: Formula) -> Tuple[int, Formula]:
        """Question-memo key: the context's *stable* uid plus the
        question formula. Never ``id(ctx)`` — CPython reuses addresses
        of collected objects, so an id-keyed memo can serve the verdict
        of a dead context to a new one that happens to be allocated at
        the same address (PR-3 regression: tests/formad/test_memo.py)."""
        return (ctx.uid, question)

    @staticmethod
    def _question_pairs(
        writes: List[_QuestionRef], reads: List[_QuestionRef],
    ) -> List[Tuple[_QuestionRef, _QuestionRef]]:
        """Every adjoint reference pair with at least one write."""
        pairs: List[Tuple[_QuestionRef, _QuestionRef]] = []
        for i, w in enumerate(writes):
            for other in writes[i:]:
                pairs.append((w, other))
            for r in reads:
                pairs.append((w, r))
        return pairs

    def _ask_escalating(
        self,
        model: _ContextModel,
        ctx: Context,
        question: Formula,
        stats: AnalysisStats,
        qkey: str,
        array: str,
    ) -> Tuple[Result, Optional[Dict[str, int]], Optional[str],
               Optional[str], int]:
        """Ask one question under the resilience policy.

        Returns ``(result, witness, reason, failure, attempts)``. The
        first ask runs with unscaled budgets; UNKNOWNs whose reason is
        retryable (timeout / budget) climb the escalation ladder with
        enlarged budgets and a fresh per-question deadline, until the
        ladder or the run deadline is exhausted. Solver exceptions are
        contained as UNKNOWN and never retried.
        """
        run_deadline = self._deadline
        if run_deadline is not None and run_deadline.expired():
            # The run is out of time: answer without touching the
            # solver (still counted and traced by the caller, so the
            # question totals never depend on when time ran out).
            return UNKNOWN, None, "timeout", None, 0
        policy = self._config.escalation
        scales: List[float] = [1.0]
        if policy.enabled:
            scales.extend(policy.scales(qkey))
        result: Result = UNKNOWN
        witness: Optional[Dict[str, int]] = None
        reason: Optional[str] = None
        failure: Optional[str] = None
        attempts = 0
        for index, scale in enumerate(scales):
            if index > 0:
                if run_deadline is not None and run_deadline.expired():
                    break
                stats.escalations += 1
            attempts += 1
            deadline = per_question(run_deadline,
                                    self._config.question_timeout)
            try:
                result, witness, reason = model.ask(
                    ctx, question, deadline=deadline, budget_scale=scale)
            except Exception as exc:
                # A solver crash on one question must neither kill the
                # analysis nor leave the array shared; treat it as an
                # unanswerable (UNKNOWN) question. Never memoized or
                # retried: a fresh run may succeed.
                result, witness, reason = UNKNOWN, None, None
                failure = f"{type(exc).__name__}: {exc}"
                logger.warning("solver failure on exploitation question "
                               "for %r: %s", array, failure)
                break
            if result is not UNKNOWN:
                break
            if not (policy.enabled and reason is not None
                    and policy.retryable(reason)):
                break
        return result, witness, reason, failure, attempts

    def _degraded_verdict(
        self,
        loop: Loop,
        array: str,
        refs: RegionReferences,
        translator: IndexTranslator,
        stats: AnalysisStats,
        reason: str,
    ) -> ArrayVerdict:
        """The safeguard verdict for one array when the analysis cannot
        run (knowledge degraded, run deadline expired before phase 2,
        or an isolated worker died). Enumerates and *counts* the
        exploitation questions the honest analysis would have asked —
        without solving — so the Table-1 question totals are
        independent of where a fault struck, and emits the matching
        provenance records so the trace trail stays complete."""
        tracer = self.tracer
        try:
            writes, reads = self._adjoint_refs(array, refs, translator)
        except UntranslatableError as exc:
            return ArrayVerdict(array, False, reason=str(exc))
        pairs = self._question_pairs(writes, reads)
        verdict = ArrayVerdict(array, False, pairs_total=len(pairs),
                               reason=reason)
        for w, other in pairs:
            if len(w.plain) != len(other.plain):
                # Structural, solver-independent early exit — mirrored
                # from _test_array so the counts line up.
                verdict.reason = "rank mismatch"
                break
            ctx = w.context.common_root(other.context)
            question = And(*[FAtom(Rel.EQ, lp, r)
                             for lp, r in zip(w.primed, other.plain)])
            stats.exploitation_checks += 1
            if tracer.enabled:
                tracer.emit("question", loop=loop.var, array=array,
                            context=ctx.path(), write=w.rendering,
                            other=other.rendering, question=str(question),
                            instances=sorted(formula_vars(question)),
                            result=UNKNOWN.name, memo_hit=False,
                            dur_s=0.0)
        return verdict

    def degraded_analysis(self, loop: Loop, reason: str, *,
                          phase: str = "worker") -> LoopAnalysis:
        """A complete safeguards-only :class:`LoopAnalysis` for *loop*,
        produced without touching the solver.

        The worker-isolation layer calls this in the parent process
        when an isolated child crashes, hangs past its kill timeout, or
        is OOM-killed: the loop's result becomes "every candidate array
        keeps its safeguard", with the planned question counts so the
        Table-1 totals stay fault-independent.
        """
        start = time.perf_counter()
        tracer = self.tracer
        stats = AnalysisStats()
        refs, translator, kb, axiom = self._extract(loop)
        stats.skipped_pairs = kb.skipped_pairs
        stats.model_size = 1 + kb.size
        if tracer.enabled:
            tracer.emit("degraded", loop=loop.var, phase=phase,
                        reason=reason)
        verdicts: Dict[str, ArrayVerdict] = {}
        for array in self._candidate_arrays(refs):
            verdict = self._degraded_verdict(loop, array, refs, translator,
                                             stats, reason)
            verdicts[array] = verdict
            if tracer.enabled:
                tracer.emit("verdict", loop=loop.var, array=array,
                            safe=verdict.safe,
                            pairs_total=verdict.pairs_total,
                            pairs_proven=verdict.pairs_proven,
                            reason=verdict.reason)
        safe_writes: List[str] = []
        seen: Set[str] = set()
        for fact in kb.facts:
            r = _render_tuple(fact.right)
            if r not in seen:
                seen.add(r)
                safe_writes.append(r)
        stats.unique_exprs = len(seen)
        stats.region_loc = max(0, len(format_stmt(loop)) - 2)
        stats.time_seconds = time.perf_counter() - start
        analysis = LoopAnalysis(loop, verdicts, stats, safe_writes, [],
                                degraded=True)
        if self._journal is not None:
            self._journal_loop(self.loop_key(loop), analysis)
        return analysis

    # -- question-granularity sharding ---------------------------------
    def question_schedule(self, loop: Loop, refs=None, translator=None,
                          ) -> List[_ScheduledQuestion]:
        """The loop's exploitation questions in serial ask order.

        Mirrors the enumeration of :meth:`_test_array` over
        :meth:`_candidate_arrays`: untranslatable arrays contribute
        nothing (serial fails them before asking), and an array's pair
        list is truncated at the first rank mismatch (serial breaks
        there). SAT early-breaks are *not* modeled — the schedule is
        the maximal plan; the sharding scheduler cancels the tail of an
        array's block when a SAT answer lands.
        """
        if refs is None or translator is None:
            refs, translator, _kb, _axiom = self._extract(loop)
        schedule: List[_ScheduledQuestion] = []
        for array in self._candidate_arrays(refs):
            try:
                writes, reads = self._adjoint_refs(array, refs, translator)
            except UntranslatableError:
                continue
            for w, other in self._question_pairs(writes, reads):
                if len(w.plain) != len(other.plain):
                    break
                ctx = w.context.common_root(other.context)
                question = And(*[FAtom(Rel.EQ, lp, r)
                                 for lp, r in zip(w.primed, other.plain)])
                schedule.append(_ScheduledQuestion(
                    position=len(schedule), array=array, w=w, other=other,
                    ctx=ctx, question=question))
        return schedule

    def prepare_question_context(self, loop: Loop) -> QuestionContext:
        """Build one worker's warm state for *loop*: extract knowledge,
        run buildModel on a fresh solver, and compute the question
        schedule. :class:`PrimalRaceError` propagates (it is a verdict
        about the input, not a fault); buildModel faults surface as
        ``degraded`` so the parent can keep every safeguard."""
        stats = AnalysisStats()
        refs, translator, kb, axiom = self._extract(loop)
        solver = self._new_solver()
        by_context: Dict[int, List] = {}
        for fact in kb.facts:
            by_context.setdefault(fact.context.uid, []).append(fact)
        model = _ContextModel(solver, axiom, by_context, stats)
        degraded: Optional[str] = None
        try:
            model.build(refs.contexts.root)
        except KnowledgeDegradedError as exc:
            degraded = str(exc)
        schedule = self.question_schedule(loop, refs, translator)
        return QuestionContext(loop, model, solver, schedule, stats, degraded)

    def translate_question(self, qc: QuestionContext, position: int) -> None:
        """Fast-forward one schedule position without searching:
        navigate to its context, translate (and clausify) the question
        at a throwaway push level, and pop. This reproduces exactly the
        translate-history, Ackermann-naming, and clausify-cache state
        the serial analysis has after *asking* that question, so a
        worker that fast-forwards positions it does not own reports
        byte-identical per-question deltas for the positions it does."""
        entry = qc.schedule[position]
        qc.model._navigate(entry.ctx)
        solver = qc.solver
        solver.push()
        try:
            solver.add(entry.question)
            solver.translate_only()
        finally:
            solver.pop()

    def ask_question(self, qc: QuestionContext, position: int,
                     ) -> Tuple[Result, Optional[Dict[str, int]],
                                Optional[str], Optional[str], int]:
        """Answer one schedule position under the resilience policy —
        the worker-side counterpart of the serial ask in
        :meth:`_test_array`, with the identical escalation key."""
        entry = qc.schedule[position]
        loop_key = self.loop_key(qc.loop)
        return self._ask_escalating(
            qc.model, entry.ctx, entry.question, qc.stats,
            f"{loop_key}/{entry.array}/{entry.question}", entry.array)

    def _test_array(
        self,
        loop: Loop,
        array: str,
        refs: RegionReferences,
        translator: IndexTranslator,
        model: Optional[_ContextModel],
        memo: Optional[Dict[Tuple[int, Formula],
                            Tuple[Result, Optional[Dict[str, int]]]]],
        stats: AnalysisStats,
        offending: List[str],
        health: Optional[Dict[str, int]] = None,
        asker=None,
    ) -> ArrayVerdict:
        tracer = self.tracer
        loop_key = self.loop_key(loop)
        try:
            writes, reads = self._adjoint_refs(array, refs, translator)
        except UntranslatableError as exc:
            return ArrayVerdict(array, False, reason=str(exc))
        pairs = self._question_pairs(writes, reads)
        verdict = ArrayVerdict(array, True, pairs_total=len(pairs))
        for w, other in pairs:
            if len(w.plain) != len(other.plain):
                verdict.safe = False
                verdict.reason = "rank mismatch"
                break
            ctx = w.context.common_root(other.context)
            question = And(*[FAtom(Rel.EQ, lp, r)
                             for lp, r in zip(w.primed, other.plain)])
            stats.exploitation_checks += 1
            key = self._memo_key(ctx, question)
            entry = memo.get(key) if memo is not None else None
            memo_hit = entry is not None
            asked = 0.0
            failure: Optional[str] = None
            reason: Optional[str] = None
            attempts = 0
            resumed = False
            cached = False
            if memo_hit:
                stats.memo_hits += 1
                result, witness = entry
            else:
                settled = (self._resume.question(loop_key, ctx.path(),
                                                 str(question))
                           if self._resume is not None else None)
                if settled is not None:
                    # Replay a decided answer from the resume journal
                    # (only SAT/UNSAT records are ever settled; an
                    # UNKNOWN is always re-asked).
                    result = SAT if settled[0] == "sat" else UNSAT
                    witness = settled[1]
                    resumed = True
                    stats.resumed_questions += 1
                else:
                    hit = (self._vcache.question(loop_key, ctx.path(),
                                                 str(question))
                           if self._vcache is not None else None)
                    if hit is not None:
                        # Decided in an earlier run with the same
                        # fingerprint: answer from the cross-run cache
                        # (SAT/UNSAT only, like the resume journal).
                        result = SAT if hit[0] == "sat" else UNSAT
                        witness = hit[1]
                        cached = True
                        if health is not None:
                            health["cached"] += 1
                    elif asker is not None:
                        # Question sharding: the answer (and its timing)
                        # comes from a pool worker; the worker ran the
                        # same escalation ladder, so escalations are
                        # recovered from the attempt count exactly as
                        # _ask_escalating would have counted them.
                        result, witness, reason, failure, attempts, asked = \
                            asker(ctx, question, array)
                        stats.escalations += max(attempts - 1, 0)
                    else:
                        asked = time.perf_counter()
                        result, witness, reason, failure, attempts = \
                            self._ask_escalating(model, ctx, question, stats,
                                                 f"{loop_key}/{array}/"
                                                 f"{question}", array)
                        asked = time.perf_counter() - asked
                if failure is not None and health is not None:
                    health["failures"] += 1
                if memo is not None and failure is None and \
                        not (result is UNKNOWN and reason == "timeout"):
                    # Timeout UNKNOWNs are never memoized: a later
                    # identical question may still have time to run.
                    memo[key] = (result, witness)
                if self._vcache is not None and not resumed and not cached \
                        and failure is None and result is not UNKNOWN:
                    self._vcache.store_question(
                        loop_key, array, ctx.path(), str(question),
                        result.name.lower(),
                        witness if result is SAT else None)
                if self._journal is not None and not resumed \
                        and failure is None:
                    record = {"loop": loop_key, "array": array,
                              "ctx": ctx.path(), "q": str(question),
                              "result": result.name.lower()}
                    if result is SAT and witness is not None:
                        record["witness"] = witness
                    if result is UNKNOWN and reason is not None:
                        record["reason"] = reason
                    self._journal.record("question", **record)
            if result is UNKNOWN and reason == "timeout":
                stats.timed_out_questions += 1
            if tracer.enabled:
                # One provenance record per exploitation question: the
                # trail `repro explain` replays into a proof chain.
                extra = {}
                if witness is not None and result is not UNSAT:
                    extra["witness"] = witness
                if failure is not None:
                    extra["failure"] = failure
                if result is UNKNOWN and reason is not None:
                    extra["reason"] = reason
                if attempts > 1:
                    extra["attempts"] = attempts
                if resumed:
                    extra["resumed"] = True
                if cached:
                    extra["cached"] = True
                tracer.emit("question", loop=loop.var, array=array,
                            context=ctx.path(), write=w.rendering,
                            other=other.rendering, question=str(question),
                            instances=sorted(formula_vars(question)),
                            result=result.name, memo_hit=memo_hit,
                            dur_s=asked, **extra)
            if result is UNSAT:
                verdict.pairs_proven += 1
                continue
            verdict.safe = False
            if result is SAT:
                verdict.reason = (f"possible conflict between "
                                  f"{w.rendering} and {other.rendering}")
                offending.append(other.rendering)
                break
            # UNKNOWN (resource exhaustion, a deadline expiry, or an
            # injected/solver failure) is not a witness: the array
            # keeps its safeguard, but the remaining questions are
            # still asked so the Table-1 question count is independent
            # of where a solver fault strikes (and the provenance
            # trail stays complete).
            if not verdict.reason:
                if failure is not None:
                    verdict.reason = (f"solver failure on {w.rendering} vs "
                                      f"{other.rendering}: {failure}")
                elif reason == "timeout":
                    verdict.reason = (f"solver timeout on {w.rendering} vs "
                                      f"{other.rendering}")
                else:
                    verdict.reason = (f"solver UNKNOWN on {w.rendering} vs "
                                      f"{other.rendering}")
        return verdict

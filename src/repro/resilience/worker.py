"""Worker subprocess entry point: ``python -m repro.resilience.worker``.

Two modes share this module:

**One-shot** (the ``--isolate`` runtime, no arguments): read one JSON
request from stdin (see :mod:`~repro.resilience.workers` for the
contract), analyze exactly one parallel loop, write one JSON reply to
stdout, exit. Any unexpected failure exits non-zero — the parent maps
that to a per-loop *degraded* result.

**Serve** (the ``--backend process`` shard runtime, ``--serve``): a
persistent newline-delimited JSON loop. The parent sends one ``init``
request naming the program and engine flags, then any number of
``analyze`` requests — one per loop shard pulled from the parent's
work queue — and finally ``shutdown``. The worker never writes the
parent's journal, trace stream, or verdict cache: every record the
engine would journal is buffered by a :class:`_RecordCollector`,
every trace event by a :class:`~repro.obs.tracer.BufferTracer`, and
both travel back in the ``analyze`` reply for the parent — the single
writer — to apply (:mod:`~repro.resilience.shards`). The verdict
cache, when configured, is opened **readonly** here: lookups answer
questions locally, stores are the parent's job.

The serve loop also backs ``repro campaign``: an ``init`` with
``"mode": "audit"`` puts the worker in campaign mode, and each
``audit_case`` request runs one self-contained soundness-audit case
(:func:`repro.audit.campaign.execute_unit`) inside this process, so a
crash, hang, or injected fault takes down one case — never the
campaign.

In both modes a :class:`~repro.formad.engine.PrimalRaceError` is a
genuine finding, not a failure: it is reported in the reply
(``error``) and re-raised by the parent.

``REPRO_WORKER_FAULT`` injects deterministic faults for tests and the
CI resilience smoke job::

    REPRO_WORKER_FAULT="exit:3"        # exit with status 3
    REPRO_WORKER_FAULT="hang:600"      # sleep past the kill timeout
    REPRO_WORKER_FAULT="raise"         # crash with a RuntimeError
    REPRO_WORKER_FAULT="exit:3@1:j"    # ... only for loop key "1:j"

The optional ``@<loop_key>`` suffix restricts the fault to one loop,
leaving every other worker (and every other shard request) honest.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import List, Optional, Tuple


def _inject_fault(loop_key: str) -> None:
    spec = os.environ.get("REPRO_WORKER_FAULT")
    if not spec:
        return
    if "@" in spec:
        spec, target = spec.split("@", 1)
        if target != loop_key:
            return
    kind, _, arg = spec.partition(":")
    if kind == "exit":
        sys.exit(int(arg or "1"))
    elif kind == "hang":
        time.sleep(float(arg or "3600"))
    elif kind == "raise":
        raise RuntimeError(f"injected worker fault on loop {loop_key!r}")


class _RecordCollector:
    """Journal-writer contract implementation that buffers instead of
    writing: the serve worker's engine journals into one of these, and
    the buffered ``(kind, fields)`` records ship back to the parent in
    each reply. ``appending`` is False — this collector never holds
    prior records, so a settled loop replayed worker-side re-emits its
    records (the parent then journals them; a duplicate in an
    append-mode parent journal is idempotent under the resume index).
    """

    appending = False

    def __init__(self) -> None:
        self.records: List[Tuple[str, dict]] = []

    def record(self, kind: str, **fields) -> None:
        self.records.append((kind, fields))

    def drain(self) -> List[Tuple[str, dict]]:
        out = self.records
        self.records = []
        return out

    def close(self) -> None:
        return None


def _build_engine(request: dict, *, journal, tracer=None):
    """The shared engine construction of both modes."""
    from ..analysis.activity import ActivityAnalysis
    from ..formad.engine import FormADEngine
    from ..ir import parse_program
    from ..obs.tracer import NULL_TRACER
    from .deadline import Deadline
    from .escalate import EscalationPolicy
    from .journal import ResumeState

    program = parse_program(request["source"])
    proc = program[request["head"]]
    activity = ActivityAnalysis(proc, request["independents"],
                                request["dependents"])
    deadline = None
    if request.get("deadline_remaining") is not None:
        deadline = Deadline(float(request["deadline_remaining"]))
    escalation = None
    if request.get("escalation"):
        escalation = EscalationPolicy(**request["escalation"])
    resume = None
    if request.get("resume"):
        resume = ResumeState.load(request["resume"])
    cache = None
    if request.get("cache_dir") and request.get("fingerprint"):
        from .cache import VerdictCache
        cache = VerdictCache(request["cache_dir"], request["fingerprint"],
                             readonly=True)
    return FormADEngine(proc, activity, deadline=deadline,
                        question_timeout=request.get("question_timeout"),
                        escalation=escalation, journal=journal,
                        resume=resume, cache=cache,
                        tracer=tracer or NULL_TRACER,
                        **(request.get("flags") or {}))


def serialize_analysis(engine, loop_key: str, analysis) -> dict:
    """One settled :class:`~repro.formad.engine.LoopAnalysis` as the
    wire shape ``{"done": ..., "verdicts": [...]}`` that
    :func:`~repro.resilience.journal.rebuild_analysis` reverses. This
    is the shared per-loop serialization of the one-shot ``--isolate``
    reply and the ``repro serve`` daemon's analyze reply."""
    from ..formad.engine import AnalysisStats

    stats = {name: getattr(analysis.stats, name)
             for name in AnalysisStats.__dataclass_fields__}
    return {
        "done": {
            "loop": loop_key,
            "stats": stats,
            "safe_writes": list(analysis.safe_write_expressions),
            "offending": list(analysis.offending_expressions),
            "degraded": analysis.degraded,
        },
        "verdicts": [
            {"array": v.array, "safe": v.safe,
             "pairs_total": v.pairs_total, "pairs_proven": v.pairs_proven,
             "reason": v.reason}
            for v in analysis.verdicts.values()
        ],
    }


def main() -> int:
    request = json.load(sys.stdin)
    loop_key = str(request["loop_key"])
    _inject_fault(loop_key)

    from ..formad.engine import PrimalRaceError
    from .journal import JournalWriter

    journal = None
    if request.get("journal"):
        # Append: the parent already wrote the meta header, and loops
        # run sequentially, so the offsets never interleave.
        journal = JournalWriter(request["journal"], append=True)
    engine = _build_engine(request, journal=journal)
    target = None
    for loop in engine.proc.parallel_loops():
        if engine.loop_key(loop) == loop_key:
            target = loop
            break
    if target is None:
        print(json.dumps({"error": {
            "type": "KeyError",
            "message": f"no parallel loop with key {loop_key!r}"}}))
        return 1
    try:
        analysis = engine.analyze_loop(target)
    except PrimalRaceError as exc:
        print(json.dumps({"error": {"type": "PrimalRaceError",
                                    "message": str(exc)}}))
        return 0
    finally:
        if journal is not None:
            journal.close()
    print(json.dumps(serialize_analysis(engine, loop_key, analysis)))
    return 0


def _stats_snapshot(solver) -> dict:
    """Every ``SolverStats`` counter of *solver*, as a plain dict."""
    from ..smt.solver import SolverStats

    return {name: getattr(solver.stats, name)
            for name in SolverStats.__dataclass_fields__}


def _stats_delta(before: dict, after: dict) -> dict:
    return {name: after[name] - before[name] for name in after}


def serve() -> int:
    """The ``--serve`` request loop (one line in, one line out)."""
    from ..obs.tracer import BufferTracer
    from ..smt.clausify import clausify_cache_clear
    from .deadline import Deadline

    engine = None
    collector: Optional[_RecordCollector] = None
    tracer: Optional[BufferTracer] = None
    loops_by_key = {}
    cache = None
    # loop_key -> QuestionContext: the warm per-loop state of
    # --shard-unit question. One entry per loop; qreset/qdone drop it.
    qcontexts = {}

    def reply(payload: dict) -> None:
        # Every reply carries the worker's monotonic clock (the
        # parent's clock-offset handshake, repro.obs.clock) and drains
        # the buffered trace events — error replies included, so a
        # failed shard's telemetry still reaches the parent instead of
        # leaking into the next reply.
        payload["clock"] = time.perf_counter()
        if tracer is not None and "events" not in payload:
            payload["events"] = tracer.drain()
            payload["events_total"] = tracer.events_total
        sys.stdout.write(json.dumps(payload) + "\n")
        sys.stdout.flush()

    def _question_context(loop_key: str):
        """The warm context for *loop_key*, built on demand (a fresh or
        reset worker rebuilds it on its first qask; the parent then
        fast-forwards the full canonical prefix). Returns
        ``(qc, error_payload)`` — exactly one is non-None."""
        from ..formad.engine import PrimalRaceError

        qc = qcontexts.get(loop_key)
        if qc is not None:
            return qc, None
        target = loops_by_key.get(loop_key)
        if target is None:
            return None, {"loop": loop_key, "error": {
                "type": "KeyError",
                "message": f"no parallel loop with key {loop_key!r}"}}
        try:
            qc = engine.prepare_question_context(target)
        except PrimalRaceError as exc:
            return None, {"loop": loop_key, "error": {
                "type": "PrimalRaceError", "message": str(exc)}}
        qcontexts[loop_key] = qc
        return qc, None

    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        request = json.loads(line)
        op = request.get("op")
        if op == "shutdown":
            break
        if op == "init" and request.get("mode") == "audit":
            # Campaign mode: no program to parse — every audit_case
            # request is self-contained (it ships its own CaseSpec).
            # Reset any prior analysis-run state so a pool reused
            # across modes starts cold.
            clausify_cache_clear()
            engine = None
            collector = None
            tracer = None
            loops_by_key = {}
            qcontexts = {}
            reply({"ok": True, "loops": []})
            continue
        if op == "audit_case":
            # One subprocess-contained soundness-audit case. Faults
            # inject against the campaign case id, so a test can kill
            # exactly one case's worker and leave the rest honest.
            case_id = str(request.get("case", ""))
            _inject_fault(case_id)
            from ..audit.campaign import execute_unit
            try:
                payload = execute_unit(request)
            except Exception as exc:  # contained: the parent retries
                payload = {"case": case_id,
                           "error": {"type": type(exc).__name__,
                                     "message": str(exc)}}
            reply(payload)
            continue
        if op == "init":
            # One engine per init; a re-init (a parent reusing the
            # process for another run) starts from cold caches so
            # counters stay run-deterministic.
            clausify_cache_clear()
            collector = _RecordCollector()
            tracer = BufferTracer() if request.get("trace") else None
            engine = _build_engine(request, journal=collector,
                                   tracer=tracer)
            cache = engine._vcache
            loops_by_key = {engine.loop_key(loop): loop
                            for loop in engine.proc.parallel_loops()}
            qcontexts = {}
            reply({"ok": True, "loops": sorted(loops_by_key)})
            continue
        if op in ("qprepare", "qask", "qreset", "qdone") \
                and engine is not None:
            loop_key = str(request["loop_key"])
            if op == "qdone":
                # The loop is merged: drop the warm context, keep the
                # clausify cache (serial keeps its warmth across loops
                # too).
                qcontexts.pop(loop_key, None)
                reply({"loop": loop_key, "ok": True})
                continue
            if op == "qreset":
                # This worker fast-forwarded positions a SAT answer
                # cancelled: its solver *and* the process-global
                # clausify cache saw formulas the serial run never
                # translates. Drop both; the next qask rebuilds and
                # re-fast-forwards the canonical prefix only.
                qcontexts.pop(loop_key, None)
                clausify_cache_clear()
                reply({"loop": loop_key, "ok": True})
                continue
            _inject_fault(loop_key)
            if request.get("deadline_remaining") is not None:
                engine.attach_run_state(
                    deadline=Deadline(float(request["deadline_remaining"])))
            qc, error = _question_context(loop_key)
            if error is not None:
                reply(error)
                continue
            if op == "qprepare":
                payload = {"loop": loop_key, "ok": True,
                           "degraded": qc.degraded,
                           "consistency_checks":
                               qc.stats.consistency_checks,
                           "schedule_len": len(qc.schedule),
                           "solver_stats": _stats_snapshot(qc.solver)}
                reply(payload)
                continue
            # qask: fast-forward the positions this worker missed, then
            # answer the dispatched position. The stats window opens
            # *after* the fast-forward — ff deltas duplicate the owning
            # workers' shipped deltas and must stay local.
            qc.solver.deadline = engine.deadline
            position = int(request["position"])
            for pos in request.get("ff") or []:
                engine.translate_question(qc, int(pos))
            if tracer is not None:
                tracer.drain()  # ff/prepare events: owning replies carry them
            before = _stats_snapshot(qc.solver)
            t0 = time.perf_counter()
            result, witness, reason, failure, attempts = \
                engine.ask_question(qc, position)
            dur_s = time.perf_counter() - t0
            payload = {"loop": loop_key, "position": position,
                       "result": result.name, "witness": witness,
                       "reason": reason, "failure": failure,
                       "attempts": attempts, "dur_s": dur_s,
                       "solver_stats": _stats_delta(
                           before, _stats_snapshot(qc.solver))}
            reply(payload)
            continue
        if op != "analyze" or engine is None:
            reply({"error": {"type": "ValueError",
                             "message": f"bad request op {op!r}"}})
            continue
        loop_key = str(request["loop_key"])
        _inject_fault(loop_key)
        target = loops_by_key.get(loop_key)
        if target is None:
            reply({"loop": loop_key, "error": {
                "type": "KeyError",
                "message": f"no parallel loop with key {loop_key!r}"}})
            continue
        if request.get("deadline_remaining") is not None:
            engine.attach_run_state(
                deadline=Deadline(float(request["deadline_remaining"])))
        hits_before = cache.question_hits if cache is not None else 0
        from ..formad.engine import PrimalRaceError
        try:
            analysis = engine.analyze_loop(target)
        except PrimalRaceError as exc:
            reply({"loop": loop_key,
                   "error": {"type": "PrimalRaceError",
                             "message": str(exc)}})
            continue
        payload = {
            "loop": loop_key,
            "records": collector.drain(),
            "cacheable": analysis.cacheable,
            "cache_hits": (cache.question_hits - hits_before
                           if cache is not None else 0),
        }
        reply(payload)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via --isolate
    if "--serve" in sys.argv[1:]:
        sys.exit(serve())
    sys.exit(main())

"""The cross-run verdict cache: soundness rules and warm-replay identity.

What must hold (docs/SCALING.md, "The verdict cache"):

* only decided (SAT/UNSAT) questions are ever stored — the rejection
  of UNKNOWN is centralized in ``store_question`` so no call site can
  leak one in;
* only *clean* loops are stored wholesale, and degraded safeguard
  records are refused by ``store_loop`` itself;
* a cache-warm engine run reproduces the cold run's verdicts and
  deterministic counters exactly (byte-identity of ``analyze --json``
  rests on this);
* the cache file is keyed on the invocation fingerprint: foreign or
  damaged files are ignored and abandoned, and different engine flags
  never share entries;
* ``readonly`` mode (serve workers) never writes.
"""

import os

import pytest

from repro.analysis.activity import ActivityAnalysis
from repro.formad import FormADEngine
from repro.ir import parse_program
from repro.resilience.cache import CACHE_SCHEMA, VerdictCache
from repro.resilience.journal import (JOURNAL_SCHEMA, JournalWriter,
                                      journal_fingerprint, read_journal)

TWO_LOOPS = """
subroutine two(x, y, z, n)
  real, intent(in) :: x(1000)
  real, intent(out) :: y(1000)
  real, intent(out) :: z(1000)
  integer, intent(in) :: n
  !$omp parallel do
  do i = 2, n
    y(i) = x(i) + x(i - 1)
  end do
  !$omp parallel do
  do j = 2, n
    z(j) = x(j) * x(j - 1)
  end do
end subroutine two
"""

#: Deterministic per-loop counters that must survive a warm replay.
COUNTERS = (
    "consistency_checks", "exploitation_checks", "memo_hits",
    "model_size", "unique_exprs", "skipped_pairs",
    "solver_sat", "solver_unsat", "solver_unknown",
)


def _engine(proc, **kwargs):
    activity = ActivityAnalysis(proc, ["x"], ["y", "z"])
    return FormADEngine(proc, activity, **kwargs)


def _fingerprint(engine):
    return journal_fingerprint(TWO_LOOPS, "two", ["x"], ["y", "z"],
                               engine.fingerprint_flags())


class TestStoreRules:
    def test_question_round_trip_across_instances(self, tmp_path):
        cache = VerdictCache(str(tmp_path), "fp")
        cache.store_question("0:i", "y", "[root]", "q1", "unsat")
        cache.store_question("0:i", "y", "[root]", "q2", "sat",
                             witness={"i": 3})
        assert cache.question_stores == 2
        cache.close()

        again = VerdictCache(str(tmp_path), "fp")
        assert again.appending
        assert again.settled_questions == 2
        assert again.question("0:i", "[root]", "q1") == ("unsat", None)
        assert again.question("0:i", "[root]", "q2") == ("sat", {"i": 3})
        assert again.question_hits == 2
        assert again.question("0:i", "[other]", "q1") is None
        assert again.question("1:j", "[root]", "q1") is None
        again.close()

    def test_unknown_is_never_stored(self, tmp_path):
        cache = VerdictCache(str(tmp_path), "fp")
        cache.store_question("0:i", "y", "[root]", "q", "unknown")
        cache.store_question("0:i", "y", "[root]", "q", "timeout")
        assert cache.question_stores == 0
        assert cache.question("0:i", "[root]", "q") is None
        cache.close()
        _, records, _ = read_journal(cache.path)
        assert records == []

    def test_duplicate_question_store_is_deduped(self, tmp_path):
        cache = VerdictCache(str(tmp_path), "fp")
        cache.store_question("0:i", "y", "[root]", "q", "unsat")
        cache.store_question("0:i", "y", "[root]", "q", "unsat")
        assert cache.question_stores == 1
        cache.close()
        _, records, _ = read_journal(cache.path)
        assert len(records) == 1

    def test_degraded_loop_is_refused(self, tmp_path):
        cache = VerdictCache(str(tmp_path), "fp")
        cache.store_loop("0:i", {"degraded": True, "stats": {}}, [])
        assert cache.loop_stores == 0
        assert cache.loop_done("0:i") is None
        cache.close()

    def test_loop_round_trip_across_instances(self, tmp_path):
        cache = VerdictCache(str(tmp_path), "fp")
        cache.store_loop(
            "0:i", {"degraded": False, "stats": {"model_size": 7}},
            [{"array": "y", "safe": True, "safe_writes": []}])
        assert cache.loop_stores == 1
        cache.close()

        again = VerdictCache(str(tmp_path), "fp")
        assert again.settled_loops == 1
        done = again.loop_done("0:i")
        assert done is not None and done["stats"] == {"model_size": 7}
        assert [v["array"] for v in again.verdicts("0:i")] == ["y"]
        again.close()

    def test_readonly_mode_never_writes(self, tmp_path):
        ro = VerdictCache(str(tmp_path), "fp", readonly=True)
        ro.store_question("0:i", "y", "[root]", "q", "unsat")
        ro.store_loop("0:i", {"degraded": False, "stats": {}}, [])
        ro.record("question", loop="0:i", q="q", result="unsat")
        ro.close()
        # readonly mode must not even create the directory or file
        assert not os.path.exists(ro.path)

    def test_missing_file_is_an_empty_readonly_cache(self, tmp_path):
        ro = VerdictCache(str(tmp_path / "nowhere"), "fp", readonly=True)
        assert ro.settled_loops == 0 and ro.settled_questions == 0
        assert ro.question("0:i", "[root]", "q") is None
        ro.close()


class TestFileIdentity:
    def test_foreign_meta_is_ignored_and_abandoned(self, tmp_path):
        # a journal (different schema) parked at the cache's path
        path = str(tmp_path / "fp.jsonl")
        writer = JournalWriter(path, meta={"schema": JOURNAL_SCHEMA,
                                           "fingerprint": "fp"})
        writer.record("question", loop="0:i", ctx="[root]", q="q",
                      result="unsat")
        writer.close()

        cache = VerdictCache(str(tmp_path), "fp")
        assert not cache.appending
        assert cache.question("0:i", "[root]", "q") is None
        cache.close()
        # the foreign file was truncated, not appended to
        meta, records, _ = read_journal(path)
        assert meta["schema"] == CACHE_SCHEMA
        assert records == []

    def test_wrong_fingerprint_file_is_ignored(self, tmp_path):
        stale = VerdictCache(str(tmp_path), "fp-old")
        stale.store_question("0:i", "y", "[root]", "q", "unsat")
        stale.close()
        os.rename(stale.path, os.path.join(str(tmp_path), "fp-new.jsonl"))

        cache = VerdictCache(str(tmp_path), "fp-new")
        assert not cache.appending
        assert cache.question("0:i", "[root]", "q") is None
        cache.close()

    def test_flag_changes_produce_disjoint_files(self, tmp_path):
        proc = parse_program(TWO_LOOPS)["two"]
        plain = _fingerprint(_engine(proc))
        flagged = _fingerprint(_engine(proc, use_question_memo=False))
        assert plain != flagged
        a = VerdictCache(str(tmp_path), plain)
        b = VerdictCache(str(tmp_path), flagged)
        assert a.path != b.path
        a.close()
        b.close()


class TestEngineWarmReplay:
    def test_warm_run_replays_clean_loops_exactly(self, tmp_path):
        proc = parse_program(TWO_LOOPS)["two"]
        engine = _engine(proc)
        fingerprint = _fingerprint(engine)

        cold_cache = VerdictCache(str(tmp_path), fingerprint)
        engine.attach_run_state(cache=cold_cache)
        baseline = engine.analyze_all()
        cold_cache.close()
        assert cold_cache.loop_stores == 2
        assert all(a.cacheable for a in baseline)

        warm_cache = VerdictCache(str(tmp_path), fingerprint)
        warm = _engine(proc)
        warm.attach_run_state(cache=warm_cache)
        replayed = warm.analyze_all()
        warm_cache.close()

        assert warm_cache.loop_hits == 2
        assert warm_cache.loop_stores == 0  # nothing new to store
        for again, honest in zip(replayed, baseline):
            # cache replay is not --resume: the analysis presents as a
            # normal (non-resumed) result with canonical cold counters
            assert not again.resumed
            assert {n: v.safe for n, v in again.verdicts.items()} \
                == {n: v.safe for n, v in honest.verdicts.items()}
            assert again.safe_write_expressions \
                == honest.safe_write_expressions
            for name in COUNTERS:
                assert getattr(again.stats, name) \
                    == getattr(honest.stats, name), name

    def test_degraded_analysis_is_not_cached(self, tmp_path):
        proc = parse_program(TWO_LOOPS)["two"]
        engine = _engine(proc)
        fingerprint = _fingerprint(engine)
        cache = VerdictCache(str(tmp_path), fingerprint)
        engine.attach_run_state(cache=cache)
        loops = list(proc.parallel_loops())
        engine.degraded_analysis(loops[0], "worker crash")
        cache.close()
        assert cache.loop_stores == 0

        again = VerdictCache(str(tmp_path), fingerprint)
        assert again.settled_loops == 0
        again.close()

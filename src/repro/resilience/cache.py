"""The disk-backed cross-run verdict cache (schema ``repro-cache/1``).

``analyze --cache-dir DIR`` persists settled analysis results *across*
invocations: run the same analysis twice and the second run answers
its questions from disk instead of the solver. The cache is a
directory of per-invocation journal files —

    <cache_dir>/<fingerprint>.jsonl

— where the fingerprint is :func:`~repro.resilience.journal.
journal_fingerprint` of (source, head, in/out variables, engine
flags). Keying the *file name* on the fingerprint is what makes the
cache sound: an edited source, a different head, or any flag change
produces a different fingerprint, so a stale entry can never be
replayed into a mismatched analysis. Resource flags (deadline,
question timeout, escalation) are deliberately outside the
fingerprint, exactly as for ``--resume``: a SAT/UNSAT answer is valid
under any resource budget.

Each cache file reuses the journal codec (CRC-per-line JSONL, torn
tails dropped on read) and the journal record shapes:

``meta``       schema ``repro-cache/1`` + the invocation fingerprint.
``question``   one *decided* exploitation question (SAT/UNSAT only —
               a timeout or budget UNKNOWN may resolve on a retry and
               is therefore never cached, mirroring the resume
               journal's replay rules).
``verdict`` /  a fully settled, *clean* loop: not degraded, no
``loop_done``  timeouts, no UNKNOWNs, no solver failures, and no
               answers itself replayed from a journal or cache. Clean
               loops replay wholesale — full counters restored — so a
               cache-warm ``analyze --json`` is byte-identical (modulo
               wall-clock timers) to the cold run that populated it.

Question records are the insurance layer: a run that crashes mid-loop
still leaves its decided questions behind, and the next run answers
those from disk even though the loop never settled.

Writers and readers: the CLI parent process holds the single writable
handle (via :class:`~repro.resilience.journal.JournalWriter`, which is
also why :class:`VerdictCache` satisfies the journal writer contract —
``record``/``close``/``appending``); ``--backend process`` serve
workers open the same file ``readonly`` for question lookups and ship
new results back to the parent, which stores them. Nothing is ever
deleted or rewritten in place; rerunning with a fresh fingerprint
simply starts a new file.
"""

from __future__ import annotations

import logging
import os
from typing import Dict, List, Optional, Tuple

from .journal import (JournalWriter, ResumeState, read_journal)

logger = logging.getLogger(__name__)

CACHE_SCHEMA = "repro-cache/1"


class VerdictCache:
    """One invocation's slice of the cross-run verdict cache.

    ``readonly=True`` opens the file for lookups only (the serve-worker
    mode): ``record``/``store_*`` become no-ops, and a missing or
    damaged file is simply an empty cache. A writable cache creates
    ``cache_dir`` on demand and appends through a
    :class:`~repro.resilience.journal.JournalWriter` (fsync off — the
    cache is an accelerator, not the durability layer; a torn tail is
    dropped by the CRC codec on the next load).
    """

    def __init__(self, cache_dir: str, fingerprint: str, *,
                 readonly: bool = False) -> None:
        self.cache_dir = cache_dir
        self.fingerprint = fingerprint
        self.readonly = readonly
        self.path = os.path.join(cache_dir, f"{fingerprint}.jsonl")
        # Lookup hits / misses / fresh stores, for the end-of-run
        # summary and the ``cache.*`` metric counters.
        self.question_hits = 0
        self.question_misses = 0
        self.loop_hits = 0
        self.loop_misses = 0
        self.question_stores = 0
        self.loop_stores = 0
        state, valid = self._load()
        self._state = state
        #: CRC-damaged lines the loader truncated away on read.
        self.dropped_lines = state.dropped
        self._writer: Optional[JournalWriter] = None
        self.appending = valid
        if not readonly:
            os.makedirs(cache_dir, exist_ok=True)
            # A damaged/foreign file is abandoned (truncated), not
            # appended to: its records failed validation above.
            self._writer = JournalWriter(
                self.path, append=valid, fsync=False,
                meta={"schema": CACHE_SCHEMA, "fingerprint": fingerprint})

    def _load(self) -> Tuple[ResumeState, bool]:
        """Index the existing cache file; ``valid`` is False when the
        file is absent or its meta does not match this invocation."""
        if not os.path.exists(self.path):
            return ResumeState(None, []), False
        meta, records, dropped = read_journal(self.path)
        if meta is None or meta.get("schema") != CACHE_SCHEMA \
                or meta.get("fingerprint") != self.fingerprint:
            logger.warning("verdict cache %s has a bad or foreign header; "
                           "ignoring its contents", self.path)
            return ResumeState(None, []), False
        if dropped:
            logger.info("verdict cache %s: dropped %d damaged line(s)",
                        self.path, dropped)
        return ResumeState(meta, records, dropped), True

    # ------------------------------------------------------------ lookups
    @property
    def settled_loops(self) -> int:
        return self._state.settled_loops

    @property
    def settled_questions(self) -> int:
        return self._state.settled_questions

    def loop_done(self, loop_key: str) -> Optional[dict]:
        """The settled record of a clean cached loop, or None (counted
        as a loop miss — the engine probes exactly once per open
        loop)."""
        done = self._state.loop_done(loop_key)
        if done is None:
            self.loop_misses += 1
        return done

    def verdicts(self, loop_key: str) -> List[dict]:
        return self._state.verdicts(loop_key)

    def question(self, loop_key: str, ctx_path: str, question: str,
                 ) -> Optional[Tuple[str, Optional[Dict[str, int]]]]:
        """A decided (SAT/UNSAT) answer, or None. Bumps the hit
        counter — call only when the answer will actually be used."""
        hit = self._state.question(loop_key, ctx_path, question)
        if hit is not None:
            self.question_hits += 1
        else:
            self.question_misses += 1
        return hit

    def peek_question(self, loop_key: str, ctx_path: str, question: str,
                      ) -> Optional[Tuple[str, Optional[Dict[str, int]]]]:
        """Like :meth:`question` but without bumping the hit counter —
        for *planning* lookups (the question-sharding scheduler decides
        which positions to dispatch without consuming the answer; the
        merge path later calls :meth:`question` for the real, counted
        lookup)."""
        return self._state.question(loop_key, ctx_path, question)

    # ------------------------------------------------------------- stores
    def record(self, kind: str, **fields) -> None:
        """Journal-writer contract entry point (no-op when readonly)."""
        if self._writer is not None:
            self._writer.record(kind, **fields)

    def store_question(self, loop_key: str, array: str, ctx_path: str,
                       question: str, result: str,
                       witness: Optional[Dict[str, int]] = None) -> None:
        """Persist one decided answer. UNKNOWNs are rejected here, not
        at the call site: *never* caching an undecided answer is the
        cache's soundness rule, so it is enforced centrally."""
        if self.readonly or result not in ("sat", "unsat"):
            return
        if self._state.question(loop_key, ctx_path, question) is not None:
            return
        record = {"loop": loop_key, "array": array, "ctx": ctx_path,
                  "q": question, "result": result}
        if result == "sat" and witness is not None:
            record["witness"] = witness
        self.record("question", **record)
        self._state._questions[(loop_key, ctx_path, question)] = (
            result, witness)
        self.question_stores += 1

    def store_loop(self, loop_key: str, done: dict,
                   verdicts: List[dict]) -> None:
        """Persist one *clean* loop's full record set (the caller vouches
        for cleanliness — see :attr:`~repro.formad.engine.LoopAnalysis.
        cacheable`). Degraded records are refused outright: a safeguard
        fallback is not settled knowledge."""
        if self.readonly or done.get("degraded"):
            return
        if self._state.loop_done(loop_key) is not None:
            return
        verdict_records = [
            dict({k: v for k, v in verdict.items() if k != "kind"},
                 loop=loop_key)
            for verdict in verdicts]
        done_record = dict({k: v for k, v in done.items() if k != "kind"},
                           loop=loop_key)
        for record in verdict_records:
            self.record("verdict", **record)
        self.record("loop_done", **done_record)
        self._state._loops[loop_key] = dict(done_record, kind="loop_done")
        self._state._verdicts.setdefault(loop_key, []).extend(
            verdict_records)
        self.loop_stores += 1

    # ------------------------------------------------------------ summary
    @property
    def hits(self) -> int:
        return self.question_hits + self.loop_hits

    def summary(self) -> str:
        return (f"verdict cache {self.path}: "
                f"{self.loop_hits} loop hit(s), "
                f"{self.question_hits} question hit(s), "
                f"{self.loop_stores} loop(s) and "
                f"{self.question_stores} question(s) stored")

    def summary_data(self) -> dict:
        """The structured end-of-run summary: the ``cache_summary``
        trace event's payload and ``analyze --json``'s ``cache`` key."""
        return {"path": self.path,
                "loop_hits": self.loop_hits,
                "question_hits": self.question_hits,
                "loop_misses": self.loop_misses,
                "question_misses": self.question_misses,
                "loop_stores": self.loop_stores,
                "question_stores": self.question_stores,
                "dropped_lines": self.dropped_lines}

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None

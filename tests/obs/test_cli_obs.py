"""CLI observability surface: --trace/--json, explain, profile."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.validate import main as validate_main, validate_file

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"
STENCIL_F90 = str(EXAMPLES / "stencil_small.f90")
LBM_F90 = str(EXAMPLES / "lbm.f90")
STENCIL = ["-i", "uold", "-o", "unew"]
LBM = ["-i", "srcgrid", "-o", "dstgrid"]


@pytest.fixture(scope="module")
def stencil_trace(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("obs") / "stencil.jsonl")
    assert main(["analyze", STENCIL_F90, *STENCIL,
                 "--trace", path]) == 0
    return path


@pytest.fixture(scope="module")
def lbm_trace(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("obs") / "lbm.jsonl")
    assert main(["analyze", LBM_F90, *LBM, "--trace", path]) == 0
    return path


class TestAnalyzeTrace:
    def test_trace_is_schema_valid(self, stencil_trace):
        assert validate_file(stencil_trace) == []
        assert validate_main([stencil_trace]) == 0

    def test_replay_hint_on_stderr(self, stencil_trace, capsys):
        capsys.readouterr()
        assert main(["analyze", STENCIL_F90, *STENCIL,
                     "--trace", stencil_trace]) == 0
        err = capsys.readouterr().err
        assert "repro explain" in err and "repro profile" in err

    def test_validate_rejects_bad_file(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"v": 1, "type": "mystery"}\n')
        assert validate_main([str(bad)]) == 1
        assert validate_main([]) == 2


class TestAnalyzeJson:
    def test_stable_machine_readable_output(self, capsys):
        assert main(["analyze", STENCIL_F90, *STENCIL,
                     "--json"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert doc["schema"] == "repro-analyze/1"
        assert doc["all_safe"] is True
        arrays = {v["array"]: v["safe"]
                  for loop in doc["loops"] for v in loop["verdicts"]}
        assert arrays == {"unew": True, "uold": True}
        assert doc["totals"]["schema"] == "repro-metrics/1"
        assert doc["totals"]["exploitation_checks"] == 3
        # byte-stable key order: the output IS its own sorted dump
        assert out.strip() == json.dumps(doc, indent=2, sort_keys=True)

    def test_json_reports_unsafe(self, capsys):
        assert main(["analyze", LBM_F90, *LBM, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["all_safe"] is False


class TestExplain:
    def test_unsat_chain_for_adjoint_array(self, stencil_trace, capsys):
        assert main(["explain", stencil_trace, "--array", "uoldb"]) == 0
        out = capsys.readouterr().out
        assert "adjoint of 'uold'" in out
        assert "SAFE" in out
        assert out.count("UNSAT") == 3        # the three proven pairs
        assert "i' ≠ i" in out           # the root axiom

    def test_sat_witness_for_rejected_lbm(self, lbm_trace, capsys):
        assert main(["explain", lbm_trace, "--array", "srcgridb"]) == 0
        out = capsys.readouterr().out
        assert "UNSAFE" in out
        assert "counterexample" in out
        assert "i_0' = " in out               # the witness model

    def test_unknown_array_lists_candidates(self, stencil_trace, capsys):
        assert main(["explain", stencil_trace, "--array", "nope"]) == 0
        out = capsys.readouterr().out
        assert "no verdict" in out and "uold" in out

    def test_missing_trace_file(self, capsys):
        assert main(["explain", "/no/such/file.jsonl",
                     "--array", "u"]) == 1
        assert "error" in capsys.readouterr().err


class TestProfile:
    def test_span_tree_and_context_table(self, stencil_trace, capsys):
        assert main(["profile", stencil_trace]) == 0
        out = capsys.readouterr().out
        assert "analysis.loop" in out
        assert "analysis.build_model" in out
        assert "analysis.array" in out
        assert "root" in out                  # the context table

    def test_missing_trace_file(self, capsys):
        assert main(["profile", "/no/such/file.jsonl"]) == 1
        assert "error" in capsys.readouterr().err

"""Analysis-pipeline performance: incremental vs from-scratch solving.

Runs the FormAD analysis on the paper kernels twice — once through the
incremental, memoized pipeline (the default) and once through the
seed-equivalent baseline that re-ackermannizes and re-clausifies the
whole assertion stack on every ``check()`` (``incremental=False``, memo
off) — and asserts that

* verdicts and Table-1 query totals are identical in both modes, and
* the incremental pipeline cuts total translate+clausify time by at
  least the per-kernel ``SPEEDUP_KERNELS`` bars on the large-stencil
  and GFMC regions.

The per-kernel phase breakdown is written to ``BENCH_ANALYSIS.json`` at
the repository root so the performance trajectory of later PRs can be
tracked machine-readably (CI uploads it as an artifact). Set
``REPRO_BENCH_QUICK=1`` to skip the slow LBM baseline.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis import ActivityAnalysis
from repro.formad import FormADEngine
from repro.obs import METRICS_SCHEMA, counters_only, stats_metrics
from repro.programs import (build_gfmc, build_greengauss, build_lbm,
                            build_stencil)
from repro.smt import clausify_cache_clear

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

#: Timing repetitions per mode; the speedup uses the fastest repetition
#: of each mode (counts are identical across repetitions by assertion).
#: Quick mode saves its time by skipping LBM, not by skimping on the
#: millisecond-scale kernels the speedup bar applies to.
REPEATS = 2 if QUICK else 3

#: The paper kernels (LBM is the rejection case) with their Table-1
#: independent/dependent sets.
KERNELS = {
    "stencil 8": (lambda: build_stencil(8, name="stencil_large"),
                  ["uold"], ["unew"]),
    "GFMC": (build_gfmc, ["cl", "cr"], ["cl", "cr"]),
    "LBM": (build_lbm, ["srcgrid"], ["dstgrid"]),
    "GreenGauss": (build_greengauss, ["dv"], ["grad"]),
}

#: Per-kernel acceptance bars. GFMC's bar dropped from 3.0 when the
#: solver hot path gained the cross-check Ackermann axiom cache and
#: interned terms: those are solver-level wins, so they speed up the
#: from-scratch baseline too, and on a millisecond-scale kernel like
#: GFMC the incremental-vs-fresh *ratio* honestly compresses (the
#: absolute times both improved). Stencil 8's gap is dominated by
#: re-translating the whole assertion stack, which no cache hides.
SPEEDUP_KERNELS = {"stencil 8": 3.0, "GFMC": 2.0}


def _run_mode(name: str, incremental: bool) -> dict:
    """One full analysis of *name* in the given solver mode, with the
    global clause cache dropped first so the modes are compared cold."""
    builder, independents, dependents = KERNELS[name]
    proc = builder()
    activity = ActivityAnalysis(proc, independents, dependents)
    engine = FormADEngine(proc, activity, incremental=incremental,
                          use_question_memo=incremental)
    clausify_cache_clear()
    analyses = engine.analyze_all()
    stats = [a.stats for a in analyses]
    return {
        "verdicts": {array: v.safe for a in analyses
                     for array, v in a.verdicts.items()},
        "queries": sum(s.queries for s in stats),
        "consistency_checks": sum(s.consistency_checks for s in stats),
        "exploitation_checks": sum(s.exploitation_checks for s in stats),
        "memo_hits": sum(s.memo_hits for s in stats),
        "translate_seconds": sum(s.translate_seconds for s in stats),
        "clausify_seconds": sum(s.clausify_seconds for s in stats),
        "search_seconds": sum(s.search_seconds for s in stats),
        "time_seconds": sum(s.time_seconds for s in stats),
        "clausify_hits": sum(s.clausify_hits for s in stats),
        "clausify_misses": sum(s.clausify_misses for s in stats),
        # the full stable metrics mapping (schema repro-metrics/1), so
        # BENCH_ANALYSIS.json consumers can diff counter-level behavior
        # across PRs without scraping the ad-hoc keys above
        "metrics": stats_metrics(stats),
    }


def _translate_clausify(mode: dict) -> float:
    return mode["translate_seconds"] + mode["clausify_seconds"]


_COUNT_KEYS = ("verdicts", "queries", "consistency_checks",
               "exploitation_checks", "memo_hits")


def _run_best(name: str, incremental: bool) -> dict:
    """Fastest of ``REPEATS`` runs (by translate+clausify time); the
    deterministic counts must agree across repetitions."""
    runs = [_run_mode(name, incremental=incremental)
            for _ in range(REPEATS)]
    for run in runs[1:]:
        for key in _COUNT_KEYS:
            assert run[key] == runs[0][key], (name, key)
        assert counters_only(run["metrics"]) \
            == counters_only(runs[0]["metrics"]), name
    return min(runs, key=_translate_clausify)


@pytest.mark.figure("analysis-perf")
def test_incremental_pipeline_speedup():
    names = [n for n in KERNELS if not (QUICK and n == "LBM")]
    results = {}
    for name in names:
        incremental = _run_best(name, incremental=True)
        fresh = _run_best(name, incremental=False)

        # Same analysis either way: verdicts and Table-1 totals must
        # not depend on the solving strategy (memo hits are reported
        # separately and do not change the question count).
        assert incremental["verdicts"] == fresh["verdicts"], name
        assert incremental["queries"] == fresh["queries"], name
        assert fresh["memo_hits"] == 0, name

        denom = max(_translate_clausify(incremental), 1e-9)
        speedup = _translate_clausify(fresh) / denom
        results[name] = {
            "incremental": incremental,
            "fresh": fresh,
            "translate_clausify_speedup": speedup,
        }

    for name, bar in SPEEDUP_KERNELS.items():
        speedup = results[name]["translate_clausify_speedup"]
        assert speedup >= bar, (
            f"{name}: translate+clausify only {speedup:.1f}x faster "
            f"than the from-scratch baseline (need >= {bar}x)")

    out = {
        "schema": "repro-analysis-perf/1",
        "metrics_schema": METRICS_SCHEMA,
        "quick_mode": QUICK,
        "repeats": REPEATS,
        "min_required_speedup": dict(SPEEDUP_KERNELS),
        "speedup_kernels": sorted(SPEEDUP_KERNELS),
        "kernels": results,
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_ANALYSIS.json"
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")


#: The backend comparison's fan-out width and its acceptance bar. The
#: ≥2x bar only applies where it can physically hold: a worker pool
#: cannot beat the GIL on a single-CPU box, where the comparison still
#: runs (identity must hold everywhere) but only records its numbers.
BACKEND_JOBS = 4
MIN_BACKEND_SPEEDUP = 2.0
BACKEND_REPEATS = 1 if QUICK else 2

#: Shape of the generated backend workload: loops per region count and
#: write statements per loop. 23 writes puts one loop's analysis at
#: seconds-scale — far above worker start-up cost, so the measured
#: speedup reflects solving, not process spawning.
BACKEND_LOOPS = 4
BACKEND_WRITES = 23

#: Deterministic per-loop counters that must not depend on the backend.
BACKEND_INVARIANT = ("consistency_checks", "exploitation_checks",
                     "memo_hits", "model_size", "unique_exprs",
                     "skipped_pairs", "solver_sat", "solver_unsat",
                     "solver_unknown")


def _backend_source(loops: int = BACKEND_LOOPS,
                    writes: int = BACKEND_WRITES) -> str:
    """*loops* independent stencil-style parallel regions, each with
    *writes* strided accumulation statements into its own array — all
    provably safe (stride == footprint), so every region plays out its
    full exploitation-question stream. The read offsets are scrambled
    (``s * 7 mod writes``) to keep the expression inventory large."""
    half = writes // 2
    lines = ["subroutine shardbench(uold, "
             + ", ".join(f"u{k}" for k in range(loops)) + ", w, n)",
             "  real, intent(in) :: uold(*)"]
    for k in range(loops):
        lines.append(f"  real, intent(inout) :: u{k}(*)")
    lines.append(f"  real, intent(in) :: w({writes})")
    lines.append("  integer, intent(in) :: n")

    def index(var, offset):
        if offset > 0:
            return f"{var} - {offset}"
        if offset < 0:
            return f"{var} + {-offset}"
        return var

    for k in range(loops):
        var = f"i{k}"
        lines.append("  !$omp parallel do")
        lines.append(f"  do {var} = {writes}, n - {half}, {writes}")
        for s in range(writes):
            wi = index(var, s - half)
            ri = index(var, (s * 7) % writes - half)
            lines.append(f"    u{k}({wi}) = u{k}({wi}) "
                         f"+ w({s + 1}) * uold({ri})")
        lines.append("  end do")
    lines.append("end subroutine shardbench")
    return "\n".join(lines) + "\n"


def _backend_thread(source: str, outs):
    from repro.ir import parse_program
    proc = parse_program(source)["shardbench"]
    activity = ActivityAnalysis(proc, ["uold"], outs)
    engine = FormADEngine(proc, activity)
    clausify_cache_clear()
    start = time.perf_counter()
    analyses = engine.analyze_all(jobs=BACKEND_JOBS)
    return analyses, time.perf_counter() - start


def _backend_process(source: str, outs):
    from repro.resilience import ShardConfig, analyze_program_remote
    clausify_cache_clear()
    start = time.perf_counter()
    analyses = analyze_program_remote(
        source, "shardbench", ["uold"], outs,
        config=ShardConfig(jobs=BACKEND_JOBS))
    return analyses, time.perf_counter() - start


@pytest.mark.figure("analysis-perf")
def test_process_backend_beats_gil_bound_threads():
    """``--backend process --jobs 4`` vs the GIL-bound thread fan-out
    on a generated 4-loop workload: identical analyses, and at least
    ``MIN_BACKEND_SPEEDUP``x faster wall-clock wherever more than one
    CPU is actually available. Results land in BENCH_ANALYSIS.json
    (key ``backend``) either way, with the CPU count recorded so a
    single-CPU run's honest numbers are not mistaken for a regression.
    """
    source = _backend_source()
    outs = [f"u{k}" for k in range(BACKEND_LOOPS)]
    thread_best, process_best = None, None
    for _ in range(BACKEND_REPEATS):
        thread_run, thread_t = _backend_thread(source, outs)
        process_run, process_t = _backend_process(source, outs)
        assert len(thread_run) == len(process_run) == BACKEND_LOOPS
        for local, remote in zip(thread_run, process_run):
            assert not remote.degraded
            assert {n: v.safe for n, v in local.verdicts.items()} \
                == {n: v.safe for n, v in remote.verdicts.items()}
            assert all(v.safe for v in remote.verdicts.values())
            for name in BACKEND_INVARIANT:
                assert getattr(local.stats, name) \
                    == getattr(remote.stats, name), name
        thread_best = min(thread_t, thread_best or thread_t)
        process_best = min(process_t, process_best or process_t)

    cpus = len(os.sched_getaffinity(0))
    speedup = thread_best / max(process_best, 1e-9)
    if cpus >= 2:
        assert speedup >= MIN_BACKEND_SPEEDUP, (
            f"process backend only {speedup:.2f}x the thread backend "
            f"at jobs={BACKEND_JOBS} on {cpus} CPUs "
            f"(need >= {MIN_BACKEND_SPEEDUP}x)")

    path = Path(__file__).resolve().parent.parent / "BENCH_ANALYSIS.json"
    doc = {}
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except ValueError:
            doc = {}
    doc["backend"] = {
        "workload": (f"generated {BACKEND_LOOPS}x{BACKEND_WRITES}-write "
                     "stencil regions (_backend_source)"),
        "loops": BACKEND_LOOPS,
        "jobs": BACKEND_JOBS,
        "cpus": cpus,
        "repeats": BACKEND_REPEATS,
        "thread_seconds": thread_best,
        "process_seconds": process_best,
        "speedup": speedup,
        "min_required_speedup": MIN_BACKEND_SPEEDUP,
        "speedup_enforced": cpus >= 2,
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


#: Question-granularity sharding comparison (``--shard-unit question``):
#: fan-out width, acceptance bar, and repetitions. LBM is the mandated
#: kernel — a single big parallel loop, so loop-granularity sharding is
#: structurally useless for it and only question fan-out can help. The
#: bar is armed exactly like the backend bar above: identity and honest
#: numbers everywhere, the speedup requirement only where >1 CPU exists.
QS_JOBS = 4
MIN_QS_SPEEDUP = 1.2
QS_REPEATS = 1 if QUICK else 2

#: Micro-timing repetitions for the SMT hot-path trackers.
MICRO_INTERN_REPS = 20_000
MICRO_SIMPLEX_REPS = 300


def _lbm_engine(source: str):
    from repro.ir import parse_program
    proc = parse_program(source)["lbm"]
    activity = ActivityAnalysis(proc, ["srcgrid"], ["dstgrid"])
    return FormADEngine(proc, activity)


def _lbm_thread_run(source: str):
    engine = _lbm_engine(source)
    clausify_cache_clear()
    start = time.perf_counter()
    analyses = engine.analyze_all(jobs=QS_JOBS)
    return analyses, time.perf_counter() - start


def _lbm_question_run(source: str):
    from repro.resilience import ShardConfig, analyze_question_sharded
    engine = _lbm_engine(source)
    clausify_cache_clear()
    start = time.perf_counter()
    analyses, outcomes = analyze_question_sharded(
        engine, source, "lbm", ["srcgrid"], ["dstgrid"],
        config=ShardConfig(jobs=QS_JOBS))
    elapsed = time.perf_counter() - start
    assert all(o.status == "ok" for o in outcomes)
    return analyses, elapsed


def _micro_interning(reps: int = MICRO_INTERN_REPS) -> dict:
    """Repeated construction of one small expression inventory: after
    the first pass every node resolves through the hash-consing tables,
    so this times the intern hit path that every translation walks."""
    from repro.smt import Int
    start = time.perf_counter()
    for k in range(reps):
        x, y, z = Int("qmi_x"), Int("qmi_y"), Int("qmi_z")
        expr = x + 2 * y - z + 7
        expr.ge(k % 5)
    seconds = time.perf_counter() - start
    return {"reps": reps, "seconds": seconds,
            "atoms_per_second": reps / max(seconds, 1e-9)}


def _micro_simplex(reps: int = MICRO_SIMPLEX_REPS) -> dict:
    """Dense vs Fraction simplex on a small feasible polytope (the
    shapes FormAD's branch & bound re-checks constantly). Pivot parity
    is pinned by tests/smt/test_simplex_parity.py; this only tracks the
    wall-clock ratio across PRs."""
    from repro.smt import Int, canonicalize
    from repro.smt.linform import TrivialConstraint
    from repro.smt.simplex import DenseSimplexSolver, FractionSimplexSolver
    x, y, z = Int("qms_x"), Int("qms_y"), Int("qms_z")
    constraints = []
    for atom in ((2 * x + 3 * y).le(12), (x - y).ge(-1), x.ge(0), y.ge(2),
                 (x + y + z).eq(6), (x - z).le(4), z.ge(0)):
        try:
            constraints.extend(canonicalize(atom))
        except TrivialConstraint:
            pass
    out = {"reps": reps}
    for label, cls in (("dense", DenseSimplexSolver),
                       ("fraction", FractionSimplexSolver)):
        start = time.perf_counter()
        for _ in range(reps):
            solver = cls()
            for c in constraints:
                solver.assert_constraint(c)
            assert solver.check() is True
        out[f"{label}_seconds"] = time.perf_counter() - start
    out["dense_speedup"] = (out["fraction_seconds"]
                            / max(out["dense_seconds"], 1e-9))
    return out


@pytest.mark.figure("analysis-perf")
def test_question_sharding_on_single_loop_lbm():
    """``--shard-unit question`` vs the thread backend on LBM — the
    paper's single-big-loop rejection case, where ``--backend process``
    at loop granularity cannot help at all. Identity must hold
    everywhere (same verdicts, same deterministic counters, rejection
    preserved); the ≥``MIN_QS_SPEEDUP``x bar is armed only where more
    than one CPU is available. Numbers (plus the interning and simplex
    hot-path micro-timings) land in BENCH_ANALYSIS.json under
    ``question_sharding`` either way."""
    from repro import format_procedure
    source = format_procedure(build_lbm())
    thread_best, question_best = None, None
    for _ in range(QS_REPEATS):
        thread_run, thread_t = _lbm_thread_run(source)
        question_run, question_t = _lbm_question_run(source)
        assert len(thread_run) == len(question_run) == 1
        for local, remote in zip(thread_run, question_run):
            assert not remote.degraded
            local_verdicts = {n: v.safe for n, v in local.verdicts.items()}
            assert local_verdicts \
                == {n: v.safe for n, v in remote.verdicts.items()}
            # the paper's negative result survives the fan-out
            assert local_verdicts["srcgrid"] is False
            for name in BACKEND_INVARIANT:
                assert getattr(local.stats, name) \
                    == getattr(remote.stats, name), name
        thread_best = min(thread_t, thread_best or thread_t)
        question_best = min(question_t, question_best or question_t)

    cpus = len(os.sched_getaffinity(0))
    speedup = thread_best / max(question_best, 1e-9)
    if cpus >= 2:
        assert speedup >= MIN_QS_SPEEDUP, (
            f"question sharding only {speedup:.2f}x the thread backend "
            f"on LBM at jobs={QS_JOBS} on {cpus} CPUs "
            f"(need >= {MIN_QS_SPEEDUP}x)")

    path = Path(__file__).resolve().parent.parent / "BENCH_ANALYSIS.json"
    doc = {}
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except ValueError:
            doc = {}
    doc["question_sharding"] = {
        "kernel": "LBM (single big loop; the loop-granularity blind spot)",
        "jobs": QS_JOBS,
        "cpus": cpus,
        "repeats": QS_REPEATS,
        "thread_seconds": thread_best,
        "question_seconds": question_best,
        "speedup": speedup,
        "min_required_speedup": MIN_QS_SPEEDUP,
        "speedup_enforced": cpus >= 2,
        "micro": {
            "interning": _micro_interning(),
            "simplex": _micro_simplex(),
        },
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


@pytest.mark.figure("analysis-perf")
def test_lbm_rejection_identical_across_modes():
    """The LBM rejection (the paper's negative result) must be
    reproduced identically by both pipelines."""
    if QUICK:
        pytest.skip("REPRO_BENCH_QUICK=1 skips the LBM baseline")
    incremental = _run_mode("LBM", incremental=True)
    fresh = _run_mode("LBM", incremental=False)
    assert incremental["verdicts"]["srcgrid"] is False
    assert incremental["verdicts"] == fresh["verdicts"]
    assert incremental["queries"] == fresh["queries"]

"""The ``Solver`` facade — the Z3 API subset the paper's pseudo-code uses.

FormAD's algorithms (paper §5.5) call exactly ``Solver()``, ``add``,
``push``, ``pop``, ``check`` and compare against SAT/UNSAT. This class
provides that interface on top of the from-scratch QF_UFLIA pipeline:

    assertions --ackermannize--> UF-free formulas
               --clausify-----> base constraints + clauses
               --search-------> SAT (with model) / UNSAT / UNKNOWN

``check()`` re-translates the current assertion stack each call; the
problems FormAD produces are small (the paper's largest model has 362
assertions) and the paper itself reports whole analyses completing in
seconds, so clarity wins over incrementality here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .ackermann import ackermannize
from .clausify import Clause, ClausifyBudgetError, clausify_all
from .intsolver import Result
from .linform import Constraint, TrivialConstraint, canonicalize
from .search import SearchOutcome, search
from .terms import FAtom, Formula, TApp, Term, formula_apps

SAT = Result.SAT
UNSAT = Result.UNSAT
UNKNOWN = Result.UNKNOWN


@dataclass
class SolverStats:
    """Cumulative statistics over the lifetime of a solver instance."""

    checks: int = 0
    sat: int = 0
    unsat: int = 0
    unknown: int = 0
    theory_checks: int = 0
    time_seconds: float = 0.0

    def record(self, result: Result, elapsed: float, theory_checks: int) -> None:
        self.checks += 1
        self.time_seconds += elapsed
        self.theory_checks += theory_checks
        if result is SAT:
            self.sat += 1
        elif result is UNSAT:
            self.unsat += 1
        else:
            self.unknown += 1


class Solver:
    """An assertion-stack SMT solver for QF_UFLIA."""

    def __init__(
        self,
        *,
        max_theory_checks: int = 20000,
        node_budget: int = 2000,
        max_clauses: int = 100_000,
    ) -> None:
        self._stack: List[List[Formula]] = [[]]
        self._model: Optional[Dict[str, int]] = None
        self._warm_model: Optional[Dict[str, int]] = None
        self._app_names: Dict[TApp, str] = {}
        self.stats = SolverStats()
        self.max_theory_checks = max_theory_checks
        self.node_budget = node_budget
        self.max_clauses = max_clauses

    # ------------------------------------------------------------------
    # Z3-style interface
    # ------------------------------------------------------------------
    def add(self, *formulas: Formula) -> None:
        """Assert formulas at the current stack level."""
        for f in formulas:
            self._stack[-1].append(f)
        self._model = None

    def push(self) -> None:
        """Save the assertion state."""
        self._stack.append([])

    def pop(self, num: int = 1) -> None:
        """Restore the assertion state ``num`` levels up."""
        for _ in range(num):
            if len(self._stack) == 1:
                raise RuntimeError("pop on an empty solver stack")
            self._stack.pop()
        self._model = None

    def assertions(self) -> List[Formula]:
        return [f for level in self._stack for f in level]

    @property
    def num_assertions(self) -> int:
        return sum(len(level) for level in self._stack)

    def check(self) -> Result:
        """Decide the conjunction of all current assertions."""
        start = time.perf_counter()
        outcome = self._check_now()
        elapsed = time.perf_counter() - start
        self.stats.record(outcome.result, elapsed, outcome.stats.theory_checks)
        self._model = outcome.model
        if outcome.model is not None:
            # Warm start for the next check on a grown assertion set
            # (the buildModel pattern: add one fact, re-check).
            self._warm_model = outcome.model
        return outcome.result

    def model(self) -> Dict[str, int]:
        """The integer model of the last SAT check.

        Keys are variable names; Ackermann-introduced names for UF
        applications look like ``!f@k`` (see :meth:`app_value`).
        """
        if self._model is None:
            raise RuntimeError("model() requires a preceding SAT check")
        return dict(self._model)

    def app_value(self, app: TApp) -> Optional[int]:
        """Model value of a UF application from the last SAT check."""
        name = self._app_names.get(app)
        if name is None or self._model is None:
            return None
        return self._model.get(name, 0)

    # ------------------------------------------------------------------
    def _check_now(self) -> SearchOutcome:
        formulas = self.assertions()
        ack = ackermannize(formulas)
        self._app_names = ack.app_names
        try:
            clauses = clausify_all(ack.all_formulas, max_clauses=self.max_clauses)
        except ClausifyBudgetError:
            return SearchOutcome(UNKNOWN)
        base: List[Constraint] = []
        pending: List[Clause] = []
        for clause in clauses:
            if len(clause) == 1:
                try:
                    base.extend(canonicalize(clause[0]))
                except TrivialConstraint as t:
                    if not t.truth:
                        return SearchOutcome(UNSAT)
            else:
                pending.append(clause)
        return search(base, pending,
                      max_theory_checks=self.max_theory_checks,
                      node_budget=self.node_budget,
                      initial_model=self._warm_model)


def prove_distinct(solver: Solver, left: Term, right: Term) -> bool:
    """Convenience: is ``left == right`` impossible under the solver's
    current assertions? (The FormAD exploitation question.)

    Uses push/pop exactly like the paper's ``testVar``.
    """
    solver.push()
    try:
        solver.add(_eq(left, right))
        return solver.check() is UNSAT
    finally:
        solver.pop()


def _eq(left: Term, right: Term) -> FAtom:
    from .terms import Rel
    return FAtom(Rel.EQ, left, right)

"""The random kernel generator: determinism, validity, coverage."""

import dataclasses
import json

import numpy as np
import pytest

from repro.audit.generator import (CaseSpec, FAMILIES, RACY_FAMILIES,
                                   build_procedure, generate_case,
                                   make_bindings, spec_from_json)
from repro.runtime import run_procedure


class TestDeterminism:
    def test_same_seed_same_specs(self):
        a = [generate_case(i, seed=3) for i in range(24)]
        b = [generate_case(i, seed=3) for i in range(24)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [generate_case(i, seed=0) for i in range(24)]
        b = [generate_case(i, seed=1) for i in range(24)]
        assert a != b

    def test_case_regenerable_without_replaying_run(self):
        # any single index reproduces independently of the others
        assert generate_case(17, seed=5) == generate_case(17, seed=5)

    def test_families_round_robin(self):
        specs = [generate_case(i, seed=0) for i in range(len(FAMILIES))]
        assert [s.family for s in specs] == list(FAMILIES)


class TestJsonRoundTrip:
    @pytest.mark.parametrize("index", range(len(FAMILIES)))
    def test_round_trip(self, index):
        spec = generate_case(index, seed=2)
        doc = json.loads(json.dumps(spec.to_json()))
        assert spec_from_json(doc) == spec


class TestBuiltProcedures:
    @pytest.mark.parametrize("index", range(2 * len(FAMILIES)))
    def test_every_case_builds_and_runs(self, index):
        spec = generate_case(index, seed=1)
        proc = build_procedure(spec)
        [loop] = proc.parallel_loops()
        assert loop.parallel
        for extent in (spec.n, 2 * spec.n + 3):
            bindings = make_bindings(spec, extent)
            assert bindings["m"] == spec.trip_count(extent) <= extent
            memory = run_procedure(proc, bindings)  # no bounds errors
            assert memory is not None

    def test_assumed_size_arrays_scale_with_bindings(self):
        spec = generate_case(0, seed=0)   # elementwise
        proc = build_procedure(spec)
        small = run_procedure(proc, make_bindings(spec, 10))
        large = run_procedure(proc, make_bindings(spec, 40))
        assert small.array("y").data.size == 10
        assert large.array("y").data.size == 40

    def test_collision_table_guarantees_a_collision(self):
        spec = next(generate_case(i, seed=0) for i in range(len(FAMILIES))
                    if generate_case(i, seed=0).family == "gather_collide")
        bindings = make_bindings(spec, spec.n)
        table = bindings["t"]
        lo, stride = spec.lo, spec.stride
        assert table[lo - 1 + stride] == table[lo - 1]
        assert table.min() >= 1 and table.max() <= spec.n

    def test_racy_families_marked(self):
        specs = [generate_case(i, seed=0) for i in range(len(FAMILIES))]
        for spec in specs:
            assert spec.expect_primal_race == (spec.family in RACY_FAMILIES)


class TestIndexBounds:
    @pytest.mark.parametrize("index", range(3 * len(FAMILIES)))
    def test_affine_indices_stay_in_range(self, index):
        spec = generate_case(index, seed=4)
        for extent in (spec.n, spec.n + 9):
            m = spec.trip_count(extent)
            for ix in spec._index_specs():
                if ix.base != "i":
                    continue    # scalar bases mirror i (+offset checked below)
                for i in (spec.lo, m):
                    value = ix.coeff * i + ix.offset
                    assert 1 <= value <= extent

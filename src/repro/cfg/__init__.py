"""Control-flow analyses: CFG, dominators, reaching definitions,
instance numbering (§5.2), and control contexts (§5.1)."""

from .graph import CFG, Node, NodeKind, build_cfg
from .dominators import (dominates, dominator_tree_children,
                         immediate_dominators, immediate_postdominators)
from .defuse import (Definition, ENTRY_DEF, ReachingDefinitions,
                     compute_reaching_definitions)
from .instances import (InstanceNumbering, number_instances,
                        number_instances_for_loop)
from .contexts import Context, ContextMap, build_contexts

__all__ = [
    "CFG", "Node", "NodeKind", "build_cfg",
    "dominates", "dominator_tree_children", "immediate_dominators",
    "immediate_postdominators",
    "Definition", "ENTRY_DEF", "ReachingDefinitions",
    "compute_reaching_definitions",
    "InstanceNumbering", "number_instances", "number_instances_for_loop",
    "Context", "ContextMap", "build_contexts",
]

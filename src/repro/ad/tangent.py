"""Forward (tangent) mode source transformation.

An extension beyond the paper (its §8 mentions tangent-friendly
parallelism implicitly): the tangent of an assignment is emitted right
*before* the primal statement, with the same control structure. Forward
mode needs no data-flow reversal, so tangents of parallel loops are
trivially parallel: the tangent writes mirror the primal writes, whose
disjointness across iterations is exactly the correct-parallelization
assumption — no atomics, no reductions, no FormAD queries needed. This
module exists both as a usable feature and as an independent oracle for
the reverse mode (forward-over-reverse consistency tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.activity import ActivityAnalysis
from ..ir.expr import ArrayRef, BinOp, Const, Expr, Op, Var
from ..ir.program import Param, Procedure
from ..ir.simplify import simplify
from ..ir.stmt import Assign, If, Loop, Pop, Push, Stmt
from ..ir.types import Intent, REAL, Type
from .partials import Contribution, partials

#: Scratch accumulator for guarded tangent contributions.
TMP_TAN = "ad_tmpd"


@dataclass
class TangentResult:
    """The generated tangent procedure plus naming metadata."""

    procedure: Procedure
    tangent_of: Dict[str, str]
    activity: ActivityAnalysis

    def tangent_name(self, primal: str) -> str:
        return self.tangent_of[primal]


def differentiate_tangent(
    proc: Procedure,
    independents: Sequence[str],
    dependents: Sequence[str],
    *,
    name_suffix: str = "_d",
) -> TangentResult:
    """Differentiate *proc* in forward mode.

    The caller seeds the tangents of the independents and reads the
    tangents of the dependents after the call (all tangent arguments
    are ``intent(inout)``).
    """
    activity = ActivityAnalysis(proc, independents, dependents)
    t = _TangentTransformer(proc, activity)
    tangent = t.build(proc.name + name_suffix)
    return TangentResult(tangent, dict(t.tangent_of), activity)


class _TangentTransformer:
    def __init__(self, proc: Procedure, activity: ActivityAnalysis) -> None:
        self.proc = proc
        self.activity = activity
        self.tangent_of: Dict[str, str] = {}
        self.new_locals: Dict[str, Type] = {}
        self._needs_tmp = False
        self._loop_private_extra: set[str] = set()
        self._loop: Optional[Loop] = None

    # ------------------------------------------------------------------
    def tangent(self, name: str) -> str:
        tan = self.tangent_of.get(name)
        if tan is None:
            tan = name + "d"
            while self.proc.has_symbol(tan) or tan in self.tangent_of.values() \
                    or tan in self.new_locals:
                tan += "0"
            self.tangent_of[name] = tan
        return tan

    def tangent_ref(self, ref: Var | ArrayRef) -> Var | ArrayRef:
        if isinstance(ref, Var):
            return Var(self.tangent(ref.name))
        return ArrayRef(self.tangent(ref.name), ref.indices)

    # ------------------------------------------------------------------
    def build(self, name: str) -> Procedure:
        body = self.transform_body(self.proc.body)
        # Requested independents/dependents always get tangent
        # parameters, even if activity finds them inactive (dependents
        # whose tangent the kernel never writes keep their seed).
        wants_tangent = self.activity.active \
            | set(self.activity.independents) | set(self.activity.dependents)
        params: List[Param] = []
        for p in self.proc.params:
            params.append(p)
            if p.name in wants_tangent:
                params.append(Param(self.tangent(p.name), p.type, Intent.INOUT))
        locals_: Dict[str, Type] = dict(self.proc.locals)
        for lname, ltype in self.proc.locals.items():
            if lname in self.activity.active:
                locals_[self.tangent(lname)] = ltype
        locals_.update(self.new_locals)
        return Procedure(name, params, locals_, body)

    def transform_body(self, body: Sequence[Stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        for stmt in body:
            out.extend(self.transform_stmt(stmt))
        return out

    def transform_stmt(self, stmt: Stmt) -> List[Stmt]:
        if isinstance(stmt, Assign):
            return self.transform_assign(stmt)
        if isinstance(stmt, If):
            return [If(stmt.cond, self.transform_body(stmt.then_body),
                       self.transform_body(stmt.else_body))]
        if isinstance(stmt, Loop):
            return self.transform_loop(stmt)
        if isinstance(stmt, (Push, Pop)):
            raise TypeError("cannot differentiate code that already contains "
                            "tape operations")
        raise TypeError(f"cannot differentiate {stmt!r}")  # pragma: no cover

    def transform_assign(self, stmt: Assign) -> List[Stmt]:
        out: List[Stmt] = []
        if stmt.target.name in self.activity.active:
            out.extend(self.tangent_of_assign(stmt))
        out.append(Assign(stmt.target, stmt.value, atomic=stmt.atomic))
        return out

    def tangent_of_assign(self, stmt: Assign) -> List[Stmt]:
        is_active = lambda n: n in self.activity.active
        conts = partials(stmt.value, Const(1.0), is_active)
        td = self.tangent_ref(stmt.target)
        if any(c.guard is not None for c in conts):
            # Kinked intrinsics: accumulate in a temp under guards.
            tmp = Var(TMP_TAN)
            self.new_locals[TMP_TAN] = REAL
            if self._loop is not None:
                self._loop_private_extra.add(TMP_TAN)
            out: List[Stmt] = [Assign(tmp, Const(0.0))]
            for c in conts:
                inc = Assign(tmp, BinOp(Op.ADD, tmp, self._term(c)))
                out.append(If(c.guard, [inc]) if c.guard is not None else inc)
            out.append(Assign(td, tmp))
            return out
        expr: Expr = Const(0.0)
        for c in conts:
            expr = BinOp(Op.ADD, expr, self._term(c))
        return [Assign(td, simplify(expr))]

    def _term(self, cont: Contribution) -> Expr:
        return simplify(BinOp(Op.MUL, cont.expr, self.tangent_ref(cont.ref)))

    def transform_loop(self, loop: Loop) -> List[Stmt]:
        outer = self._loop
        if loop.parallel:
            self._loop = loop
            self._loop_private_extra = set()
        body = self.transform_body(loop.body)
        if not loop.parallel:
            self._loop = outer
            return [Loop(loop.var, loop.start, loop.stop, loop.step, body)]
        private = list(loop.private)
        for name in loop.private:
            if name in self.activity.active:
                tan = self.tangent(name)
                if tan not in private:
                    private.append(tan)
        for name in sorted(self._loop_private_extra):
            if name not in private:
                private.append(name)
        reduction = list(loop.reduction)
        for op, name in loop.reduction:
            # The tangent of a reduction accumulator accumulates too.
            if name in self.activity.active:
                if op != "+":
                    from .partials import NotDifferentiableError
                    raise NotDifferentiableError(
                        f"tangent of a {op!r}-reduction over active "
                        f"variable {name!r} is not supported")
                entry = ("+", self.tangent(name))
                if entry not in reduction:
                    reduction.append(entry)
        self._loop = outer
        self._loop_private_extra = set()
        return [Loop(loop.var, loop.start, loop.stop, loop.step, body,
                     parallel=True, private=private, reduction=reduction)]

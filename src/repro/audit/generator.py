"""Seeded random kernel generator for the soundness audit.

Every case is a :class:`CaseSpec` — a tiny, serializable, *shrinkable*
description of one parallel loop over the existing IR: which statements
it contains, how each index expression is formed (affine in the
counter, or routed through an integer table acting as the paper's
uninterpreted function), which scalars are private, whether statements
are guarded or atomic. ``build_procedure`` turns a spec into a real
:class:`~repro.ir.program.Procedure`; ``make_bindings`` produces a
matching concrete workload for any requested extent, so the same spec
can be executed at several trip counts.

The families deliberately cover both sides of every FormAD answer:

* provably safe shapes (elementwise, compact stencil windows,
  permutation scatter-increments, guarded/context splits, private
  scalars, inner sequential loops) where the audit demands an all-safe
  verdict that survives the dynamic race detector and numeric checks;
* honestly-unprovable shapes (gathers through tables) where a SAT
  verdict must either reproduce a concrete collision (non-injective
  table) or be classified as a spurious-but-safe over-approximation
  (permutation table — the solver cannot know it is injective);
* deliberately racy primals (colliding scatters, shared scalars,
  overlapping affine writes) that the race detector must catch, which
  keeps the *oracles themselves* honest.

Specs are frozen dataclasses so the delta-debugging minimizer can
rewrite them structurally and re-run the failure predicate.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.builder import ProcedureBuilder
from ..ir.expr import Expr, Var, as_expr
from ..ir.program import Procedure
from ..ir.types import INTEGER, REAL, integer_array, real_array

#: Generator families, in round-robin order.
FAMILIES = (
    "elementwise",
    "compact_window",
    "gather_perm",
    "gather_collide",
    "scatter_inc_perm",
    "guarded",
    "private_scalar",
    "inner_loop",
    "atomic_scatter",
    "racy_scatter",
    "racy_scalar",
    "racy_overlap",
)

#: Families whose primal is racy on purpose.
RACY_FAMILIES = ("racy_scatter", "racy_scalar", "racy_overlap")


@dataclass(frozen=True)
class IndexSpec:
    """One index expression: ``table(coeff*base + offset)`` or the
    affine part alone when ``table`` is None. ``base`` is the loop
    counter (``"i"``) or an integer scalar assigned in the region."""

    base: str = "i"
    coeff: int = 1
    offset: int = 0
    table: Optional[str] = None

    def expr(self) -> Expr:
        e: Expr = Var(self.base)
        if self.coeff != 1:
            e = self.coeff * e
        if self.offset:
            e = e + self.offset if self.offset > 0 else e - (-self.offset)
        if self.table is not None:
            return Var(self.table)[e]
        return e

    def render(self) -> str:
        inner = self.base
        if self.coeff != 1:
            inner = f"{self.coeff}*{inner}"
        if self.offset:
            inner = f"{inner}{self.offset:+d}"
        return f"{self.table}({inner})" if self.table else inner


@dataclass(frozen=True)
class ReadSpec:
    """One RHS read ``weight * array(index)``."""

    array: str
    index: IndexSpec
    weight: float = 1.0


@dataclass(frozen=True)
class StmtSpec:
    """One statement of the parallel region.

    ``kind``: ``assign`` (plain store), ``increment`` (exact update
    ``a(e) = a(e) + rhs``), or ``scalar_assign`` (integer counter-derived
    scalar when used as an index base elsewhere, real otherwise).
    ``guard_gt`` wraps the statement in ``if (base > guard_gt)``.
    """

    kind: str
    target: str
    index: Optional[IndexSpec] = None
    reads: Tuple[ReadSpec, ...] = ()
    bias: float = 0.0
    guard_gt: Optional[int] = None
    atomic: bool = False


@dataclass(frozen=True)
class CaseSpec:
    """A complete generated kernel, reproducible from (family, seed)."""

    family: str
    seed: int
    n: int = 24                       # default extent / workload size
    lo: int = 1                       # parallel-loop lower bound
    stride: int = 1
    private: Tuple[str, ...] = ()
    #: (name, kind) with kind in {"permutation", "collision", "identity"}.
    tables: Tuple[Tuple[str, str], ...] = ()
    stmts: Tuple[StmtSpec, ...] = ()
    inner_reps: int = 0               # >0: wrap body in `do j = 1, reps`
    expect_primal_race: bool = False

    # -- derived -------------------------------------------------------
    def arrays_written(self) -> List[str]:
        return sorted({s.target for s in self.stmts
                       if s.kind != "scalar_assign"})

    def arrays_read(self) -> List[str]:
        return sorted({r.array for s in self.stmts for r in s.reads})

    def independents(self) -> List[str]:
        return [a for a in self.arrays_read()
                if a not in self.arrays_written() and not self._is_table(a)]

    def dependents(self) -> List[str]:
        return self.arrays_written()

    def _is_table(self, name: str) -> bool:
        return any(t == name for t, _ in self.tables)

    def _index_specs(self) -> List[IndexSpec]:
        out = []
        for s in self.stmts:
            if s.index is not None:
                out.append(s.index)
            out.extend(r.index for r in s.reads)
        return out

    def trip_count(self, extent: int) -> int:
        """Largest ``m`` keeping every generated index inside
        ``[1, extent]`` for ``i`` in ``lo..m`` (table lookups index the
        table itself; table values are generated within range)."""
        m = extent
        for ix in self._index_specs():
            # the affine part must stay in [1, extent] at both ends
            m = min(m, (extent - ix.offset) // ix.coeff)
        return max(m, 0)

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


def spec_from_json(doc: dict) -> CaseSpec:
    """Inverse of :meth:`CaseSpec.to_json` (reproducer files)."""
    stmts = tuple(
        StmtSpec(kind=s["kind"], target=s["target"],
                 index=None if s["index"] is None else IndexSpec(**s["index"]),
                 reads=tuple(ReadSpec(array=r["array"],
                                      index=IndexSpec(**r["index"]),
                                      weight=r["weight"])
                             for r in s["reads"]),
                 bias=s["bias"], guard_gt=s["guard_gt"], atomic=s["atomic"])
        for s in doc["stmts"])
    return CaseSpec(family=doc["family"], seed=doc["seed"], n=doc["n"],
                    lo=doc["lo"], stride=doc["stride"],
                    private=tuple(doc["private"]),
                    tables=tuple((t[0], t[1]) for t in doc["tables"]),
                    stmts=stmts, inner_reps=doc["inner_reps"],
                    expect_primal_race=doc["expect_primal_race"])


# ----------------------------------------------------------------------
# Spec -> IR
# ----------------------------------------------------------------------
def _scalar_targets(spec: CaseSpec) -> Dict[str, bool]:
    """Scalar-assign targets: name -> used-as-index-base?"""
    bases = {ix.base for ix in spec._index_specs()}
    return {s.target: s.target in bases
            for s in spec.stmts if s.kind == "scalar_assign"}


def build_procedure(spec: CaseSpec, name: str = "kernel") -> Procedure:
    """Materialize the spec as an IR procedure.

    Arrays are assumed-size (extents come from the bindings), so one
    procedure runs at any trip count; the usable bound ``m`` is an
    integer parameter computed by :func:`make_bindings`.
    """
    b = ProcedureBuilder(name)
    written = set(spec.arrays_written())
    for arr in spec.independents():
        b.param(arr, real_array((1, None)), intent="in")
    for arr in spec.dependents():
        b.param(arr, real_array((1, None)), intent="inout")
    for tname, _ in spec.tables:
        b.param(tname, integer_array((1, None)), intent="in")
    b.param("m", INTEGER, intent="in")
    scalars = _scalar_targets(spec)
    for sname, is_index in scalars.items():
        b.local(sname, INTEGER if is_index else REAL)

    def ref(array: str, ix: IndexSpec):
        return Var(array)[ix.expr()]

    def rhs_sum(stmt: StmtSpec) -> Expr:
        e: Optional[Expr] = None
        for r in stmt.reads:
            term = (r.weight * ref(r.array, r.index) if r.weight != 1.0
                    else ref(r.array, r.index))
            e = term if e is None else e + term
        if stmt.bias or e is None:
            e = as_expr(stmt.bias) if e is None else e + stmt.bias
        return e

    def emit(stmt: StmtSpec) -> None:
        if stmt.kind == "scalar_assign":
            if scalars[stmt.target]:
                value: Expr = Var("i") + stmt.index.offset \
                    if stmt.index else Var("i")
            else:
                value = rhs_sum(stmt)
            b.assign(Var(stmt.target), value)
            return
        target = ref(stmt.target, stmt.index)
        if stmt.kind == "increment":
            b.assign(target, target + rhs_sum(stmt), atomic=stmt.atomic)
        else:
            b.assign(target, rhs_sum(stmt), atomic=stmt.atomic)

    def emit_guarded(stmt: StmtSpec) -> None:
        if stmt.guard_gt is not None:
            with b.if_(Var("i").gt(stmt.guard_gt)):
                emit(stmt)
        else:
            emit(stmt)

    with b.parallel_do("i", spec.lo, Var("m"), spec.stride,
                       private=spec.private):
        if spec.inner_reps > 0:
            with b.do("j", 1, spec.inner_reps):
                for stmt in spec.stmts:
                    emit_guarded(stmt)
        else:
            for stmt in spec.stmts:
                emit_guarded(stmt)
    return b.build()


def make_bindings(spec: CaseSpec, extent: int, *,
                  seed: int = 0) -> Dict[str, object]:
    """A concrete workload for one extent (array length)."""
    rng = np.random.default_rng((spec.seed, seed, extent))
    out: Dict[str, object] = {}
    for arr in spec.independents():
        out[arr] = rng.standard_normal(extent)
    for arr in spec.dependents():
        out[arr] = np.zeros(extent)
    m = spec.trip_count(extent)
    for tname, kind in spec.tables:
        if kind == "permutation":
            tab = rng.permutation(extent) + 1
        elif kind == "identity":
            tab = np.arange(1, extent + 1)
        elif kind == "collision":
            tab = rng.integers(1, extent + 1, size=extent)
            if m >= spec.lo + spec.stride:
                # guarantee a collision between the first two executed
                # iterations, whatever the extent
                tab[spec.lo - 1 + spec.stride] = tab[spec.lo - 1]
        else:  # pragma: no cover - spec validation
            raise ValueError(f"unknown table kind {kind!r}")
        out[tname] = tab.astype(np.int64)
    out["m"] = int(m)
    return out


# ----------------------------------------------------------------------
# Families
# ----------------------------------------------------------------------
def _w(rng: random.Random) -> float:
    return round(rng.uniform(0.25, 2.0), 3)


def _fam_elementwise(rng: random.Random, seed: int) -> CaseSpec:
    off = rng.choice((0, 1, 2))
    reads = [ReadSpec("x", IndexSpec(offset=off), _w(rng))]
    if rng.random() < 0.5:
        reads.append(ReadSpec("x", IndexSpec(offset=off), _w(rng)))
    return CaseSpec(
        family="elementwise", seed=seed, n=rng.randrange(12, 40),
        stmts=(StmtSpec("assign", "y", IndexSpec(offset=off),
                        tuple(reads), bias=_w(rng)),))


def _fam_compact_window(rng: random.Random, seed: int) -> CaseSpec:
    # The paper's compact 3-point stencil: stride-2 loop, writes at
    # {i, i-1}, reads at the same window — read safety follows from
    # write knowledge.
    return CaseSpec(
        family="compact_window", seed=seed, n=rng.randrange(16, 40),
        lo=2, stride=2,
        stmts=(
            StmtSpec("increment", "y", IndexSpec(),
                     (ReadSpec("x", IndexSpec(offset=-1), _w(rng)),)),
            StmtSpec("increment", "y", IndexSpec(),
                     (ReadSpec("x", IndexSpec(), _w(rng)),)),
            StmtSpec("increment", "y", IndexSpec(offset=-1),
                     (ReadSpec("x", IndexSpec(), _w(rng)),)),
        ))


def _fam_gather_perm(rng: random.Random, seed: int) -> CaseSpec:
    return CaseSpec(
        family="gather_perm", seed=seed, n=rng.randrange(12, 32),
        tables=(("p", "permutation"),),
        stmts=(StmtSpec("assign", "y", IndexSpec(),
                        (ReadSpec("x", IndexSpec(table="p"), _w(rng)),)),))


def _fam_gather_collide(rng: random.Random, seed: int) -> CaseSpec:
    return CaseSpec(
        family="gather_collide", seed=seed, n=rng.randrange(12, 32),
        tables=(("t", "collision"),),
        stmts=(StmtSpec("assign", "y", IndexSpec(),
                        (ReadSpec("x", IndexSpec(table="t"), _w(rng)),)),))


def _fam_scatter_inc_perm(rng: random.Random, seed: int) -> CaseSpec:
    return CaseSpec(
        family="scatter_inc_perm", seed=seed, n=rng.randrange(12, 32),
        tables=(("p", "permutation"),),
        stmts=(StmtSpec("increment", "y", IndexSpec(table="p"),
                        (ReadSpec("x", IndexSpec(), _w(rng)),)),))


def _fam_guarded(rng: random.Random, seed: int) -> CaseSpec:
    n = rng.randrange(16, 40)
    return CaseSpec(
        family="guarded", seed=seed, n=n,
        stmts=(
            StmtSpec("assign", "y", IndexSpec(),
                     (ReadSpec("x", IndexSpec(), _w(rng)),),
                     guard_gt=rng.randrange(2, 6)),
            StmtSpec("assign", "z", IndexSpec(),
                     (ReadSpec("x", IndexSpec(), _w(rng)),), bias=1.0),
        ))


def _fam_private_scalar(rng: random.Random, seed: int) -> CaseSpec:
    off = rng.choice((0, 1))
    return CaseSpec(
        family="private_scalar", seed=seed, n=rng.randrange(12, 32),
        private=("k",),
        stmts=(
            StmtSpec("scalar_assign", "k", IndexSpec(offset=off)),
            StmtSpec("assign", "y", IndexSpec(base="k"),
                     (ReadSpec("x", IndexSpec(base="k"), _w(rng)),)),
        ))


def _fam_inner_loop(rng: random.Random, seed: int) -> CaseSpec:
    return CaseSpec(
        family="inner_loop", seed=seed, n=rng.randrange(12, 32),
        inner_reps=rng.randrange(2, 5),
        stmts=(StmtSpec("increment", "y", IndexSpec(),
                        (ReadSpec("x", IndexSpec(), _w(rng)),)),))


def _fam_atomic_scatter(rng: random.Random, seed: int) -> CaseSpec:
    # Colliding scatter-add made legal by `!$omp atomic`: the primal is
    # race-free, but FormAD must refuse to reason about the atomic
    # array (fallback), never prove it.
    return CaseSpec(
        family="atomic_scatter", seed=seed, n=rng.randrange(12, 32),
        tables=(("t", "collision"),),
        stmts=(StmtSpec("increment", "y", IndexSpec(table="t"),
                        (ReadSpec("x", IndexSpec(), _w(rng)),),
                        atomic=True),))


def _fam_racy_scatter(rng: random.Random, seed: int) -> CaseSpec:
    return CaseSpec(
        family="racy_scatter", seed=seed, n=rng.randrange(12, 32),
        tables=(("t", "collision"),), expect_primal_race=True,
        stmts=(StmtSpec("assign", "y", IndexSpec(table="t"),
                        (ReadSpec("x", IndexSpec(), _w(rng)),)),))


def _fam_racy_scalar(rng: random.Random, seed: int) -> CaseSpec:
    # `s` is assigned in every iteration but NOT private: scalar race.
    return CaseSpec(
        family="racy_scalar", seed=seed, n=rng.randrange(12, 32),
        expect_primal_race=True,
        stmts=(
            StmtSpec("scalar_assign", "s", None,
                     (ReadSpec("x", IndexSpec(), _w(rng)),)),
            StmtSpec("assign", "y", IndexSpec(), (), bias=2.0),
        ))


def _fam_racy_overlap(rng: random.Random, seed: int) -> CaseSpec:
    # Writes at i and i+1 from a stride-1 loop: adjacent iterations
    # collide on y.
    return CaseSpec(
        family="racy_overlap", seed=seed, n=rng.randrange(16, 40),
        expect_primal_race=True,
        stmts=(
            StmtSpec("assign", "y", IndexSpec(),
                     (ReadSpec("x", IndexSpec(), _w(rng)),)),
            StmtSpec("increment", "y", IndexSpec(offset=1),
                     (ReadSpec("x", IndexSpec(), _w(rng)),)),
        ))


_BUILDERS = {
    "elementwise": _fam_elementwise,
    "compact_window": _fam_compact_window,
    "gather_perm": _fam_gather_perm,
    "gather_collide": _fam_gather_collide,
    "scatter_inc_perm": _fam_scatter_inc_perm,
    "guarded": _fam_guarded,
    "private_scalar": _fam_private_scalar,
    "inner_loop": _fam_inner_loop,
    "atomic_scatter": _fam_atomic_scatter,
    "racy_scatter": _fam_racy_scatter,
    "racy_scalar": _fam_racy_scalar,
    "racy_overlap": _fam_racy_overlap,
}

assert set(_BUILDERS) == set(FAMILIES)


def generate_case(index: int, *, seed: int = 0,
                  families: Sequence[str] = FAMILIES) -> CaseSpec:
    """Deterministically generate the ``index``-th case of an audit run.

    Families rotate round-robin so every ``--count`` covers all of
    them; the per-case RNG is seeded with ``(seed, index)`` so any
    single case can be regenerated without replaying the run.
    """
    family = families[index % len(families)]
    rng = random.Random(f"audit:{seed}:{index}")
    return _BUILDERS[family](rng, seed=seed * 1_000_003 + index)

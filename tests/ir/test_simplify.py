"""Tests for the expression simplifier, including a value-preservation
property test against the interpreter."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import (BinOp, Call, Const, Op, UnOp, Var, simplify,
                      ProcedureBuilder, REAL)
from repro.ir.stmt import Assign
from repro.runtime import Interpreter, Memory

x, y = Var("x"), Var("y")


class TestRules:
    def test_identity_elimination(self):
        assert simplify(x + 0.0) == x
        assert simplify(0.0 + x) == x
        assert simplify(x * 1.0) == x
        assert simplify(1.0 * x) == x
        assert simplify(x - 0.0) == x
        assert simplify(x / 1.0) == x

    def test_annihilation(self):
        assert simplify(x * 0.0) == Const(0.0)
        assert simplify(0.0 * x) == Const(0.0)

    def test_constant_folding(self):
        assert simplify(Const(2) + Const(3)) == Const(5)
        assert simplify(Const(2.0) * Const(4.0)) == Const(8.0)
        assert simplify(Const(7) / Const(2)) == Const(3)  # Fortran int div
        assert simplify(Const(-7) / Const(2)) == Const(-3)

    def test_division_by_zero_not_folded(self):
        e = Const(1.0) / Const(0.0)
        assert isinstance(simplify(e), BinOp)

    def test_double_negation(self):
        assert simplify(-(-x)) == x

    def test_self_subtraction(self):
        assert simplify(x - x) == Const(0.0)

    def test_mul_minus_one(self):
        s = simplify(x * -1)
        assert s == UnOp(Op.NEG, x)

    def test_nested_simplification(self):
        e = (x * 1.0 + 0.0 * y) + 0.0
        assert simplify(e) == x

    def test_pow_rules(self):
        assert simplify(x ** 1) == x
        assert simplify(x ** 0) == Const(1.0)

    def test_call_arguments_simplified(self):
        e = Call("sin", (x * 1.0,))
        assert simplify(e) == Call("sin", (x,))

    def test_add_of_negation_becomes_subtraction(self):
        e = BinOp(Op.ADD, x, UnOp(Op.NEG, y))
        assert simplify(e) == BinOp(Op.SUB, x, y)


_leaf = st.sampled_from([Var("x"), Var("y"), Const(0.0), Const(1.0),
                         Const(2.5), Const(-1.0), Const(3)])
_ops = st.sampled_from([Op.ADD, Op.SUB, Op.MUL])


def _exprs(depth):
    if depth == 0:
        return _leaf
    sub = _exprs(depth - 1)
    return st.one_of(
        _leaf,
        st.builds(BinOp, _ops, sub, sub),
        st.builds(lambda e: UnOp(Op.NEG, e), sub),
    )


class TestValuePreservation:
    @given(_exprs(4), st.floats(-5, 5), st.floats(-5, 5))
    @settings(max_examples=200, deadline=None)
    def test_simplify_preserves_value(self, expr, xv, yv):
        b = ProcedureBuilder("p")
        b.param("x", REAL)
        b.param("y", REAL)
        r1 = b.param("r1", REAL)
        r2 = b.param("r2", REAL)
        b.assign(r1, expr)
        b.assign(r2, simplify(expr))
        proc = b.build()
        mem = Memory.for_procedure(proc, {"x": xv, "y": yv})
        Interpreter(proc, mem).run()
        v1, v2 = mem.get_scalar("r1"), mem.get_scalar("r2")
        assert v1 == pytest.approx(v2, rel=1e-12, abs=1e-12)

"""Observability: structured tracing, provenance, and metrics.

The pipeline (SMT solver, FormAD engine, runtime, experiment harness)
is instrumented against a tiny tracer interface whose default,
:data:`NULL_TRACER`, does nothing — tracing costs nothing until a real
sink is injected (``--trace out.jsonl`` on the CLI builds a
:class:`JsonlTracer`). Recorded traces are replayed by ``repro
explain`` (the per-array proof chain, :mod:`repro.obs.explain`) and
``repro profile`` (the span/phase time tree, :mod:`repro.obs.profile`),
and validated against the versioned event schema
(:mod:`repro.obs.events`).
"""

from .events import (EVENT_FIELDS, SCHEMA_NAME, SCHEMA_VERSION,
                     TraceValidationError, validate_event, validate_events)
from .tracer import (NULL_TRACER, BufferTracer, CollectingTracer,
                     JsonlTracer, NullTracer,
                     Tracer, load_trace)
from .metrics import (COUNTER_KEYS, METRICS_SCHEMA, TIMER_KEYS,
                      counters_only, stats_metrics)
from .explain import explain_array, known_arrays, resolve_array
from .profile import build_span_tree, context_table, format_profile

# NB: repro.obs.validate is deliberately not imported here — it is the
# ``python -m repro.obs.validate`` entry point, and importing it from
# the package would trigger runpy's double-import RuntimeWarning.
# Use ``from repro.obs.validate import validate_file`` directly.

__all__ = [
    "EVENT_FIELDS", "SCHEMA_NAME", "SCHEMA_VERSION",
    "TraceValidationError", "validate_event", "validate_events",
    "NULL_TRACER", "BufferTracer", "CollectingTracer", "JsonlTracer",
    "NullTracer",
    "Tracer", "load_trace",
    "COUNTER_KEYS", "METRICS_SCHEMA", "TIMER_KEYS",
    "counters_only", "stats_metrics",
    "explain_array", "known_arrays", "resolve_array",
    "build_span_tree", "context_table", "format_profile",
]

"""Per-worker clock-offset handshake for distributed traces.

``time.perf_counter()`` is process-local: a serve worker's monotonic
timestamps mean nothing on the parent's timeline until they are
normalized. The wire protocol makes that cheap — every worker reply
carries ``clock``, the worker's ``perf_counter()`` read at reply time,
and the parent brackets each request with its own send/receive reads.
The classic NTP midpoint estimate then gives the offset::

    offset = (send + recv) / 2 - worker_clock

with the request's round-trip time bounding the error. A
:class:`ClockSync` keeps the *best* (lowest-RTT) sample it has seen,
so the estimate tightens as the pool warms up.

Normalization additionally **clamps** each translated timestamp into
the window of the request that carried it: a worker event buffered
during request N provably happened between the parent's send and
receive of request N, so clamping bounds the residual offset error and
guarantees re-emitted worker timestamps stay monotonic with the
parent-side events around them (tests/obs/test_clock.py).
"""

from __future__ import annotations

from typing import Optional, Tuple


class ClockSync:
    """One worker's offset estimate (``parent_pc - worker_pc``)."""

    __slots__ = ("offset", "rtt")

    def __init__(self) -> None:
        self.offset: Optional[float] = None
        self.rtt: Optional[float] = None

    def update(self, worker_clock: float, send_pc: float,
               recv_pc: float) -> float:
        """Fold one handshake sample; returns its offset estimate.
        The stored estimate only changes when this sample's RTT is at
        least as tight as the best one so far."""
        rtt = max(recv_pc - send_pc, 0.0)
        offset = (send_pc + recv_pc) / 2.0 - worker_clock
        if self.rtt is None or rtt <= self.rtt:
            self.offset, self.rtt = offset, rtt
        return offset

    def to_parent(self, worker_pc: float,
                  window: Optional[Tuple[float, float]] = None,
                  ) -> Optional[float]:
        """*worker_pc* on the parent's ``perf_counter`` timeline, or
        None before the first handshake. *window* is the (send, recv)
        bracket of the request that carried the timestamp; the result
        is clamped into it."""
        if self.offset is None:
            return None
        t = worker_pc + self.offset
        if window is not None:
            lo, hi = window
            t = min(max(t, lo), hi)
        return t

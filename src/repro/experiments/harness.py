"""The experiment harness: program versions, thread sweeps, speedups.

For each kernel the paper compares five program versions (§7):

* **Primal** — the original parallel function (plus its pragma-free
  serial build as the speedup baseline);
* **Adjoint Serial** — reverse mode, no OpenMP pragmas;
* **Adjoint FormAD** — safeguards dropped where proven safe;
* **Adjoint Atomic** — every shared adjoint increment atomic;
* **Adjoint Reduction** — shared adjoint arrays privatized.

Beyond the paper, two related-work safeguards from the strategy
registry ride along in every sweep:

* **Adjoint Preaccumulate** — iteration-local adjoint buffers with one
  atomic flush per distinct location (arXiv 2405.07819);
* **Adjoint Transposed** — unit-affine increments hoisted into loops
  over the adjoint's write footprint (arXiv 1907.02818).

Each version is interpreted once at reduced size under the cost tracer,
then extrapolated to the paper's problem size and simulated across
thread counts. Speedups divide the respective *serial* version's time,
exactly like the paper ("when we report parallel speedup numbers, we
use the serial version without any OpenMP pragmas as the baseline").
"""

from __future__ import annotations

import logging
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from .. import differentiate
from ..ad import ReverseResult
from ..ir.program import Procedure
from ..ir.stmt import strip_parallel
from ..obs.tracer import NULL_TRACER, NullTracer
from ..runtime import BROADWELL_18, MachineModel, profile_run
from ..runtime.costmodel import total_time
from .paper_reference import PAPER_THREADS
from .specs import KernelSpec

logger = logging.getLogger(__name__)

#: The adjoint strategies measured by the figures: the paper's three
#: program versions plus the two related-work registry strategies.
ADJOINT_STRATEGIES = ("formad", "atomic", "reduction", "preaccumulate",
                      "transposed")


def _serialized(proc: Procedure) -> Procedure:
    return Procedure(proc.name + "_serial", list(proc.params),
                     dict(proc.locals), strip_parallel(proc.body))


def _adjoint_bindings(spec: KernelSpec, adj: ReverseResult) -> Dict[str, object]:
    bindings = dict(spec.bindings)
    for name in set(spec.independents) | set(spec.dependents):
        bname = adj.adjoint_name(name)
        base = np.asarray(bindings[name], dtype=float)
        if name in spec.dependents:
            seed = np.ones(base.shape) if base.shape else 1.0
        else:
            seed = np.zeros(base.shape) if base.shape else 0.0
        bindings[bname] = seed
    return bindings


@dataclass
class VariantResult:
    """Simulated wall times of one program version."""

    label: str
    times: Dict[int, float]          # threads -> seconds (parallel builds)
    serial_time: Optional[float] = None  # pragma-free build (baseline)

    def best(self) -> float:
        return min(self.times.values()) if self.times else float("inf")

    def best_threads(self) -> int:
        return min(self.times, key=self.times.get)

    def speedups(self, baseline: float) -> Dict[int, float]:
        return {t: baseline / v for t, v in self.times.items()}


@dataclass
class KernelExperiment:
    """All program versions of one kernel (one paper figure pair)."""

    spec: KernelSpec
    threads: Sequence[int]
    primal: VariantResult
    adjoints: Dict[str, VariantResult]
    adjoint_serial_time: float

    @property
    def primal_serial_time(self) -> float:
        assert self.primal.serial_time is not None
        return self.primal.serial_time

    def primal_speedups(self) -> Dict[int, float]:
        return self.primal.speedups(self.primal_serial_time)

    def adjoint_speedups(self, strategy: str) -> Dict[int, float]:
        return self.adjoints[strategy].speedups(self.adjoint_serial_time)


def _simulate_parallel(proc: Procedure, bindings: Mapping[str, object],
                       spec: KernelSpec, threads: Sequence[int],
                       machine: MachineModel,
                       tracer: NullTracer = NULL_TRACER) -> Dict[int, float]:
    run = profile_run(proc, bindings, tracer=tracer)
    return {
        t: total_time(run.profile, machine, t, iter_scale=spec.iter_scale,
                      invocation_scale=spec.invocation_scale,
                      elem_scale=spec.elem_scale)
        for t in threads
    }


def _simulate_serial(proc: Procedure, bindings: Mapping[str, object],
                     spec: KernelSpec, machine: MachineModel,
                     tracer: NullTracer = NULL_TRACER) -> float:
    """A pragma-free build: every op lands in the serial segment, which
    must be scaled by both the trip-count and repetition factors."""
    run = profile_run(proc, bindings, tracer=tracer)
    assert not run.profile.parallel_loops
    return (run.profile.serial.serial_seconds(machine)
            * spec.iter_scale * spec.invocation_scale)


def run_kernel_experiment(
    spec: KernelSpec,
    *,
    threads: Sequence[int] = PAPER_THREADS,
    machine: MachineModel = BROADWELL_18,
    strategies: Sequence[str] = ADJOINT_STRATEGIES,
    jobs: Optional[int] = None,
    tracer: NullTracer = NULL_TRACER,
) -> KernelExperiment:
    """Build, differentiate, interpret, and simulate one kernel.

    The program versions (primal parallel/serial, adjoint serial, one
    adjoint per strategy) are independent differentiate+interpret
    pipelines; ``jobs`` > 1 fans them out over a thread pool. Each
    version runs under an ``experiment.variant`` span whose events
    carry the executing worker thread's name, so a trace shows which
    pool worker simulated which program version.
    """

    def primal_parallel() -> VariantResult:
        times = _simulate_parallel(spec.proc, spec.bindings, spec,
                                   threads, machine, tracer)
        serial = _simulate_serial(_serialized(spec.proc), spec.bindings,
                                  spec, machine, tracer)
        return VariantResult("primal", times, serial)

    def adjoint_serial() -> float:
        adj = differentiate(spec.proc, spec.independents, spec.dependents,
                            strategy="serial")
        return _simulate_serial(adj.procedure, _adjoint_bindings(spec, adj),
                                spec, machine, tracer)

    def adjoint_variant(strategy: str) -> Callable[[], VariantResult]:
        def run() -> VariantResult:
            adj = differentiate(spec.proc, spec.independents, spec.dependents,
                                strategy=strategy)
            times = _simulate_parallel(adj.procedure,
                                       _adjoint_bindings(spec, adj),
                                       spec, threads, machine, tracer)
            return VariantResult(f"adjoint-{strategy}", times)
        return run

    def traced(task: Callable, label: str) -> Callable:
        def run():
            with tracer.span("experiment.variant", kernel=spec.name,
                             variant=label):
                result = task()
            logger.info("%s: simulated %s", spec.name, label)
            return result
        return run

    labels = ["primal", "adjoint-serial"] + [f"adjoint-{s}"
                                             for s in strategies]
    tasks: List[Callable] = [primal_parallel, adjoint_serial]
    tasks += [adjoint_variant(s) for s in strategies]
    tasks = [traced(task, label) for task, label in zip(tasks, labels)]
    with tracer.span("experiment.kernel", kernel=spec.name):
        if jobs is not None and jobs > 1:
            with ThreadPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
                futures = [pool.submit(task) for task in tasks]
                results = [f.result() for f in futures]
        else:
            results = [task() for task in tasks]

    primal, adjoint_serial_time = results[0], results[1]
    adjoints = {strategy: result
                for strategy, result in zip(strategies, results[2:])}
    return KernelExperiment(spec, list(threads), primal, adjoints,
                            adjoint_serial_time)


def format_figure_pair(exp: KernelExperiment, paper_caption: str = "") -> str:
    """Text rendering of one absolute-time + speedup figure pair."""
    lines = [f"=== {exp.spec.name} ==="]
    if paper_caption:
        lines.append(f"(paper: {paper_caption})")
    lines.append(f"primal serial:   {exp.primal_serial_time:10.3f} s")
    lines.append(f"adjoint serial:  {exp.adjoint_serial_time:10.3f} s")
    header = "threads      " + "".join(f"{t:>12d}" for t in exp.threads)
    lines.append(header)

    def row(label: str, times: Dict[int, float]) -> str:
        return f"{label:<13}" + "".join(f"{times[t]:>12.3f}" for t in exp.threads)

    lines.append(row("primal", exp.primal.times))
    for strategy, variant in exp.adjoints.items():
        lines.append(row(f"adj-{strategy}", variant.times))
    lines.append("-- speedups vs the respective serial build --")

    def srow(label: str, sp: Dict[int, float]) -> str:
        return f"{label:<13}" + "".join(f"{sp[t]:>12.2f}" for t in exp.threads)

    lines.append(srow("primal", exp.primal_speedups()))
    for strategy in exp.adjoints:
        lines.append(srow(f"adj-{strategy}", exp.adjoint_speedups(strategy)))
    return "\n".join(lines)

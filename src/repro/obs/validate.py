"""Trace validation entry point: ``python -m repro.obs.validate t.jsonl``.

Exits 0 when every event parses and satisfies the version-1 schema
(structure, unknown-field rejection, span begin/end discipline); exits
1 listing the violations otherwise. CI runs this over the trace it
records before uploading it as an artifact.
"""

from __future__ import annotations

import sys
from typing import List, Optional, Sequence

from .events import validate_events
from .tracer import load_trace


def validate_file(path: str) -> List[str]:
    """All schema errors of the JSONL trace at *path*."""
    try:
        events = load_trace(path)
    except (OSError, ValueError) as exc:
        return [str(exc)]
    if not events:
        return ["empty trace"]
    return validate_events(events)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 1:
        print("usage: python -m repro.obs.validate TRACE.jsonl",
              file=sys.stderr)
        return 2
    errors = validate_file(args[0])
    if errors:
        for error in errors:
            print(f"invalid: {error}", file=sys.stderr)
        return 1
    print(f"{args[0]}: valid")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

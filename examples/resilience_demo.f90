! resilience_demo — two independent all-safe parallel loops, used by the
! CI resilience smoke job and docs/RESILIENCE.md. Because every adjoint
! update touches only its own slot, the analysis proves both loops safe
! without SAT early-breaks, so question counts are identical across
! every resilience configuration (deadline, isolation, resume).
!
! Try the crash-safe journal:
!   python -m repro analyze examples/resilience_demo.f90 -i x -o y,z \
!     --isolate --journal run.jsonl
!   kill -9 <pid>   # at any point
!   python -m repro analyze examples/resilience_demo.f90 -i x -o y,z \
!     --isolate --journal run.jsonl --resume run.jsonl
subroutine resilience_demo(x, y, z, n)
  real, intent(in) :: x(1000)
  real, intent(out) :: y(1000)
  real, intent(out) :: z(1000)
  integer, intent(in) :: n
  integer :: i
  integer :: j

  !$omp parallel do
  do i = 1, n
    y(i) = x(i) * 2.0
  end do
  !$omp parallel do
  do j = 1, n
    z(j) = x(j) + 1.0
  end do
end subroutine resilience_demo

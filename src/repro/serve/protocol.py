"""The ``repro-serve/1`` wire protocol.

One TCP or unix-domain stream connection carries any number of
newline-delimited JSON messages: the client writes one request object
per line, the daemon answers one reply object per line, in order.
Both sides are plain ``{...}\\n`` — no framing beyond the newline, no
binary, so a smoke test can drive the daemon with a shell one-liner.

Requests::

    {"schema": "repro-serve/1", "op": "hello"}
    {"schema": "repro-serve/1", "op": "analyze",
     "source": "...", "head": "stencil",
     "independents": ["uold"], "dependents": ["unew"],
     "flags": {...engine fingerprint flags...},
     "deadline": 30.0, "question_timeout": 5.0, "escalate": 1}
    {"schema": "repro-serve/1", "op": "stats"}
    {"schema": "repro-serve/1", "op": "shutdown"}

Every reply carries ``ok`` (bool) and, on failure, ``error``
(``{"type", "message"}``). An ``analyze`` reply's payload is
``loops``: one ``{"key", "done", "verdicts"}`` record per parallel
loop in loop order — exactly the journal record shapes
:func:`~repro.resilience.journal.rebuild_analysis` reverses, so the
client reconstructs full :class:`~repro.formad.engine.LoopAnalysis`
objects and reuses the ordinary CLI rendering (that construction is
what makes ``analyze --connect --json`` byte-identical to in-process
analysis, modulo wall-clock timers). ``served_from`` says how the
daemon answered: ``"cold"`` (a fresh analysis), ``"memo"`` (the
in-memory memo of a previous clean run — no worker dispatch, no model
build), or ``"cache"`` (every loop replayed from the daemon's
``--cache-dir`` store).

Resource limits (``deadline``, ``question_timeout``, ``escalate``)
are per-request and deliberately **outside** the memo/cache key,
mirroring the journal-fingerprint rule: only clean runs (no
timeouts, no UNKNOWNs, no degradation) are memoized, and a clean
answer is valid under any budget.

Addresses: ``parse_address`` reads ``HOST:PORT`` (a digits-only tail
after the last colon) as localhost TCP and anything else as a
unix-socket path, so one ``--connect ADDR`` flag serves both.
"""

from __future__ import annotations

import json
import socket
from typing import Optional, Tuple

SERVE_SCHEMA = "repro-serve/1"


class ServeError(RuntimeError):
    """A protocol-level failure talking to (or inside) the daemon."""


def parse_address(address: str) -> Tuple[str, object]:
    """``("tcp", (host, port))`` or ``("unix", path)`` for *address*.

    ``HOST:PORT`` (PORT all digits) is TCP; everything else — paths
    contain separators or at least no digits-only colon tail — is a
    unix-socket path. An empty host means localhost.
    """
    if not address:
        raise ServeError("empty serve address")
    host, sep, port = address.rpartition(":")
    if sep and port.isdigit() and "/" not in host:
        return "tcp", (host or "127.0.0.1", int(port))
    return "unix", address


def open_connection(address: str, timeout: Optional[float] = None,
                    ) -> socket.socket:
    """A connected stream socket for *address* (TCP or unix)."""
    kind, target = parse_address(address)
    if kind == "tcp":
        return socket.create_connection(target, timeout=timeout)
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    if timeout is not None:
        sock.settimeout(timeout)
    try:
        sock.connect(target)
    except OSError:
        sock.close()
        raise
    return sock


def write_message(wfile, payload: dict) -> None:
    """One request/reply line. Sorted keys: replies are diffable and
    the wire format is deterministic for tests."""
    wfile.write((json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"))
    wfile.flush()


def read_message(rfile) -> Optional[dict]:
    """The next message object, or None at EOF. A syntactically broken
    line raises :class:`ServeError` — the stream is out of sync and
    cannot be trusted further."""
    line = rfile.readline()
    if not line:
        return None
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ServeError(f"unparsable serve message: {exc}")
    if not isinstance(message, dict):
        raise ServeError("serve message is not an object")
    return message


def error_reply(exc_type: str, message: str) -> dict:
    return {"schema": SERVE_SCHEMA, "ok": False,
            "error": {"type": exc_type, "message": message}}

"""Figures 4 and 6: large (17-point) stencil absolute time and speedup.

Paper shapes: same qualitative picture as the small stencil at ~4-6x
the absolute cost — primal/FormAD scale to ~13x, atomics and
reductions never beat the serial adjoint and degrade with threads.
"""

import pytest

from repro.experiments import (PAPER, large_stencil_spec,
                               run_kernel_experiment, small_stencil_spec)


@pytest.fixture(scope="module")
def experiment(bench_sizes):
    return run_kernel_experiment(
        large_stencil_spec(n=bench_sizes["stencil_large_n"]))


@pytest.mark.figure("fig4")
def test_fig4_absolute_times(benchmark, bench_sizes):
    exp = benchmark.pedantic(
        lambda: run_kernel_experiment(
            large_stencil_spec(n=bench_sizes["stencil_large_n"])),
        rounds=1, iterations=1)
    paper = PAPER["stencil_large"]
    # Within 2x of the paper's serial anchors.
    assert exp.primal_serial_time == pytest.approx(paper.primal_serial, rel=1.0)
    # The large stencil costs several times the small one (paper: 4.25x).
    small = run_kernel_experiment(small_stencil_spec(n=bench_sizes["stencil_large_n"]))
    ratio = exp.primal_serial_time / small.primal_serial_time
    assert 3 < ratio < 9
    # Safeguarded adjoints never beat serial.
    assert exp.adjoints["atomic"].best() > exp.adjoint_serial_time
    assert exp.adjoints["reduction"].best() > exp.adjoint_serial_time


@pytest.mark.figure("fig6")
def test_fig6_speedups(benchmark, experiment):
    exp = experiment
    primal_sp = benchmark.pedantic(exp.primal_speedups, rounds=1, iterations=1)
    assert 10 < primal_sp[18] < 18
    assert 10 < exp.adjoint_speedups("formad")[18] < 18
    for strategy in ("atomic", "reduction"):
        sp = exp.adjoint_speedups(strategy)
        assert max(sp.values()) < 1.0
    # Paper: FormAD outperforms atomics/reductions by more than 10x in
    # parallel execution.
    formad18 = exp.adjoints["formad"].times[18]
    assert exp.adjoints["atomic"].times[18] > 10 * formad18
    assert exp.adjoints["reduction"].times[18] > 10 * formad18

"""Type system for the mini-language IR.

The language is deliberately Fortran-flavored: it has scalar types
(``real``, ``integer``, ``logical``) and rectangular arrays with
per-dimension lower/upper bounds (default lower bound 1, as in Fortran).
Only the features exercised by the FormAD paper are modeled; in
particular there is no aliasing between distinct array variables
(paper §3, limitations).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple


class Kind(enum.Enum):
    """Scalar kinds supported by the mini-language."""

    REAL = "real"
    INTEGER = "integer"
    LOGICAL = "logical"

    @property
    def is_differentiable(self) -> bool:
        """Only real-valued data carries derivatives (paper §5.4)."""
        return self is Kind.REAL

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ScalarType:
    """A scalar variable type."""

    kind: Kind

    @property
    def is_array(self) -> bool:
        return False

    @property
    def is_differentiable(self) -> bool:
        return self.kind.is_differentiable

    @property
    def rank(self) -> int:
        return 0

    def __str__(self) -> str:
        return str(self.kind)


@dataclass(frozen=True)
class Dim:
    """One array dimension with inclusive integer bounds.

    ``upper`` may be ``None`` for assumed-size dimensions (bounds known
    only at run time); such dimensions get their extent from the bound
    storage when a procedure is executed.
    """

    lower: int = 1
    upper: Optional[int] = None

    @property
    def extent(self) -> Optional[int]:
        if self.upper is None:
            return None
        return self.upper - self.lower + 1

    def __str__(self) -> str:
        hi = "*" if self.upper is None else str(self.upper)
        if self.lower == 1:
            return hi
        return f"{self.lower}:{hi}"


@dataclass(frozen=True)
class ArrayType:
    """A rectangular array type with explicit dimensions."""

    kind: Kind
    dims: Tuple[Dim, ...]

    def __init__(self, kind: Kind, dims: Sequence[Dim | int | tuple | None]):
        object.__setattr__(self, "kind", kind)
        norm = []
        for d in dims:
            if isinstance(d, Dim):
                norm.append(d)
            elif d is None:
                norm.append(Dim(1, None))
            elif isinstance(d, int):
                norm.append(Dim(1, d))
            elif isinstance(d, tuple) and len(d) == 2:
                norm.append(Dim(int(d[0]), None if d[1] is None else int(d[1])))
            else:  # pragma: no cover - defensive
                raise TypeError(f"bad dimension spec: {d!r}")
        if not norm:
            raise ValueError("arrays must have at least one dimension")
        object.__setattr__(self, "dims", tuple(norm))

    @property
    def is_array(self) -> bool:
        return True

    @property
    def is_differentiable(self) -> bool:
        return self.kind.is_differentiable

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def shape(self) -> Tuple[Optional[int], ...]:
        return tuple(d.extent for d in self.dims)

    def __str__(self) -> str:
        dims = ", ".join(str(d) for d in self.dims)
        return f"{self.kind}({dims})"


Type = ScalarType | ArrayType

#: Convenience singletons, used pervasively by builders and tests.
REAL = ScalarType(Kind.REAL)
INTEGER = ScalarType(Kind.INTEGER)
LOGICAL = ScalarType(Kind.LOGICAL)


def real_array(*dims) -> ArrayType:
    """Shorthand for a ``real`` array type: ``real_array(10, (0, 5))``."""
    return ArrayType(Kind.REAL, dims)


def integer_array(*dims) -> ArrayType:
    """Shorthand for an ``integer`` array type."""
    return ArrayType(Kind.INTEGER, dims)


class Intent(enum.Enum):
    """Dataflow intent of a procedure argument (Fortran ``intent``)."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"
    LOCAL = "local"

    @property
    def is_input(self) -> bool:
        return self in (Intent.IN, Intent.INOUT)

    @property
    def is_output(self) -> bool:
        return self in (Intent.OUT, Intent.INOUT)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

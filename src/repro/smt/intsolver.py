"""Integer layer: branch & bound over the rational simplex.

Decides conjunctions of canonical constraints over the *integers*.
The LP relaxation is solved first; if the rational model is already
integral we are done, otherwise we branch on a fractional variable
(``x <= floor(v)`` / ``x >= ceil(v)``) and recurse.

Soundness notes (these are what FormAD relies on):

* LP-infeasible ⇒ integer-infeasible, so UNSAT answers are always
  sound proofs of disjointness.
* A node budget bounds the search; exhausting it yields UNKNOWN, which
  FormAD treats as "possibly conflicting" (safe fallback, paper §5.5).
* Per-constraint GCD tightening happens earlier, in
  :func:`repro.smt.linform.canonicalize`, which prunes the classic
  divisibility traps (e.g. ``2x = 2y + 1``) before branching starts.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence

from .linform import Constraint
from .presolve import PresolveInfeasible, presolve
from .simplex import ResourceError, SimplexSolver


class Result(enum.Enum):
    """Z3-style tri-state answer."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class IntCheckOutcome:
    result: Result
    model: Optional[Dict[str, int]] = None
    nodes_explored: int = 0
    #: Why the result is UNKNOWN: ``"timeout"`` (deadline expired),
    #: ``"budget"`` (node budget exhausted), ``"solver-unknown"``
    #: (simplex pivot limit). None for SAT/UNSAT.
    reason: Optional[str] = None


def check_int(
    constraints: Sequence[Constraint],
    *,
    node_budget: int = 2000,
    pivot_budget: int = 100_000,
    deadline=None,
) -> IntCheckOutcome:
    """Decide a conjunction of canonical constraints over the integers.

    ``deadline`` (a :class:`repro.resilience.Deadline` or None) is
    polled once per branch-and-bound node — the cooperative tick that
    bounds how long one check can run past its wall-clock budget.
    """
    outcome = IntCheckOutcome(Result.UNKNOWN)
    try:
        reduced = presolve(constraints)
    except PresolveInfeasible:
        outcome.result = Result.UNSAT
        return outcome
    root = SimplexSolver()
    for c in reduced.constraints:
        root.assert_constraint(c)
    outcome.result = _branch(root, reduced.constraints, outcome,
                             node_budget, pivot_budget, deadline)
    if outcome.result is Result.SAT:
        assert outcome.model is not None
        full = reduced.reconstruct(outcome.model)
        # Validate against the *original* constraints, not the reduced ones.
        assert all(c.holds(_total(full, c)) for c in constraints)
        outcome.model = full
    return outcome


def _branch(
    solver: SimplexSolver,
    constraints: Sequence[Constraint],
    outcome: IntCheckOutcome,
    node_budget: int,
    pivot_budget: int,
    deadline=None,
) -> Result:
    stack: List[SimplexSolver] = [solver]
    saw_unknown = False
    while stack:
        outcome.nodes_explored += 1
        if outcome.nodes_explored > node_budget:
            outcome.reason = "budget"
            return Result.UNKNOWN
        if deadline is not None and deadline.expired():
            outcome.reason = "timeout"
            return Result.UNKNOWN
        node = stack.pop()
        try:
            feasible = node.check(max_pivots=pivot_budget)
        except ResourceError:
            saw_unknown = True
            continue
        if not feasible:
            continue
        model = node.model()
        frac_name, frac_value = _first_fractional(model)
        if frac_name is None:
            int_model = {n: int(v) for n, v in model.items()}
            # Defensive re-validation: the simplex is exact arithmetic,
            # but a cheap double-check keeps soundness obvious.
            assert all(c.holds(_total(int_model, c)) for c in constraints)
            outcome.model = int_model
            return Result.SAT
        lo_branch = node.copy()
        lo_branch.assert_upper(frac_name, Fraction(math.floor(frac_value)))
        hi_branch = node
        hi_branch.assert_lower(frac_name, Fraction(math.ceil(frac_value)))
        stack.append(lo_branch)
        stack.append(hi_branch)
    if saw_unknown:
        outcome.reason = "solver-unknown"
        return Result.UNKNOWN
    return Result.UNSAT


def _first_fractional(model: Dict[str, Fraction]) -> tuple[Optional[str], Fraction]:
    for name in sorted(model):
        value = model[name]
        if value.denominator != 1:
            return name, value
    return None, Fraction(0)


def _total(model: Dict[str, int], constraint: Constraint) -> Dict[str, int]:
    """Extend *model* with zeros for variables the LP never saw."""
    full = dict(model)
    for name in constraint.form.variables():
        full.setdefault(name, 0)
    return full

"""Audit oracles over the new registry strategies.

The acceptance bar for `preaccumulate` and `transposed`: their
generated adjoints must pass both the race oracle (shadow-memory
collision detection under the parallel interpretation) and the
numerics oracle (dot-product test against central differences) on the
stencil and GFMC kernels. GFMC additionally exercises the per-array
atomic fallback, since its indirection-indexed reads are rejected by
both strategies' applicability predicates.
"""

import pytest

from repro import differentiate
from repro.audit.numcheck import adjoint_bindings, dot_product_check
from repro.experiments.specs import gfmc_spec, small_stencil_spec
from repro.runtime import detect_races

NEW_STRATEGIES = ("preaccumulate", "transposed")


def _specs():
    return [
        small_stencil_spec(n=48),
        gfmc_spec(npair=6, nwalk=4, ngroups_max=5),
    ]


@pytest.mark.parametrize("spec", _specs(), ids=lambda s: s.name)
@pytest.mark.parametrize("strategy", NEW_STRATEGIES)
def test_race_oracle_accepts_generated_adjoint(spec, strategy):
    adj = differentiate(spec.proc, spec.independents, spec.dependents,
                        strategy=strategy)
    bindings = adjoint_bindings(adj, spec.bindings, spec.independents,
                                spec.dependents, seed=3)
    report = detect_races(adj.procedure, bindings)
    assert report.race_free, [str(r) for r in report.races]


@pytest.mark.parametrize("spec", _specs(), ids=lambda s: s.name)
@pytest.mark.parametrize("strategy", NEW_STRATEGIES)
def test_numerics_oracle_accepts_generated_adjoint(spec, strategy):
    adj = differentiate(spec.proc, spec.independents, spec.dependents,
                        strategy=strategy)
    ok, fd, adj_val = dot_product_check(spec.proc, adj, spec.bindings,
                                        spec.independents, spec.dependents,
                                        seed=5)
    assert ok, f"{strategy} on {spec.name}: fd={fd!r} adj={adj_val!r}"

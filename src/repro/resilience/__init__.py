"""Resilience runtime: deadlines, escalation, isolation, resume.

The analysis must degrade, never fail (docs/RESILIENCE.md):

* :class:`Deadline` — a wall-clock budget threaded cooperatively from
  the CLI through :class:`~repro.formad.engine.FormADEngine` into the
  SMT search; an expired question answers UNKNOWN (``timeout``),
  which FormAD already treats as "keep the safeguard".
* :class:`EscalationPolicy` — retry timed-out / budget-exhausted
  questions with exponentially enlarged budgets before giving up.
* :mod:`~repro.resilience.journal` — an append-only, checksummed
  verdict journal (schema ``repro-journal/1``) that survives ``kill
  -9`` and lets ``analyze --resume`` skip settled work.
* :mod:`~repro.resilience.workers` — opt-in per-loop subprocess
  isolation with a hard kill timeout; a crashed or hung worker becomes
  a per-loop *degraded* result instead of a failed run.
* :mod:`~repro.resilience.shards` — the ``--backend process`` shard
  scheduler: persistent worker processes pulling loop shards off a
  work queue, sidestepping the GIL-bound ``--jobs`` thread fan-out
  (docs/SCALING.md).
* :mod:`~repro.resilience.cache` — the ``--cache-dir`` cross-run
  verdict cache (schema ``repro-cache/1``): decided SAT/UNSAT answers
  and clean settled loops persist across invocations, keyed by the
  journal fingerprint.
"""

from .cache import (CACHE_SCHEMA, CacheConflictError, CacheStore,
                    CacheStoreError, VerdictCache)
from .deadline import Deadline
from .escalate import EscalationPolicy
from .journal import (JOURNAL_SCHEMA, JournalError, JournalWriter,
                      ResumeState, journal_fingerprint, read_journal,
                      rebuild_analysis)
from .shards import (QuestionShardingLost, ShardConfig, WorkerClient,
                     WorkerGone, WorkerPool, analyze_program_remote,
                     analyze_question_sharded, analyze_sharded,
                     resolve_backend)
from .workers import IsolationConfig, WorkerOutcome, analyze_isolated

__all__ = [
    "CACHE_SCHEMA", "CacheConflictError", "CacheStore", "CacheStoreError",
    "VerdictCache",
    "Deadline", "EscalationPolicy",
    "JOURNAL_SCHEMA", "JournalError", "JournalWriter", "ResumeState",
    "journal_fingerprint", "read_journal", "rebuild_analysis",
    "QuestionShardingLost", "ShardConfig", "WorkerClient", "WorkerGone",
    "WorkerPool",
    "analyze_program_remote", "analyze_question_sharded", "analyze_sharded",
    "resolve_backend",
    "IsolationConfig", "WorkerOutcome", "analyze_isolated",
]

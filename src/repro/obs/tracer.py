"""Hierarchical span tracer with a zero-overhead no-op default.

The pipeline is instrumented against the tiny :class:`NullTracer`
interface: ``emit`` structured events, open ``span``\\ s, bump
``counter``\\ s and set ``gauge``\\ s. The default is the process-wide
:data:`NULL_TRACER`, whose methods do nothing and whose ``enabled``
flag is ``False`` — hot paths guard event construction behind
``if tracer.enabled:`` so an untraced run pays a single attribute read
per potential event and allocates nothing.

Recording is decoupled from handling (the OpDiLib split): the engine
only calls ``emit``/``span``; *where* events go is the sink's business.
Two sinks ship: :class:`JsonlTracer` appends one JSON object per line
to a file (the ``--trace out.jsonl`` CLI path), and
:class:`CollectingTracer` keeps events in memory for tests and for the
in-process ``repro explain``/``repro profile`` replay helpers.

Both sinks are thread-safe; every event records its emitting thread's
name, which is what attributes work to ``--jobs`` pool workers. Span
nesting is tracked per thread, so a span opened inside a worker is a
root span of that worker's timeline.
"""

from __future__ import annotations

import datetime
import json
import logging
import threading
import time
from typing import Any, Dict, List, Optional

from .events import SCHEMA_NAME, SCHEMA_VERSION
from .metrics import MetricsRegistry

logger = logging.getLogger(__name__)


class _NullSpan:
    """The reusable no-op context manager ``NullTracer.span`` returns."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Does nothing, as fast as possible. The default everywhere."""

    enabled = False

    def emit(self, etype: str, **fields: Any) -> None:
        return None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def counter(self, name: str, value: int = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def metrics(self) -> Dict[str, Dict[str, float]]:
        return {"counters": {}, "gauges": {}}

    def to_trace_time(self, pc: float) -> float:
        return pc

    def close(self) -> None:
        return None


#: The shared no-op tracer (there is no reason to build another one).
NULL_TRACER = NullTracer()


class RegistryTracer(NullTracer):
    """Metrics without events: a live :class:`MetricsRegistry` behind
    the no-op event interface.

    ``analyze --progress`` without ``--trace`` runs under one of these:
    counters, gauges, and histograms accumulate (the heartbeat thread
    snapshots them), while ``enabled`` stays False so every event/span
    hot path keeps its zero-allocation guarantee — event construction
    is still guarded behind ``if tracer.enabled:`` and never happens.
    """

    def __init__(self, registry: "Optional[MetricsRegistry]" = None) -> None:
        # A caller-provided registry accumulates across runs — the
        # ``repro serve`` daemon threads one registry through every
        # request's tracer so its /stats counters are daemon-lifetime.
        self.registry = registry if registry is not None else \
            MetricsRegistry()

    def counter(self, name: str, value: int = 1) -> None:
        self.registry.counter(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.registry.observe(name, value)

    def metrics(self) -> Dict[str, Dict[str, float]]:
        snapshot = self.registry.snapshot()
        return {"counters": snapshot["counters"],
                "gauges": snapshot["gauges"]}


class BufferTracer(NullTracer):
    """Collects *leaf* events in memory as ``(type, fields, wt)``
    triples, where ``wt`` is the worker's ``time.perf_counter()`` at
    emission.

    The ``--backend process`` serve workers run their engine under one
    of these: the worker cannot write the parent's trace stream (seq
    numbers and span ids are parent-owned), so it buffers the raw
    emissions and ships them back in each reply; the parent re-emits
    them through its own tracer from the shard's feeder thread, which
    restores ``seq``/``thread`` attribution and normalizes ``wt`` onto
    its own timeline via the per-worker clock-offset handshake
    (:mod:`repro.obs.clock`). Spans are deliberately dropped — a
    worker's span tree belongs to the worker's timeline, and
    re-parenting it would violate the per-thread span discipline the
    validator enforces — so only leaf events (``fact``, ``question``,
    ``verdict``, ``degraded``, ``solver_check``) cross the process
    boundary.
    """

    enabled = True

    def __init__(self) -> None:
        self._events: List[tuple] = []
        #: Lifetime emission count (never reset by :meth:`drain`) — the
        #: worker reports it so the parent can bound telemetry loss.
        self.events_total = 0

    def emit(self, etype: str, **fields: Any) -> None:
        self._events.append((etype, fields, time.perf_counter()))
        self.events_total += 1

    def drain(self) -> List[tuple]:
        """Return and clear the buffered ``(type, fields, wt)``
        triples."""
        out = self._events
        self._events = []
        return out


class _Span:
    """An open span: a context manager emitting begin/end events."""

    __slots__ = ("_tracer", "_name", "_attrs", "_id", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        self._id = self._tracer._begin_span(self._name, self._attrs)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._tracer._end_span(self._id, self._name,
                               time.perf_counter() - self._start)


class Tracer:
    """An active tracer: assigns ids, tracks per-thread span stacks,
    accumulates counters/gauges, and hands finished events to
    :meth:`_sink` (subclass responsibility)."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._next_span_id = 0
        self._local = threading.local()
        self._origin = time.perf_counter()
        self.registry = MetricsRegistry()
        self._closed = False
        self.emit("meta", schema=SCHEMA_NAME,
                  created=datetime.datetime.now(
                      datetime.timezone.utc).isoformat())

    # -------------------------------------------------------------- sink
    def _sink(self, event: Dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------ events
    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def emit(self, etype: str, **fields: Any) -> None:
        stack = self._stack()
        event: Dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "type": etype,
            "t": time.perf_counter() - self._origin,
            "thread": threading.current_thread().name,
            "span": stack[-1] if stack else None,
        }
        event.update(fields)
        with self._lock:
            if self._closed:
                return
            event["seq"] = self._seq
            self._seq += 1
            self._sink(event)

    def span(self, name: str, **attrs: Any) -> _Span:
        return _Span(self, name, attrs)

    def _begin_span(self, name: str, attrs: Dict[str, Any]) -> int:
        stack = self._stack()
        with self._lock:
            sid = self._next_span_id
            self._next_span_id += 1
        self.emit("span_begin", id=sid, name=name,
                  parent=stack[-1] if stack else None, attrs=attrs)
        stack.append(sid)
        return sid

    def _end_span(self, sid: int, name: str, dur_s: float) -> None:
        stack = self._stack()
        if stack and stack[-1] == sid:
            stack.pop()
        self.emit("span_end", id=sid, name=name, dur_s=dur_s)

    def to_trace_time(self, pc: float) -> float:
        """A raw ``perf_counter`` reading as trace-relative seconds
        (the ``t`` of an event emitted at that instant)."""
        return pc - self._origin

    # --------------------------------------------------- counters/gauges
    def counter(self, name: str, value: int = 1) -> None:
        self.registry.counter(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.registry.observe(name, value)

    def metrics(self) -> Dict[str, Dict[str, float]]:
        snapshot = self.registry.snapshot()
        return {"counters": snapshot["counters"],
                "gauges": snapshot["gauges"]}

    # ------------------------------------------------------------- close
    def close(self) -> None:
        """Flush the final registry snapshot and seal the stream."""
        if self._closed:
            return
        snapshot = self.registry.snapshot()
        self.emit("metrics", schema=snapshot["schema"],
                  counters=snapshot["counters"], gauges=snapshot["gauges"],
                  histograms=snapshot["histograms"])
        with self._lock:
            self._closed = True
            self._close_sink()

    def _close_sink(self) -> None:
        return None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class CollectingTracer(Tracer):
    """Keeps every event in memory (tests, in-process replay)."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []
        super().__init__()

    def _sink(self, event: Dict[str, Any]) -> None:
        self.events.append(event)


class JsonlTracer(Tracer):
    """Appends one JSON object per line to *path* (the ``--trace`` sink)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "w")
        super().__init__()

    def _sink(self, event: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")

    def _close_sink(self) -> None:
        self._fh.close()
        logger.info("trace written to %s", self.path)


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file back into its event list."""
    events: List[Dict[str, Any]] = []
    with open(path) as fh:
        for number, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{number}: not JSON: {exc}") from exc
    return events

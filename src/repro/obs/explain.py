"""``repro explain`` — replay a trace into a human-readable proof.

FormAD's verdict for an array is only as trustworthy as the chain of
solver answers behind it. Given a trace recorded with ``repro analyze
--trace``, :func:`explain_array` reconstructs, per parallel loop, the
exact exploitation questions asked about one array and renders

* for a **safe** array: the chain of ``UNSAT`` disjointness queries —
  each with its control-flow context, the adjoint reference pair it
  covers, the instance-numbered question formula, and whether the
  answer came from the solver or the question memo;
* for an **unsafe** array (the LBM case): the first failing query and,
  when the solver produced one, the ``SAT`` witness model — concrete
  loop-counter/scalar values under which the two adjoint references
  collide.

Arrays may be named by their primal name (``unew``) or their adjoint
name (``unewb``): a trailing ``b`` is stripped when the literal name
does not occur in the trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def _fmt_ms(dur_s: float) -> str:
    return f"{dur_s * 1000.0:.2f} ms"


def resolve_array(events: Sequence[dict], array: str) -> Optional[str]:
    """Map a primal or adjoint array name onto the traced verdicts."""
    known = {e["array"] for e in events if e["type"] == "verdict"}
    if array in known:
        return array
    if array.endswith("b") and array[:-1] in known:
        return array[:-1]
    return None


def known_arrays(events: Sequence[dict]) -> List[str]:
    return sorted({e["array"] for e in events if e["type"] == "verdict"})


def _witness_lines(witness: Dict[str, int]) -> List[str]:
    items = sorted(witness.items())
    lines = ["counterexample (SAT witness model):"]
    for chunk_start in range(0, len(items), 4):
        chunk = items[chunk_start:chunk_start + 4]
        lines.append("  " + "  ".join(f"{n} = {v}" for n, v in chunk))
    return lines


def explain_array(events: Sequence[dict], array: str,
                  loop: Optional[str] = None) -> str:
    """Render the proof (or refutation) chain for one array."""
    resolved = resolve_array(events, array)
    if resolved is None:
        names = ", ".join(known_arrays(events)) or "none"
        return (f"no verdict for array {array!r} in this trace "
                f"(analyzed arrays: {names})")
    out: List[str] = []
    if resolved != array:
        out.append(f"{array!r} is the adjoint of {resolved!r}; explaining "
                   f"the primal array's analysis.")
    verdicts = [e for e in events if e["type"] == "verdict"
                and e["array"] == resolved
                and (loop is None or e["loop"] == loop)]
    if not verdicts:
        return f"no verdict for array {resolved!r} in loop {loop!r}"
    questions = [e for e in events if e["type"] == "question"
                 and e["array"] == resolved]
    for verdict in verdicts:
        qs = [q for q in questions if q["loop"] == verdict["loop"]]
        out.extend(_explain_one(verdict, qs))
        out.append("")
    return "\n".join(out).rstrip()


def _explain_one(verdict: dict, questions: List[dict]) -> List[str]:
    loop = verdict["loop"]
    array = verdict["array"]
    out: List[str] = []
    if verdict["safe"]:
        out.append(f"array {array!r} in parallel loop over {loop!r}: SAFE — "
                   f"the adjoint stays shared with no atomics.")
        out.append(f"All {verdict['pairs_total']} future adjoint reference "
                   f"pair(s) were proven disjoint across iterations "
                   f"(under the root axiom {loop}' ≠ {loop}):")
    else:
        out.append(f"array {array!r} in parallel loop over {loop!r}: UNSAFE "
                   f"({verdict['reason']}) — safeguards stay in place.")
        out.append(f"{verdict['pairs_proven']}/{verdict['pairs_total']} "
                   f"pair(s) proven disjoint before the failing query:")
    if not questions:
        out.append("  (no exploitation queries were needed)")
        return out
    for k, q in enumerate(questions, 1):
        source = "memo" if q["memo_hit"] else "solver"
        out.append(f"  {k}. [{q['context']}] adjoint {q['write']} vs "
                   f"{q['other']}")
        out.append(f"     can they coincide?  {q['question']}")
        out.append(f"     -> {q['result']} ({source}, {_fmt_ms(q['dur_s'])})")
        if q["result"] == "UNSAT":
            out.append(f"     proven disjoint for all "
                       f"{loop} ≠ {loop}'")
        elif q.get("witness"):
            out.extend("     " + line for line in
                       _witness_lines(q["witness"]))
    return out

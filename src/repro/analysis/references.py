"""Array-reference collection for parallel regions.

FormAD's knowledge extraction (paper §5, phase 1) needs, for every
shared array in a parallel region, all read and all write references
with their index expressions and control contexts. This module walks a
parallel loop body and produces that inventory, classifying exact
increments separately (paper §5.4: the adjoint of an increment only
reads, which shrinks the set of pairs to analyze).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from ..ir.expr import ArrayRef, Expr, Var, walk
from ..ir.stmt import Assign, If, Loop, Pop, Push, Stmt
from ..cfg.contexts import Context, ContextMap, build_contexts
from .increments import match_increment


class AccessKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    INCREMENT = "increment"

    @property
    def is_write(self) -> bool:
        """Increment counts as a write for primal conflict purposes."""
        return self in (AccessKind.WRITE, AccessKind.INCREMENT)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ArrayAccess:
    """One array reference at one program point."""

    array: str
    indices: Tuple[Expr, ...]
    kind: AccessKind
    stmt: Stmt

    def __str__(self) -> str:
        idx = ", ".join(map(str, self.indices))
        return f"{self.kind}:{self.array}({idx})@{self.stmt.uid}"


@dataclass
class RegionReferences:
    """All array accesses of one parallel region, plus its context map."""

    accesses: List[ArrayAccess]
    contexts: ContextMap

    def arrays(self) -> List[str]:
        return sorted({a.array for a in self.accesses})

    def of_array(self, name: str) -> List[ArrayAccess]:
        return [a for a in self.accesses if a.array == name]

    def reads(self, name: str) -> List[ArrayAccess]:
        return [a for a in self.of_array(name) if a.kind is AccessKind.READ]

    def writes(self, name: str) -> List[ArrayAccess]:
        """WRITE and INCREMENT accesses (both write memory)."""
        return [a for a in self.of_array(name) if a.kind.is_write]

    def context_of(self, access: ArrayAccess) -> Context:
        return self.contexts.context_of(access.stmt)


def _reads_in_expr(expr: Expr, stmt: Stmt) -> Iterator[ArrayAccess]:
    for node in walk(expr):
        if isinstance(node, ArrayRef):
            yield ArrayAccess(node.name, node.indices, AccessKind.READ, stmt)


def collect_region_references(body: Sequence[Stmt]) -> RegionReferences:
    """Collect every array access in a parallel region body."""
    contexts = build_contexts(body)
    accesses: List[ArrayAccess] = []

    def visit(stmts: Sequence[Stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, Assign):
                inc = match_increment(stmt)
                if inc is not None and isinstance(stmt.target, ArrayRef):
                    accesses.append(ArrayAccess(stmt.target.name,
                                                stmt.target.indices,
                                                AccessKind.INCREMENT, stmt))
                    # Index expressions of the target are still reads.
                    for idx in stmt.target.indices:
                        accesses.extend(_reads_in_expr(idx, stmt))
                    # The delta is read; the target's own read is part of
                    # the increment and not reported separately.
                    accesses.extend(_reads_in_expr(inc.delta, stmt))
                    continue
                if isinstance(stmt.target, ArrayRef):
                    accesses.append(ArrayAccess(stmt.target.name,
                                                stmt.target.indices,
                                                AccessKind.WRITE, stmt))
                    for idx in stmt.target.indices:
                        accesses.extend(_reads_in_expr(idx, stmt))
                accesses.extend(_reads_in_expr(stmt.value, stmt))
            elif isinstance(stmt, If):
                accesses.extend(_reads_in_expr(stmt.cond, stmt))
                visit(stmt.then_body)
                visit(stmt.else_body)
            elif isinstance(stmt, Loop):
                for e in (stmt.start, stmt.stop, stmt.step):
                    accesses.extend(_reads_in_expr(e, stmt))
                visit(stmt.body)
            elif isinstance(stmt, Push):
                accesses.extend(_reads_in_expr(stmt.value, stmt))
            elif isinstance(stmt, Pop):
                if isinstance(stmt.target, ArrayRef):
                    accesses.append(ArrayAccess(stmt.target.name,
                                                stmt.target.indices,
                                                AccessKind.WRITE, stmt))
                    for idx in stmt.target.indices:
                        accesses.extend(_reads_in_expr(idx, stmt))
            else:  # pragma: no cover - defensive
                raise TypeError(f"unexpected statement {stmt!r}")

    visit(body)
    return RegionReferences(accesses, contexts)

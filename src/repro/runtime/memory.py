"""Array storage and procedure memory.

Arrays are numpy-backed with Fortran-style per-dimension lower bounds
(default 1). A :class:`Memory` holds every variable of one procedure
invocation; assumed-size dimensions get their extents from the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..ir.program import Procedure
from ..ir.types import ArrayType, Kind, ScalarType, Type

_DTYPES = {
    Kind.REAL: np.float64,
    Kind.INTEGER: np.int64,
    Kind.LOGICAL: np.bool_,
}

_SCALAR_DEFAULTS = {
    Kind.REAL: 0.0,
    Kind.INTEGER: 0,
    Kind.LOGICAL: False,
}


class BoundsError(IndexError):
    """An array subscript fell outside its declared bounds."""


@dataclass
class ArrayStorage:
    """A rectangular array with inclusive lower/upper bounds."""

    name: str
    kind: Kind
    lowers: Tuple[int, ...]
    data: np.ndarray

    @classmethod
    def allocate(cls, name: str, type_: ArrayType,
                 extents: Optional[Sequence[int]] = None) -> "ArrayStorage":
        lowers = []
        shape = []
        for axis, dim in enumerate(type_.dims):
            lowers.append(dim.lower)
            if dim.extent is not None:
                shape.append(dim.extent)
            else:
                if extents is None or axis >= len(extents) or extents[axis] is None:
                    raise ValueError(
                        f"array {name!r} has an assumed-size dimension {axis}; "
                        f"an extent must be supplied")
                shape.append(int(extents[axis]))
        data = np.zeros(tuple(shape), dtype=_DTYPES[type_.kind])
        return cls(name, type_.kind, tuple(lowers), data)

    @classmethod
    def from_values(cls, name: str, type_: ArrayType, values: np.ndarray) -> "ArrayStorage":
        values = np.asarray(values, dtype=_DTYPES[type_.kind])
        if values.ndim != type_.rank:
            raise ValueError(f"array {name!r}: rank {type_.rank} expected, "
                             f"got data of rank {values.ndim}")
        for axis, dim in enumerate(type_.dims):
            if dim.extent is not None and values.shape[axis] != dim.extent:
                raise ValueError(
                    f"array {name!r} axis {axis}: declared extent {dim.extent}, "
                    f"got {values.shape[axis]}")
        lowers = tuple(d.lower for d in type_.dims)
        return cls(name, type_.kind, lowers, values.copy())

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def _offset(self, indices: Sequence[int]) -> Tuple[int, ...]:
        if len(indices) != len(self.lowers):
            raise BoundsError(
                f"array {self.name!r}: {len(self.lowers)} subscripts expected, "
                f"got {len(indices)}")
        out = []
        for axis, (idx, low) in enumerate(zip(indices, self.lowers)):
            pos = int(idx) - low
            if pos < 0 or pos >= self.data.shape[axis]:
                raise BoundsError(
                    f"array {self.name!r} axis {axis}: subscript {idx} outside "
                    f"[{low}, {low + self.data.shape[axis] - 1}]")
            out.append(pos)
        return tuple(out)

    def get(self, indices: Sequence[int]):
        value = self.data[self._offset(indices)]
        if self.kind is Kind.INTEGER:
            return int(value)
        if self.kind is Kind.LOGICAL:
            return bool(value)
        return float(value)

    def set(self, indices: Sequence[int], value) -> None:
        self.data[self._offset(indices)] = value

    def flat_index(self, indices: Sequence[int]) -> int:
        """A unique linear id for a location (used by the race detector)."""
        return int(np.ravel_multi_index(self._offset(indices), self.data.shape))

    def fill(self, value) -> None:
        self.data.fill(value)

    def copy(self) -> "ArrayStorage":
        return ArrayStorage(self.name, self.kind, self.lowers, self.data.copy())


class Memory:
    """All variables of one procedure invocation."""

    def __init__(self) -> None:
        self.scalars: Dict[str, int | float | bool] = {}
        self.arrays: Dict[str, ArrayStorage] = {}

    @classmethod
    def for_procedure(
        cls,
        proc: Procedure,
        bindings: Mapping[str, object] = (),
        extents: Mapping[str, Sequence[int]] = (),
    ) -> "Memory":
        """Allocate every symbol of *proc*.

        ``bindings`` provides initial values (scalars or array data);
        ``extents`` provides shapes for assumed-size arrays that are not
        covered by ``bindings``.
        """
        bindings = dict(bindings)
        extents = dict(extents)
        mem = cls()
        for name in proc.symbols():
            type_ = proc.type_of(name)
            if isinstance(type_, ArrayType):
                if name in bindings:
                    mem.arrays[name] = ArrayStorage.from_values(
                        name, type_, np.asarray(bindings.pop(name)))
                else:
                    mem.arrays[name] = ArrayStorage.allocate(
                        name, type_, extents.get(name))
            else:
                assert isinstance(type_, ScalarType)
                if name in bindings:
                    mem.scalars[name] = bindings.pop(name)  # type: ignore[assignment]
                else:
                    mem.scalars[name] = _SCALAR_DEFAULTS[type_.kind]
        if bindings:
            unknown = ", ".join(sorted(bindings))
            raise KeyError(f"bindings for unknown symbols: {unknown}")
        return mem

    def get_scalar(self, name: str):
        return self.scalars[name]

    def set_scalar(self, name: str, value) -> None:
        if name not in self.scalars:
            raise KeyError(f"unknown scalar {name!r}")
        self.scalars[name] = value

    def array(self, name: str) -> ArrayStorage:
        return self.arrays[name]

    def snapshot(self) -> "Memory":
        dup = Memory()
        dup.scalars = dict(self.scalars)
        dup.arrays = {n: a.copy() for n, a in self.arrays.items()}
        return dup

"""The safeguard-strategy registry: contract, applicability, numerics."""

import numpy as np
import pytest

from repro import differentiate
from repro.ad.strategies import (ATOMIC, PREACCUMULATE, REDUCTION, SHARED,
                                 TRANSPOSED, SafeguardStrategy, get_strategy,
                                 register_strategy, registered_strategies,
                                 resolve_strategy, strategy_names)
from repro.analysis.references import collect_region_references
from repro.audit.numcheck import gradients
from repro.experiments.specs import (gfmc_spec, greengauss_spec, lbm_spec,
                                     small_stencil_spec)
from repro.ir.builder import ProcedureBuilder
from repro.ir.expr import Var
from repro.ir.stmt import Loop
from repro.ir.types import INTEGER, integer_array, real_array


def _paper_kernels():
    return [
        small_stencil_spec(n=64),
        gfmc_spec(npair=6, nwalk=4, ngroups_max=5),
        greengauss_spec(nnodes=48),
        lbm_spec(ncells=10),
    ]


class TestRegistryContract:
    def test_builtin_registration_order(self):
        assert strategy_names() == ("shared", "atomic", "reduction",
                                    "preaccumulate", "transposed")

    def test_get_strategy_roundtrip(self):
        for name, strategy in zip(strategy_names(), registered_strategies()):
            assert get_strategy(name) is strategy
            assert strategy.name == name

    def test_unknown_strategy_raises(self):
        with pytest.raises(KeyError, match="registered"):
            get_strategy("speculative")

    def test_duplicate_registration_rejected(self):
        class Clone(SafeguardStrategy):
            name = "atomic"
        with pytest.raises(ValueError, match="already registered"):
            register_strategy(Clone())


def _stencil_like():
    """Pure-read uold with unit-affine subscripts: both new strategies
    apply."""
    b = ProcedureBuilder("s")
    uold = b.param("uold", real_array((1, None)), intent="in")
    unew = b.param("unew", real_array((1, None)), intent="inout")
    b.param("n", INTEGER, intent="in")
    with b.parallel_do("i", 2, Var("n") - 1) as i:
        b.assign(unew[i], unew[i] + (uold[i - 1] + uold[i + 1]))
    proc = b.build()
    [loop] = proc.parallel_loops()
    return loop, collect_region_references(loop.body)


def _gather_like():
    """uold read through an index table: neither new strategy applies."""
    b = ProcedureBuilder("g")
    uold = b.param("uold", real_array((1, None)), intent="in")
    unew = b.param("unew", real_array((1, None)), intent="inout")
    t = b.param("t", integer_array((1, None)), intent="in")
    b.param("n", INTEGER, intent="in")
    idd = b.int_local("idd")
    with b.parallel_do("i", 1, Var("n")) as i:
        b.assign(idd, t[i])
        b.assign(unew[i], unew[i] + 2.0 * uold[idd])
    proc = b.build()
    [loop] = proc.parallel_loops()
    return loop, collect_region_references(loop.body)


class TestApplicability:
    def test_shared_and_atomic_always_apply(self):
        loop, refs = _gather_like()
        assert SHARED.applicable(loop, "uold", refs) == (True, "")
        assert ATOMIC.applicable(loop, "uold", refs) == (True, "")

    def test_new_strategies_apply_to_stencil_reads(self):
        loop, refs = _stencil_like()
        assert PREACCUMULATE.applicable(loop, "uold", refs)[0]
        assert TRANSPOSED.applicable(loop, "uold", refs)[0]

    def test_new_strategies_reject_indirect_reads(self):
        loop, refs = _gather_like()
        ok, reason = PREACCUMULATE.applicable(loop, "uold", refs)
        assert not ok and "iteration-stable" in reason
        ok, reason = TRANSPOSED.applicable(loop, "uold", refs)
        assert not ok and "loop counter" in reason

    def test_new_strategies_reject_written_arrays(self):
        loop, refs = _stencil_like()
        ok, reason = PREACCUMULATE.applicable(loop, "unew", refs)
        assert not ok and "written" in reason
        assert not TRANSPOSED.applicable(loop, "unew", refs)[0]

    def test_resolve_falls_back_to_atomic(self):
        loop, refs = _gather_like()
        strategy, reason = resolve_strategy(TRANSPOSED, loop, "uold", refs)
        assert strategy is ATOMIC and reason
        strategy, reason = resolve_strategy(REDUCTION, loop, "uold", refs,
                                            mixed=True)
        assert strategy is ATOMIC and "overwritten" in reason
        strategy, reason = resolve_strategy(REDUCTION, loop, "uold", refs)
        assert strategy is REDUCTION and reason == ""


class TestGeneratedCodeShape:
    def test_transposed_hoists_stencil_increments(self):
        spec = small_stencil_spec(n=64)
        adj = differentiate(spec.proc, spec.independents, spec.dependents,
                            strategy="transposed")
        loops = list(adj.procedure.parallel_loops())
        # The stencil's reverse body is fully hoisted: one parallel loop
        # per distinct offset, none atomic, none with reductions.
        assert len(loops) >= 2
        from repro.ir.stmt import walk_stmts, Assign
        for loop in loops:
            assert loop.reduction == ()
        assert not any(getattr(s, "atomic", False)
                       for s in walk_stmts(adj.procedure.body))

    def test_preaccumulate_buffers_and_flushes(self):
        spec = small_stencil_spec(n=64)
        adj = differentiate(spec.proc, spec.independents, spec.dependents,
                            strategy="preaccumulate")
        from repro.ir.stmt import walk_stmts, Assign
        names = set(adj.procedure.locals)
        assert any(n.startswith("ad_pre") for n in names)
        atomics = [s for s in walk_stmts(adj.procedure.body)
                   if isinstance(s, Assign) and s.atomic]
        # Exactly one guarded flush per distinct adjoint location.
        assert len(atomics) == sum(
            1 for n in names if n.startswith("ad_pre"))


class TestRegistryNumerics:
    @pytest.mark.parametrize("spec", _paper_kernels(), ids=lambda s: s.name)
    def test_every_strategy_matches_serial_adjoint(self, spec):
        serial = differentiate(spec.proc, spec.independents,
                               spec.dependents, strategy="serial")
        ref = gradients(serial, spec.bindings, spec.independents,
                        spec.dependents, seed=7)
        for strategy in registered_strategies():
            adj = differentiate(spec.proc, spec.independents,
                                spec.dependents, strategy=strategy.name)
            got = gradients(adj, spec.bindings, spec.independents,
                            spec.dependents, seed=7)
            for name in spec.independents:
                np.testing.assert_allclose(
                    got[name], ref[name], rtol=1e-10, atol=1e-12,
                    err_msg=f"{strategy.name}:{name}")

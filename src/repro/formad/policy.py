"""FormAD as a safeguard policy for the AD engine.

``FormADGuardPolicy`` answers the AD engine's "how do I guard this
adjoint increment?" question with SHARED whenever the engine proved the
array conflict-free, and with a configurable fallback (atomics by
default, as in the paper's generated code) otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..ad.guards import GuardKind, GuardPolicy
from ..analysis.activity import ActivityAnalysis
from ..ir.program import Procedure
from ..ir.stmt import Loop
from .engine import FormADEngine, LoopAnalysis


class FormADGuardPolicy(GuardPolicy):
    """Drop safeguards exactly where FormAD's proof allows it."""

    def __init__(
        self,
        proc: Procedure,
        independents: Sequence[str],
        dependents: Sequence[str],
        *,
        fallback: GuardKind = GuardKind.ATOMIC,
        max_theory_checks: int = 20000,
        node_budget: int = 2000,
        solver_factory=None,
        tracer=None,
    ) -> None:
        if fallback is GuardKind.SHARED:
            raise ValueError("the fallback must be a real safeguard")
        activity = ActivityAnalysis(proc, independents, dependents)
        extra = {} if tracer is None else {"tracer": tracer}
        self.engine = FormADEngine(proc, activity,
                                   max_theory_checks=max_theory_checks,
                                   node_budget=node_budget,
                                   solver_factory=solver_factory,
                                   **extra)
        self.fallback = fallback

    def decide(self, loop: Loop, primal_array: str) -> GuardKind:
        analysis = self.engine.analyze_loop(loop)
        verdict = analysis.verdicts.get(primal_array)
        if verdict is not None and verdict.safe:
            return GuardKind.SHARED
        return self.fallback

    def analyses(self) -> List[LoopAnalysis]:
        """All analyses performed so far (one per parallel loop)."""
        return self.engine.analyze_all()

"""Forward (tangent) mode: numeric correctness against finite
differences, structural properties, and forward-vs-reverse consistency
(⟨w, Jv⟩ computed both ways)."""

import numpy as np
import pytest

from repro import differentiate, differentiate_tangent, parse_procedure
from repro.ad import NotDifferentiableError
from repro.ir import Loop, walk_stmts
from repro.runtime import detect_races, run_procedure

SAXPY = """
subroutine saxpy(a, x, y, n)
  integer, intent(in) :: n
  real, intent(in) :: a
  real, intent(in) :: x(50)
  real, intent(inout) :: y(50)
  !$omp parallel do
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
end subroutine saxpy
"""

NONLINEAR = """
subroutine nl(x, y, n)
  integer, intent(in) :: n
  real, intent(in) :: x(10)
  real, intent(inout) :: y(10)
  real :: t
  !$omp parallel do private(t)
  do i = 1, n
    t = exp(x(i)) * sin(x(i))
    y(i) = t * t + sqrt(x(i) + 2.0)
  end do
end subroutine nl
"""


def _fd_directional(proc, bindings, name, direction, out_names, eps=1e-6):
    hi = run_procedure(proc, {**bindings, name: np.asarray(bindings[name]) + eps * direction})
    lo = run_procedure(proc, {**bindings, name: np.asarray(bindings[name]) - eps * direction})
    return {o: (hi.array(o).data - lo.array(o).data) / (2 * eps)
            for o in out_names}


class TestNumeric:
    def test_saxpy_directional_derivative(self):
        proc = parse_procedure(SAXPY)
        tan = differentiate_tangent(proc, ["x"], ["y"])
        rng = np.random.default_rng(0)
        bindings = {"a": 1.3, "x": rng.standard_normal(50),
                    "y": rng.standard_normal(50), "n": 50}
        v = rng.standard_normal(50)
        tb = dict(bindings)
        tb[tan.tangent_name("x")] = v.copy()
        tb[tan.tangent_name("y")] = np.zeros(50)
        mem = run_procedure(tan.procedure, tb)
        got = mem.array(tan.tangent_name("y")).data
        fd = _fd_directional(proc, bindings, "x", v, ["y"])["y"]
        np.testing.assert_allclose(got, fd, rtol=1e-5, atol=1e-8)

    def test_nonlinear_directional_derivative(self):
        proc = parse_procedure(NONLINEAR)
        tan = differentiate_tangent(proc, ["x"], ["y"])
        rng = np.random.default_rng(1)
        bindings = {"x": rng.uniform(0.2, 1.0, 10), "y": np.zeros(10), "n": 10}
        v = rng.standard_normal(10)
        tb = dict(bindings)
        tb[tan.tangent_name("x")] = v.copy()
        tb[tan.tangent_name("y")] = np.zeros(10)
        mem = run_procedure(tan.procedure, tb)
        fd = _fd_directional(proc, bindings, "x", v, ["y"])["y"]
        np.testing.assert_allclose(mem.array(tan.tangent_name("y")).data, fd,
                                   rtol=1e-4)

    def test_kinked_intrinsics(self):
        src = """
subroutine kink(x, y, n)
  integer, intent(in) :: n
  real, intent(in) :: x(10)
  real, intent(inout) :: y(10)
  do i = 1, n
    y(i) = abs(x(i)) + max(x(i), 0.5)
  end do
end subroutine kink
"""
        proc = parse_procedure(src)
        tan = differentiate_tangent(proc, ["x"], ["y"])
        rng = np.random.default_rng(2)
        x = rng.standard_normal(10)
        x[np.abs(x) < 0.1] += 0.3
        x[np.abs(x - 0.5) < 0.1] += 0.3
        bindings = {"x": x, "y": np.zeros(10), "n": 10}
        v = rng.standard_normal(10)
        tb = {**bindings, tan.tangent_name("x"): v.copy(),
              tan.tangent_name("y"): np.zeros(10)}
        mem = run_procedure(tan.procedure, tb)
        fd = _fd_directional(proc, bindings, "x", v, ["y"])["y"]
        np.testing.assert_allclose(mem.array(tan.tangent_name("y")).data, fd,
                                   rtol=1e-4)

    def test_scalar_reduction_tangent(self):
        src = """
subroutine dotsq(x, s, n)
  integer, intent(in) :: n
  real, intent(in) :: x(30)
  real, intent(inout) :: s
  !$omp parallel do reduction(+:s)
  do i = 1, n
    s = s + x(i) * x(i)
  end do
end subroutine dotsq
"""
        proc = parse_procedure(src)
        tan = differentiate_tangent(proc, ["x"], ["s"])
        loop = tan.procedure.parallel_loops()[0]
        sd = tan.tangent_name("s")
        assert ("+", sd) in loop.reduction
        rng = np.random.default_rng(3)
        x = rng.standard_normal(30)
        v = rng.standard_normal(30)
        tb = {"x": x, "s": 0.0, "n": 30,
              tan.tangent_name("x"): v.copy(), sd: 0.0}
        mem = run_procedure(tan.procedure, tb)
        assert mem.get_scalar(sd) == pytest.approx(float(2 * (x * v).sum()),
                                                   rel=1e-9)


class TestForwardReverseConsistency:
    def test_dot_products_agree(self):
        # <w, J v> via forward mode == <J^T w, v> via reverse mode.
        proc = parse_procedure(NONLINEAR)
        tan = differentiate_tangent(proc, ["x"], ["y"])
        adj = differentiate(proc, ["x"], ["y"], strategy="serial")
        rng = np.random.default_rng(4)
        bindings = {"x": rng.uniform(0.2, 1.0, 10), "y": np.zeros(10), "n": 10}
        v = rng.standard_normal(10)
        w = rng.standard_normal(10)

        tb = {**bindings, tan.tangent_name("x"): v.copy(),
              tan.tangent_name("y"): np.zeros(10)}
        jv = run_procedure(tan.procedure, tb).array(tan.tangent_name("y")).data
        forward_dot = float(w @ jv)

        ab = {**bindings, adj.adjoint_name("y"): w.copy(),
              adj.adjoint_name("x"): np.zeros(10)}
        jtw = run_procedure(adj.procedure, ab).array(adj.adjoint_name("x")).data
        reverse_dot = float(v @ jtw)

        assert forward_dot == pytest.approx(reverse_dot, rel=1e-10)


class TestStructure:
    def test_tangent_parallel_loop_unguarded_and_race_free(self):
        proc = parse_procedure(NONLINEAR)
        tan = differentiate_tangent(proc, ["x"], ["y"])
        loops = [s for s in walk_stmts(tan.procedure.body)
                 if isinstance(s, Loop) and s.parallel]
        assert len(loops) == 1
        # Private tangent of the private temp.
        assert tan.tangent_name("t") in loops[0].private
        rng = np.random.default_rng(5)
        tb = {"x": rng.uniform(0.2, 1.0, 10), "y": np.zeros(10), "n": 10,
              tan.tangent_name("x"): rng.standard_normal(10),
              tan.tangent_name("y"): np.zeros(10)}
        assert detect_races(tan.procedure, tb).race_free

    def test_tangent_params_follow_primal(self):
        proc = parse_procedure(SAXPY)
        tan = differentiate_tangent(proc, ["x"], ["y"])
        names = [p.name for p in tan.procedure.params]
        assert names.index("x") + 1 == names.index(tan.tangent_name("x"))

    def test_inactive_statements_copied_verbatim(self):
        src = """
subroutine mix(x, y, k, n)
  integer, intent(in) :: n
  integer, intent(inout) :: k
  real, intent(in) :: x(10)
  real, intent(inout) :: y(10)
  k = n - 1
  do i = 1, k
    y(i) = x(i) * 2.0
  end do
end subroutine mix
"""
        proc = parse_procedure(src)
        tan = differentiate_tangent(proc, ["x"], ["y"])
        mem = run_procedure(tan.procedure, {
            "x": np.ones(10), "y": np.zeros(10), "k": 0, "n": 10,
            tan.tangent_name("x"): np.ones(10),
            tan.tangent_name("y"): np.zeros(10)})
        assert mem.get_scalar("k") == 9
        np.testing.assert_allclose(mem.array(tan.tangent_name("y")).data[:9], 2.0)

    def test_active_nonplus_reduction_rejected(self):
        src = """
subroutine pmax(x, m, n)
  integer, intent(in) :: n
  real, intent(in) :: x(10)
  real, intent(inout) :: m
  !$omp parallel do reduction(max:m)
  do i = 1, n
    m = max(m, x(i))
  end do
end subroutine pmax
"""
        proc = parse_procedure(src)
        with pytest.raises(NotDifferentiableError):
            differentiate_tangent(proc, ["x"], ["m"])

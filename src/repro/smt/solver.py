"""The ``Solver`` facade — the Z3 API subset the paper's pseudo-code uses.

FormAD's algorithms (paper §5.5) call exactly ``Solver()``, ``add``,
``push``, ``pop``, ``check`` and compare against SAT/UNSAT. This class
provides that interface on top of the from-scratch QF_UFLIA pipeline:

    assertions --ackermannize--> UF-free formulas
               --clausify-----> base constraints + clauses
               --search-------> SAT (with model) / UNSAT / UNKNOWN

``check()`` is *incremental*: every assertion is ackermannized,
clausified, and canonicalized exactly once, when first seen, into a
clause store tagged with its assertion-stack level; ``pop()`` unwinds
the popped levels' clauses and Ackermann applications. The buildModel
pattern — add one fact, re-check — therefore translates one formula per
check instead of the whole stack, and the push/add-question/check/pop
pattern of exploitation queries translates only the question. The
pre-existing from-scratch behavior is kept behind
``Solver(incremental=False)`` as the benchmark baseline.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..obs.tracer import NULL_TRACER, NullTracer
from .ackermann import Ackermannizer, ackermannize
from .clausify import (DEFAULT_MAX_CLAUSES, Clause,
                       ClausifyBudgetError, clausify_probe)
from .intsolver import Result
from .linform import Constraint, TrivialConstraint, canonicalize
from .search import SearchOutcome, SearchStats, search
from .terms import FAtom, Formula, TApp, Term

SAT = Result.SAT
UNSAT = Result.UNSAT
UNKNOWN = Result.UNKNOWN

logger = logging.getLogger(__name__)


@dataclass
class SolverStats:
    """Cumulative statistics over the lifetime of a solver instance.

    ``time_seconds`` is the end-to-end ``check()`` time; the three
    ``*_seconds`` phase counters break its translation/search split
    down (``translate`` is Ackermann rewriting + congruence-axiom
    generation, ``clausify`` is CNF conversion + unit canonicalization,
    ``search`` is the DPLL(T) layer). ``clausify_hits``/``misses``
    count this solver's own probes of the process-global per-formula
    clause cache — each probe reports its own outcome, so the counters
    stay correct when several solver threads translate concurrently
    (``--jobs``); only cache *warmth* remains history-dependent.
    """

    checks: int = 0
    sat: int = 0
    unsat: int = 0
    unknown: int = 0
    theory_checks: int = 0
    branches: int = 0
    propagations: int = 0
    time_seconds: float = 0.0
    translate_seconds: float = 0.0
    clausify_seconds: float = 0.0
    search_seconds: float = 0.0
    formulas_translated: int = 0
    congruence_axioms: int = 0
    clausify_hits: int = 0
    clausify_misses: int = 0
    # UNKNOWN breakdown (sums to ``unknown``): a deadline expiry, a
    # configured budget cap, or the search genuinely giving up. This
    # is the structured reason the resilience layer keys retries on.
    unknown_timeout: int = 0
    unknown_budget: int = 0
    unknown_solver: int = 0

    def record(self, result: Result, elapsed: float,
               search_stats: SearchStats,
               reason: Optional[str] = None) -> None:
        self.checks += 1
        self.time_seconds += elapsed
        self.theory_checks += search_stats.theory_checks
        self.branches += search_stats.branches
        self.propagations += search_stats.propagations
        if result is SAT:
            self.sat += 1
        elif result is UNSAT:
            self.unsat += 1
        else:
            self.unknown += 1
            if reason == "timeout":
                self.unknown_timeout += 1
            elif reason == "budget":
                self.unknown_budget += 1
            else:
                self.unknown_solver += 1

    #: Fields that combine by summation when two stats records merge.
    #: Every current field is a monotone counter or accumulated timer,
    #: so today this names them all — but the declaration is the
    #: contract: a future gauge/max-style field (say a peak search
    #: depth) must NOT be blindly summed, and :meth:`merge_into`
    #: refuses any field missing from this set instead of silently
    #: corrupting it (tests/smt/test_solver_stats_merge.py keeps the
    #: declaration in sync with the dataclass).
    ADDITIVE_FIELDS = frozenset({
        "checks", "sat", "unsat", "unknown", "theory_checks", "branches",
        "propagations", "time_seconds", "translate_seconds",
        "clausify_seconds", "search_seconds", "formulas_translated",
        "congruence_axioms", "clausify_hits", "clausify_misses",
        "unknown_timeout", "unknown_budget", "unknown_solver",
    })

    def merge_into(self, other: "SolverStats") -> None:
        """Accumulate this solver's counters onto *other*.

        Only fields declared in :data:`ADDITIVE_FIELDS` are summed; an
        undeclared field is a hard error so that introducing a
        non-additive statistic forces a conscious merge rule instead of
        a silently wrong sum."""
        for name in self.__dataclass_fields__:
            if name not in self.ADDITIVE_FIELDS:
                raise TypeError(
                    f"SolverStats.{name} is not declared additive; teach "
                    f"merge_into how to combine it before merging")
            setattr(other, name, getattr(other, name) + getattr(self, name))


class _Level:
    """Translated state of one assertion-stack level."""

    __slots__ = ("formulas", "translated", "apps", "base", "clauses",
                 "nclauses", "falsified", "poisoned")

    def __init__(self) -> None:
        self.formulas: List[Formula] = []
        self.translated = 0              # prefix of `formulas` translated
        self.apps: List[TApp] = []       # Ackermann apps owned by level
        self.base: List[Constraint] = [] # canonical unit constraints
        self.clauses: List[Clause] = []  # multi-literal clauses
        self.nclauses = 0                # raw clause count (budget)
        self.falsified = False           # a unit clausified to false
        self.poisoned = False            # clausify budget blown


class Solver:
    """An assertion-stack SMT solver for QF_UFLIA."""

    def __init__(
        self,
        *,
        max_theory_checks: int = 20000,
        node_budget: int = 2000,
        max_clauses: int = DEFAULT_MAX_CLAUSES,
        incremental: bool = True,
        tracer: NullTracer = NULL_TRACER,
        deadline=None,
    ) -> None:
        self._levels: List[_Level] = [_Level()]
        self._model: Optional[Dict[str, int]] = None
        self._warm_model: Optional[Dict[str, int]] = None
        self._warm_level = 0             # stack depth the hint came from
        self._ack = Ackermannizer()
        self._app_names: Dict[TApp, str] = {}
        self.stats = SolverStats()
        self.max_theory_checks = max_theory_checks
        self.node_budget = node_budget
        self.max_clauses = max_clauses
        self.incremental = incremental
        self.tracer = tracer
        #: Run-wide wall-clock bound (a ``repro.resilience.Deadline``
        #: or None); every ``check()`` is additionally capped by it.
        self.deadline = deadline
        #: Structured reason of the last UNKNOWN ``check()`` result
        #: ("timeout" | "budget" | "solver-unknown"), else None.
        self.last_unknown_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # Z3-style interface
    # ------------------------------------------------------------------
    def add(self, *formulas: Formula) -> None:
        """Assert formulas at the current stack level."""
        self._levels[-1].formulas.extend(formulas)
        self._model = None

    def push(self) -> None:
        """Save the assertion state."""
        self._levels.append(_Level())

    def pop(self, num: int = 1) -> None:
        """Restore the assertion state ``num`` levels up, unwinding the
        popped levels' clause store and Ackermann applications."""
        for _ in range(num):
            if len(self._levels) == 1:
                raise RuntimeError("pop on an empty solver stack")
            level = self._levels.pop()
            if level.apps:
                self._ack.forget_apps(level.apps)
        if self._warm_level >= len(self._levels):
            # The stack unwound to (or below) the depth the hint was
            # minted at: a later push can repopulate that depth with
            # different assertions, so a depth-only comparison would
            # let a hint derived from popped state seed future checks.
            # Invalidate on reaching the minting depth, not only below.
            self._warm_model = None
            self._warm_level = 0
        self._model = None

    def assertions(self) -> List[Formula]:
        return [f for level in self._levels for f in level.formulas]

    @property
    def num_assertions(self) -> int:
        return sum(len(level.formulas) for level in self._levels)

    def check(self, *, deadline=None, budget_scale: float = 1.0) -> Result:
        """Decide the conjunction of all current assertions.

        ``deadline`` additionally caps this one check (the tighter of
        it and the solver-wide :attr:`deadline` applies — a
        per-question timeout under a run budget). ``budget_scale``
        multiplies the node/theory-check budgets for this check only:
        the escalation ladder's retry-with-bigger-budgets knob.
        """
        tracer = self.tracer
        stats = self.stats
        effective = self.deadline
        if deadline is not None:
            effective = deadline if effective is None else (
                deadline if deadline.expires_at <= effective.expires_at
                else effective)
        scale = max(budget_scale, 1.0)
        theory_budget = int(self.max_theory_checks * scale)
        node_budget = int(self.node_budget * scale)
        if tracer.enabled:
            before = (stats.translate_seconds, stats.clausify_seconds,
                      stats.search_seconds, stats.clausify_hits,
                      stats.clausify_misses)
        start = time.perf_counter()
        if effective is not None and effective.expired():
            # Expired before any work: answer UNKNOWN without touching
            # the clause store (never translate under a dead deadline).
            outcome = SearchOutcome(UNKNOWN, reason="timeout")
        elif self.incremental:
            outcome = self._check_incremental(theory_budget, node_budget,
                                              effective)
        else:
            outcome = self._check_fresh(theory_budget, node_budget,
                                        effective)
        elapsed = time.perf_counter() - start
        stats.record(outcome.result, elapsed, outcome.stats,
                     reason=outcome.reason)
        # Check-latency histogram (repro-metrics/2). Unguarded: this is
        # one no-op method call per check under the default NULL_TRACER,
        # and --progress runs (RegistryTracer, enabled=False) must
        # still see it.
        tracer.observe("solver.check_seconds", elapsed)
        self.last_unknown_reason = (outcome.reason
                                    if outcome.result is UNKNOWN else None)
        if tracer.enabled:
            extra = {}
            if outcome.result is UNKNOWN:
                extra["reason"] = outcome.reason or "solver-unknown"
            tracer.emit(
                "solver_check",
                result=outcome.result.name,
                dur_s=elapsed,
                translate_s=stats.translate_seconds - before[0],
                clausify_s=stats.clausify_seconds - before[1],
                search_s=stats.search_seconds - before[2],
                theory_checks=outcome.stats.theory_checks,
                branches=outcome.stats.branches,
                propagations=outcome.stats.propagations,
                clausify_hits=stats.clausify_hits - before[3],
                clausify_misses=stats.clausify_misses - before[4],
                **extra)
        self._model = outcome.model
        if outcome.model is not None:
            # Warm start for the next check on a grown assertion set
            # (the buildModel pattern: add one fact, re-check). Tagged
            # with the stack depth so pop() can invalidate it.
            self._warm_model = outcome.model
            self._warm_level = len(self._levels)
        return outcome.result

    def model(self) -> Dict[str, int]:
        """The integer model of the last SAT check.

        Keys are variable names; Ackermann-introduced names for UF
        applications look like ``!f@k`` (see :meth:`app_value`).
        """
        if self._model is None:
            raise RuntimeError("model() requires a preceding SAT check")
        return dict(self._model)

    def app_value(self, app: TApp) -> Optional[int]:
        """Model value of a UF application from the last SAT check."""
        if self._model is None:
            return None
        name = (self._ack.name_of(app) if self.incremental
                else self._app_names.get(app))
        if name is None:
            return None
        return self._model.get(name, 0)

    def translate_only(self) -> None:
        """Translate (and clausify) every pending assertion without
        searching.

        This is the question-sharding fast-forward primitive: a serve
        worker replays questions it did *not* own by navigate + push +
        add + ``translate_only`` + pop, which reproduces exactly the
        translation side effects (Ackermann registrations, congruence
        axioms, clause-cache warmth) a full ``check()`` would have had
        at that point — so the solver-stat deltas of the questions the
        worker *does* own match the serial run's deltas bit for bit.
        The stats this call itself accumulates are deliberately left on
        this solver (never shipped): the question's owner reports them.

        In non-incremental mode there is no persistent translation
        state; the only cross-check side effect is clause-cache warmth,
        so the fresh pipeline's ackermannize + clausify pass is run
        (probe order matching :meth:`_check_fresh`) and its outcome
        discarded.
        """
        if self.incremental:
            self._translate_pending()
            return
        formulas = self.assertions()
        t0 = time.perf_counter()
        ack = ackermannize(formulas)
        self._app_names = ack.app_names
        t1 = time.perf_counter()
        self.stats.translate_seconds += t1 - t0
        self.stats.formulas_translated += len(formulas)
        self.stats.congruence_axioms += len(ack.congruence)
        try:
            count = 0
            for f in ack.all_formulas:
                count += len(self._clausify_counted(f))
                if count > self.max_clauses:
                    break
        except ClausifyBudgetError:
            pass
        self.stats.clausify_seconds += time.perf_counter() - t1

    # ------------------------------------------------------------------
    def _translate_pending(self) -> None:
        """Translate every not-yet-translated assertion into the
        level-tagged clause store (oldest level first, so congruence
        axioms always pair a new application with same-or-older-level
        ones and can be tagged with the new application's level)."""
        stats = self.stats
        for level in self._levels:
            while level.translated < len(level.formulas):
                formula = level.formulas[level.translated]
                level.translated += 1
                t0 = time.perf_counter()
                mark = self._ack.num_apps
                rewritten = self._ack.rewrite_formula(formula)
                level.apps.extend(self._ack.introduced[mark:])
                axioms = self._ack.new_congruence_axioms()
                t1 = time.perf_counter()
                stats.translate_seconds += t1 - t0
                stats.formulas_translated += 1
                stats.congruence_axioms += len(axioms)
                try:
                    for f in (rewritten, *axioms):
                        self._store_clauses(level, self._clausify_counted(f))
                except ClausifyBudgetError:
                    level.poisoned = True
                    stats.clausify_seconds += time.perf_counter() - t1
                    return
                stats.clausify_seconds += time.perf_counter() - t1

    def _clausify_counted(self, formula: Formula):
        """Clausify via the shared cache, attributing the hit/miss to
        *this* solver's stats (thread-correct under ``--jobs``)."""
        clauses, was_hit = clausify_probe(formula,
                                          max_clauses=self.max_clauses)
        if was_hit:
            self.stats.clausify_hits += 1
        else:
            self.stats.clausify_misses += 1
        return clauses

    def _store_clauses(self, level: _Level, clauses) -> None:
        for clause in clauses:
            level.nclauses += 1
            if len(clause) == 1:
                try:
                    level.base.extend(canonicalize(clause[0]))
                except TrivialConstraint as t:
                    if not t.truth:
                        level.falsified = True
            elif not clause:
                level.falsified = True
            else:
                level.clauses.append(clause)

    def _check_incremental(self, theory_budget: int, node_budget: int,
                           deadline=None) -> SearchOutcome:
        self._translate_pending()
        if any(level.falsified for level in self._levels):
            return SearchOutcome(UNSAT)
        if any(level.poisoned for level in self._levels):
            logger.warning("check is UNKNOWN: clausify budget exhausted "
                           "(max_clauses=%d)", self.max_clauses)
            return SearchOutcome(UNKNOWN, reason="budget")
        if sum(level.nclauses for level in self._levels) > self.max_clauses:
            logger.warning("check is UNKNOWN: clause store exceeds "
                           "max_clauses=%d", self.max_clauses)
            return SearchOutcome(UNKNOWN, reason="budget")
        base = [c for level in self._levels for c in level.base]
        pending = [c for level in self._levels for c in level.clauses]
        t0 = time.perf_counter()
        outcome = search(base, pending,
                         max_theory_checks=theory_budget,
                         node_budget=node_budget,
                         initial_model=self._warm_model,
                         deadline=deadline)
        self.stats.search_seconds += time.perf_counter() - t0
        return outcome

    def _check_fresh(self, theory_budget: int, node_budget: int,
                     deadline=None) -> SearchOutcome:
        """The seed's from-scratch pipeline: re-ackermannize and
        re-clausify the whole assertion stack (benchmark baseline)."""
        formulas = self.assertions()
        t0 = time.perf_counter()
        ack = ackermannize(formulas)
        self._app_names = ack.app_names
        t1 = time.perf_counter()
        self.stats.translate_seconds += t1 - t0
        self.stats.formulas_translated += len(formulas)
        self.stats.congruence_axioms += len(ack.congruence)
        try:
            clauses = []
            for f in ack.all_formulas:
                clauses.extend(self._clausify_counted(f))
                if len(clauses) > self.max_clauses:
                    raise ClausifyBudgetError(
                        f"more than {self.max_clauses} clauses")
        except ClausifyBudgetError:
            self.stats.clausify_seconds += time.perf_counter() - t1
            logger.warning("check is UNKNOWN: clausify budget exhausted "
                           "(max_clauses=%d)", self.max_clauses)
            return SearchOutcome(UNKNOWN, reason="budget")
        base: List[Constraint] = []
        pending: List[Clause] = []
        falsified = False
        for clause in clauses:
            if len(clause) == 1:
                try:
                    base.extend(canonicalize(clause[0]))
                except TrivialConstraint as t:
                    if not t.truth:
                        falsified = True
                        break
            else:
                pending.append(clause)
        t2 = time.perf_counter()
        self.stats.clausify_seconds += t2 - t1
        if falsified:
            return SearchOutcome(UNSAT)
        outcome = search(base, pending,
                         max_theory_checks=theory_budget,
                         node_budget=node_budget,
                         initial_model=self._warm_model,
                         deadline=deadline)
        self.stats.search_seconds += time.perf_counter() - t2
        return outcome


def prove_distinct(solver: Solver, left: Term, right: Term) -> bool:
    """Convenience: is ``left == right`` impossible under the solver's
    current assertions? (The FormAD exploitation question.)

    Uses push/pop exactly like the paper's ``testVar``.
    """
    solver.push()
    try:
        solver.add(_eq(left, right))
        return solver.check() is UNSAT
    finally:
        solver.pop()


def _eq(left: Term, right: Term) -> FAtom:
    from .terms import Rel
    return FAtom(Rel.EQ, left, right)

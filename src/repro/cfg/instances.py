"""Instance numbering of scalar variables (paper §5.2).

Variables occurring in index expressions may be overwritten inside the
parallel body, so two textual occurrences of one name do not always
denote the same value. Each *use* gets an instance number; two uses
share a number exactly when the same set of definitions reaches them
(the paper: "Two uses of one variable will get the same instance number
when they are reached by the same set of Def-Use chains"), which also
realizes the merge and loop-entry renewal rules of §5.2 — a merge point
sees the union of both branches' definition sets, hence a fresh number,
and a loop entry sees {before-loop} ∪ {last-iteration} likewise.

The numbering is exposed as ``instance_at(stmt, var) -> int`` and as a
naming helper ``qualified_name`` producing the ``name_0``-style
identifiers the paper prints (e.g. ``w_0 + n_cell_entries_0*-1 + i_0``
for LBM).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Sequence, Tuple

from ..ir.program import Procedure
from ..ir.stmt import Stmt
from .defuse import ReachingDefinitions, compute_reaching_definitions
from .graph import CFG, build_cfg


@dataclass
class InstanceNumbering:
    """Instance numbers for every (statement, scalar variable) pair."""

    cfg: CFG
    reaching: ReachingDefinitions
    _cache: Dict[Tuple[str, FrozenSet[int]], int] = field(default_factory=dict)
    _next: Dict[str, int] = field(default_factory=dict)

    def instance_at(self, stmt: Stmt, var: str) -> int:
        """The instance number of *var* at the inputs of *stmt*."""
        sites = self.reaching.reaching_at_stmt(stmt, var)
        key = (var, sites)
        num = self._cache.get(key)
        if num is None:
            num = self._next.get(var, 0)
            self._next[var] = num + 1
            self._cache[key] = num
        return num

    def qualified_name(self, stmt: Stmt, var: str) -> str:
        """``var_<instance>`` naming, as in the paper's LBM listing."""
        return f"{var}_{self.instance_at(stmt, var)}"


def number_instances(body: Sequence[Stmt], scalars: Sequence[str]) -> InstanceNumbering:
    """Build instance numbering for a region (e.g. a parallel loop body).

    *scalars* are the scalar variable names live at region entry (their
    incoming value is a synthetic entry definition).
    """
    cfg = build_cfg(body)
    reaching = compute_reaching_definitions(cfg, scalars)
    return InstanceNumbering(cfg, reaching)


def number_instances_for_loop(proc: Procedure, body: Sequence[Stmt]) -> InstanceNumbering:
    """Convenience wrapper using the procedure's scalar symbol table."""
    return number_instances(body, list(proc.scalars()))

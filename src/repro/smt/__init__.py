"""From-scratch SMT solver for QF_UFLIA.

Stands in for Z3 (paper §6 uses Z3 4.8.15 through its Java API): linear
integer arithmetic via rational simplex + branch & bound, disjunctions
via a model-guided clause search, and uninterpreted functions via
Ackermann elimination. The :class:`Solver` facade mirrors the Z3 subset
the paper's pseudo-code calls (``add`` / ``push`` / ``pop`` / ``check``).
"""

from .terms import (And, FAtom, FAnd, FFalse, FNot, FOr, Formula, FTrue,
                    Int, NonLinearTermError, Not, Or, Rel, TAdd, TApp,
                    TConst, Term, TMul, TVar, as_term, formula_apps,
                    formula_atoms, formula_vars, term_apps, term_vars,
                    walk_term, TRUE, FALSE)
from .linform import Constraint, LinForm, TrivialConstraint, canonicalize, linearize
from .simplex import ResourceError, SimplexSolver
from .intsolver import IntCheckOutcome, Result, check_int
from .ackermann import AckermannResult, Ackermannizer, ackermannize
from .clausify import (Clause, ClausifyBudgetError, clausify, clausify_all,
                       clausify_cache_clear, clausify_cache_info, to_nnf)
from .search import SearchOutcome, SearchStats, search
from .solver import SAT, UNKNOWN, UNSAT, Solver, SolverStats, prove_distinct

__all__ = [
    "And", "FAtom", "FAnd", "FFalse", "FNot", "FOr", "Formula", "FTrue",
    "Int", "NonLinearTermError", "Not", "Or", "Rel", "TAdd", "TApp",
    "TConst", "Term", "TMul", "TVar", "as_term", "formula_apps",
    "formula_atoms", "formula_vars", "term_apps", "term_vars", "walk_term",
    "TRUE", "FALSE",
    "Constraint", "LinForm", "TrivialConstraint", "canonicalize", "linearize",
    "ResourceError", "SimplexSolver",
    "IntCheckOutcome", "Result", "check_int",
    "AckermannResult", "Ackermannizer", "ackermannize",
    "Clause", "ClausifyBudgetError", "clausify", "clausify_all",
    "clausify_cache_clear", "clausify_cache_info", "to_nnf",
    "SearchOutcome", "SearchStats", "search",
    "SAT", "UNKNOWN", "UNSAT", "Solver", "SolverStats", "prove_distinct",
]

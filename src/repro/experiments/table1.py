"""Table 1 regeneration: FormAD analysis statistics per kernel."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from .. import analyze_formad
from ..formad import AnalysisReport, format_table1
from ..obs.tracer import NULL_TRACER, NullTracer
from ..programs import (build_gfmc, build_gfmc_star, build_greengauss,
                        build_lbm, build_stencil)
from .paper_reference import PAPER_TABLE1

#: Problem name -> (builder, independents, dependents); names match the
#: paper's Table 1 rows.
TABLE1_PROBLEMS = {
    "stencil 1": (lambda: build_stencil(1, name="stencil_small"),
                  ["uold"], ["unew"]),
    "stencil 8": (lambda: build_stencil(8, name="stencil_large"),
                  ["uold"], ["unew"]),
    "GFMC": (build_gfmc, ["cl", "cr"], ["cl", "cr"]),
    "GFMC*": (build_gfmc_star, ["cl", "cr"], ["cl", "cr"]),
    "LBM": (build_lbm, ["srcgrid"], ["dstgrid"]),
    "GreenGauss": (build_greengauss, ["dv"], ["grad"]),
}


def run_table1(jobs: Optional[int] = None,
               tracer: NullTracer = NULL_TRACER,
               deadline=None,
               backend: str = "thread") -> List[AnalysisReport]:
    """Run FormAD on all six Table-1 problems.

    ``jobs`` > 1 fans the independent problems out over a thread pool
    (each problem builds its own procedure and engine, so the analyses
    share no mutable state). Report order is fixed either way.
    ``deadline`` (a :class:`repro.resilience.Deadline`) bounds the
    whole sweep: expired problems degrade to safeguards (UNKNOWN
    verdicts) instead of running over. ``backend="process"`` analyzes
    each problem in its own persistent worker process (the pool
    threads then only marshal JSON and wait on pipes, so ``jobs``
    problems really run concurrently — docs/SCALING.md).
    ``backend="auto"`` resolves to ``process`` on multi-CPU hosts and
    ``thread`` otherwise (:func:`repro.resilience.resolve_backend`).
    """
    if backend == "auto":
        from ..resilience.shards import resolve_backend
        backend = resolve_backend("auto", work_items=len(TABLE1_PROBLEMS))

    def one(item) -> AnalysisReport:
        name, (builder, independents, dependents) = item
        if backend == "process":
            from .. import format_procedure
            from ..resilience.shards import analyze_program_remote
            proc = builder()
            # The printer round-trips faithfully for these kernels
            # (tests/ir/test_printer.py), so the rendered source is
            # the same analysis input the in-process path sees.
            return AnalysisReport(
                name, analyze_program_remote(
                    format_procedure(proc), proc.name, independents,
                    dependents, tracer=tracer, deadline=deadline))
        return AnalysisReport(
            name, analyze_formad(builder(), independents, dependents,
                                 tracer=tracer, deadline=deadline))

    items = list(TABLE1_PROBLEMS.items())
    if jobs is not None and jobs > 1:
        with ThreadPoolExecutor(max_workers=min(jobs, len(items))) as pool:
            return list(pool.map(one, items))
    return [one(item) for item in items]


def format_table1_with_reference(reports: List[AnalysisReport]) -> str:
    """Side-by-side: measured vs the paper's Table 1."""
    lines = ["measured:"]
    lines.append(format_table1(reports))
    lines.append("")
    lines.append("paper (Table 1):")
    header = f"{'problem':<12} {'time':>7} {'Z3 size':>8} {'queries':>8} " \
             f"{'exprs':>6} {'loc':>5}"
    lines.append(header)
    lines.append("-" * len(header))
    for name, (t, size, q, e, loc) in PAPER_TABLE1.items():
        lines.append(f"{name:<12} {t:>7.3f} {size:>8d} {q:>8d} {e:>6d} {loc:>5d}")
    return "\n".join(lines)

"""The paper's reported numbers (§7), as data.

Used by EXPERIMENTS.md generation and by the benchmark assertions that
check the reproduced *shapes*: who wins, by roughly what factor, and
where the crossovers fall. Absolute agreement is not expected — the
substrate here is a simulator, not the authors' Broadwell testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

#: Thread counts the paper sweeps.
PAPER_THREADS = (1, 2, 4, 8, 18)


@dataclass(frozen=True)
class PaperKernelNumbers:
    """Anchor times (seconds) and speedups reported in §7."""

    primal_serial: float
    primal_parallel_best: float          # at 18 threads
    adjoint_serial: float
    adjoint_formad_best: float           # at 18 threads
    adjoint_atomic_best: float           # best across threads
    adjoint_reduction_best: float
    primal_speedup_18: float
    formad_speedup_18: float
    notes: str = ""


PAPER = {
    # Figure 3/5 captions.
    "stencil_small": PaperKernelNumbers(
        primal_serial=2.05, primal_parallel_best=0.146,
        adjoint_serial=1.58, adjoint_formad_best=0.116,
        adjoint_atomic_best=40.7, adjoint_reduction_best=3.65,
        primal_speedup_18=13.4, formad_speedup_18=13.6,
        notes="atomic/reduction best at 1 thread; never beat serial"),
    # Figure 4/6 captions.
    "stencil_large": PaperKernelNumbers(
        primal_serial=8.72, primal_parallel_best=0.651,
        adjoint_serial=7.16, adjoint_formad_best=0.578,
        adjoint_atomic_best=95.8, adjoint_reduction_best=16.5,
        primal_speedup_18=13.12, formad_speedup_18=12.4,
        notes="atomic/reduction best at 1 thread; never beat serial"),
    # Figure 7/8 captions.
    "gfmc": PaperKernelNumbers(
        primal_serial=0.655, primal_parallel_best=0.655 / 7.35,
        adjoint_serial=2.23, adjoint_formad_best=0.266,
        adjoint_atomic_best=33.9, adjoint_reduction_best=1.56,
        primal_speedup_18=7.35, formad_speedup_18=8.39,
        notes="reduction peaks at 1.43x on 4 threads; atomics 10-100x "
              "slower than serial"),
    # Figure 9/10 captions.
    "greengauss": PaperKernelNumbers(
        primal_serial=9.064, primal_parallel_best=9.064 / 4.0,
        adjoint_serial=66.84, adjoint_formad_best=24.32,
        adjoint_atomic_best=386.0, adjoint_reduction_best=85.77,
        primal_speedup_18=4.0, formad_speedup_18=66.84 / 24.32,
        notes="memory bound; FormAD 2.75x over serial adjoint; atomics "
              "slow down further with threads"),
}

#: Table 1 of the paper: (time s, model size, queries, exprs, loc).
PAPER_TABLE1 = {
    "stencil 1": (0.677, 5, 3, 2, 3),
    "stencil 8": (1.033, 82, 82, 9, 17),
    "GFMC": (4.145, 65, 772, 8, 54),
    "GFMC*": (3.125, 65, 261, 8, 65),
    "LBM": (3.938, 362, 364, 19, 82),
    "GreenGauss": (0.621, 5, 3, 2, 7),
}

#: §7.3: the 19 known-safe write expressions of the LBM listing (as
#: (base scalar, multiplier of n_cell_entries) pairs).
PAPER_LBM_SAFE_OFFSETS = {
    "w": -1, "se": -119, "c": 0, "nb": -14280, "s": -120, "sb": -14520,
    "eb": -14399, "et": 14401, "nt": 14520, "t": 14400, "ne": 121,
    "b": -14400, "wb": -14401, "wt": 14399, "sw": -121, "e": 1,
    "st": 14280, "nw": 119, "n": 120,
}

#: §7.3: the offending adjoint increment expression.
PAPER_LBM_OFFENDING = ("eb", 0)

"""Stats aggregation audit: no counter may be silently dropped.

PR 1 added per-phase fields to ``SolverStats``; this PR adds more and
routes them through ``AnalysisStats.absorb_solver`` and the ``--jobs``
fan-out. These tests pin the aggregation paths:

* ``SolverStats.merge_into`` sums **every** dataclass field, and every
  field must be *declared* additive in ``SolverStats.ADDITIVE_FIELDS``
  — a new field that is not declared makes ``merge_into`` raise
  instead of guessing that plain summation is its combine rule (a
  high-water mark or a ratio would be silently corrupted by ``+``);
* merging two independent solvers' stats equals one solver doing both
  workloads;
* ``absorb_solver`` accounts for every ``SolverStats`` field — a new
  field that is not mapped (or deliberately recoverable) fails the
  audit here instead of silently vanishing from Table 1/metrics;
* per-loop ``AnalysisStats`` counters are identical whether regions
  are analyzed sequentially or fanned out with ``--jobs``.
"""

import dataclasses
import itertools
import sys
import threading

import pytest

from repro import analyze_formad
from repro.formad.engine import AnalysisStats
from repro.ir import parse_program
from repro.smt import Int, Solver
from repro.smt.clausify import clausify_cache_clear
from repro.smt.solver import SolverStats

INT_FIELDS = [f.name for f in dataclasses.fields(SolverStats)
              if f.type == "int"]
FLOAT_FIELDS = [f.name for f in dataclasses.fields(SolverStats)
                if f.type == "float"]


def distinct_stats(offset: int) -> SolverStats:
    """A SolverStats whose every field holds a distinct sentinel."""
    values = {}
    for n, name in enumerate(INT_FIELDS):
        values[name] = offset + n
    for n, name in enumerate(FLOAT_FIELDS):
        values[name] = float(offset + 100 + n) / 8.0
    return SolverStats(**values)


class TestMergeInto:
    def test_every_field_is_summed(self):
        a, b = distinct_stats(1), distinct_stats(1000)
        expected = {name: getattr(a, name) + getattr(b, name)
                    for name in a.__dataclass_fields__}
        a.merge_into(b)
        assert {name: getattr(b, name)
                for name in b.__dataclass_fields__} == expected

    def test_field_inventory_is_typed(self):
        # every field is summable; a non-int/float addition would need
        # its own merge rule and must show up here first
        assert set(INT_FIELDS) | set(FLOAT_FIELDS) \
            == set(SolverStats.__dataclass_fields__)

    def test_every_field_is_declared_additive(self):
        # ADDITIVE_FIELDS is the explicit contract: growing the
        # dataclass without deciding the combine rule fails here.
        assert SolverStats.ADDITIVE_FIELDS \
            == frozenset(SolverStats.__dataclass_fields__)

    def test_additive_declaration_is_not_a_field(self):
        # The declaration set must stay a class attribute, not become
        # a dataclass field that merge_into would then try to sum.
        assert "ADDITIVE_FIELDS" not in SolverStats.__dataclass_fields__

    def test_undeclared_field_refuses_to_merge(self):
        """A new counter that nobody declared additive must make
        ``merge_into`` raise, not silently sum. (A max-depth gauge
        summed across solvers would report nonsense.)"""
        undeclared = dataclasses.make_dataclass(
            "GrownStats", [("peak_depth", int, 0)], bases=(SolverStats,))
        a, b = undeclared(), undeclared()
        with pytest.raises(TypeError, match="peak_depth"):
            a.merge_into(b)

    def test_merging_two_solvers_equals_combined_run(self):
        """solver(A).stats + solver(B).stats == solver(A then B).stats
        on every deterministic (int) counter.

        The workloads use disjoint variable sets so the process-global
        clause cache treats the separate and combined runs identically.
        """

        def workload_a(names):
            x, y = (Int(n) for n in names)
            return [x.gt(y), y.ge(0), x.le(10)]

        def workload_b(names):
            x, y = (Int(n) for n in names)
            return [x.eq(y + 3), x.lt(y)]  # UNSAT

        clausify_cache_clear()
        s1 = Solver()
        s1.add(*workload_a(("ma1", "ma2")))
        s1.check()
        s2 = Solver()
        s2.add(*workload_b(("mb1", "mb2")))
        s2.check()
        merged = SolverStats()
        s1.stats.merge_into(merged)
        s2.stats.merge_into(merged)

        combined = Solver()
        combined.push()
        combined.add(*workload_a(("mc1", "mc2")))
        combined.check()
        combined.pop()
        combined.push()
        combined.add(*workload_b(("md1", "md2")))
        combined.check()
        combined.pop()

        for name in INT_FIELDS:
            assert getattr(combined.stats, name) == getattr(merged, name), name
        for name in FLOAT_FIELDS:
            assert getattr(merged, name) > 0.0, name


class TestAbsorbSolver:
    #: SolverStats field -> how AnalysisStats records it. ``checks`` is
    #: deliberately recoverable instead of stored. Extending
    #: SolverStats without extending this table fails test_audit.
    MAPPING = {
        "checks": lambda a: a.solver_sat + a.solver_unsat + a.solver_unknown,
        "sat": lambda a: a.solver_sat,
        "unsat": lambda a: a.solver_unsat,
        "unknown": lambda a: a.solver_unknown,
        "theory_checks": lambda a: a.theory_checks,
        "branches": lambda a: a.search_branches,
        "propagations": lambda a: a.search_propagations,
        "time_seconds": lambda a: a.solver_time_seconds,
        "translate_seconds": lambda a: a.translate_seconds,
        "clausify_seconds": lambda a: a.clausify_seconds,
        "search_seconds": lambda a: a.search_seconds,
        "formulas_translated": lambda a: a.formulas_translated,
        "congruence_axioms": lambda a: a.congruence_axioms,
        "clausify_hits": lambda a: a.clausify_hits,
        "clausify_misses": lambda a: a.clausify_misses,
        "unknown_timeout": lambda a: a.unknown_timeout,
        "unknown_budget": lambda a: a.unknown_budget,
        "unknown_solver": lambda a: a.unknown_solver,
    }

    def test_audit_covers_every_solver_stats_field(self):
        assert set(self.MAPPING) == set(SolverStats.__dataclass_fields__)

    def test_no_field_is_dropped(self):
        solver = Solver()
        # sentinel values; make the checks identity hold
        solver.stats = distinct_stats(3)
        solver.stats.checks = (solver.stats.sat + solver.stats.unsat
                               + solver.stats.unknown)
        analysis = AnalysisStats()
        analysis.absorb_solver(solver)
        for name, read in self.MAPPING.items():
            assert read(analysis) == getattr(solver.stats, name), name


TWO_LOOPS = """
subroutine two(x, y, z, n)
  real, intent(in) :: x(1000)
  real, intent(out) :: y(1000)
  real, intent(out) :: z(1000)
  integer, intent(in) :: n
  !$omp parallel do
  do i = 2, n
    y(i) = x(i) + x(i - 1)
  end do
  !$omp parallel do
  do j = 2, n
    z(j) = x(j) * x(j - 1)
  end do
end subroutine two
"""

#: Counters that must agree between sequential and --jobs runs.
#: clausify_hits/misses are excluded: the cache is process-global, so
#: its hit pattern depends on what ran earlier in the process, not on
#: the fan-out.
JOBS_INVARIANT = (
    "consistency_checks", "exploitation_checks", "memo_hits",
    "model_size", "unique_exprs", "skipped_pairs", "theory_checks",
    "search_branches", "search_propagations", "solver_sat",
    "solver_unsat", "solver_unknown", "formulas_translated",
    "congruence_axioms",
)


_fresh = itertools.count()


class TestConcurrentClausifyAttribution:
    """Regression (PR 3): clausify hit/miss stats were before/after
    deltas of the process-global cache counters, so concurrent solvers
    booked each other's traffic. Attribution is now per probe."""

    N = 150

    def _run_solver(self, results, index, barrier):
        names = [f"cc{next(_fresh)}" for _ in range(self.N)]
        solver = Solver()
        for k, name in enumerate(names):
            solver.add(Int(name).ge(k))
        barrier.wait()
        solver.check()
        results[index] = solver

    def test_threads_only_count_their_own_misses(self):
        clausify_cache_clear()
        old = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)  # force interleaved translation
        try:
            results = [None, None]
            barrier = threading.Barrier(2)
            threads = [threading.Thread(target=self._run_solver,
                                        args=(results, i, barrier))
                       for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            sys.setswitchinterval(old)
        for solver in results:
            # each solver translated exactly N globally-fresh formulas:
            # N misses, 0 hits, regardless of what the other thread did
            assert solver.stats.clausify_misses == self.N
            assert solver.stats.clausify_hits == 0

    def test_hits_are_attributed_to_the_probing_solver(self):
        clausify_cache_clear()
        name = f"cc{next(_fresh)}"
        warm = Solver()
        warm.add(Int(name).ge(1))
        warm.check()
        assert warm.stats.clausify_misses == 1
        reuse = Solver()
        reuse.add(Int(name).ge(1))
        reuse.check()
        assert reuse.stats.clausify_hits == 1
        assert reuse.stats.clausify_misses == 0
        # the warm solver's counters are untouched by the second probe
        assert warm.stats.clausify_hits == 0
        assert warm.stats.clausify_misses == 1


class TestJobsFanOut:
    def test_parallel_equals_sequential_per_loop(self):
        proc = parse_program(TWO_LOOPS)["two"]
        seq = analyze_formad(proc, ["x"], ["y", "z"])
        par = analyze_formad(proc, ["x"], ["y", "z"], jobs=2)
        assert len(seq) == 2 and len(par) == 2
        for a, b in zip(seq, par):
            assert a.loop.uid == b.loop.uid
            assert {n: v.safe for n, v in a.verdicts.items()} \
                == {n: v.safe for n, v in b.verdicts.items()}
            for name in JOBS_INVARIANT:
                assert getattr(a.stats, name) == getattr(b.stats, name), name

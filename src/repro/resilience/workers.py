"""Per-loop subprocess isolation (the ``--isolate`` runtime).

Each parallel loop is analyzed in its own worker process (`python -m
repro.resilience.worker`), so a solver crash, an OOM kill, or a hung
simplex in one region cannot take down the whole run: the parent
captures the failure, emits a ``worker`` trace event, and substitutes
the engine's *degraded* result for that loop — every candidate array
keeps its safeguard and the planned question counts are preserved, so
Table-1 totals stay fault-independent (docs/RESILIENCE.md).

The parent/child contract is one JSON request on the child's stdin and
one JSON reply on its stdout. The reply reuses the journal's
``loop_done``/``verdict`` record shapes, so the parent reconstructs
the :class:`~repro.formad.engine.LoopAnalysis` with the same
:func:`~repro.resilience.journal.rebuild_analysis` path that
``--resume`` uses. When a journal is active the *child* appends the
per-question records directly (loops run strictly sequentially, and
the file is opened ``O_APPEND``, so parent and child writes never
interleave mid-run) — a killed worker therefore still leaves its
settled questions on disk for the next ``--resume``.

A hard kill timeout bounds every worker; the run deadline (when set)
tightens it further. ``REPRO_WORKER_FAULT`` (see
:mod:`~repro.resilience.worker`) injects deterministic child faults
for the chaos tests and the CI resilience smoke job.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .journal import rebuild_analysis

#: Grace period added to a run deadline before the hard kill: the
#: child polls its own (tighter) deadline cooperatively, so the parent
#: only kills workers that stopped cooperating.
_DEADLINE_GRACE = 2.0


@dataclass(frozen=True)
class IsolationConfig:
    """How ``--isolate`` runs its workers."""

    #: Hard wall-clock cap per worker, enforced by SIGKILL.
    kill_timeout: float = 60.0
    #: Interpreter for the worker processes.
    python: str = sys.executable
    #: Extra environment entries for the workers (tests inject
    #: ``REPRO_WORKER_FAULT`` here).
    extra_env: Optional[Dict[str, str]] = None


@dataclass
class WorkerOutcome:
    """What happened to one loop's worker."""

    loop_key: str
    #: ``ok`` | ``crash`` | ``timeout`` | ``resumed`` (no worker ran:
    #: the loop was settled in the resume journal) | ``cached`` (no
    #: worker ran: the loop replayed from the cross-run verdict cache).
    status: str
    detail: str = ""
    elapsed: float = 0.0


def _worker_env(config: IsolationConfig) -> Dict[str, str]:
    env = dict(os.environ)
    # The worker imports `repro` the same way this process did.
    src_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    parts = [src_root] + [p for p in env.get("PYTHONPATH", "").split(
        os.pathsep) if p and p != src_root]
    env["PYTHONPATH"] = os.pathsep.join(parts)
    if config.extra_env:
        env.update(config.extra_env)
    return env


def _run_worker(config: IsolationConfig, request: dict, timeout: float,
                env: Dict[str, str]) -> Tuple[str, str, Optional[dict]]:
    """Spawn one worker: ``(status, detail, payload)``."""
    cmd = [config.python, "-m", "repro.resilience.worker"]
    try:
        proc = subprocess.run(cmd, input=json.dumps(request),
                              capture_output=True, text=True,
                              timeout=timeout, env=env)
    except subprocess.TimeoutExpired:
        return ("timeout",
                f"worker exceeded its {timeout:.1f}s kill timeout", None)
    except OSError as exc:
        return "crash", f"failed to spawn worker: {exc}", None
    if proc.returncode != 0:
        if proc.returncode < 0:
            detail = f"worker killed by signal {-proc.returncode}"
        else:
            detail = f"worker exited with status {proc.returncode}"
        tail = (proc.stderr or "").strip().splitlines()
        if tail:
            detail += f": {tail[-1]}"
        return "crash", detail, None
    try:
        payload = json.loads(proc.stdout)
    except ValueError:
        return "crash", "worker produced unparsable output", None
    if not isinstance(payload, dict):
        return "crash", "worker produced a non-object reply", None
    return "ok", "", payload


def analyze_isolated(
    engine,
    source: str,
    head: str,
    independents: Sequence[str],
    dependents: Sequence[str],
    *,
    config: Optional[IsolationConfig] = None,
    journal_path: Optional[str] = None,
    resume_path: Optional[str] = None,
) -> Tuple[List, List[WorkerOutcome]]:
    """Analyze every parallel loop of *engine*'s procedure, one worker
    process per loop.

    Returns ``(analyses, outcomes)`` in loop order. A crashed, killed,
    or hung worker degrades its loop (safeguards everywhere, planned
    question counts) instead of failing the run; a
    :class:`~repro.formad.engine.PrimalRaceError` found by a worker is
    re-raised here, exactly as the inline analysis would.
    """
    from ..formad.engine import PrimalRaceError

    config = config or IsolationConfig()
    tracer = engine.tracer
    env = _worker_env(config)
    analyses: List = []
    outcomes: List[WorkerOutcome] = []
    # Fence journal rotation for the whole worker phase: each child
    # opens its own O_APPEND handle to the journal file, and a rotate
    # meanwhile would swap the inode out from under those handles —
    # every record they append afterwards would land on the orphaned
    # old file and vanish from any later --resume.
    parent_journal = engine._journal if journal_path else None
    if parent_journal is not None:
        parent_journal.attach_worker()
    try:
        return _analyze_isolated(engine, source, head, independents,
                                 dependents, config, env, journal_path,
                                 resume_path, tracer, analyses, outcomes)
    finally:
        if parent_journal is not None:
            parent_journal.detach_worker()


def _analyze_isolated(engine, source, head, independents, dependents,
                      config, env, journal_path, resume_path, tracer,
                      analyses, outcomes) -> Tuple[List, List[WorkerOutcome]]:
    from ..formad.engine import PrimalRaceError

    for loop in engine.proc.parallel_loops():
        key = engine.loop_key(loop)
        settled = engine._replay_settled(loop)
        if settled is not None:
            analyses.append(settled)
            outcomes.append(WorkerOutcome(key, "resumed"))
            continue
        deadline = engine.deadline
        if deadline is not None and deadline.expired():
            analyses.append(engine.degraded_analysis(
                loop, "run deadline expired before analysis",
                phase="deadline"))
            outcomes.append(WorkerOutcome(
                key, "timeout", "run deadline expired before the worker "
                "started"))
            if tracer.enabled:
                tracer.emit("worker", loop=key, status="timeout",
                            dur_s=0.0, detail=outcomes[-1].detail)
            continue
        request = {
            "source": source,
            "head": head,
            "independents": list(independents),
            "dependents": list(dependents),
            "loop_key": key,
            "flags": engine.fingerprint_flags(),
            "question_timeout": engine.question_timeout,
            "escalation": {
                "max_attempts": engine.escalation.max_attempts,
                "growth": engine.escalation.growth,
                "max_scale": engine.escalation.max_scale,
                "jitter": engine.escalation.jitter,
            },
            "deadline_remaining": (deadline.remaining()
                                   if deadline is not None else None),
            "journal": journal_path,
            "resume": resume_path,
        }
        budget = config.kill_timeout
        if deadline is not None:
            budget = min(budget,
                         max(deadline.remaining(), 0.0) + _DEADLINE_GRACE)
        start = time.perf_counter()
        status, detail, payload = _run_worker(config, request, budget, env)
        elapsed = time.perf_counter() - start
        if status == "ok":
            error = payload.get("error")
            if error is not None:
                if error.get("type") == "PrimalRaceError":
                    raise PrimalRaceError(error.get("message", ""))
                status, detail = "crash", (f"worker error: "
                                           f"{error.get('message', '')}")
            elif "done" not in payload:
                status, detail = "crash", "worker reply missing its result"
        if tracer.enabled:
            extra = {"detail": detail} if detail else {}
            tracer.emit("worker", loop=key, status=status, dur_s=elapsed,
                        **extra)
        if status == "ok":
            analyses.append(rebuild_analysis(loop, payload["done"],
                                             payload.get("verdicts", []),
                                             resumed=False))
            outcomes.append(WorkerOutcome(key, "ok", elapsed=elapsed))
        else:
            # The child died before journaling its loop_done record, so
            # the degraded substitute (journaled here, in the parent)
            # is what a later --resume sees — and it re-analyzes.
            analyses.append(engine.degraded_analysis(
                loop, f"isolated {detail}" if detail else
                "isolated worker failed"))
            outcomes.append(WorkerOutcome(key, status, detail, elapsed))
    return analyses, outcomes

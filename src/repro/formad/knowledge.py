"""Knowledge extraction (paper §5, phase 1).

Because the primal parallel loop is assumed correctly parallelized, for
every pair of references to one array inside the loop — at least one
being a write — the index tuples must be *disjoint across iterations*:
with the loop counter differing (``i ≠ i'``), at least one index
component differs. These facts become per-context assertion lists; a
context inherits everything attached to its ancestors.

Accesses performed under ``!$omp atomic`` are excluded: atomics are
*allowed* to collide, so they prove nothing.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.references import AccessKind, ArrayAccess, RegionReferences
from ..cfg.contexts import Context
from ..ir.stmt import Assign
from ..smt.terms import FAtom, Formula, Or, Rel, Term
from .translate import IndexTranslator, UntranslatableError

logger = logging.getLogger(__name__)


@dataclass
class KnowledgeFact:
    """One disjointness assertion with its owning context."""

    context: Context
    formula: Formula
    source_array: str
    left: Tuple[Term, ...]   # primed side
    right: Tuple[Term, ...]

    def __str__(self) -> str:
        return f"[{self.context.path()}] {self.formula}"


@dataclass
class KnowledgeBase:
    """All facts of one parallel region, grouped by context."""

    facts: List[KnowledgeFact] = field(default_factory=list)
    skipped_pairs: int = 0

    def facts_for(self, context: Context) -> List[KnowledgeFact]:
        """Facts visible in *context*: its own plus inherited ones."""
        visible = []
        ancestors = {c.uid for c in context.ancestors()}
        for fact in self.facts:
            if fact.context.uid in ancestors:
                visible.append(fact)
        return visible

    @property
    def size(self) -> int:
        """Number of assertions, root axiom excluded."""
        return len(self.facts)


def disjointness_formula(left: Sequence[Term], right: Sequence[Term]) -> Formula:
    """``∨_d left_d ≠ right_d`` — the index tuples differ somewhere."""
    parts = [FAtom(Rel.NE, l, r) for l, r in zip(left, right)]
    return Or(*parts)


def is_atomic_access(access: ArrayAccess) -> bool:
    return isinstance(access.stmt, Assign) and access.stmt.atomic


def extract_knowledge(
    refs: RegionReferences,
    translator: IndexTranslator,
    *,
    use_contexts: bool = True,
) -> KnowledgeBase:
    """Phase 1: build the knowledge base of one parallel region.

    Pairs are formed over *unique* index expressions (the paper's
    ``writeexprs``/``readexprs`` are expression sets — Table 1's model
    size is ``1 + e²`` in the unique expression count ``e``), so
    repeated accesses through the same expression contribute one fact.
    """
    from .translate import render_term

    def rendering(terms) -> str:
        return "|".join(render_term(t) for t in terms)

    seen: Set[Tuple[str, str, int]] = set()
    kb = KnowledgeBase()
    for array in refs.arrays():
        writes = [a for a in refs.writes(array) if not is_atomic_access(a)]
        reads = [a for a in refs.reads(array) if not is_atomic_access(a)]
        for w in writes:
            for other in writes + reads:
                if not use_contexts:
                    # Ablation (§5.1 disabled): attach everything to the
                    # root, including pairs no control certainly
                    # executes together — unsound by design.
                    target: Optional[Context] = refs.contexts.root
                else:
                    ctx_w = refs.context_of(w)
                    ctx_o = refs.context_of(other)
                    # Attach to the innermost context certain to
                    # execute both.
                    if ctx_w is ctx_o:
                        target = ctx_w
                    elif ctx_o.includes(ctx_w):
                        target = ctx_w
                    elif ctx_w.includes(ctx_o):
                        target = ctx_o
                    else:
                        target = None  # no control certainly executes both
                if target is None:
                    kb.skipped_pairs += 1
                    continue
                if len(w.indices) != len(other.indices):
                    kb.skipped_pairs += 1
                    continue
                try:
                    left = translator.translate_tuple(w.indices, w.stmt,
                                                      primed=True)
                    right = translator.translate_tuple(other.indices,
                                                       other.stmt, primed=False)
                except UntranslatableError:
                    kb.skipped_pairs += 1
                    continue
                # target.uid, not id(target): object ids are reused
                # after collection and would alias dedup entries.
                key = (rendering(left), rendering(right), target.uid)
                if key in seen:
                    continue
                seen.add(key)
                kb.facts.append(KnowledgeFact(
                    target, disjointness_formula(left, right), array,
                    left, right))
    logger.debug("extracted %d disjointness facts over %d arrays "
                 "(%d pairs skipped)", kb.size, len(refs.arrays()),
                 kb.skipped_pairs)
    return kb

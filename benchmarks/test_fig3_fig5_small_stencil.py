"""Figures 3 and 5: small-stencil absolute time and parallel speedup.

Paper shapes (captions of Figs. 3/5): the primal and FormAD adjoint
scale to ~13x on 18 threads; the atomic and reduction adjoints are
best with 1 thread, never exceed the serial adjoint, and slow down as
threads are added; the FormAD adjoint at 18 threads beats the serial
adjoint by an order of magnitude while atomics are ~25x slower than
serial even at their best.
"""

import pytest

from repro.experiments import (PAPER, run_kernel_experiment,
                               small_stencil_spec)


@pytest.fixture(scope="module")
def experiment(bench_sizes):
    return run_kernel_experiment(small_stencil_spec(n=bench_sizes["stencil_small_n"]))


@pytest.mark.figure("fig3")
def test_fig3_absolute_times(benchmark, bench_sizes):
    exp = benchmark.pedantic(
        lambda: run_kernel_experiment(
            small_stencil_spec(n=bench_sizes["stencil_small_n"])),
        rounds=1, iterations=1)
    paper = PAPER["stencil_small"]
    # Serial anchors within 2x of the paper's absolute numbers.
    assert exp.primal_serial_time == pytest.approx(paper.primal_serial, rel=1.0)
    assert exp.adjoint_serial_time == pytest.approx(paper.adjoint_serial, rel=1.5)
    # Atomic version: best case is 1 thread and still >> serial.
    atomic = exp.adjoints["atomic"]
    assert atomic.best_threads() == 1
    assert atomic.best() > 10 * exp.adjoint_serial_time
    # Reduction version: best case 1 thread, worse than serial.
    reduction = exp.adjoints["reduction"]
    assert reduction.best_threads() == 1
    assert reduction.best() > exp.adjoint_serial_time
    # FormAD at 18 threads beats serial by an order of magnitude.
    assert exp.adjoints["formad"].times[18] < exp.adjoint_serial_time / 8


@pytest.mark.figure("fig5")
def test_fig5_speedups(benchmark, experiment):
    exp = experiment
    primal_sp = benchmark.pedantic(exp.primal_speedups, rounds=1, iterations=1)
    formad_sp = exp.adjoint_speedups("formad")
    # Paper: 13.4x / 13.6x at 18 threads; accept the 10-18 band.
    assert 10 < primal_sp[18] < 18
    assert 10 < formad_sp[18] < 18
    # Monotone scaling for primal and FormAD.
    threads = exp.threads
    for a, b in zip(threads, threads[1:]):
        assert primal_sp[b] > primal_sp[a]
        assert formad_sp[b] > formad_sp[a]
    # Atomics and reductions never exceed serial and degrade with
    # threads (paper: "actually slow down as more threads are added").
    for strategy in ("atomic", "reduction"):
        sp = exp.adjoint_speedups(strategy)
        assert max(sp.values()) < 1.0
        assert sp[18] < sp[1] or sp[18] < 0.5

"""Dedicated tests for the semantic validator."""

import pytest

from repro.ir import (Assign, Call, Const, If, Loop, Param, Procedure,
                      ProcedureBuilder, REAL, INTEGER, Var, ValidationError,
                      integer_array, is_valid, real_array, validate)
from repro.ir.types import Intent


def _proc(body, locals_=None, params=None):
    return Procedure(
        "p",
        params if params is not None else [
            Param("x", real_array(10), Intent.IN),
            Param("y", real_array(10), Intent.INOUT),
            Param("n", INTEGER, Intent.IN),
        ],
        locals_ if locals_ is not None else {"i": INTEGER, "t": REAL},
        body,
    )


class TestNameResolution:
    def test_undeclared_variable(self):
        proc = _proc([Assign(Var("t"), Var("ghost"))])
        with pytest.raises(ValidationError, match="undeclared variable 'ghost'"):
            validate(proc)

    def test_undeclared_array(self):
        proc = _proc([Assign(Var("t"), Var("ghost")[Const(1)])])
        with pytest.raises(ValidationError, match="undeclared array"):
            validate(proc)

    def test_array_used_without_indices(self):
        proc = _proc([Assign(Var("t"), Var("x"))])
        with pytest.raises(ValidationError, match="without indices"):
            validate(proc)

    def test_scalar_indexed(self):
        proc = _proc([Assign(Var("t"), Var("n")[Const(1)])])
        with pytest.raises(ValidationError, match="indexed like an array"):
            validate(proc)

    def test_rank_mismatch(self):
        proc = _proc([Assign(Var("t"), Var("x")[Const(1), Const(2)])])
        with pytest.raises(ValidationError, match="rank"):
            validate(proc)

    def test_size_of_bare_array_allowed(self):
        proc = _proc([Assign(Var("t"), Call("size", (Var("x"),)))])
        validate(proc)


class TestIntrinsics:
    def test_unknown_intrinsic(self):
        proc = _proc([Assign(Var("t"), Call("mystery", (Var("t"),)))])
        with pytest.raises(ValidationError, match="unknown intrinsic"):
            validate(proc)

    def test_wrong_arity(self):
        proc = _proc([Assign(Var("t"), Call("sin", (Var("t"), Var("t"))))])
        with pytest.raises(ValidationError, match="expects 1"):
            validate(proc)

    def test_variadic_min_arity(self):
        proc = _proc([Assign(Var("t"), Call("max", (Var("t"),)))])
        with pytest.raises(ValidationError, match="at least 2"):
            validate(proc)


class TestLoops:
    def test_real_loop_counter_rejected(self):
        proc = _proc([Loop("t", 1, 5, body=[])])
        with pytest.raises(ValidationError, match="integer scalar"):
            validate(proc)

    def test_counter_assignment_in_body(self):
        proc = _proc([Loop("i", 1, 5, body=[Assign(Var("i"), Const(0))])])
        with pytest.raises(ValidationError, match="assigned in loop body"):
            validate(proc)

    def test_counter_reuse_in_nested_loop(self):
        proc = _proc([Loop("i", 1, 5, body=[Loop("i", 1, 3, body=[])])])
        with pytest.raises(ValidationError, match="reused"):
            validate(proc)

    def test_zero_step(self):
        proc = _proc([Loop("i", 1, 5, 0, body=[])])
        with pytest.raises(ValidationError, match="nonzero"):
            validate(proc)

    def test_nested_parallel_rejected(self):
        proc = _proc([Loop("i", 1, 5, parallel=True, body=[
            Loop("k", 1, 3, parallel=True, body=[])])],
            locals_={"i": INTEGER, "k": INTEGER, "t": REAL})
        with pytest.raises(ValidationError, match="nested parallel"):
            validate(proc)

    def test_undeclared_private_name(self):
        proc = _proc([Loop("i", 1, 5, parallel=True, private=("ghost",),
                           body=[])])
        with pytest.raises(ValidationError, match="private clause"):
            validate(proc)

    def test_bad_reduction_op(self):
        proc = _proc([Loop("i", 1, 5, parallel=True,
                           reduction=(("xor", "t"),), body=[])])
        with pytest.raises(ValidationError, match="reduction operator"):
            validate(proc)


class TestConditions:
    def test_arithmetic_condition_rejected(self):
        proc = _proc([If(Var("t") + 1.0, [])])
        with pytest.raises(ValidationError, match="not a logical"):
            validate(proc)

    def test_logical_var_condition_allowed(self):
        from repro.ir import LOGICAL
        proc = _proc([If(Var("flag"), [])],
                     locals_={"flag": LOGICAL, "i": INTEGER, "t": REAL})
        validate(proc)

    def test_boolean_literal_condition_allowed(self):
        proc = _proc([If(Const(True), [])])
        validate(proc)


class TestAggregation:
    def test_multiple_problems_reported_together(self):
        proc = _proc([
            Assign(Var("t"), Var("ghost1")),
            Assign(Var("t"), Var("ghost2")),
        ])
        with pytest.raises(ValidationError) as exc:
            validate(proc)
        assert len(exc.value.problems) == 2

    def test_is_valid_helper(self):
        good = _proc([Assign(Var("t"), Const(1.0))])
        bad = _proc([Assign(Var("t"), Var("ghost"))])
        assert is_valid(good) and not is_valid(bad)

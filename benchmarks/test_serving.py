"""Serving performance: warm ``repro serve`` vs per-invocation cold start.

The daemon exists to amortize the cold start every one-shot ``repro
analyze`` pays — interpreter boot, imports, model build — so the
benchmark measures exactly that trade on the paper kernels:

* **cold**: one full ``python -m repro analyze --json`` subprocess,
  wall-clock end to end (what a CLI user pays per invocation);
* **warm**: the *second* identical request to a live daemon over its
  unix socket (the first primes the in-memory memo), wall-clock from
  request write to reply read.

The acceptance bar is ``warm < 25%% of cold`` per kernel — a repeat
question to a warm daemon must cost a small fraction of re-running the
CLI. Results land in ``BENCH_ANALYSIS.json`` under ``serving`` and are
gated by ``benchmarks/check_regression.py``. The daemon is shut down
with SIGTERM and must drain to exit 0 (the graceful-drain contract).

Set ``REPRO_BENCH_QUICK=1`` to skip the slow LBM kernel.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import format_procedure
from repro.programs import (build_gfmc, build_greengauss, build_lbm,
                            build_stencil)
from repro.serve import ServeClient

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

#: warm repeat request must cost less than this fraction of a cold
#: CLI invocation (per kernel; the max ratio is what the gate checks).
WARM_OVER_COLD_BAR = 0.25

KERNELS = {
    "stencil8": (lambda: build_stencil(8, name="stencil_large"),
                 "uold", "unew"),
    "gfmc": (build_gfmc, "cl,cr", "cl,cr"),
    "lbm": (build_lbm, "srcgrid", "dstgrid"),
    "greengauss": (build_greengauss, "dv", "grad"),
}

SRC_ROOT = str(Path(__file__).resolve().parent.parent / "src")


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT
    return env


def _spawn_daemon(tmp_path):
    address = str(tmp_path / "serve.sock")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", address],
        env=_env(), cwd=str(tmp_path), stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        try:
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.connect(address)
            probe.close()
            return proc, address
        except OSError:
            if proc.poll() is not None:
                raise AssertionError(
                    f"daemon died on start: {proc.stderr.read()}")
            time.sleep(0.05)
    proc.kill()
    raise AssertionError("daemon never started listening")


def _cold_analyze(src_path, ins, outs):
    """Wall time of one full CLI invocation — the per-request price
    without a daemon."""
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "analyze", str(src_path),
         "-i", ins, "-o", outs, "--json"],
        env=_env(), capture_output=True, text=True)
    elapsed = time.perf_counter() - start
    assert proc.returncode == 0, proc.stderr
    return elapsed


@pytest.mark.figure("analysis-perf")
def test_warm_daemon_beats_cold_start(tmp_path):
    names = [n for n in KERNELS if not (QUICK and n == "lbm")]
    daemon, address = _spawn_daemon(tmp_path)
    results = {}
    try:
        client = ServeClient(address)
        try:
            for name in names:
                builder, ins, outs = KERNELS[name]
                proc = builder()
                source = format_procedure(proc)
                src_path = tmp_path / f"{name}.f90"
                src_path.write_text(source)
                head = proc.name
                independents = ins.split(",")
                dependents = outs.split(",")

                cold_s = _cold_analyze(src_path, ins, outs)

                # prime the daemon (its own cold run), then measure
                # the repeat — the serving hot path under test
                first = client.analyze(source, head, independents,
                                       dependents)
                assert first["served_from"] == "cold", name
                start = time.perf_counter()
                again = client.analyze(source, head, independents,
                                       dependents)
                warm_s = time.perf_counter() - start
                assert again["served_from"] == "memo", name
                assert again["loops"] == first["loops"], name

                results[name] = {
                    "cold_s": cold_s,
                    "warm_s": warm_s,
                    "warm_over_cold": warm_s / max(cold_s, 1e-9),
                }
        finally:
            client.close()
    finally:
        if daemon.poll() is None:
            daemon.send_signal(signal.SIGTERM)
        try:
            _, stderr = daemon.communicate(timeout=30.0)
        except subprocess.TimeoutExpired:
            daemon.kill()
            _, stderr = daemon.communicate()
            raise AssertionError("daemon did not drain after SIGTERM")
    # the drain contract: SIGTERM -> answered requests -> exit 0
    assert daemon.returncode == 0, stderr
    assert "drained, exiting" in stderr

    worst = max(r["warm_over_cold"] for r in results.values())
    for name, entry in results.items():
        assert entry["warm_over_cold"] < WARM_OVER_COLD_BAR, (
            f"{name}: warm repeat took {entry['warm_s']:.3f}s, "
            f"{entry['warm_over_cold']:.0%} of the {entry['cold_s']:.3f}s "
            f"cold invocation (bar {WARM_OVER_COLD_BAR:.0%})")

    path = Path(__file__).resolve().parent.parent / "BENCH_ANALYSIS.json"
    doc = {}
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except ValueError:
            doc = {}
    doc["serving"] = {
        "cpus": os.cpu_count(),
        "quick_mode": QUICK,
        "bar": WARM_OVER_COLD_BAR,
        "warm_over_cold_max": worst,
        "kernels": results,
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

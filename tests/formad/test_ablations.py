"""Ablations of the FormAD analysis ingredients.

Each ingredient the paper calls out (§5.1 contexts, §5.2 instance
numbering, §5.4 activity + increment detection) is disabled in turn;
the tests demonstrate what it buys — fewer queries for the §5.4
optimizations, *soundness* for contexts and instance numbering (with
them ablated, the engine produces provably wrong "safe" verdicts on the
regression kernels that motivated them).
"""

import pytest

from repro import parse_procedure
from repro.analysis import ActivityAnalysis
from repro.formad import FormADEngine
from repro.programs import build_small_stencil

STALE_INSTANCE = """
subroutine stale(x, y, c, d, n)
  integer, intent(in) :: n
  real, intent(in) :: x(90)
  real, intent(inout) :: y(90)
  integer, intent(in) :: c(30)
  integer, intent(in) :: d(30)
  integer :: k
  !$omp parallel do private(k)
  do i = 1, n
    k = c(i)
    y(k) = 1.5
    k = d(i)
    y(i) = x(k)
  end do
end subroutine stale
"""

CROSS_BRANCH = """
subroutine two(x, y, c, d, n)
  integer, intent(in) :: n
  real, intent(in) :: x(30)
  real, intent(inout) :: y(30)
  integer, intent(in) :: c(10)
  integer, intent(in) :: d(10)
  !$omp parallel do
  do i = 1, n
    if (c(i) .gt. 0) then
      y(c(i)) = x(c(i))
    else
      y(d(i)) = x(d(i))
    end if
  end do
end subroutine two
"""


def _engine(proc, ind, dep, **flags):
    return FormADEngine(proc, ActivityAnalysis(proc, ind, dep), **flags)


class TestIncrementDetectionAblation:
    def test_more_pairs_without_it(self):
        proc = build_small_stencil()
        full = _engine(proc, ["uold"], ["unew"]).analyze_all()[0]
        ablated = _engine(proc, ["uold"], ["unew"],
                          use_increment_detection=False).analyze_all()[0]
        # With §5.4 on, unew's adjoint is read-only: zero pairs. Without
        # it, unew's increments count as writes and must be checked.
        assert full.verdicts["unew"].pairs_total == 0
        assert ablated.verdicts["unew"].pairs_total > 0
        assert ablated.stats.exploitation_checks > full.stats.exploitation_checks
        # Both remain safe: the extra pairs are provable, just wasteful.
        assert full.all_safe and ablated.all_safe


class TestActivityAblation:
    def test_inactive_arrays_also_tested_without_it(self):
        src = """
subroutine act(x, y, z, n)
  integer, intent(in) :: n
  real, intent(in) :: x(50)
  real, intent(inout) :: y(50)
  real, intent(in) :: z(50)
  !$omp parallel do
  do i = 1, n
    y(i) = x(i) + z(i)
  end do
end subroutine act
"""
        proc = parse_procedure(src)
        # z is not an independent: inactive, skipped by default.
        full = _engine(proc, ["x"], ["y"]).analyze_all()[0]
        assert "z" not in full.verdicts
        ablated = _engine(proc, ["x"], ["y"],
                          use_activity=False).analyze_all()[0]
        assert "z" in ablated.verdicts
        assert ablated.stats.exploitation_checks > full.stats.exploitation_checks


class TestInstanceNumberingAblation:
    def test_without_instances_the_engine_is_unsound(self):
        proc = parse_procedure(STALE_INSTANCE)
        sound = _engine(proc, ["x"], ["y"]).analyze_all()[0]
        assert not sound.verdicts["x"].safe  # correct: d(i) can collide
        unsound = _engine(proc, ["x"], ["y"],
                          use_instances=False).analyze_all()[0]
        # With one SMT variable for both k uses, the knowledge about the
        # write through k=c(i) is wrongly applied to the read through
        # k=d(i): a wrong proof. This is exactly why §5.2 exists.
        assert unsound.verdicts["x"].safe


class TestContextAblation:
    def test_without_contexts_the_engine_is_unsound(self):
        proc = parse_procedure(CROSS_BRANCH)
        sound = _engine(proc, ["x"], ["y"]).analyze_all()[0]
        assert not sound.verdicts["x"].safe  # cross-branch pairs unknown
        unsound = _engine(proc, ["x"], ["y"],
                          use_contexts=False).analyze_all()[0]
        # Pooling cross-branch knowledge at the root asserts facts that
        # no control flow guarantees; the cross-branch collision is then
        # wrongly "proven" impossible.
        assert unsound.verdicts["x"].safe
        assert unsound.stats.skipped_pairs < sound.stats.skipped_pairs

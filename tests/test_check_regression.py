"""The perf-regression gate (benchmarks/check_regression.py).

The gate is a standalone script outside the package (CI runs it as
``python benchmarks/check_regression.py``), so it is loaded here via
importlib rather than imported.
"""

import copy
import importlib.util
import json
import os

import pytest

_GATE = os.path.join(os.path.dirname(__file__), os.pardir,
                     "benchmarks", "check_regression.py")
spec = importlib.util.spec_from_file_location("check_regression", _GATE)
gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gate)


def _doc():
    """A miniature but structurally faithful BENCH_ANALYSIS.json."""
    return {
        "schema": "repro-analysis-perf/1",
        "kernels": {
            "GFMC": {
                "fresh": {
                    "verdicts": {"cl": True, "cr": True},
                    "metrics": {"schema": "repro-metrics/1",
                                "queries": 38, "solver_checks": 38,
                                "memo_hits": 0,
                                "time_seconds": 0.02,
                                "search_seconds": 0.012},
                },
                "incremental": {
                    "verdicts": {"cl": True, "cr": True},
                    "metrics": {"schema": "repro-metrics/1",
                                "queries": 38, "solver_checks": 29,
                                "memo_hits": 9,
                                "time_seconds": 0.01,
                                "search_seconds": 0.006},
                },
                "translate_clausify_speedup": 3.2,
            },
            "LBM": {
                "fresh": {"verdicts": {"dstgrid": False},
                          "metrics": {"queries": 100,
                                      "time_seconds": 1.0}},
                "incremental": {"verdicts": {"dstgrid": False},
                                "metrics": {"queries": 100,
                                            "time_seconds": 0.4}},
                "translate_clausify_speedup": 28.0,
            },
        },
        "backend": {"cpus": 4, "speedup": 2.5, "speedup_enforced": True},
        "question_sharding": {"cpus": 4, "speedup": 2.1,
                              "speedup_enforced": True},
    }


def test_identical_documents_pass():
    failures, _ = gate.compare(_doc(), _doc())
    assert failures == []


def test_timer_drift_is_not_a_regression():
    cur = _doc()
    cur["kernels"]["GFMC"]["fresh"]["metrics"]["time_seconds"] = 99.0
    cur["kernels"]["GFMC"]["fresh"]["metrics"]["search_seconds"] = 50.0
    failures, _ = gate.compare(cur, _doc())
    assert failures == []


def test_deterministic_counter_drift_fails():
    cur = _doc()
    cur["kernels"]["GFMC"]["incremental"]["metrics"]["solver_checks"] = 30
    failures, _ = gate.compare(cur, _doc())
    assert any("solver_checks" in f and "29 -> 30" in f for f in failures)


def test_verdict_change_fails():
    cur = _doc()
    cur["kernels"]["LBM"]["fresh"]["verdicts"]["dstgrid"] = True
    failures, _ = gate.compare(cur, _doc())
    assert any("LBM/fresh: verdicts changed" in f for f in failures)


def test_speedup_within_tolerance_passes():
    cur = _doc()
    cur["kernels"]["GFMC"]["translate_clausify_speedup"] = 2.6  # -19%
    failures, _ = gate.compare(cur, _doc(), tolerance=0.25)
    assert failures == []


def test_speedup_below_tolerance_fails():
    cur = _doc()
    cur["kernels"]["GFMC"]["translate_clausify_speedup"] = 2.0  # -37%
    failures, _ = gate.compare(cur, _doc(), tolerance=0.25)
    assert any("GFMC: translate_clausify_speedup" in f for f in failures)


def test_sub_2x_baseline_ratio_is_informational_only():
    base = _doc()
    base["kernels"]["GFMC"]["translate_clausify_speedup"] = 1.5
    cur = copy.deepcopy(base)
    cur["kernels"]["GFMC"]["translate_clausify_speedup"] = 1.0
    failures, notes = gate.compare(cur, base)
    assert failures == []
    assert any("gating floor" in n for n in notes)


def test_backend_speedup_regression_fails_on_same_machine_class():
    cur = _doc()
    cur["backend"]["speedup"] = 1.0
    failures, _ = gate.compare(cur, _doc(), tolerance=0.25)
    assert any(f.startswith("backend: speedup") for f in failures)


def test_machine_class_guard_skips_cpu_mismatch():
    cur = _doc()
    cur["backend"]["cpus"] = 1
    cur["backend"]["speedup"] = 0.5
    failures, notes = gate.compare(cur, _doc())
    assert failures == []
    assert any("machine class differs" in n for n in notes)


def test_machine_class_guard_skips_unenforced_speedup():
    cur = _doc()
    cur["backend"]["speedup_enforced"] = False
    cur["backend"]["speedup"] = 0.5
    failures, notes = gate.compare(cur, _doc())
    assert failures == []
    assert any("not enforced" in n for n in notes)


def test_quick_mode_kernel_subset_compares_intersection():
    cur = _doc()
    del cur["kernels"]["LBM"]  # REPRO_BENCH_QUICK=1 omits LBM
    failures, notes = gate.compare(cur, _doc())
    assert failures == []
    assert any("LBM" in n for n in notes)


def test_schema_mismatch_fails():
    cur = _doc()
    cur["schema"] = "repro-analysis-perf/999"
    failures, _ = gate.compare(cur, _doc())
    assert any("schema mismatch" in f for f in failures)


def test_serving_bar_is_absolute():
    cur = _doc()
    cur["serving"] = {"bar": 0.25, "warm_over_cold_max": 0.01,
                     "cpus": 4, "kernels": {}}
    failures, notes = gate.compare(cur, _doc())  # baseline has no section
    assert failures == []
    assert any("serving" in n for n in notes)


def test_serving_over_bar_fails():
    cur = _doc()
    cur["serving"] = {"bar": 0.25, "warm_over_cold_max": 0.4,
                     "cpus": 4, "kernels": {}}
    failures, _ = gate.compare(cur, _doc())
    assert any("serving" in f and "bar" in f for f in failures)


def test_serving_without_numbers_fails():
    cur = _doc()
    cur["serving"] = {"kernels": {}}
    failures, _ = gate.compare(cur, _doc())
    assert any("serving" in f for f in failures)


def test_absent_serving_section_is_not_gated():
    failures, notes = gate.compare(_doc(), _doc())
    assert failures == []
    assert not any("serving" in n for n in notes)


def test_main_exit_codes(tmp_path):
    base = tmp_path / "baseline.json"
    cur = tmp_path / "current.json"
    base.write_text(json.dumps(_doc()))
    good = _doc()
    cur.write_text(json.dumps(good))
    assert gate.main([str(cur), "--baseline", str(base)]) == 0

    bad = copy.deepcopy(good)
    bad["kernels"]["GFMC"]["translate_clausify_speedup"] = 0.5
    cur.write_text(json.dumps(bad))
    assert gate.main([str(cur), "--baseline", str(base)]) == 1

    assert gate.main([str(tmp_path / "missing.json"),
                      "--baseline", str(base)]) == 2


def test_main_update_rewrites_baseline(tmp_path):
    base = tmp_path / "baseline.json"
    cur = tmp_path / "current.json"
    doc = _doc()
    doc["kernels"]["GFMC"]["translate_clausify_speedup"] = 9.9
    cur.write_text(json.dumps(doc))
    assert gate.main([str(cur), "--baseline", str(base),
                      "--update"]) == 0
    rewritten = json.loads(base.read_text())
    assert rewritten["kernels"]["GFMC"]["translate_clausify_speedup"] == 9.9


def test_committed_baseline_gates_itself():
    """The repo's own baseline must pass against itself — the gate's
    CI invariant on day one."""
    baseline = gate.load(gate.DEFAULT_BASELINE)
    failures, _ = gate.compare(baseline, baseline)
    assert failures == []

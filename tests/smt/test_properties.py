"""Property-based tests: the SMT solver against a brute-force oracle.

Random conjunctions/disjunctions of small linear atoms over a few
variables are decided both by the solver and by exhaustive enumeration
over a bounded integer box. The solver must never disagree with the
oracle (UNSAT when the oracle found a model inside the box, or SAT with
a model that fails re-evaluation).
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.smt import (And, FAtom, Int, Or, Rel, Result, SAT, UNSAT, Solver,
                       TConst, TVar, check_int, canonicalize,
                       TrivialConstraint)
from repro.smt.terms import TAdd, TMul

VARS = ("x", "y", "z")
BOX = range(-4, 5)

coeff = st.integers(min_value=-3, max_value=3)
const = st.integers(min_value=-6, max_value=6)
rel = st.sampled_from([Rel.EQ, Rel.NE, Rel.LE, Rel.LT, Rel.GE, Rel.GT])


@st.composite
def linear_terms(draw):
    parts = [TMul(draw(coeff), TVar(v)) for v in VARS]
    parts.append(TConst(draw(const)))
    return TAdd(tuple(parts))


@st.composite
def atoms(draw):
    return FAtom(draw(rel), draw(linear_terms()), draw(linear_terms()))


def _eval_term(term, env):
    if isinstance(term, TConst):
        return term.value
    if isinstance(term, TVar):
        return env[term.name]
    if isinstance(term, TAdd):
        return sum(_eval_term(t, env) for t in term.terms)
    if isinstance(term, TMul):
        return term.coeff * _eval_term(term.term, env)
    raise TypeError(term)


def _eval_atom(atom, env):
    l, r = _eval_term(atom.left, env), _eval_term(atom.right, env)
    return {
        Rel.EQ: l == r, Rel.NE: l != r, Rel.LE: l <= r,
        Rel.LT: l < r, Rel.GE: l >= r, Rel.GT: l > r,
    }[atom.rel]


def _oracle_conjunction(atom_list):
    for values in itertools.product(BOX, repeat=len(VARS)):
        env = dict(zip(VARS, values))
        if all(_eval_atom(a, env) for a in atom_list):
            return env
    return None


class TestConjunctions:
    @given(st.lists(atoms(), min_size=1, max_size=4))
    @settings(max_examples=150, deadline=None)
    def test_solver_agrees_with_oracle(self, atom_list):
        s = Solver()
        s.add(*atom_list)
        result = s.check()
        witness = _oracle_conjunction(atom_list)
        if witness is not None:
            # Soundness: the solver must never refute a satisfiable
            # system. (UNKNOWN is tolerated but should be rare.)
            assert result is not UNSAT, \
                f"oracle found {witness} but solver says UNSAT"
        if result is SAT:
            model = s.model()
            env = {v: model.get(v, 0) for v in VARS}
            assert all(_eval_atom(a, env) for a in atom_list)

    @given(st.lists(atoms(), min_size=1, max_size=3))
    @settings(max_examples=100, deadline=None)
    def test_canonicalize_preserves_truth(self, atom_list):
        # For every atom (except NE, split elsewhere) and every point in
        # the box, the canonical constraints must agree with the atom.
        for atom in atom_list:
            if atom.rel is Rel.NE:
                continue
            try:
                constraints = canonicalize(atom)
            except TrivialConstraint as t:
                for values in itertools.product(range(-2, 3), repeat=len(VARS)):
                    env = dict(zip(VARS, values))
                    assert _eval_atom(atom, env) is t.truth
                continue
            for values in itertools.product(range(-2, 3), repeat=len(VARS)):
                env = dict(zip(VARS, values))
                assert (_eval_atom(atom, env)
                        == all(c.holds(env) for c in constraints))


class TestDisjunctions:
    @given(st.lists(st.lists(atoms(), min_size=1, max_size=3),
                    min_size=1, max_size=3))
    @settings(max_examples=80, deadline=None)
    def test_cnf_of_disjunctions_agrees_with_oracle(self, clause_specs):
        # Formula: conjunction of disjunctions of atoms.
        s = Solver()
        for spec in clause_specs:
            s.add(Or(*spec))
        result = s.check()

        def clause_holds(spec, env):
            return any(_eval_atom(a, env) for a in spec)

        witness = None
        for values in itertools.product(BOX, repeat=len(VARS)):
            env = dict(zip(VARS, values))
            if all(clause_holds(spec, env) for spec in clause_specs):
                witness = env
                break
        if witness is not None:
            assert result is not UNSAT
        if result is SAT:
            model = s.model()
            env = {v: model.get(v, 0) for v in VARS}
            assert all(clause_holds(spec, env) for spec in clause_specs)


class TestPushPopInvariant:
    @given(st.lists(atoms(), min_size=2, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_pop_restores_previous_answer(self, atom_list):
        s = Solver()
        s.add(atom_list[0])
        before = s.check()
        s.push()
        s.add(*atom_list[1:])
        s.check()
        s.pop()
        assert s.check() is before

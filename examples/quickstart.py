#!/usr/bin/env python3
"""Quickstart: differentiate a parallel loop and validate the gradient.

Covers the core workflow in under a minute:

1. write a kernel in the Fortran-flavored mini-language,
2. reverse-differentiate it with the FormAD strategy,
3. inspect the generated adjoint (no atomics — FormAD proved safety),
4. run both primal and adjoint and check the gradient against finite
   differences.
"""

import numpy as np

from repro import (analyze_formad, differentiate, format_procedure,
                   parse_procedure, run_procedure)

SOURCE = """
subroutine scale_gather(x, y, c, a, n)
  integer, intent(in) :: n
  real, intent(in) :: a
  real, intent(in) :: x(200)
  real, intent(inout) :: y(100)
  integer, intent(in) :: c(100)

  !$omp parallel do
  do i = 1, n
    y(c(i)) = a * x(c(i) + 7) * x(c(i) + 7)
  end do
end subroutine scale_gather
"""


def main() -> None:
    proc = parse_procedure(SOURCE)

    # --- what does FormAD prove about this loop? ----------------------
    (analysis,) = analyze_formad(proc, ["x"], ["y"])
    print("FormAD verdicts:")
    for verdict in analysis.verdicts.values():
        print(f"  {verdict}")

    # --- generate the adjoint -----------------------------------------
    adj = differentiate(proc, ["x"], ["y"], strategy="formad")
    print("\nGenerated adjoint:\n")
    print(format_procedure(adj.procedure))

    # --- numeric check against central finite differences -------------
    rng = np.random.default_rng(0)
    n = 100
    c = rng.permutation(n) + 1  # injective: the primal is race-free
    x = rng.standard_normal(200)
    base = {"x": x, "y": np.zeros(n), "c": c, "a": 1.7, "n": n}

    seed = rng.standard_normal(n)        # adjoint seed on the output
    adj_bindings = dict(base)
    adj_bindings[adj.adjoint_name("y")] = seed.copy()
    adj_bindings[adj.adjoint_name("x")] = np.zeros(200)
    grad = run_procedure(adj.procedure, adj_bindings) \
        .array(adj.adjoint_name("x")).data

    direction = rng.standard_normal(200)
    eps = 1e-6
    y_plus = run_procedure(proc, {**base, "x": x + eps * direction}).array("y").data
    y_minus = run_procedure(proc, {**base, "x": x - eps * direction}).array("y").data
    fd = float(seed @ (y_plus - y_minus)) / (2 * eps)
    ad = float(direction @ grad)
    print(f"\ndot-product test:  FD = {fd:.10f}   adjoint = {ad:.10f}")
    assert abs(fd - ad) / max(abs(fd), 1e-12) < 1e-6
    print("gradient validated.")


if __name__ == "__main__":
    main()

"""§7.3: the LBM rejection listing.

The paper shows the 19 known-safe write expressions FormAD extracts
from the LBM primal (direction base + n_cell_entries * stream offset +
cell index) and one adjoint increment expression that is not in the
set (``eb_0 + n_cell_entries_0*0 + i_0``), concluding that srcgrid's
safeguards must stay. This benchmark regenerates the listing and checks
the offset set matches the paper exactly.
"""

import pytest

from repro.experiments import (PAPER_LBM_SAFE_OFFSETS, run_lbm_listing,
                               safe_offsets_from_listing)


@pytest.mark.figure("lbm-listing")
def test_lbm_rejection_listing(benchmark):
    listing = benchmark.pedantic(run_lbm_listing, rounds=1, iterations=1)
    # 19 known-safe write expressions, as in the paper's listing.
    assert len(listing.safe_writes) == 19
    offsets = safe_offsets_from_listing(listing)
    assert offsets == PAPER_LBM_SAFE_OFFSETS
    # The verdict: srcgrid stays guarded; the offending expressions
    # exist and are not members of the safe write set.
    assert not listing.srcgrid_safe
    assert listing.offending
    assert all(e not in listing.safe_writes for e in listing.offending)
    # dstgrid (writes only) is provably conflict-free, which is why the
    # paper's conclusion is "no change to the code": only the srcgrid
    # increments would have needed guards, and they keep them.
    assert listing.analysis.verdicts["dstgrid"].safe
    text = listing.render()
    assert "n_cell_entries_0*-14399" in text  # the eb write offset

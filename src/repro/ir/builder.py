"""Fluent builder for procedures.

The builder keeps a stack of open statement lists so nested control
structure reads naturally::

    b = ProcedureBuilder("saxpy")
    x = b.param("x", real_array(100), intent="in")
    y = b.param("y", real_array(100), intent="inout")
    a = b.param("a", REAL, intent="in")
    with b.parallel_do("i", 1, 100) as i:
        b.assign(y[i], y[i] + a * x[i])
    proc = b.build()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .expr import ArrayRef, Expr, Var, as_expr
from .program import Param, Procedure
from .stmt import Assign, If, Loop, Pop, Push, Stmt
from .types import INTEGER, Intent, REAL, Type


class ProcedureBuilder:
    """Accumulates statements into a :class:`Procedure`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._params: List[Param] = []
        self._locals: Dict[str, Type] = {}
        self._body: List[Stmt] = []
        self._stack: List[List[Stmt]] = [self._body]
        self._open_ifs: List[If] = []

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def param(self, name: str, type: Type, intent: str | Intent = Intent.INOUT) -> Var:
        """Declare a parameter; returns a :class:`Var` handle."""
        if isinstance(intent, str):
            intent = Intent(intent)
        self._params.append(Param(name, type, intent))
        return Var(name)

    def local(self, name: str, type: Type = REAL) -> Var:
        """Declare a local variable; returns a :class:`Var` handle."""
        self._locals[name] = type
        return Var(name)

    def int_local(self, name: str) -> Var:
        return self.local(name, INTEGER)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def emit(self, stmt: Stmt) -> Stmt:
        self._stack[-1].append(stmt)
        return stmt

    def assign(self, target: Var | ArrayRef, value, *, atomic: bool = False) -> Assign:
        return self.emit(Assign(target, value, atomic=atomic))  # type: ignore[return-value]

    def push(self, channel: str, value) -> Push:
        return self.emit(Push(channel, value))  # type: ignore[return-value]

    def pop(self, channel: str, target: Var | ArrayRef) -> Pop:
        return self.emit(Pop(channel, target))  # type: ignore[return-value]

    @contextmanager
    def do(self, var: str, start, stop, step=1, *, label: Optional[str] = None) -> Iterator[Var]:
        """Open a sequential counted loop; yields the counter Var."""
        body: List[Stmt] = []
        self._stack.append(body)
        try:
            yield Var(var)
        finally:
            self._stack.pop()
        if var not in self._locals and not any(p.name == var for p in self._params):
            self._locals[var] = INTEGER
        self.emit(Loop(var, start, stop, step, body, label=label))

    @contextmanager
    def parallel_do(
        self,
        var: str,
        start,
        stop,
        step=1,
        *,
        private: Iterable[str] = (),
        reduction: Iterable[Tuple[str, str]] = (),
        label: Optional[str] = None,
    ) -> Iterator[Var]:
        """Open an ``!$omp parallel do`` loop; yields the counter Var."""
        body: List[Stmt] = []
        self._stack.append(body)
        try:
            yield Var(var)
        finally:
            self._stack.pop()
        if var not in self._locals and not any(p.name == var for p in self._params):
            self._locals[var] = INTEGER
        self.emit(Loop(var, start, stop, step, body, parallel=True,
                       private=private, reduction=reduction, label=label))

    @contextmanager
    def if_(self, cond) -> Iterator[None]:
        """Open an ``if`` branch.  Use :meth:`else_` inside for the
        alternative::

            with b.if_(x.gt(0)):
                b.assign(y, x)
                with b.else_():
                    b.assign(y, -x)
        """
        stmt = If(as_expr(cond), [])
        self.emit(stmt)
        # Push the statement's own body list (If copies its arguments).
        self._stack.append(stmt.then_body)
        self._open_ifs.append(stmt)
        try:
            yield None
        finally:
            self._open_ifs.pop()
            self._stack.pop()

    @contextmanager
    def else_(self) -> Iterator[None]:
        if not self._open_ifs:
            raise RuntimeError("else_ used outside of an if_ block")
        stmt = self._open_ifs[-1]
        # Swap the top of the stack from the then-body to the else-body.
        self._stack.pop()
        self._stack.append(stmt.else_body)
        try:
            yield None
        finally:
            self._stack.pop()
            self._stack.append(stmt.then_body)

    # ------------------------------------------------------------------
    def build(self) -> Procedure:
        if len(self._stack) != 1:
            raise RuntimeError("unbalanced builder blocks")
        return Procedure(self.name, self._params, self._locals, self._body)

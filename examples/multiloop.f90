! A six-loop workload for exercising the --jobs fan-out: every loop is
! independent and all-safe (each iteration reads and writes only its
! own slot, so each adjoint hits only its own slot too), and the
! analysis is embarrassingly parallel across loops — the benchmark and
! CI case for `--backend process` (docs/SCALING.md).
!
!   repro analyze examples/multiloop.f90 -i x -o a,b,c,d,e,f \
!       --backend process --jobs 4 --cache-dir .repro-cache
subroutine multiloop(x, a, b, c, d, e, f, n)
  real, intent(in) :: x(1000)
  real, intent(out) :: a(1000)
  real, intent(out) :: b(1000)
  real, intent(out) :: c(1000)
  real, intent(out) :: d(1000)
  real, intent(out) :: e(1000)
  real, intent(out) :: f(1000)
  integer, intent(in) :: n
  !$omp parallel do
  do i = 1, n
    a(i) = x(i) * 2.0 + x(i) * x(i)
  end do
  !$omp parallel do
  do j = 1, n
    b(j) = x(j) * x(j) - x(j) * 0.5
  end do
  !$omp parallel do
  do k = 1, n
    c(k) = x(k) * x(k) * x(k) + 1.0
  end do
  !$omp parallel do
  do l = 1, n
    d(l) = x(l) + x(l) * 3.0
  end do
  !$omp parallel do
  do m = 1, n
    e(m) = x(m) * 3.0 - x(m) * x(m)
  end do
  !$omp parallel do
  do p = 1, n
    f(p) = x(p) * 0.25 + x(p) * 4.0
  end do
end subroutine multiloop

"""Control-flow graph construction for structured statement bodies.

The CFG is the substrate for dominator analysis (contexts, §5.1 of the
paper) and reaching definitions (instance numbering, §5.2). One node is
created per simple statement; ``If`` contributes a *branch* node and a
*merge* node, ``Loop`` contributes a *head* node (the test) that also
serves as the back-edge target.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from ..ir.stmt import Assign, If, Loop, Pop, Push, Stmt


class NodeKind(enum.Enum):
    ENTRY = "entry"
    EXIT = "exit"
    STMT = "stmt"        # Assign / Push / Pop
    BRANCH = "branch"    # the test of an If
    MERGE = "merge"      # the join point after an If
    LOOPHEAD = "loophead"  # the test/increment point of a Loop

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class Node:
    id: int
    kind: NodeKind
    stmt: Optional[Stmt] = None

    def __repr__(self) -> str:
        tag = f" {self.stmt!r}" if self.stmt is not None else ""
        return f"<node {self.id} {self.kind}{tag}>"


class CFG:
    """A control-flow graph with entry and exit nodes."""

    def __init__(self) -> None:
        self.nodes: List[Node] = []
        self.succs: Dict[int, List[int]] = {}
        self.preds: Dict[int, List[int]] = {}
        self.entry: int = -1
        self.exit: int = -1
        #: statement uid -> node id (for STMT / BRANCH / LOOPHEAD nodes)
        self.node_of_stmt: Dict[int, int] = {}

    def new_node(self, kind: NodeKind, stmt: Optional[Stmt] = None) -> int:
        node = Node(len(self.nodes), kind, stmt)
        self.nodes.append(node)
        self.succs[node.id] = []
        self.preds[node.id] = []
        if stmt is not None and kind in (NodeKind.STMT, NodeKind.BRANCH,
                                         NodeKind.LOOPHEAD):
            self.node_of_stmt[stmt.uid] = node.id
        return node.id

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.succs[src]:
            self.succs[src].append(dst)
            self.preds[dst].append(src)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def stmt_node(self, stmt: Stmt) -> int:
        return self.node_of_stmt[stmt.uid]

    def __len__(self) -> int:
        return len(self.nodes)

    def reverse_postorder(self) -> List[int]:
        """Nodes in reverse postorder from the entry (good for forward
        dataflow convergence)."""
        seen: set[int] = set()
        order: List[int] = []

        def visit(node_id: int) -> None:
            stack = [(node_id, iter(self.succs[node_id]))]
            seen.add(node_id)
            while stack:
                nid, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.succs[succ])))
                        advanced = True
                        break
                if not advanced:
                    order.append(nid)
                    stack.pop()

        visit(self.entry)
        return list(reversed(order))


def build_cfg(body: Sequence[Stmt]) -> CFG:
    """Build the CFG of a statement list (e.g. a parallel loop body)."""
    cfg = CFG()
    cfg.entry = cfg.new_node(NodeKind.ENTRY)
    cfg.exit = cfg.new_node(NodeKind.EXIT)
    frontier = _lower_body(cfg, body, [cfg.entry])
    for nid in frontier:
        cfg.add_edge(nid, cfg.exit)
    return cfg


def _lower_body(cfg: CFG, body: Sequence[Stmt], frontier: List[int]) -> List[int]:
    """Lower *body*, connecting from all nodes in *frontier*; returns the
    new frontier (nodes whose control falls through to what follows)."""
    for stmt in body:
        if isinstance(stmt, (Assign, Push, Pop)):
            nid = cfg.new_node(NodeKind.STMT, stmt)
            for f in frontier:
                cfg.add_edge(f, nid)
            frontier = [nid]
        elif isinstance(stmt, If):
            test = cfg.new_node(NodeKind.BRANCH, stmt)
            for f in frontier:
                cfg.add_edge(f, test)
            then_out = _lower_body(cfg, stmt.then_body, [test])
            else_out = _lower_body(cfg, stmt.else_body, [test])
            merge = cfg.new_node(NodeKind.MERGE)
            for nid in then_out + else_out:
                cfg.add_edge(nid, merge)
            # An empty else-branch falls straight from the test; that
            # edge is created by _lower_body returning [test] unchanged,
            # but guard against duplicates when both branches are empty.
            frontier = [merge]
        elif isinstance(stmt, Loop):
            head = cfg.new_node(NodeKind.LOOPHEAD, stmt)
            for f in frontier:
                cfg.add_edge(f, head)
            body_out = _lower_body(cfg, stmt.body, [head])
            for nid in body_out:
                cfg.add_edge(nid, head)  # back edge
            frontier = [head]
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot lower statement {stmt!r}")
    return frontier

"""The shadow tracer: §5.4 classification and concrete collisions."""

import numpy as np

from repro.audit.generator import build_procedure, generate_case, make_bindings
from repro.audit.numcheck import adjoint_bindings, dot_product_check
from repro.audit.oracles import (ADJ_READ, ADJ_WRITE, adjoint_kind_map,
                                 run_shadow)
from repro.ir.builder import ProcedureBuilder
from repro.ir.types import INTEGER, integer_array, real_array


def _spec_of_family(family, seed=0):
    index = 0
    while True:
        spec = generate_case(index, seed=seed)
        if spec.family == family:
            return spec
        index += 1


class TestAdjointKindMap:
    def test_increment_target_is_adjoint_read(self):
        b = ProcedureBuilder("inc")
        x = b.param("x", real_array((1, None)), intent="in")
        y = b.param("y", real_array((1, None)), intent="inout")
        b.param("m", INTEGER, intent="in")
        from repro.ir.expr import Var
        with b.parallel_do("i", 1, Var("m")) as i:
            b.assign(y[i], y[i] + x[i])
        proc = b.build()
        [loop] = proc.parallel_loops()
        kinds = sorted(adjoint_kind_map(loop).values())
        # y's increment target -> adjoint read; x's read -> adjoint write
        assert kinds == [("x", ADJ_WRITE), ("y", ADJ_READ)]

    def test_plain_write_and_reads_are_adjoint_writes(self):
        b = ProcedureBuilder("gather")
        x = b.param("x", real_array((1, None)), intent="in")
        y = b.param("y", real_array((1, None)), intent="inout")
        t = b.param("t", integer_array((1, None)), intent="in")
        b.param("m", INTEGER, intent="in")
        from repro.ir.expr import Var
        with b.parallel_do("i", 1, Var("m")) as i:
            b.assign(y[i], 2.0 * x[t[i]])
        proc = b.build()
        [loop] = proc.parallel_loops()
        entries = sorted(adjoint_kind_map(loop).values())
        # y write, x read, t read (index tables classified like any read)
        assert entries == [("t", ADJ_WRITE), ("x", ADJ_WRITE),
                           ("y", ADJ_WRITE)]


class TestCollisionSearch:
    def test_colliding_gather_produces_concrete_witness(self):
        spec = _spec_of_family("gather_collide")
        proc = build_procedure(spec)
        [loop] = proc.parallel_loops()
        shadow = run_shadow(proc, make_bindings(spec, spec.n))
        collision = shadow.collision(loop.uid, "x")
        assert collision is not None
        assert collision.array == "x"
        assert collision.iter_a != collision.iter_b
        # both sides are future adjoint increments (writes)
        assert ADJ_WRITE in (collision.kind_a, collision.kind_b)

    def test_permutation_gather_has_no_witness(self):
        spec = _spec_of_family("gather_perm")
        proc = build_procedure(spec)
        [loop] = proc.parallel_loops()
        shadow = run_shadow(proc, make_bindings(spec, spec.n))
        assert shadow.collision(loop.uid, "x") is None

    def test_elementwise_is_collision_free_everywhere(self):
        spec = _spec_of_family("elementwise")
        proc = build_procedure(spec)
        [loop] = proc.parallel_loops()
        shadow = run_shadow(proc, make_bindings(spec, spec.n))
        for array in shadow.arrays_touched(loop.uid):
            assert shadow.collision(loop.uid, array) is None

    def test_increment_only_array_never_collides(self):
        # compact_window increments y: the adjoint only *reads* yb, so
        # even the overlapping window is not a collision for y.
        spec = _spec_of_family("compact_window")
        proc = build_procedure(spec)
        [loop] = proc.parallel_loops()
        shadow = run_shadow(proc, make_bindings(spec, spec.n))
        assert shadow.collision(loop.uid, "y") is None


class TestNumcheck:
    def test_dot_product_check_passes_on_valid_adjoint(self):
        from repro.ad import differentiate_reverse
        spec = _spec_of_family("elementwise")
        proc = build_procedure(spec)
        adj = differentiate_reverse(proc, spec.independents(),
                                    spec.dependents())
        ok, lhs, rhs = dot_product_check(proc, adj,
                                         make_bindings(spec, spec.n),
                                         spec.independents(),
                                         spec.dependents())
        assert ok
        assert np.isclose(lhs, rhs, rtol=1e-4)

    def test_adjoint_bindings_seed_dependents_only(self):
        from repro.ad import differentiate_reverse
        spec = _spec_of_family("elementwise")
        proc = build_procedure(spec)
        adj = differentiate_reverse(proc, spec.independents(),
                                    spec.dependents())
        bindings = make_bindings(spec, spec.n)
        adj_b = adjoint_bindings(adj, bindings, spec.independents(),
                                 spec.dependents(), seed=1)
        assert not np.any(adj_b[adj.adjoint_name("x")])
        assert np.any(adj_b[adj.adjoint_name("y")])

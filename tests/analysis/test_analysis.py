"""Tests for activity analysis, reference collection, and increment
detection."""

import pytest

from repro.analysis import (AccessKind, ActivityAnalysis, IncrementInfo,
                            collect_region_references, is_increment,
                            match_increment)
from repro.ir import (Assign, If, Loop, ProcedureBuilder, REAL, Var,
                      integer_array, parse_procedure, real_array)


class TestIncrementDetection:
    def test_scalar_increment(self):
        s = Assign(Var("s"), Var("s") + Var("x"))
        info = match_increment(s)
        assert info is not None and info.delta == Var("x") and not info.negated

    def test_commuted_increment(self):
        s = Assign(Var("s"), Var("x") + Var("s"))
        assert is_increment(s)

    def test_array_increment(self):
        u, i, a = Var("u"), Var("i"), Var("a")
        s = Assign(u[2 * i], u[2 * i] + 2 * a)  # the paper's Fig. 1 example
        info = match_increment(s)
        assert info is not None and info.delta == 2 * a

    def test_decrement(self):
        s = Assign(Var("s"), Var("s") - Var("x"))
        info = match_increment(s)
        assert info is not None and info.negated

    def test_not_increment_plain_assign(self):
        assert not is_increment(Assign(Var("s"), Var("x") + Var("y")))

    def test_not_increment_different_index(self):
        u, i = Var("u"), Var("i")
        assert not is_increment(Assign(u[i], u[i + 1] + 1.0))

    def test_not_increment_when_delta_references_target(self):
        u, i = Var("u"), Var("i")
        # u(i) = u(i) + u(i+1): delta reads the same array -> refuse.
        assert not is_increment(Assign(u[i], u[i] + u[i + 1]))

    def test_not_increment_reverse_subtraction(self):
        s = Assign(Var("s"), Var("x") - Var("s"))
        assert not is_increment(s)

    def test_non_assign_statement(self):
        assert match_increment(If(Var("x").gt(0), [])) is None


class TestReferenceCollection:
    def _fig2_body(self):
        proc = parse_procedure("""
subroutine fig2(x, y, c, n)
  integer, intent(in) :: n
  real, intent(in) :: x(2000)
  real, intent(out) :: y(1000)
  integer, intent(in) :: c(1000)
  !$omp parallel do
  do i = 1, n
    y(c(i)) = x(c(i) + 7)
  end do
end subroutine fig2
""")
        return proc.parallel_loops()[0].body

    def test_fig2_accesses(self):
        refs = collect_region_references(self._fig2_body())
        assert refs.arrays() == ["c", "x", "y"]
        (w,) = refs.writes("y")
        assert w.kind is AccessKind.WRITE
        (r,) = refs.reads("x")
        assert r.kind is AccessKind.READ
        # c is read twice: in y's index and in x's index.
        assert len(refs.reads("c")) == 2
        assert not refs.writes("c")

    def test_increment_classified(self):
        u, i, a = Var("u"), Var("i"), Var("a")
        body = [Assign(u[2 * i], u[2 * i] + 2 * a)]
        refs = collect_region_references(body)
        (acc,) = refs.of_array("u")
        assert acc.kind is AccessKind.INCREMENT
        assert acc.kind.is_write

    def test_reads_in_if_condition_and_loop_bounds(self):
        a, i, j = Var("a"), Var("i"), Var("j")
        bnd = Var("bnd")
        body = [
            If(a[i].gt(0.0), [Loop("j", 1, bnd[i], body=[Assign(a[j], 0.0)])]),
        ]
        refs = collect_region_references(body)
        kinds = {(x.array, x.kind) for x in refs.accesses}
        assert ("a", AccessKind.READ) in kinds
        assert ("bnd", AccessKind.READ) in kinds
        assert ("a", AccessKind.WRITE) in kinds

    def test_contexts_attached(self):
        a, i = Var("a"), Var("i")
        inner = Assign(a[i], 1.0)
        body = [If(a[i].gt(0.0), [inner])]
        refs = collect_region_references(body)
        write = refs.writes("a")[0]
        assert refs.context_of(write).parent is refs.contexts.root

    def test_write_index_subreads_collected(self):
        y, c, i = Var("y"), Var("c"), Var("i")
        body = [Assign(y[c[i]], 1.0)]
        refs = collect_region_references(body)
        assert len(refs.reads("c")) == 1


class TestActivity:
    def _build(self):
        b = ProcedureBuilder("p")
        x = b.param("x", real_array(10), intent="in")
        y = b.param("y", real_array(10), intent="out")
        t = b.local("t", REAL)
        dead = b.local("dead", REAL)
        c = b.param("c", integer_array(10), intent="in")
        with b.parallel_do("i", 1, 10) as i:
            b.assign(t, x[c[i]] * 2.0)
            b.assign(y[i], t + 1.0)
            b.assign(dead, x[i] * 3.0)  # varied but not useful
        return b.build()

    def test_active_chain(self):
        proc = self._build()
        act = ActivityAnalysis(proc, ["x"], ["y"])
        assert {"x", "t", "y"} <= act.active

    def test_dead_code_not_active(self):
        proc = self._build()
        act = ActivityAnalysis(proc, ["x"], ["y"])
        assert "dead" in act.varied
        assert "dead" not in act.useful
        assert "dead" not in act.active

    def test_integer_arrays_never_active(self):
        proc = self._build()
        act = ActivityAnalysis(proc, ["x"], ["y"])
        assert "c" not in act.varied and "c" not in act.active

    def test_non_real_independent_rejected(self):
        proc = self._build()
        with pytest.raises(TypeError):
            ActivityAnalysis(proc, ["c"], ["y"])

    def test_unknown_name_rejected(self):
        proc = self._build()
        with pytest.raises(KeyError):
            ActivityAnalysis(proc, ["nope"], ["y"])

    def test_useful_propagates_backwards_through_loop(self):
        src = """
subroutine p(x, y, n)
  integer, intent(in) :: n
  real, intent(in) :: x(100)
  real, intent(inout) :: y(100)
  real :: acc
  acc = 0.0
  do i = 1, n
    acc = acc + x(i)
  end do
  y(1) = acc
end subroutine p
"""
        proc = parse_procedure(src)
        act = ActivityAnalysis(proc, ["x"], ["y"])
        assert "acc" in act.active

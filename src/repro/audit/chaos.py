"""Fault injection for the SMT layer ("chaos" mode).

FormAD's soundness bias (DESIGN.md §4) claims that *any* solver
misbehavior — UNKNOWN answers, clausify-budget exhaustion, outright
crashes — degrades the analysis to safeguards and never upgrades a
verdict to "shared". :class:`ChaosSolver` makes that claim testable: it
wraps the real :class:`~repro.smt.solver.Solver` and injects failures
into ``check()`` at configurable rates (or at explicit check indices,
for deterministic targeting of a single exploitation question).

Injection is *seeded per solver instance*, so a chaos run is exactly
reproducible: the engine builds one solver per analyzed loop, and the
``k``-th solver of a :func:`chaos_factory` always draws the same fault
schedule for a given config.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from ..smt.clausify import ClausifyBudgetError
from ..smt.intsolver import Result
from ..smt.search import SearchStats
from ..smt.solver import UNKNOWN, Solver

#: Injection kinds, in the order rate thresholds partition [0, 1).
KINDS = ("unknown", "budget", "error")


class ChaosError(RuntimeError):
    """The arbitrary exception :class:`ChaosSolver` injects."""


@dataclass(frozen=True)
class ChaosConfig:
    """Fault schedule for :class:`ChaosSolver`.

    ``unknown_rate``/``budget_rate``/``error_rate`` partition the unit
    interval: one uniform draw per ``check()`` selects UNKNOWN
    injection, a :class:`ClausifyBudgetError`, a :class:`ChaosError`,
    or (the remainder) an honest check. ``fail_checks`` additionally
    forces ``fail_kind`` at those per-solver check indices regardless
    of the rates — the deterministic mode the soundness property test
    uses to strike one specific exploitation question.
    """

    unknown_rate: float = 0.0
    budget_rate: float = 0.0
    error_rate: float = 0.0
    seed: int = 0
    fail_checks: FrozenSet[int] = frozenset()
    fail_kind: str = "unknown"
    #: When set, ``fail_checks`` only strikes the solver with this
    #: instance number (the engine builds one solver per parallel
    #: loop, in analysis order), leaving every other loop honest.
    fail_instance: Optional[int] = None

    def __post_init__(self) -> None:
        total = self.unknown_rate + self.budget_rate + self.error_rate
        if not 0.0 <= total <= 1.0:
            raise ValueError(f"injection rates sum to {total}, "
                             f"expected within [0, 1]")
        if self.fail_kind not in KINDS:
            raise ValueError(f"fail_kind {self.fail_kind!r}; pick from {KINDS}")


def uniform_chaos(rate: float, kind: str = "unknown", *,
                  seed: int = 0) -> ChaosConfig:
    """A config injecting one failure *kind* at the given rate."""
    if kind not in KINDS:
        raise ValueError(f"kind {kind!r}; pick from {KINDS}")
    return ChaosConfig(seed=seed, **{f"{kind}_rate": rate})


class ChaosSolver(Solver):
    """A :class:`Solver` whose ``check()`` sometimes fails on purpose.

    Injected UNKNOWNs are recorded in the solver stats exactly like
    genuine ones (``stats.unknown``); injected exceptions propagate to
    the caller, which is the point — the engine must contain them.
    ``injected`` logs ``(check_index, kind)`` for every strike.
    """

    def __init__(self, config: ChaosConfig, *, instance: int = 0,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self.chaos = config
        self.instance = instance
        self.injected: List[Tuple[int, str]] = []
        self._check_index = 0
        self._rng = random.Random(f"chaos:{config.seed}:{instance}")

    def _decide(self, index: int) -> Optional[str]:
        targeted = (self.chaos.fail_instance is None
                    or self.chaos.fail_instance == self.instance)
        if targeted and index in self.chaos.fail_checks:
            return self.chaos.fail_kind
        draw = self._rng.random()
        edge = self.chaos.unknown_rate
        if draw < edge:
            return "unknown"
        edge += self.chaos.budget_rate
        if draw < edge:
            return "budget"
        edge += self.chaos.error_rate
        if draw < edge:
            return "error"
        return None

    def check(self, **kwargs) -> Result:
        index = self._check_index
        self._check_index += 1
        kind = self._decide(index)
        if kind is None:
            return super().check(**kwargs)
        self.injected.append((index, kind))
        if kind == "unknown":
            self.stats.record(UNKNOWN, 0.0, SearchStats())
            self._model = None
            self.last_unknown_reason = "solver-unknown"
            return UNKNOWN
        if kind == "budget":
            raise ClausifyBudgetError(
                f"chaos: injected clausify budget failure at check {index}")
        raise ChaosError(f"chaos: injected solver crash at check {index}")


def chaos_factory(config: ChaosConfig):
    """A solver factory for ``FormADEngine(solver_factory=...)``.

    Returns a callable accepting the engine's standard solver keyword
    arguments; its ``solvers`` attribute collects every instance built,
    so callers can count injections after an analysis:

        factory = chaos_factory(uniform_chaos(0.5))
        engine = FormADEngine(proc, activity, solver_factory=factory)
        ...
        strikes = sum(len(s.injected) for s in factory.solvers)
    """
    solvers: List[ChaosSolver] = []

    def factory(**kwargs) -> ChaosSolver:
        solver = ChaosSolver(config, instance=len(solvers), **kwargs)
        solvers.append(solver)
        return solver

    factory.solvers = solvers
    factory.config = config
    return factory

"""Rendering of FormAD analysis results (Table 1 of the paper).

One :class:`AnalysisReport` per analyzed kernel, with the paper's
columns: analysis time, model size, query count, unique index
expression count, and the region size in source lines. The report also
aggregates the per-phase performance breakdown (translate / clausify /
search seconds, cache and memo hit counts) that the incremental
pipeline records; :func:`format_phase_table` renders those columns,
and DESIGN.md ("Performance architecture") explains how to read them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .engine import LoopAnalysis


@dataclass
class AnalysisReport:
    """Table-1 row: one problem, aggregated over its parallel loops."""

    problem: str
    analyses: List[LoopAnalysis]

    @property
    def time_seconds(self) -> float:
        return sum(a.stats.time_seconds for a in self.analyses)

    @property
    def model_size(self) -> int:
        return sum(a.stats.model_size for a in self.analyses)

    @property
    def queries(self) -> int:
        return sum(a.stats.queries for a in self.analyses)

    @property
    def unique_exprs(self) -> int:
        return sum(a.stats.unique_exprs for a in self.analyses)

    @property
    def region_loc(self) -> int:
        return sum(a.stats.region_loc for a in self.analyses)

    @property
    def all_safe(self) -> bool:
        return all(a.all_safe for a in self.analyses)

    # ---------------------------------------------- phase breakdown
    @property
    def translate_seconds(self) -> float:
        return sum(a.stats.translate_seconds for a in self.analyses)

    @property
    def clausify_seconds(self) -> float:
        return sum(a.stats.clausify_seconds for a in self.analyses)

    @property
    def search_seconds(self) -> float:
        return sum(a.stats.search_seconds for a in self.analyses)

    @property
    def memo_hits(self) -> int:
        return sum(a.stats.memo_hits for a in self.analyses)

    @property
    def solver_checks(self) -> int:
        return sum(a.stats.solver_checks for a in self.analyses)

    @property
    def clausify_hits(self) -> int:
        return sum(a.stats.clausify_hits for a in self.analyses)

    @property
    def clausify_misses(self) -> int:
        return sum(a.stats.clausify_misses for a in self.analyses)

    def row(self) -> tuple:
        return (self.problem, self.time_seconds, self.model_size,
                self.queries, self.unique_exprs, self.region_loc)


def format_table1(reports: Sequence[AnalysisReport]) -> str:
    """Render the Table-1 layout of the paper."""
    header = f"{'problem':<12} {'time':>7} {'Z3 size':>8} {'queries':>8} " \
             f"{'exprs':>6} {'loc':>5}"
    lines = [header, "-" * len(header)]
    for r in reports:
        lines.append(f"{r.problem:<12} {r.time_seconds:>7.3f} "
                     f"{r.model_size:>8d} {r.queries:>8d} "
                     f"{r.unique_exprs:>6d} {r.region_loc:>5d}")
    return "\n".join(lines)


def format_phase_table(reports: Sequence[AnalysisReport]) -> str:
    """Render the per-phase performance columns: where each analysis
    spends its solver time, how many checks actually reach the solver,
    and what the caches absorb."""
    header = (f"{'problem':<12} {'translate':>10} {'clausify':>9} "
              f"{'search':>8} {'checks':>7} {'memo':>5} {'cache%':>7}")
    lines = [header, "-" * len(header)]
    for r in reports:
        lookups = r.clausify_hits + r.clausify_misses
        rate = 100.0 * r.clausify_hits / lookups if lookups else 0.0
        lines.append(f"{r.problem:<12} {r.translate_seconds:>10.4f} "
                     f"{r.clausify_seconds:>9.4f} {r.search_seconds:>8.4f} "
                     f"{r.solver_checks:>7d} {r.memo_hits:>5d} {rate:>6.0f}%")
    return "\n".join(lines)


def format_verdicts(analysis: LoopAnalysis) -> str:
    lines = [f"parallel loop over {analysis.loop.var!r}:"]
    for verdict in analysis.verdicts.values():
        lines.append(f"  {verdict}")
    if not analysis.verdicts:
        lines.append("  (no active shared arrays)")
    return "\n".join(lines)

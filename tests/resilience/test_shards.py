"""The multiprocess shard scheduler behind ``--backend process``.

The contract under test (docs/SCALING.md):

* sharded analyses are indistinguishable from inline ones — same
  verdicts, same safe-write inventory, same deterministic counters;
* worker faults (exit, exception, hang) degrade only the loop being
  held, the pool respawns a worker for the next shard, and Table-1
  accounting stays fault-independent;
* a :class:`PrimalRaceError` in a worker re-raises in the parent like
  the inline analysis would;
* loops the parent can replay (``--resume`` journal, warm verdict
  cache) never reach a worker at all;
* the parent is the single journal writer: a sharded run's journal
  resumes exactly like an inline run's.
"""

import time

import pytest

from repro.analysis.activity import ActivityAnalysis
from repro.formad import FormADEngine, PrimalRaceError
from repro.ir import parse_program
from repro.resilience import (JournalWriter, ResumeState, ShardConfig,
                              VerdictCache, analyze_program_remote,
                              analyze_sharded)
from repro.resilience.journal import JOURNAL_SCHEMA, journal_fingerprint

SAFE_TWO_LOOPS = """
subroutine two(x, y, z, n)
  real, intent(in) :: x(1000)
  real, intent(out) :: y(1000)
  real, intent(out) :: z(1000)
  integer, intent(in) :: n
  !$omp parallel do
  do i = 1, n
    y(i) = x(i) * 2.0
  end do
  !$omp parallel do
  do j = 1, n
    z(j) = x(j) + 1.0
  end do
end subroutine two
"""

RACY = """
subroutine racy(x, y, n)
  integer, intent(in) :: n
  real, intent(in) :: x(10)
  real, intent(inout) :: y(10)
  !$omp parallel do
  do i = 1, n
    y(1) = x(i)
  end do
end subroutine racy
"""

COUNTERS = ("consistency_checks", "exploitation_checks", "memo_hits",
            "model_size", "unique_exprs", "skipped_pairs", "solver_sat",
            "solver_unsat", "solver_unknown")


def _engine(proc, **kwargs):
    activity = ActivityAnalysis(proc, ["x"], ["y", "z"])
    return FormADEngine(proc, activity, **kwargs)


def _sharded(proc, *, engine=None, resume_path=None, cache_dir=None,
             fingerprint=None, **config_kwargs):
    engine = engine or _engine(proc)
    return analyze_sharded(engine, SAFE_TWO_LOOPS, "two", ["x"], ["y", "z"],
                           config=ShardConfig(**config_kwargs),
                           resume_path=resume_path, cache_dir=cache_dir,
                           fingerprint=fingerprint)


class TestShardIdentity:
    def test_process_backend_matches_inline(self):
        proc = parse_program(SAFE_TWO_LOOPS)["two"]
        inline = _engine(proc).analyze_all()
        sharded, outcomes = _sharded(proc, jobs=2)

        assert [o.status for o in outcomes] == ["ok", "ok"]
        assert len(sharded) == len(inline) == 2
        for remote, local in zip(sharded, inline):
            assert not remote.degraded
            assert not remote.resumed
            assert remote.cacheable
            assert {n: v.safe for n, v in remote.verdicts.items()} \
                == {n: v.safe for n, v in local.verdicts.items()}
            assert remote.safe_write_expressions \
                == local.safe_write_expressions
            for name in COUNTERS:
                assert getattr(remote.stats, name) \
                    == getattr(local.stats, name), name

    def test_single_worker_drains_the_whole_queue(self):
        # work-stealing degenerate case: one worker, two shards
        proc = parse_program(SAFE_TWO_LOOPS)["two"]
        sharded, outcomes = _sharded(proc, jobs=1)
        assert [o.status for o in outcomes] == ["ok", "ok"]
        assert not any(a.degraded for a in sharded)

    def test_analyze_program_remote_matches_inline(self):
        proc = parse_program(SAFE_TWO_LOOPS)["two"]
        inline = _engine(proc).analyze_all()
        remote = analyze_program_remote(SAFE_TWO_LOOPS, "two", ["x"],
                                        ["y", "z"])
        assert len(remote) == 2
        for a, b in zip(remote, inline):
            assert {n: v.safe for n, v in a.verdicts.items()} \
                == {n: v.safe for n, v in b.verdicts.items()}


class TestFaultContainment:
    def test_crash_degrades_one_loop_and_respawns_for_the_next(self):
        proc = parse_program(SAFE_TWO_LOOPS)["two"]
        inline = _engine(proc).analyze_all()
        # jobs=1 forces both shards through the same feeder: the loop
        # after the crash must be served by a respawned worker
        sharded, outcomes = _sharded(
            proc, jobs=1,
            extra_env={"REPRO_WORKER_FAULT": "exit:3@0:i"})

        assert [o.status for o in outcomes] == ["crash", "ok"]
        assert "status 3" in outcomes[0].detail
        degraded, healthy = sharded
        assert degraded.degraded
        assert degraded.safe_arrays() == set()
        # fault-independent accounting: the degraded loop still counts
        # every question it would have asked
        assert degraded.stats.exploitation_checks \
            == inline[0].stats.exploitation_checks
        assert degraded.stats.exploitation_checks > 0
        assert not healthy.degraded
        assert {n: v.safe for n, v in healthy.verdicts.items()} \
            == {n: v.safe for n, v in inline[1].verdicts.items()}

    def test_worker_exception_is_contained(self):
        proc = parse_program(SAFE_TWO_LOOPS)["two"]
        sharded, outcomes = _sharded(
            proc, jobs=2,
            extra_env={"REPRO_WORKER_FAULT": "raise@1:j"})
        assert outcomes[0].status == "ok"
        assert outcomes[1].status == "crash"
        assert "injected worker fault" in outcomes[1].detail
        assert not sharded[0].degraded
        assert sharded[1].degraded

    def test_hung_worker_is_killed_and_degraded(self):
        proc = parse_program(SAFE_TWO_LOOPS)["two"]
        start = time.monotonic()
        sharded, outcomes = _sharded(
            proc, jobs=1, kill_timeout=1.5,
            extra_env={"REPRO_WORKER_FAULT": "hang:30@0:i"})
        assert time.monotonic() - start < 20.0
        assert outcomes[0].status == "timeout"
        assert "kill timeout" in outcomes[0].detail
        assert sharded[0].degraded
        assert outcomes[1].status == "ok"
        assert not sharded[1].degraded

    def test_primal_race_reraises_in_the_parent(self):
        proc = parse_program(RACY)["racy"]
        activity = ActivityAnalysis(proc, ["x"], ["y"])
        engine = FormADEngine(proc, activity)
        with pytest.raises(PrimalRaceError):
            analyze_sharded(engine, RACY, "racy", ["x"], ["y"],
                            config=ShardConfig(jobs=1))


class TestParentalReplay:
    def test_resume_settled_loops_never_reach_a_worker(self, tmp_path):
        proc = parse_program(SAFE_TWO_LOOPS)["two"]
        engine = _engine(proc)
        fingerprint = journal_fingerprint(
            SAFE_TWO_LOOPS, "two", ["x"], ["y", "z"],
            engine.fingerprint_flags())
        path = str(tmp_path / "run.jsonl")
        writer = JournalWriter(path, meta={"schema": JOURNAL_SCHEMA,
                                           "fingerprint": fingerprint})
        engine.attach_run_state(journal=writer)
        baseline = engine.analyze_all()
        writer.close()

        state = ResumeState.load(path)
        resumed_engine = _engine(proc)
        resumed_engine.attach_run_state(resume=state)
        # a crashing fault is armed for every loop: if any shard were
        # dispatched, its outcome would be "crash", not "resumed"
        sharded, outcomes = _sharded(
            proc, engine=resumed_engine, resume_path=path,
            extra_env={"REPRO_WORKER_FAULT": "exit:3"})
        assert [o.status for o in outcomes] == ["resumed", "resumed"]
        for again, honest in zip(sharded, baseline):
            assert again.resumed
            assert {n: v.safe for n, v in again.verdicts.items()} \
                == {n: v.safe for n, v in honest.verdicts.items()}

    def test_cache_warm_loops_never_reach_a_worker(self, tmp_path):
        proc = parse_program(SAFE_TWO_LOOPS)["two"]
        engine = _engine(proc)
        fingerprint = journal_fingerprint(
            SAFE_TWO_LOOPS, "two", ["x"], ["y", "z"],
            engine.fingerprint_flags())
        cache_dir = str(tmp_path / "cache")

        cold_cache = VerdictCache(cache_dir, fingerprint)
        engine.attach_run_state(cache=cold_cache)
        cold, cold_outcomes = _sharded(
            proc, engine=engine, cache_dir=cache_dir,
            fingerprint=fingerprint, jobs=2)
        cold_cache.close()
        assert [o.status for o in cold_outcomes] == ["ok", "ok"]
        assert cold_cache.loop_stores == 2

        warm_cache = VerdictCache(cache_dir, fingerprint)
        warm_engine = _engine(proc)
        warm_engine.attach_run_state(cache=warm_cache)
        warm, warm_outcomes = _sharded(
            proc, engine=warm_engine, cache_dir=cache_dir,
            fingerprint=fingerprint,
            extra_env={"REPRO_WORKER_FAULT": "exit:3"})
        warm_cache.close()
        assert [o.status for o in warm_outcomes] == ["cached", "cached"]
        assert warm_cache.loop_hits == 2
        for again, honest in zip(warm, cold):
            assert not again.resumed
            assert {n: v.safe for n, v in again.verdicts.items()} \
                == {n: v.safe for n, v in honest.verdicts.items()}
            for name in COUNTERS:
                assert getattr(again.stats, name) \
                    == getattr(honest.stats, name), name

    def test_sharded_journal_resumes_like_an_inline_one(self, tmp_path):
        proc = parse_program(SAFE_TWO_LOOPS)["two"]
        engine = _engine(proc)
        fingerprint = journal_fingerprint(
            SAFE_TWO_LOOPS, "two", ["x"], ["y", "z"],
            engine.fingerprint_flags())
        path = str(tmp_path / "run.jsonl")
        writer = JournalWriter(path, meta={"schema": JOURNAL_SCHEMA,
                                           "fingerprint": fingerprint})
        engine.attach_run_state(journal=writer)
        sharded, outcomes = _sharded(proc, engine=engine, jobs=2)
        writer.close()
        assert [o.status for o in outcomes] == ["ok", "ok"]

        state = ResumeState.load(path)
        state.check_fingerprint(fingerprint)
        assert state.settled_loops == 2
        resumed_engine = _engine(proc)
        resumed_engine.attach_run_state(resume=state)
        resumed = resumed_engine.analyze_all()
        for again, honest in zip(resumed, sharded):
            assert again.resumed
            assert {n: v.safe for n, v in again.verdicts.items()} \
                == {n: v.safe for n, v in honest.verdicts.items()}
            for name in COUNTERS:
                assert getattr(again.stats, name) \
                    == getattr(honest.stats, name), name

"""Term and formula language for the SMT solver.

The solver decides **QF_UFLIA**: quantifier-free formulas over linear
integer arithmetic with uninterpreted functions. This is exactly the
fragment the paper's FormAD analysis needs — index expressions are
linear in loop counters and scalars, and data-dependent indirections
(``c(i)``, ``mss(1, ig, k12)``) become uninterpreted function
applications whose only known property is functional consistency.

Terms and formulas are immutable, **hash-consed** nodes: constructing
the same structure twice returns the same object, so

* equality is a pointer comparison (``a is b`` iff structurally equal),
* hashes are computed once at construction and stored in a slot,
* dictionaries keyed on deep trees (per-formula clausification, atom
  canonicalization, Ackermann application interning, the engine's
  exploitation-question memo) probe in O(1) instead of re-walking the
  tree per lookup.

The intern tables are per-class :class:`weakref.WeakValueDictionary`
instances guarded by one module lock, so canonical nodes are shared
across threads but garbage-collected once the last user drops them —
a long ``experiments`` run over many loops does not accumulate every
term it ever built.

The public constructor API is unchanged from the earlier dataclass
implementation: ``TConst(5)``, ``TVar("i")``, ``TAdd((a, b))``,
``TMul(-1, t)``, ``TApp("f", (a,))``, ``FAtom(Rel.EQ, l, r)`` etc.,
with the same attribute names and operator overloading mirroring the
small slice of the Z3 Python API the paper uses.
"""

from __future__ import annotations

import enum
import threading
import weakref
from typing import Iterator, Sequence, Tuple

#: One lock for every intern table: construction is cheap, contention is
#: rare (term building is a small fraction of solve time), and a single
#: lock keeps the invariant trivially audit-able — at most one canonical
#: instance per structure, even under the thread backend's fan-out.
_INTERN_LOCK = threading.Lock()


class _Interned:
    """Base for hash-consed nodes: frozen slots, identity equality.

    Subclasses define ``__slots__`` including ``_hash`` and
    ``__weakref__``, a class-level ``_table`` WeakValueDictionary, and a
    ``__new__`` that calls :func:`_hashcons`. Because every constructor
    returns the canonical instance, structural equality *is* identity —
    ``__eq__`` below never walks the tree.
    """

    __slots__ = ()

    def __setattr__(self, name, value):
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __delattr__(self, name):
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __eq__(self, other):
        return self is other

    def __ne__(self, other):
        return self is not other

    def __hash__(self):
        return self._hash

    def __reduce__(self):
        # Re-intern on unpickle so identity equality survives transport.
        return (type(self), self._key())


def _hashcons(cls, key, attrs):
    """Return the canonical *cls* instance for *key*, creating it (with
    attribute dict *attrs* plus a precomputed ``_hash``) on first use."""
    table = cls._table
    with _INTERN_LOCK:
        self = table.get(key)
        if self is None:
            self = object.__new__(cls)
            for name, value in attrs:
                object.__setattr__(self, name, value)
            object.__setattr__(self, "_hash", hash((cls.__name__, key)))
            table[key] = self
        return self


class _TermOps:
    """Operator overloading shared by all integer terms."""

    __slots__ = ()

    def __add__(self, other) -> "TAdd":
        return TAdd((self, as_term(other)))

    def __radd__(self, other) -> "TAdd":
        return TAdd((as_term(other), self))

    def __sub__(self, other) -> "TAdd":
        return TAdd((self, TMul(-1, as_term(other))))

    def __rsub__(self, other) -> "TAdd":
        return TAdd((as_term(other), TMul(-1, self)))

    def __mul__(self, other) -> "TMul":
        if isinstance(other, int):
            return TMul(other, self)
        if isinstance(other, TConst):
            return TMul(other.value, self)
        if isinstance(self, TConst):
            return TMul(self.value, as_term(other))
        raise NonLinearTermError(f"nonlinear product: {self} * {other}")

    def __rmul__(self, other) -> "TMul":
        return self.__mul__(other)

    def __neg__(self) -> "TMul":
        return TMul(-1, self)

    # Comparisons produce formulas (atoms).
    def eq(self, other) -> "FAtom":
        return FAtom(Rel.EQ, self, as_term(other))

    def ne(self, other) -> "FAtom":
        return FAtom(Rel.NE, self, as_term(other))

    def le(self, other) -> "FAtom":
        return FAtom(Rel.LE, self, as_term(other))

    def lt(self, other) -> "FAtom":
        return FAtom(Rel.LT, self, as_term(other))

    def ge(self, other) -> "FAtom":
        return FAtom(Rel.GE, self, as_term(other))

    def gt(self, other) -> "FAtom":
        return FAtom(Rel.GT, self, as_term(other))


class NonLinearTermError(TypeError):
    """Raised when a term falls outside linear integer arithmetic."""


class TConst(_TermOps, _Interned):
    """An integer literal."""

    __slots__ = ("value", "_hash", "__weakref__")
    _table: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    def __new__(cls, value: int):
        if not isinstance(value, int) or isinstance(value, bool):
            raise TypeError(f"TConst needs an int, got {value!r}")
        return _hashcons(cls, value, (("value", value),))

    def _key(self):
        return (self.value,)

    def __repr__(self) -> str:
        return f"TConst({self.value!r})"

    def __str__(self) -> str:
        return str(self.value)


class TVar(_TermOps, _Interned):
    """An integer variable."""

    __slots__ = ("name", "_hash", "__weakref__")
    _table: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    def __new__(cls, name: str):
        if not name:
            raise ValueError("empty variable name")
        return _hashcons(cls, name, (("name", name),))

    def _key(self):
        return (self.name,)

    def __repr__(self) -> str:
        return f"TVar({self.name!r})"

    def __str__(self) -> str:
        return self.name


class TAdd(_TermOps, _Interned):
    """A sum of terms."""

    __slots__ = ("terms", "_hash", "__weakref__")
    _table: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    def __new__(cls, terms: Tuple["Term", ...]):
        terms = tuple(terms)
        return _hashcons(cls, terms, (("terms", terms),))

    def _key(self):
        return (self.terms,)

    def __repr__(self) -> str:
        return f"TAdd({self.terms!r})"

    def __str__(self) -> str:
        return "(" + " + ".join(map(str, self.terms)) + ")"


class TMul(_TermOps, _Interned):
    """An integer constant times a term (keeps everything linear)."""

    __slots__ = ("coeff", "term", "_hash", "__weakref__")
    _table: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    def __new__(cls, coeff: int, term: "Term"):
        if not isinstance(coeff, int) or isinstance(coeff, bool):
            raise TypeError(f"TMul coefficient must be int, got {coeff!r}")
        return _hashcons(cls, (coeff, term),
                         (("coeff", coeff), ("term", term)))

    def _key(self):
        return (self.coeff, self.term)

    def __repr__(self) -> str:
        return f"TMul({self.coeff!r}, {self.term!r})"

    def __str__(self) -> str:
        return f"{self.coeff}*{self.term}"


class TApp(_TermOps, _Interned):
    """An uninterpreted function application ``f(arg_1, ..., arg_n)``.

    Functions are identified by name and arity; applying the same name
    with different arities is an error caught at solve time.
    """

    __slots__ = ("func", "args", "_hash", "__weakref__")
    _table: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    def __new__(cls, func: str, args: Tuple["Term", ...]):
        if not func:
            raise ValueError("empty function name")
        args = tuple(args)
        if not args:
            raise ValueError("TApp needs at least one argument")
        return _hashcons(cls, (func, args),
                         (("func", func), ("args", args)))

    def _key(self):
        return (self.func, self.args)

    def __repr__(self) -> str:
        return f"TApp({self.func!r}, {self.args!r})"

    def __str__(self) -> str:
        return f"{self.func}({', '.join(map(str, self.args))})"


Term = TConst | TVar | TAdd | TMul | TApp


def Int(name: str) -> TVar:
    """Z3-style constructor for an integer variable."""
    return TVar(name)


def as_term(value) -> Term:
    if isinstance(value, (TConst, TVar, TAdd, TMul, TApp)):
        return value
    if isinstance(value, int) and not isinstance(value, bool):
        return TConst(value)
    raise TypeError(f"cannot convert {value!r} to an SMT term")


def term_children(term: Term) -> Tuple[Term, ...]:
    if isinstance(term, (TConst, TVar)):
        return ()
    if isinstance(term, TAdd):
        return term.terms
    if isinstance(term, TMul):
        return (term.term,)
    if isinstance(term, TApp):
        return term.args
    raise TypeError(f"not a term: {term!r}")  # pragma: no cover


def walk_term(term: Term) -> Iterator[Term]:
    stack = [term]
    while stack:
        t = stack.pop()
        yield t
        stack.extend(term_children(t))


def term_vars(term: Term) -> set[str]:
    return {t.name for t in walk_term(term) if isinstance(t, TVar)}


def term_apps(term: Term) -> list[TApp]:
    """All UF applications in *term*, innermost included."""
    return [t for t in walk_term(term) if isinstance(t, TApp)]


# ----------------------------------------------------------------------
# Formulas
# ----------------------------------------------------------------------


class Rel(enum.Enum):
    EQ = "="
    NE = "!="
    LE = "<="
    LT = "<"
    GE = ">="
    GT = ">"

    def negate(self) -> "Rel":
        return {
            Rel.EQ: Rel.NE, Rel.NE: Rel.EQ,
            Rel.LE: Rel.GT, Rel.GT: Rel.LE,
            Rel.LT: Rel.GE, Rel.GE: Rel.LT,
        }[self]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class FAtom(_Interned):
    """An atomic constraint ``left REL right``."""

    __slots__ = ("rel", "left", "right", "_hash", "__weakref__")
    _table: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    def __new__(cls, rel: Rel, left: Term, right: Term):
        return _hashcons(cls, (rel, left, right),
                         (("rel", rel), ("left", left), ("right", right)))

    def _key(self):
        return (self.rel, self.left, self.right)

    def __repr__(self) -> str:
        return f"FAtom({self.rel!r}, {self.left!r}, {self.right!r})"

    def __str__(self) -> str:
        return f"({self.left} {self.rel} {self.right})"


class FAnd(_Interned):
    __slots__ = ("operands", "_hash", "__weakref__")
    _table: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    def __new__(cls, operands: Tuple["Formula", ...]):
        operands = tuple(operands)
        return _hashcons(cls, operands, (("operands", operands),))

    def _key(self):
        return (self.operands,)

    def __repr__(self) -> str:
        return f"FAnd({self.operands!r})"

    def __str__(self) -> str:
        return "(and " + " ".join(map(str, self.operands)) + ")"


class FOr(_Interned):
    __slots__ = ("operands", "_hash", "__weakref__")
    _table: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    def __new__(cls, operands: Tuple["Formula", ...]):
        operands = tuple(operands)
        return _hashcons(cls, operands, (("operands", operands),))

    def _key(self):
        return (self.operands,)

    def __repr__(self) -> str:
        return f"FOr({self.operands!r})"

    def __str__(self) -> str:
        return "(or " + " ".join(map(str, self.operands)) + ")"


class FNot(_Interned):
    __slots__ = ("operand", "_hash", "__weakref__")
    _table: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    def __new__(cls, operand: "Formula"):
        return _hashcons(cls, operand, (("operand", operand),))

    def _key(self):
        return (self.operand,)

    def __repr__(self) -> str:
        return f"FNot({self.operand!r})"

    def __str__(self) -> str:
        return f"(not {self.operand})"


class FTrue(_Interned):
    __slots__ = ("_hash", "__weakref__")
    _table: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    def __new__(cls):
        return _hashcons(cls, (), ())

    def _key(self):
        return ()

    def __repr__(self) -> str:
        return "FTrue()"

    def __str__(self) -> str:
        return "true"


class FFalse(_Interned):
    __slots__ = ("_hash", "__weakref__")
    _table: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    def __new__(cls):
        return _hashcons(cls, (), ())

    def _key(self):
        return ()

    def __repr__(self) -> str:
        return "FFalse()"

    def __str__(self) -> str:
        return "false"


Formula = FAtom | FAnd | FOr | FNot | FTrue | FFalse

TRUE = FTrue()
FALSE = FFalse()


def And(*operands: Formula) -> Formula:
    ops = _flatten(operands, FAnd)
    if any(isinstance(o, FFalse) for o in ops):
        return FALSE
    ops = tuple(o for o in ops if not isinstance(o, FTrue))
    if not ops:
        return TRUE
    if len(ops) == 1:
        return ops[0]
    return FAnd(ops)


def Or(*operands: Formula) -> Formula:
    ops = _flatten(operands, FOr)
    if any(isinstance(o, FTrue) for o in ops):
        return TRUE
    ops = tuple(o for o in ops if not isinstance(o, FFalse))
    if not ops:
        return FALSE
    if len(ops) == 1:
        return ops[0]
    return FOr(ops)


def Not(operand: Formula) -> Formula:
    if isinstance(operand, FTrue):
        return FALSE
    if isinstance(operand, FFalse):
        return TRUE
    if isinstance(operand, FNot):
        return operand.operand
    return FNot(operand)


def _flatten(operands: Sequence[Formula], cls) -> Tuple[Formula, ...]:
    out: list[Formula] = []
    for op in operands:
        if isinstance(op, cls):
            out.extend(op.operands)
        else:
            out.append(op)
    return tuple(out)


def formula_atoms(formula: Formula) -> list[FAtom]:
    """All atoms in a formula, in syntactic order."""
    out: list[FAtom] = []
    stack = [formula]
    while stack:
        f = stack.pop()
        if isinstance(f, FAtom):
            out.append(f)
        elif isinstance(f, (FAnd, FOr)):
            stack.extend(reversed(f.operands))
        elif isinstance(f, FNot):
            stack.append(f.operand)
    return out


def formula_vars(formula: Formula) -> set[str]:
    names: set[str] = set()
    for atom in formula_atoms(formula):
        names |= term_vars(atom.left) | term_vars(atom.right)
    return names


def formula_apps(formula: Formula) -> list[TApp]:
    apps: list[TApp] = []
    for atom in formula_atoms(formula):
        apps.extend(term_apps(atom.left))
        apps.extend(term_apps(atom.right))
    return apps

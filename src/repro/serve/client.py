"""The ``repro analyze --connect ADDR`` client path.

The client does the *cheap* half of an analysis locally — parse the
source, build the engine (no model build), compute the fingerprint
flags — and ships the expensive half to the daemon. The reply's
per-loop ``{"key", "done", "verdicts"}`` records are rebuilt into
real :class:`~repro.formad.engine.LoopAnalysis` objects against the
locally parsed loops, so the ordinary CLI rendering (human and
``--json``) runs unchanged on daemon answers — byte-identity with
in-process analysis (modulo wall-clock timers) holds by construction,
not by a parallel formatter.

A :class:`~repro.formad.engine.PrimalRaceError` reported by the
daemon is re-raised here, so the connected run fails exactly like the
in-process run would.
"""

from __future__ import annotations

from typing import List, Optional

from .protocol import (SERVE_SCHEMA, ServeError, open_connection,
                       read_message, write_message)


class ServeClient:
    """One connection to a ``repro serve`` daemon."""

    def __init__(self, address: str,
                 timeout: Optional[float] = None) -> None:
        self.address = address
        try:
            self._sock = open_connection(address, timeout=timeout)
        except OSError as exc:
            raise ServeError(f"cannot connect to repro serve at "
                             f"{address!r}: {exc}")
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")

    def request(self, payload: dict) -> dict:
        message = dict(payload, schema=SERVE_SCHEMA)
        try:
            write_message(self._wfile, message)
        except OSError as exc:
            raise ServeError(f"serve connection lost: {exc}")
        reply = read_message(self._rfile)
        if reply is None:
            raise ServeError("serve daemon closed the connection "
                             "mid-request")
        return reply

    def hello(self) -> dict:
        return self.request({"op": "hello"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def analyze(self, source: str, head: str,
                independents: List[str], dependents: List[str], *,
                flags: Optional[dict] = None,
                deadline: Optional[float] = None,
                question_timeout: Optional[float] = None,
                escalate: int = 1) -> dict:
        reply = self.request({
            "op": "analyze", "source": source, "head": head,
            "independents": list(independents),
            "dependents": list(dependents),
            "flags": dict(flags or {}),
            "deadline": deadline,
            "question_timeout": question_timeout,
            "escalate": escalate,
        })
        if not reply.get("ok"):
            error = reply.get("error") or {}
            if error.get("type") == "PrimalRaceError":
                from ..formad.engine import PrimalRaceError
                raise PrimalRaceError(str(error.get("message", "")))
            raise ServeError(f"serve analyze failed: "
                             f"{error.get('type', 'Error')}: "
                             f"{error.get('message', reply)}")
        return reply

    def close(self) -> None:
        for closer in (self._rfile, self._wfile, self._sock):
            try:
                closer.close()
            except OSError:  # pragma: no cover
                pass


def analyze_connected(engine, source: str, head: str,
                      independents: List[str], dependents: List[str], *,
                      address: str,
                      deadline: Optional[float] = None,
                      question_timeout: Optional[float] = None,
                      escalate: int = 1) -> List:
    """Analyze through the daemon at *address* and return the rebuilt
    ``LoopAnalysis`` list in local loop order. *engine* is the
    locally-built (never run) engine — it provides the loop objects,
    keys, and fingerprint flags the reply is matched against."""
    from ..resilience.journal import rebuild_analysis

    client = ServeClient(address)
    try:
        reply = client.analyze(
            source, head, independents, dependents,
            flags=engine.fingerprint_flags(), deadline=deadline,
            question_timeout=question_timeout, escalate=escalate)
    finally:
        client.close()
    loops_by_key = {engine.loop_key(loop): loop
                    for loop in engine.proc.parallel_loops()}
    analyses = []
    for item in reply.get("loops", []):
        key = str(item.get("key"))
        loop = loops_by_key.get(key)
        if loop is None:
            raise ServeError(
                f"daemon answered for loop {key!r}, which this source "
                f"does not contain — server/client source desync")
        analysis = rebuild_analysis(loop, dict(item.get("done") or {}),
                                    list(item.get("verdicts") or []),
                                    resumed=False)
        # The daemon judged cleanliness against the real run; the
        # rebuilt object carries its verdict rather than guessing.
        analysis.cacheable = bool(item.get("cacheable"))
        analyses.append(analysis)
    if len(analyses) != len(loops_by_key):
        raise ServeError(
            f"daemon answered {len(analyses)} loop(s), local source has "
            f"{len(loops_by_key)} — server/client source desync")
    return analyses

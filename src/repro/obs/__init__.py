"""Observability: structured tracing, provenance, and metrics.

The pipeline (SMT solver, FormAD engine, runtime, experiment harness)
is instrumented against a tiny tracer interface whose default,
:data:`NULL_TRACER`, does nothing — tracing costs nothing until a real
sink is injected (``--trace out.jsonl`` on the CLI builds a
:class:`JsonlTracer`). Recorded traces are replayed by ``repro
explain`` (the per-array proof chain, :mod:`repro.obs.explain`) and
``repro profile`` (the span/phase time tree, :mod:`repro.obs.profile`),
and validated against the versioned event schema
(:mod:`repro.obs.events`).
"""

from .events import (EVENT_FIELDS, SCHEMA_NAME, SCHEMA_VERSION,
                     TraceValidationError, validate_event, validate_events)
from .tracer import (NULL_TRACER, BufferTracer, CollectingTracer,
                     JsonlTracer, NullTracer, RegistryTracer,
                     Tracer, load_trace)
from .metrics import (COUNTER_KEYS, METRICS_SCHEMA, METRICS_SCHEMA_V2,
                      TIMER_KEYS, MetricsRegistry, counters_only,
                      migrate_metrics, stats_metrics, validate_metrics)
from .clock import ClockSync
from .explain import explain_array, known_arrays, resolve_array
from .profile import (build_span_tree, context_table, critical_path,
                      format_profile, utilization_table, worker_lanes)

# NB: repro.obs.validate is deliberately not imported here — it is the
# ``python -m repro.obs.validate`` entry point, and importing it from
# the package would trigger runpy's double-import RuntimeWarning.
# Use ``from repro.obs.validate import validate_file`` directly.

__all__ = [
    "EVENT_FIELDS", "SCHEMA_NAME", "SCHEMA_VERSION",
    "TraceValidationError", "validate_event", "validate_events",
    "NULL_TRACER", "BufferTracer", "CollectingTracer", "JsonlTracer",
    "NullTracer", "RegistryTracer",
    "Tracer", "load_trace",
    "COUNTER_KEYS", "METRICS_SCHEMA", "METRICS_SCHEMA_V2", "TIMER_KEYS",
    "MetricsRegistry", "counters_only", "migrate_metrics",
    "stats_metrics", "validate_metrics",
    "ClockSync",
    "explain_array", "known_arrays", "resolve_array",
    "build_span_tree", "context_table", "critical_path",
    "format_profile", "utilization_table", "worker_lanes",
]

"""Symbolic partial derivatives of right-hand sides.

Given an assignment's RHS and a *seed* expression (the adjoint of the
assignment's target), produce one contribution per active reference:
``refb += contribution``. This implements the local rule of the paper's
§4.1 — the Jacobian row of one instruction — with the chain rule folded
in syntactically.

Non-smooth intrinsics (``abs``, ``max``, ``min``) produce *guarded*
contributions: the emitter wraps them in ``if`` statements replaying
the primal's branch of the kink, which is the standard AD convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Set

from ..ir.expr import (ArrayRef, BinOp, Call, Compare, Const, Expr, Logical,
                       Op, UnOp, Var)


class NotDifferentiableError(TypeError):
    """The expression contains an operation with no derivative rule."""


@dataclass(frozen=True)
class Contribution:
    """One adjoint increment: ``adjoint(ref) += expr`` (under ``guard``)."""

    ref: Var | ArrayRef
    expr: Expr
    guard: Optional[Expr] = None  # a logical expression, or None


def partials(
    expr: Expr,
    seed: Expr,
    is_active: Callable[[str], bool],
) -> List[Contribution]:
    """Adjoint contributions of ``expr`` with respect to each active
    reference it contains, with *seed* as the incoming adjoint.

    ``is_active`` decides by name which references carry derivatives.
    """
    out: List[Contribution] = []
    _walk(expr, seed, None, is_active, out)
    return out


def _guarded(guard: Optional[Expr], extra: Optional[Expr]) -> Optional[Expr]:
    if guard is None:
        return extra
    if extra is None:
        return guard
    return guard.logical_and(extra)


def _walk(expr: Expr, seed: Expr, guard: Optional[Expr],
          is_active: Callable[[str], bool], out: List[Contribution]) -> None:
    if isinstance(expr, Const):
        return
    if isinstance(expr, (Var, ArrayRef)):
        if is_active(expr.name):
            out.append(Contribution(expr, seed, guard))
        return
    if isinstance(expr, BinOp):
        l, r = expr.left, expr.right
        if expr.op is Op.ADD:
            _walk(l, seed, guard, is_active, out)
            _walk(r, seed, guard, is_active, out)
        elif expr.op is Op.SUB:
            _walk(l, seed, guard, is_active, out)
            _walk(r, UnOp(Op.NEG, seed), guard, is_active, out)
        elif expr.op is Op.MUL:
            _walk(l, BinOp(Op.MUL, seed, r), guard, is_active, out)
            _walk(r, BinOp(Op.MUL, seed, l), guard, is_active, out)
        elif expr.op is Op.DIV:
            _walk(l, BinOp(Op.DIV, seed, r), guard, is_active, out)
            # d(l/r)/dr = -l/r**2
            _walk(r, UnOp(Op.NEG, BinOp(Op.DIV, BinOp(Op.MUL, seed, l),
                                        BinOp(Op.MUL, r, r))),
                  guard, is_active, out)
        elif expr.op is Op.POW:
            # d(b**e)/db = e * b**(e-1); exponent assumed inactive
            # (active exponents need log(b) and are rejected below).
            _walk(l, BinOp(Op.MUL, seed,
                           BinOp(Op.MUL, r, BinOp(Op.POW, l,
                                                  BinOp(Op.SUB, r, Const(1))))),
                  guard, is_active, out)
            if _mentions_active(r, is_active):
                raise NotDifferentiableError(
                    f"active exponent in {expr}: not supported")
        else:  # pragma: no cover - NEG is a UnOp
            raise NotDifferentiableError(f"operator {expr.op}")
        return
    if isinstance(expr, UnOp):
        _walk(expr.operand, UnOp(Op.NEG, seed), guard, is_active, out)
        return
    if isinstance(expr, Call):
        _walk_call(expr, seed, guard, is_active, out)
        return
    if isinstance(expr, (Compare, Logical)):
        # Boolean subexpressions carry no derivative, but an active
        # operand inside one marks a non-differentiable dependency the
        # caller might care about; the standard convention is a zero
        # partial, so we simply stop here.
        return
    raise NotDifferentiableError(f"cannot differentiate {expr!r}")  # pragma: no cover


def _walk_call(call: Call, seed: Expr, guard: Optional[Expr],
               is_active: Callable[[str], bool], out: List[Contribution]) -> None:
    name = call.func
    args = call.args
    a = args[0]
    if name == "sin":
        _walk(a, BinOp(Op.MUL, seed, Call("cos", (a,))), guard, is_active, out)
    elif name == "cos":
        _walk(a, UnOp(Op.NEG, BinOp(Op.MUL, seed, Call("sin", (a,)))),
              guard, is_active, out)
    elif name == "tan":
        cos_a = Call("cos", (a,))
        _walk(a, BinOp(Op.DIV, seed, BinOp(Op.MUL, cos_a, cos_a)),
              guard, is_active, out)
    elif name == "exp":
        _walk(a, BinOp(Op.MUL, seed, Call("exp", (a,))), guard, is_active, out)
    elif name == "log":
        _walk(a, BinOp(Op.DIV, seed, a), guard, is_active, out)
    elif name == "sqrt":
        _walk(a, BinOp(Op.DIV, seed,
                       BinOp(Op.MUL, Const(2.0), Call("sqrt", (a,)))),
              guard, is_active, out)
    elif name == "tanh":
        t = Call("tanh", (a,))
        _walk(a, BinOp(Op.MUL, seed,
                       BinOp(Op.SUB, Const(1.0), BinOp(Op.MUL, t, t))),
              guard, is_active, out)
    elif name == "abs":
        _walk(a, seed, _guarded(guard, a.ge(0.0)), is_active, out)
        _walk(a, UnOp(Op.NEG, seed), _guarded(guard, a.lt(0.0)), is_active, out)
    elif name in ("max", "min"):
        if len(args) != 2:
            raise NotDifferentiableError(f"{name} with {len(args)} args")
        b = args[1]
        first_wins = a.ge(b) if name == "max" else a.le(b)
        second_wins = a.lt(b) if name == "max" else a.gt(b)
        _walk(a, seed, _guarded(guard, first_wins), is_active, out)
        _walk(b, seed, _guarded(guard, second_wins), is_active, out)
    elif name == "real":
        # Conversion is the identity on already-real (active) data.
        _walk(a, seed, guard, is_active, out)
    elif name in ("int", "mod", "sign"):
        if any(_mentions_active(arg, is_active) for arg in args):
            raise NotDifferentiableError(
                f"intrinsic {name!r} applied to an active expression")
    else:
        raise NotDifferentiableError(f"no derivative rule for {name!r}")


def _mentions_active(expr: Expr, is_active: Callable[[str], bool]) -> bool:
    from ..ir.expr import names_in
    return any(is_active(n) for n in names_in(expr))

"""Ackermann elimination of uninterpreted functions.

Every distinct application ``f(t_1, ..., t_n)`` appearing in the input
formulas is replaced by a fresh integer variable ``!f@k``. Functional
consistency is restored by adding, for every pair of applications of
the same function symbol, the congruence axiom

    t_1 = u_1 ∧ ... ∧ t_n = u_n  →  !f@j = !f@k

Applications may be nested (``mss(1, ig, c(i))``); inner applications
are eliminated first so the arguments of the rewritten terms are pure
linear terms.

The :class:`Ackermannizer` is *stateful and incremental*: the Solver
keeps one instance alive across ``check()`` calls, rewriting only newly
added assertions, asking for only the congruence axioms of freshly
introduced application pairs, and unwinding applications whose owning
assertion-stack level is popped. The one-shot :func:`ackermannize`
wrapper preserves the original batch interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from .terms import (And, FAnd, FAtom, FFalse, FNot, FOr, Formula, FTrue,
                    Not, Or, TAdd, TApp, TConst, Term, TMul, TVar)


@dataclass
class AckermannResult:
    """Rewritten formulas plus the congruence side conditions."""

    formulas: List[Formula]
    congruence: List[Formula]
    app_names: Dict[TApp, str] = field(default_factory=dict)

    @property
    def all_formulas(self) -> List[Formula]:
        return self.formulas + self.congruence


class Ackermannizer:
    """Incremental UF elimination with unwinding support.

    Invariants relied on by the incremental solver:

    * ``introduced`` lists the distinct (rewritten) applications in
      registration order; the solver snapshots ``num_apps`` around each
      formula rewrite to learn which level owns which applications.
    * :meth:`new_congruence_axioms` emits exactly the axioms for pairs
      involving at least one application registered since the previous
      call, so axioms are produced once and can be level-tagged by the
      caller (a pair's newest member determines the tag).
    * :meth:`forget_apps` removes applications again; per function
      symbol — and globally — the forgotten applications always form a
      suffix of the registration order, because assertion levels are
      translated oldest-first and popped newest-first.
    * Variable names are ``!{func}@{k}`` where ``k`` is the
      application's position in the *live* registration order. Because
      forgets are suffix-only, re-introducing an application after an
      identical pop/re-push cycle reassigns the *same* name, so the
      rewritten formulas (and therefore every SAT witness the engine
      reports) are a deterministic function of the live assertion
      prefix plus the question — independent of which other questions
      were asked in between. Question-granularity sharding relies on
      this for byte-identical ``--json`` output.
    * Instantiated congruence axioms are cached by
      ``(app_a, app_b, var_a, var_b)`` for the lifetime of the
      instance, so the push/ask/pop cycle of exploitation questions
      re-*uses* axioms across levels instead of re-building (and
      re-clausifying) them per level.
    """

    def __init__(self) -> None:
        # Keyed by the *rewritten* application (pure-linear arguments),
        # so syntactically identical applications share one variable.
        self._cache: Dict[TApp, TVar] = {}
        self._by_func: Dict[Tuple[str, int], List[TApp]] = {}
        self._emitted: Dict[Tuple[str, int], int] = {}
        # (app_a, app_b, var_a, var_b) -> instantiated congruence axiom;
        # survives forget_apps so popped-and-re-pushed levels hit it.
        self._axiom_cache: Dict[tuple, Formula] = {}
        self.introduced: List[TApp] = []

    @property
    def num_apps(self) -> int:
        return len(self.introduced)

    def name_of(self, app: TApp) -> str | None:
        """Ackermann variable name of a rewritten application."""
        var = self._cache.get(app)
        return None if var is None else var.name

    @property
    def app_names(self) -> Dict[TApp, str]:
        return {app: var.name for app, var in self._cache.items()}

    def rewrite_term(self, term: Term) -> Term:
        if isinstance(term, (TConst, TVar)):
            return term
        if isinstance(term, TAdd):
            parts = tuple(self.rewrite_term(t) for t in term.terms)
            if all(a is b for a, b in zip(parts, term.terms)):
                return term  # identity-preserving: keeps caches effective
            return TAdd(parts)
        if isinstance(term, TMul):
            inner = self.rewrite_term(term.term)
            return term if inner is term.term else TMul(term.coeff, inner)
        if isinstance(term, TApp):
            rewritten = TApp(term.func, tuple(self.rewrite_term(a) for a in term.args))
            var = self._cache.get(rewritten)
            if var is None:
                # Position in the live registration order: suffix-only
                # forgets keep live positions stable and gap-free, so
                # the name is unique among live apps *and* reproducible
                # after an identical pop/re-push cycle.
                var = TVar(f"!{term.func}@{len(self.introduced)}")
                self._cache[rewritten] = var
                self._by_func.setdefault((term.func, len(term.args)), []).append(rewritten)
                self.introduced.append(rewritten)
            return var
        raise TypeError(f"not a term: {term!r}")  # pragma: no cover

    def rewrite_formula(self, formula: Formula) -> Formula:
        if isinstance(formula, FAtom):
            left = self.rewrite_term(formula.left)
            right = self.rewrite_term(formula.right)
            if left is formula.left and right is formula.right:
                return formula
            return FAtom(formula.rel, left, right)
        if isinstance(formula, FAnd):
            return And(*(self.rewrite_formula(f) for f in formula.operands))
        if isinstance(formula, FOr):
            return Or(*(self.rewrite_formula(f) for f in formula.operands))
        if isinstance(formula, FNot):
            return Not(self.rewrite_formula(formula.operand))
        if isinstance(formula, (FTrue, FFalse)):
            return formula
        raise TypeError(f"not a formula: {formula!r}")  # pragma: no cover

    def new_congruence_axioms(self) -> List[Formula]:
        """Congruence axioms for pairs not yet emitted.

        Each call pairs the applications registered since the previous
        call with every older application of the same symbol (and with
        each other), then advances the per-symbol emission watermark.
        """
        axioms: List[Formula] = []
        for key, apps in self._by_func.items():
            start = self._emitted.get(key, 0)
            if start >= len(apps):
                continue
            for j in range(start, len(apps)):
                b = apps[j]
                vb = self._cache[b]
                for k in range(j):
                    a = apps[k]
                    va = self._cache[a]
                    pair = (a, b, va, vb)
                    axiom = self._axiom_cache.get(pair)
                    if axiom is None:
                        args_differ = [arg_a.ne(arg_b)
                                       for arg_a, arg_b in zip(a.args, b.args)
                                       if arg_a is not arg_b]
                        if not args_differ:
                            # Identical rewritten arguments cannot happen
                            # for distinct cache entries, but guard anyway.
                            axiom = va.eq(vb)  # pragma: no cover
                        else:
                            axiom = Or(*args_differ, va.eq(vb))
                        self._axiom_cache[pair] = axiom
                    axioms.append(axiom)
            self._emitted[key] = len(apps)
        return axioms

    def forget_apps(self, apps: Iterable[TApp]) -> None:
        """Unwind applications (their assertion level was popped)."""
        removed = set()
        for app in apps:
            if self._cache.pop(app, None) is None:
                continue
            removed.add(app)
            key = (app.func, len(app.args))
            lst = self._by_func[key]
            # Popped levels own the newest applications, so scan from
            # the tail.
            for idx in range(len(lst) - 1, -1, -1):
                if lst[idx] == app:
                    del lst[idx]
                    break
            self._emitted[key] = min(self._emitted.get(key, 0), len(lst))
        if removed:
            self.introduced = [a for a in self.introduced if a not in removed]


def ackermannize(formulas: List[Formula]) -> AckermannResult:
    """Eliminate UF applications from *formulas* (one-shot).

    Returns the rewritten formulas and the congruence clauses; the
    conjunction of both is equisatisfiable with the input.
    """
    ack = Ackermannizer()
    rewritten = [ack.rewrite_formula(f) for f in formulas]
    result = AckermannResult(rewritten, ack.new_congruence_axioms())
    result.app_names = ack.app_names
    return result

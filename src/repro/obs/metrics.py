"""Aggregated analysis metrics in a stable, machine-readable schema.

One flat mapping per analysis (or group of analyses), covering every
counter and phase timer :class:`~repro.formad.engine.AnalysisStats`
records. The key set and order are fixed by :data:`COUNTER_KEYS` /
:data:`TIMER_KEYS` and versioned by :data:`METRICS_SCHEMA`, so
downstream tooling (``BENCH_ANALYSIS.json`` consumers, ``repro analyze
--json`` scrapers) can diff counter-level behavior across PRs instead
of scraping the human-readable tables. Add new keys at the end and
bump the schema version; never rename or repurpose existing keys.
"""

from __future__ import annotations

from typing import Dict, Iterable, Union

#: Version tag embedded in every exported metrics mapping.
METRICS_SCHEMA = "repro-metrics/1"

#: Deterministic counters: identical across runs of the same analysis.
COUNTER_KEYS = (
    "queries",
    "consistency_checks",
    "exploitation_checks",
    "memo_hits",
    "solver_checks",
    "solver_sat",
    "solver_unsat",
    "solver_unknown",
    "theory_checks",
    "search_branches",
    "search_propagations",
    "formulas_translated",
    "congruence_axioms",
    "clausify_hits",
    "clausify_misses",
    "model_size",
    "unique_exprs",
    "skipped_pairs",
)

#: Wall-clock timers: machine-dependent, useful for trend lines only.
TIMER_KEYS = (
    "time_seconds",
    "solver_time_seconds",
    "translate_seconds",
    "clausify_seconds",
    "search_seconds",
)

Number = Union[int, float]


def stats_metrics(stats_list: Iterable) -> Dict[str, Number]:
    """Fold one or more ``AnalysisStats`` into a stable metrics mapping.

    Every key of :data:`COUNTER_KEYS` and :data:`TIMER_KEYS` is present
    (zero when nothing contributed), in that order, after the
    ``schema`` tag.
    """
    out: Dict[str, Number] = {"schema": METRICS_SCHEMA}
    for key in COUNTER_KEYS:
        out[key] = 0
    for key in TIMER_KEYS:
        out[key] = 0.0
    for stats in stats_list:
        out["queries"] += stats.queries
        out["solver_checks"] += stats.solver_checks
        out["consistency_checks"] += stats.consistency_checks
        out["exploitation_checks"] += stats.exploitation_checks
        out["memo_hits"] += stats.memo_hits
        out["solver_sat"] += stats.solver_sat
        out["solver_unsat"] += stats.solver_unsat
        out["solver_unknown"] += stats.solver_unknown
        out["theory_checks"] += stats.theory_checks
        out["search_branches"] += stats.search_branches
        out["search_propagations"] += stats.search_propagations
        out["formulas_translated"] += stats.formulas_translated
        out["congruence_axioms"] += stats.congruence_axioms
        out["clausify_hits"] += stats.clausify_hits
        out["clausify_misses"] += stats.clausify_misses
        out["model_size"] += stats.model_size
        out["unique_exprs"] += stats.unique_exprs
        out["skipped_pairs"] += stats.skipped_pairs
        out["time_seconds"] += stats.time_seconds
        out["solver_time_seconds"] += stats.solver_time_seconds
        out["translate_seconds"] += stats.translate_seconds
        out["clausify_seconds"] += stats.clausify_seconds
        out["search_seconds"] += stats.search_seconds
    return out


def counters_only(metrics: Dict[str, Number]) -> Dict[str, Number]:
    """The deterministic subset of a metrics mapping (for equality
    assertions across runs and solver modes)."""
    return {k: metrics[k] for k in COUNTER_KEYS}

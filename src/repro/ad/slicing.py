"""Adjoint slicing: drop primal computation the adjoint never needs.

Tapenade prunes, from the generated adjoint routine, primal statements
whose results are neither taped, nor read by any partial, nor used for
control flow — that is why the paper's serial adjoint of the (linear)
stencil is *cheaper* than the primal (1.58 s vs 2.05 s): the adjoint
routine contains essentially only the reverse sweep.

The pass removes, to a fixpoint:

* assignments to primal-named variables that nothing in the remaining
  procedure reads (exact-increment self-reads do not count as reads,
  matching the to-be-recorded filter);
* control structures that became empty (an ``if`` with two empty
  branches, a loop with an empty body whose counter is not read later).

Adjoint-named variables (the results callers read) are never removed.
Note the sliced routine intentionally does not recompute the primal
outputs — the Tapenade contract for ``foo_b``.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from ..ir.expr import Var
from ..ir.program import Procedure
from ..ir.stmt import Assign, If, Loop, Pop, Push, Stmt
from .reverse import _compute_read_names


def _sweep(body: List[Stmt], reads: Set[str], protected: Set[str],
           unshadowed: Set[str] = frozenset()) -> bool:
    """One removal pass over *body*; returns True if anything changed."""
    changed = False
    kept: List[Stmt] = []
    for stmt in body:
        if isinstance(stmt, Assign):
            name = stmt.target.name
            if name not in reads and name not in protected:
                changed = True
                continue
            kept.append(stmt)
        elif isinstance(stmt, If):
            changed |= _sweep(stmt.then_body, reads, protected, unshadowed)
            changed |= _sweep(stmt.else_body, reads, protected, unshadowed)
            if not stmt.then_body and not stmt.else_body:
                changed = True
                continue
            kept.append(stmt)
        elif isinstance(stmt, Loop):
            changed |= _sweep(stmt.body, reads, protected, unshadowed)
            if not stmt.body and stmt.var not in unshadowed:
                # The counter's post-loop value is only observable by
                # reads outside loops that redefine it.
                changed = True
                continue
            kept.append(stmt)
        else:  # Push / Pop always stay: the tape protocol needs them.
            kept.append(stmt)
    body[:] = kept
    return changed


def slice_adjoint(proc: Procedure, protected: Sequence[str]) -> int:
    """Slice *proc* in place; returns the number of removal rounds.

    *protected* lists names whose assignments must survive — the
    adjoint variables, whose final values are the routine's results.
    """
    protected_set = set(protected)
    rounds = 0
    for rounds in range(1, 100):
        reads = _compute_read_names(proc)
        unshadowed = _unshadowed_counter_reads(proc)
        if not _sweep(proc.body, reads, protected_set, unshadowed):
            break
    return rounds


def _unshadowed_counter_reads(proc: Procedure) -> Set[str]:
    """Names read somewhere *not* enclosed by a loop using that same
    name as its counter (such enclosed reads see the enclosing loop's
    own counter value, so an earlier empty loop's final counter value
    is unobservable through them)."""
    from ..ir.expr import names_in
    out: Set[str] = set()

    def expr_reads(e, shadow: Set[str]) -> None:
        out.update(names_in(e) - shadow)

    def visit(body, shadow: Set[str]) -> None:
        for stmt in body:
            if isinstance(stmt, Assign):
                expr_reads(stmt.value, shadow)
                from ..ir.expr import ArrayRef
                if isinstance(stmt.target, ArrayRef):
                    for idx in stmt.target.indices:
                        expr_reads(idx, shadow)
            elif isinstance(stmt, If):
                expr_reads(stmt.cond, shadow)
                visit(stmt.then_body, shadow)
                visit(stmt.else_body, shadow)
            elif isinstance(stmt, Loop):
                for e in (stmt.start, stmt.stop, stmt.step):
                    expr_reads(e, shadow)
                visit(stmt.body, shadow | {stmt.var})
            elif isinstance(stmt, Push):
                expr_reads(stmt.value, shadow)
            elif isinstance(stmt, Pop):
                from ..ir.expr import ArrayRef
                if isinstance(stmt.target, ArrayRef):
                    for idx in stmt.target.indices:
                        expr_reads(idx, shadow)

    visit(proc.body, set())
    return out

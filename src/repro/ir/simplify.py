"""Algebraic simplification of IR expressions.

Used by the AD engines to clean up generated derivative expressions
(seeded chain-rule products produce ``1.0 * x`` and ``x + 0.0`` noise)
and by the pretty printer tests. The rules are conservative value-
preserving identities:

* constant folding of arithmetic on literals,
* additive/multiplicative identities and annihilators
  (``x + 0``, ``0 * x``, ``1 * x``, ``x ** 1``),
* double negation,
* ``x - x -> 0`` for syntactically identical pure operands.

Float semantics note: ``0.0 * x -> 0.0`` is applied, which is the usual
AD convention (it discards signed zeros / NaN propagation from inactive
slots, exactly like every source-transformation AD tool).
"""

from __future__ import annotations

from typing import Optional

from .expr import (ArrayRef, BinOp, Call, Compare, Const, Expr, Logical, Op,
                   UnOp, Var)


def _const(expr: Expr) -> Optional[float | int]:
    if isinstance(expr, Const) and not isinstance(expr.value, bool):
        return expr.value
    return None


def _is_zero(expr: Expr) -> bool:
    v = _const(expr)
    return v == 0


def _is_one(expr: Expr) -> bool:
    v = _const(expr)
    return v == 1


def simplify(expr: Expr) -> Expr:
    """Return a simplified, value-equal expression."""
    if isinstance(expr, (Const, Var)):
        return expr
    if isinstance(expr, ArrayRef):
        return ArrayRef(expr.name, tuple(simplify(i) for i in expr.indices))
    if isinstance(expr, UnOp):
        inner = simplify(expr.operand)
        if isinstance(inner, UnOp) and inner.op is Op.NEG:
            return inner.operand  # --x -> x
        c = _const(inner)
        if c is not None:
            return Const(-c)
        return UnOp(expr.op, inner)
    if isinstance(expr, Call):
        return Call(expr.func, tuple(simplify(a) for a in expr.args))
    if isinstance(expr, Compare):
        return Compare(expr.op, simplify(expr.left), simplify(expr.right))
    if isinstance(expr, Logical):
        return Logical(expr.op, tuple(simplify(o) for o in expr.operands))
    assert isinstance(expr, BinOp)
    left = simplify(expr.left)
    right = simplify(expr.right)
    lc, rc = _const(left), _const(right)
    op = expr.op

    if lc is not None and rc is not None:
        return _fold(op, lc, rc) or BinOp(op, left, right)

    if op is Op.ADD:
        if _is_zero(left):
            return right
        if _is_zero(right):
            return left
        if isinstance(right, UnOp) and right.op is Op.NEG:
            return simplify(BinOp(Op.SUB, left, right.operand))
    elif op is Op.SUB:
        if _is_zero(right):
            return left
        if _is_zero(left):
            return simplify(UnOp(Op.NEG, right))
        if left == right and _pure(left):
            return Const(0.0)
    elif op is Op.MUL:
        if _is_zero(left) or _is_zero(right):
            return Const(0.0)
        if _is_one(left):
            return right
        if _is_one(right):
            return left
        if lc == -1:
            return simplify(UnOp(Op.NEG, right))
        if rc == -1:
            return simplify(UnOp(Op.NEG, left))
    elif op is Op.DIV:
        if _is_zero(left) and _pure(right):
            return Const(0.0)
        if _is_one(right):
            return left
    elif op is Op.POW:
        if _is_one(right):
            return left
        if _is_zero(right) and _pure(left):
            return Const(1.0)
    return BinOp(op, left, right)


def _fold(op: Op, a, b) -> Optional[Const]:
    try:
        if op is Op.ADD:
            return Const(a + b)
        if op is Op.SUB:
            return Const(a - b)
        if op is Op.MUL:
            return Const(a * b)
        if op is Op.DIV:
            if b == 0:
                return None
            if isinstance(a, int) and isinstance(b, int):
                q = abs(a) // abs(b)
                return Const(q if (a >= 0) == (b >= 0) else -q)
            return Const(a / b)
        if op is Op.POW:
            return Const(a ** b)
    except (OverflowError, ValueError):  # pragma: no cover - huge consts
        return None
    return None


def _pure(expr: Expr) -> bool:
    """Expressions in this IR have no side effects; 'pure' here means
    'cheap to discard', which everything is."""
    return True

"""``python -m repro.experiments`` — regenerate every table and figure,
writing EXPERIMENTS.md to the current directory."""

from .report import main

if __name__ == "__main__":
    main()

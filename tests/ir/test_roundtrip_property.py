"""Property: parse ∘ format = identity (semantically).

Random procedures are generated from the statement grammar, printed,
re-parsed, and checked two ways: the second print must be a fixpoint,
and interpretation of both versions on random inputs must agree
exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import (Assign, BinOp, Call, Const, If, Loop, Op, Param,
                      Procedure, UnOp, Var, INTEGER, REAL, real_array,
                      format_procedure, parse_procedure, validate)
from repro.ir.types import Intent
from repro.runtime import run_procedure

N = 5


def _leaves():
    i = Var("i")
    return st.sampled_from([
        Var("x")[i], Var("t"), Const(0.5), Const(-2.0), Const(3),
        Var("y")[i],
    ])


def _exprs(depth):
    if depth == 0:
        return _leaves()
    sub = _exprs(depth - 1)
    return st.one_of(
        _leaves(),
        st.builds(lambda a, b: BinOp(Op.ADD, a, b), sub, sub),
        st.builds(lambda a, b: BinOp(Op.SUB, a, b), sub, sub),
        st.builds(lambda a, b: BinOp(Op.MUL, a, b), sub, sub),
        st.builds(lambda a, b: BinOp(Op.DIV, a, b), sub,
                  st.sampled_from([Const(2.0), Const(4.0)])),
        st.builds(lambda a: UnOp(Op.NEG, a), sub),
        st.builds(lambda a: Call("tanh", (a,)), sub),
        st.builds(lambda a, b: Call("max", (a, b)), sub, sub),
    )


@st.composite
def _stmts(draw, depth=1):
    kind = draw(st.sampled_from(
        ["assign_y", "assign_t", "if", "loop"] if depth > 0
        else ["assign_y", "assign_t"]))
    i = Var("i")
    if kind == "assign_y":
        return Assign(Var("y")[i], draw(_exprs(2)))
    if kind == "assign_t":
        return Assign(Var("t"), draw(_exprs(2)))
    if kind == "if":
        cond = draw(st.sampled_from([Var("t").gt(0.0), Var("x")[i].le(0.5)]))
        then = draw(st.lists(_stmts(depth=depth - 1), min_size=1, max_size=2))
        els = draw(st.lists(_stmts(depth=depth - 1), min_size=0, max_size=2))
        return If(cond, then, els)
    inner = draw(st.lists(_stmts(depth=depth - 1), min_size=1, max_size=2))
    return Loop("k", 1, 2, body=[Assign(Var("t"), Var("t") * 0.5)] + inner)


@st.composite
def procedures(draw):
    stmts = draw(st.lists(_stmts(depth=1), min_size=1, max_size=3))
    body = [Assign(Var("t"), Const(0.5)), Loop("i", 1, N, body=stmts)]
    proc = Procedure(
        "roundtrip",
        [Param("x", real_array(N), Intent.IN),
         Param("y", real_array(N), Intent.INOUT)],
        {"t": REAL, "i": INTEGER, "k": INTEGER},
        body,
    )
    validate(proc)
    return proc


class TestRoundTrip:
    @given(procedures())
    @settings(max_examples=80, deadline=None)
    def test_format_parse_fixpoint(self, proc):
        # The parser normalizes (folds --2.0 etc.), so the printed form
        # must be a fixpoint from the first reparse onward.
        text1 = format_procedure(proc)
        text2 = format_procedure(parse_procedure(text1))
        text3 = format_procedure(parse_procedure(text2))
        assert text2 == text3

    @given(procedures(), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_semantics_preserved(self, proc, seed):
        rng = np.random.default_rng(seed)
        bindings = {"x": rng.uniform(-1, 1, N), "y": rng.uniform(-1, 1, N)}
        reparsed = parse_procedure(format_procedure(proc))
        m1 = run_procedure(proc, bindings)
        m2 = run_procedure(reparsed, bindings)
        np.testing.assert_array_equal(m1.array("y").data, m2.array("y").data)
        assert m1.get_scalar("t") == m2.get_scalar("t")

"""Reverse-mode AD: numeric correctness (dot-product tests against
finite differences), structural properties, and safeguard insertion."""

import numpy as np
import pytest

from repro.ad import (ALL_ATOMIC, ALL_REDUCTION, ALL_SHARED,
                      differentiate_reverse)
from repro.ir import (Assign, Loop, Push, format_procedure, parse_procedure,
                      walk_stmts)
from repro.runtime import detect_races, run_procedure

from .adcheck import dot_product_test

SAXPY = """
subroutine saxpy(a, x, y, n)
  integer, intent(in) :: n
  real, intent(in) :: a
  real, intent(in) :: x(50)
  real, intent(inout) :: y(50)
  !$omp parallel do
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
end subroutine saxpy
"""

FIG2 = """
subroutine fig2(x, y, c, n)
  integer, intent(in) :: n
  real, intent(in) :: x(30)
  real, intent(inout) :: y(20)
  integer, intent(in) :: c(20)
  !$omp parallel do
  do i = 1, n
    y(c(i)) = x(c(i) + 7)
  end do
end subroutine fig2
"""

NONLINEAR = """
subroutine nl(x, y, n)
  integer, intent(in) :: n
  real, intent(in) :: x(10)
  real, intent(inout) :: y(10)
  !$omp parallel do
  do i = 1, n
    y(i) = exp(x(i)) * sin(x(i)) + sqrt(x(i) + 2.0) / (x(i) + 3.0)
  end do
end subroutine nl
"""


def saxpy_bindings(n=50):
    rng = np.random.default_rng(1)
    return {"a": 1.3, "x": rng.standard_normal(n), "y": rng.standard_normal(n),
            "n": n}


class TestNumericCorrectness:
    def test_saxpy_atomic(self):
        proc = parse_procedure(SAXPY)
        adj = differentiate_reverse(proc, ["x", "a"], ["y"], policy=ALL_ATOMIC)
        dot_product_test(proc, adj, saxpy_bindings(), ["x", "a"], ["y"])

    def test_saxpy_serial(self):
        proc = parse_procedure(SAXPY)
        adj = differentiate_reverse(proc, ["x", "a"], ["y"], serial=True)
        dot_product_test(proc, adj, saxpy_bindings(), ["x", "a"], ["y"])

    def test_saxpy_reduction(self):
        proc = parse_procedure(SAXPY)
        adj = differentiate_reverse(proc, ["x", "a"], ["y"], policy=ALL_REDUCTION)
        dot_product_test(proc, adj, saxpy_bindings(), ["x", "a"], ["y"])

    def test_fig2_indirect(self):
        proc = parse_procedure(FIG2)
        rng = np.random.default_rng(2)
        c = rng.permutation(20) + 1
        bindings = {"x": rng.standard_normal(30), "y": rng.standard_normal(20),
                    "c": c, "n": 20}
        adj = differentiate_reverse(proc, ["x"], ["y"], policy=ALL_SHARED)
        dot_product_test(proc, adj, bindings, ["x"], ["y"])

    def test_nonlinear_intrinsics(self):
        proc = parse_procedure(NONLINEAR)
        rng = np.random.default_rng(3)
        bindings = {"x": rng.uniform(0.5, 1.5, 10), "y": np.zeros(10), "n": 10}
        adj = differentiate_reverse(proc, ["x"], ["y"])
        dot_product_test(proc, adj, bindings, ["x"], ["y"], rtol=1e-3)

    def test_overwrite_chain_restored_from_tape(self):
        src = """
subroutine chain(x, y)
  real, intent(in) :: x
  real, intent(inout) :: y
  real :: t
  t = x * x
  y = t * t
  t = y + x
  y = t * t
end subroutine chain
"""
        proc = parse_procedure(src)
        adj = differentiate_reverse(proc, ["x"], ["y"])
        dot_product_test(proc, adj, {"x": 0.7, "y": 0.2}, ["x"], ["y"])

    def test_if_else_control_reversal(self):
        src = """
subroutine branchy(x, y, n)
  integer, intent(in) :: n
  real, intent(in) :: x(10)
  real, intent(inout) :: y(10)
  do i = 1, n
    if (x(i) .gt. 0.0) then
      y(i) = x(i) * x(i)
    else
      y(i) = -3.0 * x(i)
    end if
  end do
end subroutine branchy
"""
        proc = parse_procedure(src)
        rng = np.random.default_rng(4)
        bindings = {"x": rng.standard_normal(10), "y": np.zeros(10), "n": 10}
        adj = differentiate_reverse(proc, ["x"], ["y"])
        dot_product_test(proc, adj, bindings, ["x"], ["y"])

    def test_sequential_accumulation_loop(self):
        src = """
subroutine acc(x, s, n)
  integer, intent(in) :: n
  real, intent(in) :: x(20)
  real, intent(inout) :: s
  do i = 1, n
    s = s + x(i) * x(i)
  end do
end subroutine acc
"""
        proc = parse_procedure(src)
        rng = np.random.default_rng(5)
        bindings = {"x": rng.standard_normal(20), "s": 0.0, "n": 20}
        adj = differentiate_reverse(proc, ["x"], ["s"])
        dot_product_test(proc, adj, bindings, ["x"], ["s"])

    def test_data_dependent_bounds(self):
        src = """
subroutine bnds(x, y, lo, hi)
  integer, intent(in) :: lo
  integer, intent(in) :: hi
  real, intent(in) :: x(20)
  real, intent(inout) :: y(20)
  integer :: m
  m = lo + 1
  do i = m, hi
    y(i) = x(i) * 2.5
  end do
end subroutine bnds
"""
        proc = parse_procedure(src)
        rng = np.random.default_rng(6)
        bindings = {"x": rng.standard_normal(20), "y": np.zeros(20),
                    "lo": 2, "hi": 17}
        adj = differentiate_reverse(proc, ["x"], ["y"])
        dot_product_test(proc, adj, bindings, ["x"], ["y"])

    def test_abs_and_max_kinks(self):
        src = """
subroutine kink(x, y, n)
  integer, intent(in) :: n
  real, intent(in) :: x(10)
  real, intent(inout) :: y(10)
  do i = 1, n
    y(i) = abs(x(i)) + max(x(i), 0.25)
  end do
end subroutine kink
"""
        proc = parse_procedure(src)
        rng = np.random.default_rng(7)
        x = rng.standard_normal(10)
        x[np.abs(x) < 0.05] += 0.2  # stay away from the kinks
        x[np.abs(x - 0.25) < 0.05] += 0.2
        bindings = {"x": x, "y": np.zeros(10), "n": 10}
        adj = differentiate_reverse(proc, ["x"], ["y"])
        dot_product_test(proc, adj, bindings, ["x"], ["y"], rtol=1e-3)

    def test_stride2_increment_stencil(self):
        src = """
subroutine sten(uold, unew, n)
  integer, intent(in) :: n
  real, intent(in) :: uold(40)
  real, intent(inout) :: unew(40)
  do offset = 0, 1
    !$omp parallel do
    do i = 2 + offset, n - 2, 2
      unew(i) = unew(i) + 0.3 * uold(i - 1)
      unew(i) = unew(i) + 0.4 * uold(i)
      unew(i - 1) = unew(i - 1) + 0.3 * uold(i)
    end do
  end do
end subroutine sten
"""
        proc = parse_procedure(src)
        rng = np.random.default_rng(8)
        bindings = {"uold": rng.standard_normal(40),
                    "unew": rng.standard_normal(40), "n": 40}
        adj = differentiate_reverse(proc, ["uold"], ["unew"], policy=ALL_SHARED)
        dot_product_test(proc, adj, bindings, ["uold"], ["unew"])

    def test_all_policies_agree_numerically(self):
        proc = parse_procedure(FIG2)
        rng = np.random.default_rng(9)
        c = rng.permutation(20) + 1
        bindings = {"x": rng.standard_normal(30), "y": rng.standard_normal(20),
                    "c": c, "n": 20}
        grads = {}
        for label, kwargs in {
            "serial": dict(serial=True),
            "atomic": dict(policy=ALL_ATOMIC),
            "reduction": dict(policy=ALL_REDUCTION),
            "shared": dict(policy=ALL_SHARED),
        }.items():
            adj = differentiate_reverse(proc, ["x"], ["y"], **kwargs)
            adj_bindings = dict(bindings)
            adj_bindings[adj.adjoint_name("y")] = np.ones(20)
            adj_bindings[adj.adjoint_name("x")] = np.zeros(30)
            mem = run_procedure(adj.procedure, adj_bindings)
            grads[label] = mem.array(adj.adjoint_name("x")).data.copy()
        for label, g in grads.items():
            np.testing.assert_allclose(g, grads["serial"], err_msg=label)


class TestStructure:
    def test_atomic_policy_marks_increments(self):
        proc = parse_procedure(FIG2)
        adj = differentiate_reverse(proc, ["x"], ["y"], policy=ALL_ATOMIC)
        atomics = [s for s in walk_stmts(adj.procedure.body)
                   if isinstance(s, Assign) and s.atomic]
        assert atomics, "atomic policy must mark shared adjoint increments"

    def test_shared_policy_has_no_atomics(self):
        proc = parse_procedure(FIG2)
        adj = differentiate_reverse(proc, ["x"], ["y"], policy=ALL_SHARED)
        atomics = [s for s in walk_stmts(adj.procedure.body)
                   if isinstance(s, Assign) and s.atomic]
        assert not atomics

    def test_reduction_policy_adds_clause(self):
        proc = parse_procedure(FIG2)
        adj = differentiate_reverse(proc, ["x"], ["y"], policy=ALL_REDUCTION)
        loops = [s for s in walk_stmts(adj.procedure.body)
                 if isinstance(s, Loop) and s.parallel and s.reduction]
        assert any(name == adj.adjoint_name("x")
                   for loop in loops for _, name in loop.reduction)

    def test_serial_strips_parallelism(self):
        proc = parse_procedure(SAXPY)
        adj = differentiate_reverse(proc, ["x"], ["y"], serial=True)
        assert not any(s.parallel for s in walk_stmts(adj.procedure.body)
                       if isinstance(s, Loop))

    def test_scalar_adjoint_in_reduction_clause(self):
        proc = parse_procedure(SAXPY)
        adj = differentiate_reverse(proc, ["x", "a"], ["y"], policy=ALL_SHARED)
        loops = [s for s in walk_stmts(adj.procedure.body)
                 if isinstance(s, Loop) and s.parallel]
        ab = adj.adjoint_name("a")
        assert any(name == ab for loop in loops for _, name in loop.reduction)

    def test_increment_targets_not_taped(self):
        # The stencil's unew is only ever incremented and never read:
        # no push of unew may appear in the forward sweep (TBR filter).
        src = """
subroutine sten(uold, unew, n)
  integer, intent(in) :: n
  real, intent(in) :: uold(40)
  real, intent(inout) :: unew(40)
  !$omp parallel do
  do i = 2, n - 2
    unew(i) = unew(i) + 0.3 * uold(i - 1)
  end do
end subroutine sten
"""
        proc = parse_procedure(src)
        adj = differentiate_reverse(proc, ["uold"], ["unew"])
        pushes = [s for s in walk_stmts(adj.procedure.body) if isinstance(s, Push)]
        assert not pushes

    def test_overwritten_read_values_are_taped(self):
        proc = parse_procedure(FIG2)
        # y is never read in fig2 -> no tape traffic at all (matches the
        # paper's Fig. 2 adjoint, which contains no push/pop).
        adj = differentiate_reverse(proc, ["x"], ["y"])
        pushes = [s for s in walk_stmts(adj.procedure.body) if isinstance(s, Push)]
        assert not pushes

    def test_adjoint_params_follow_primal(self):
        proc = parse_procedure(SAXPY)
        adj = differentiate_reverse(proc, ["x", "a"], ["y"])
        names = [p.name for p in adj.procedure.params]
        assert names.index("x") + 1 == names.index(adj.adjoint_name("x"))
        assert names.index("y") + 1 == names.index(adj.adjoint_name("y"))

    def test_adjoint_loop_reversed(self):
        proc = parse_procedure(FIG2)
        adj = differentiate_reverse(proc, ["x"], ["y"])
        loops = [s for s in walk_stmts(adj.procedure.body)
                 if isinstance(s, Loop) and s.parallel]
        # Fig. 2's adjoint: the forward sweep is fully sliced away (y is
        # never read, nothing is taped), leaving one reversed loop.
        assert len(loops) == 1
        assert loops[0].step_const == -1

    def test_generated_code_is_printable_and_valid(self):
        from repro.ir import validate
        proc = parse_procedure(FIG2)
        adj = differentiate_reverse(proc, ["x"], ["y"])
        validate(adj.procedure)
        text = format_procedure(adj.procedure)
        assert "xb(c(i) + 7)" in text.replace("  ", " ") or "xb" in text


class TestRaceFreedom:
    def test_fig2_shared_adjoint_race_free_with_injective_c(self):
        proc = parse_procedure(FIG2)
        rng = np.random.default_rng(10)
        c = rng.permutation(20) + 1
        adj = differentiate_reverse(proc, ["x"], ["y"], policy=ALL_SHARED)
        bindings = {"x": rng.standard_normal(30), "y": np.zeros(20),
                    "c": c, "n": 20,
                    adj.adjoint_name("x"): np.zeros(30),
                    adj.adjoint_name("y"): np.ones(20)}
        report = detect_races(adj.procedure, bindings)
        assert report.race_free, str(report)

    def test_unsafe_shared_adjoint_races_with_colliding_c(self):
        proc = parse_procedure(FIG2)
        # c maps two iterations to the same x location: the primal is
        # still race-free (writes y(c(i)) collide? yes they would) — use
        # a c that collides only on the *read* side by repeating c(i)+7
        # ... simplest: make c non-injective; the primal itself then has
        # a write-write race AND the shared adjoint has an increment
        # race. FormAD's premise (correct primal) is violated, and the
        # unguarded adjoint must visibly race.
        c = np.array([1, 1] + list(range(2, 20)))
        adj = differentiate_reverse(proc, ["x"], ["y"], policy=ALL_SHARED)
        rng = np.random.default_rng(11)
        bindings = {"x": rng.standard_normal(30), "y": np.zeros(20),
                    "c": c, "n": 20,
                    adj.adjoint_name("x"): np.zeros(30),
                    adj.adjoint_name("y"): np.ones(20)}
        report = detect_races(adj.procedure, bindings)
        assert not report.race_free

    def test_atomic_guards_silence_adjoint_increment_races(self):
        proc = parse_procedure(FIG2)
        rng = np.random.default_rng(12)
        # c injective: primal fine; atomic adjoint must also be race-free.
        c = rng.permutation(20) + 1
        adj = differentiate_reverse(proc, ["x"], ["y"], policy=ALL_ATOMIC)
        bindings = {"x": rng.standard_normal(30), "y": np.zeros(20),
                    "c": c, "n": 20,
                    adj.adjoint_name("x"): np.zeros(30),
                    adj.adjoint_name("y"): np.ones(20)}
        report = detect_races(adj.procedure, bindings)
        assert report.race_free, str(report)

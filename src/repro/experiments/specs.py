"""Kernel specifications for the experiment harness.

Each spec bundles: how to build the reduced-size kernel that the
interpreter actually executes, its workload, the active variables, and
the scale factors that extrapolate the profiled run to the paper's
problem sizes (the *structure* — per-iteration operation mix, load
imbalance, safeguard counts — is preserved; only trip counts and
repetition counts are scaled).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from ..ir.program import Procedure
from ..programs import (PAPER_APPLICATIONS, PAPER_NODES, PAPER_POINTS,
                        PAPER_REPS, PAPER_SWEEPS, build_gfmc, build_gfmc_star,
                        build_greengauss, build_lbm, build_stencil,
                        make_gfmc_workload, make_lbm_workload,
                        make_linear_mesh, make_stencil_workload)


@dataclass
class KernelSpec:
    """One benchmark kernel, reduced for interpretation."""

    name: str
    proc: Procedure
    bindings: Dict[str, object]
    independents: List[str]
    dependents: List[str]
    #: Trip-count multiplier per parallel loop (paper size / reduced).
    iter_scale: float
    #: Whole-execution repetition multiplier (paper sweeps / profiled).
    invocation_scale: float

    @property
    def elem_scale(self) -> float:
        """Privatized reduction arrays grow with the problem size."""
        return self.iter_scale


def small_stencil_spec(n: int = 20_000) -> KernelSpec:
    return KernelSpec(
        name="stencil_small",
        proc=build_stencil(1, sweeps=1, name="stencil_small"),
        bindings=make_stencil_workload(1, n),
        independents=["uold"], dependents=["unew"],
        iter_scale=PAPER_POINTS / n,
        invocation_scale=PAPER_SWEEPS,
    )


def large_stencil_spec(n: int = 6_000) -> KernelSpec:
    return KernelSpec(
        name="stencil_large",
        proc=build_stencil(8, sweeps=1, name="stencil_large"),
        bindings=make_stencil_workload(8, n),
        independents=["uold"], dependents=["unew"],
        iter_scale=PAPER_POINTS / n,
        invocation_scale=PAPER_SWEEPS,
    )


def gfmc_spec(npair: int = 60, nwalk: int = 16, ngroups_max: int = 40) -> KernelSpec:
    paper_npair = 250
    return KernelSpec(
        name="gfmc",
        proc=build_gfmc(reps=1),
        bindings=make_gfmc_workload(npair, nwalk, ngroups_max, imbalance=1.2),
        independents=["cl", "cr"], dependents=["cl", "cr"],
        iter_scale=paper_npair / npair,
        invocation_scale=PAPER_REPS,
    )


def gfmc_star_spec(npair: int = 60, nwalk: int = 16, ngroups_max: int = 40) -> KernelSpec:
    paper_npair = 250
    return KernelSpec(
        name="gfmc_star",
        proc=build_gfmc_star(reps=1),
        bindings=make_gfmc_workload(npair, nwalk, ngroups_max, imbalance=1.2),
        independents=["cl", "cr"], dependents=["cl", "cr"],
        iter_scale=paper_npair / npair,
        invocation_scale=PAPER_REPS,
    )


def greengauss_spec(nnodes: int = 20_000) -> KernelSpec:
    return KernelSpec(
        name="greengauss",
        proc=build_greengauss(applications=1),
        bindings=make_linear_mesh(nnodes),
        independents=["dv"], dependents=["grad"],
        iter_scale=PAPER_NODES / nnodes,
        invocation_scale=PAPER_APPLICATIONS,
    )


def lbm_spec(ncells: int = 400) -> KernelSpec:
    # The paper has no LBM performance figure (FormAD changes nothing);
    # this spec exists for analysis and ablation purposes.
    return KernelSpec(
        name="lbm",
        proc=build_lbm(sweeps=1),
        bindings=make_lbm_workload(ncells),
        independents=["srcgrid"], dependents=["dstgrid"],
        iter_scale=120 * 120 * 150 / ncells,
        invocation_scale=1.0,
    )


ALL_FIGURE_SPECS: Dict[str, Callable[[], KernelSpec]] = {
    "stencil_small": small_stencil_spec,
    "stencil_large": large_stencil_spec,
    "gfmc": gfmc_spec,
    "greengauss": greengauss_spec,
}

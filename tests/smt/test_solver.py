"""Tests for clausification, Ackermann elimination, and the Solver facade."""

import pytest

from repro.smt import (And, FAtom, Int, Not, Or, Rel, SAT, UNKNOWN, UNSAT,
                       Solver, TApp, ackermannize, clausify, prove_distinct,
                       to_nnf)

i, ip, j, jp = Int("i"), Int("ip"), Int("j"), Int("jp")


class TestClausify:
    def test_atom_passthrough(self):
        clauses = clausify(i.le(j))
        assert clauses == [(i.le(j),)]

    def test_ne_splits(self):
        clauses = clausify(i.ne(j))
        assert len(clauses) == 1
        (clause,) = clauses
        assert {a.rel for a in clause} == {Rel.LT, Rel.GT}

    def test_negation_folds_into_relation(self):
        clauses = clausify(Not(i.le(j)))
        assert clauses == [(i.gt(j),)]

    def test_negated_eq_becomes_split_ne(self):
        clauses = clausify(Not(i.eq(j)))
        (clause,) = clauses
        assert len(clause) == 2

    def test_and_gives_multiple_clauses(self):
        clauses = clausify(And(i.le(j), j.le(i)))
        assert len(clauses) == 2

    def test_or_gives_one_clause(self):
        clauses = clausify(Or(i.lt(j), i.gt(j)))
        assert len(clauses) == 1 and len(clauses[0]) == 2

    def test_or_of_ands_distributes(self):
        f = Or(And(i.le(0), j.le(0)), And(i.ge(5), j.ge(5)))
        clauses = clausify(f)
        assert len(clauses) == 4

    def test_demorgan(self):
        f = Not(And(i.le(j), j.le(i)))
        nnf = to_nnf(f)
        clauses = clausify(f)
        assert len(clauses) == 1 and len(clauses[0]) == 2


class TestAckermann:
    def test_single_app_becomes_variable(self):
        c_i = TApp("c", (i,))
        res = ackermannize([c_i.le(5)])
        assert not res.congruence
        assert len(res.formulas) == 1

    def test_congruence_axiom_generated(self):
        c_i = TApp("c", (i,))
        c_ip = TApp("c", (ip,))
        res = ackermannize([c_i.ne(c_ip)])
        assert len(res.congruence) == 1

    def test_identical_apps_share_a_variable(self):
        c_i = TApp("c", (i,))
        res = ackermannize([c_i.le(5), c_i.ge(5)])
        assert not res.congruence  # one distinct application only
        names = set(res.app_names.values())
        assert len(names) == 1

    def test_nested_apps(self):
        inner = TApp("c", (i,))
        outer = TApp("m", (inner, j))
        res = ackermannize([outer.le(0)])
        assert len(res.app_names) == 2

    def test_different_arity_kept_separate(self):
        res = ackermannize([TApp("f", (i,)).le(0), TApp("f", (i, j)).le(0)])
        assert not res.congruence


class TestSolverFacade:
    def test_empty_solver_sat(self):
        assert Solver().check() is SAT

    def test_basic_sat_unsat(self):
        s = Solver()
        s.add(i.ge(0), i.le(10))
        assert s.check() is SAT
        s.add(i.ge(11))
        assert s.check() is UNSAT

    def test_push_pop_restores(self):
        s = Solver()
        s.add(i.ge(0))
        s.push()
        s.add(i.le(-1))
        assert s.check() is UNSAT
        s.pop()
        assert s.check() is SAT

    def test_pop_too_far_raises(self):
        with pytest.raises(RuntimeError):
            Solver().pop()

    def test_model_available_after_sat(self):
        s = Solver()
        s.add(i.eq(4), j.eq(i + 1))
        assert s.check() is SAT
        m = s.model()
        assert m["i"] == 4 and m["j"] == 5

    def test_model_without_check_raises(self):
        with pytest.raises(RuntimeError):
            Solver().model()

    def test_model_invalidated_by_add(self):
        s = Solver()
        s.add(i.eq(1))
        s.check()
        s.add(i.ge(0))
        with pytest.raises(RuntimeError):
            s.model()

    def test_stats_accumulate(self):
        s = Solver()
        s.add(i.ge(0))
        s.check()
        s.check()
        assert s.stats.checks == 2 and s.stats.sat == 2

    def test_disjunction_handling(self):
        s = Solver()
        s.add(Or(i.eq(0), i.eq(5)), i.ge(3))
        assert s.check() is SAT
        assert s.model()["i"] == 5

    def test_all_branches_refuted(self):
        s = Solver()
        s.add(Or(i.eq(0), i.eq(5)), i.ge(6))
        assert s.check() is UNSAT


class TestFig2Scenario:
    """The paper's Figure 2 reasoning, end to end at the solver level."""

    def _knowledge(self, s: Solver):
        c_i = TApp("c", (i,))
        c_ip = TApp("c", (ip,))
        s.add(ip.ne(i))       # distinct loop iterations
        s.add(c_ip.ne(c_i))   # primal writes y(c(i)) are disjoint
        return c_i, c_ip

    def test_knowledge_is_consistent(self):
        s = Solver()
        self._knowledge(s)
        assert s.check() is SAT

    def test_xb_increment_proven_safe(self):
        # Question: can xb(c(i)+7) and xb(c(i')+7) collide? Expect UNSAT.
        s = Solver()
        c_i, c_ip = self._knowledge(s)
        s.push()
        s.add((c_ip + 7).eq(c_i + 7))
        assert s.check() is UNSAT
        s.pop()
        assert s.check() is SAT

    def test_unrelated_access_not_proven_safe(self):
        # A different indirection d(i) has no disjointness knowledge:
        # d(i') == d(i) is satisfiable (congruence permits equal values).
        s = Solver()
        self._knowledge(s)
        d_i = TApp("d", (i,))
        d_ip = TApp("d", (ip,))
        s.push()
        s.add(d_ip.eq(d_i))
        assert s.check() is SAT

    def test_prove_distinct_helper(self):
        s = Solver()
        c_i, c_ip = self._knowledge(s)
        assert prove_distinct(s, c_ip + 7, c_i + 7)
        d_i, d_ip = TApp("d", (i,)), TApp("d", (ip,))
        assert not prove_distinct(s, d_ip, d_i)
        # push/pop inside the helper must leave the solver usable
        assert s.check() is SAT


class TestStencilScenario:
    """Small-stencil reasoning: write set {i, i-1} under i != i'."""

    def test_adjoint_reads_same_offsets_safe(self):
        s = Solver()
        s.add(ip.ne(i))
        # Knowledge from primal: writes at i and i-1 are all disjoint
        # across iterations (the loop steps by 2).
        # i' != i (given), and the stride-2 structure: model i = 2k.
        k, kp = Int("k"), Int("kp")
        s.add(i.eq(2 * k), ip.eq(2 * kp), kp.ne(k))
        s.push()
        s.add(ip.eq(i - 1))  # can unew(i'-... ) alias unew(i-1)? i' = i-1 odd vs even
        assert s.check() is UNSAT
        s.pop()
        s.push()
        s.add((ip - 1).eq(i - 1))  # same offset, different iterations
        assert s.check() is UNSAT


class TestWarmModelInvalidation:
    """pop() must not keep warm-start hints minted at deeper levels
    (regression: a stale hint survived pop() and was fed to every
    later search)."""

    def test_pop_below_warm_level_drops_hint(self):
        s = Solver()
        s.add(i.ge(0))
        s.push()
        s.add(j.ge(5))
        assert s.check() is SAT
        assert s._warm_model is not None
        s.pop()
        assert s._warm_model is None
        assert s._warm_level == 0

    def test_pop_above_warm_level_keeps_hint(self):
        s = Solver()
        s.add(i.ge(0))
        assert s.check() is SAT  # minted at depth 1
        warm = s._warm_model
        assert warm is not None
        s.push()
        s.push()
        s.pop()  # still strictly above the minting depth: valid
        assert s._warm_model == warm
        assert s.check() is SAT

    def test_pop_to_warm_level_drops_hint(self):
        """Regression: a pop that unwinds *to* the minting depth must
        invalidate the hint — a later push can repopulate that depth
        with different assertions, so keeping the hint would seed a
        check with a model derived from popped state (the old
        ``_warm_level > len`` comparison kept it)."""
        s = Solver()
        s.add(i.ge(0))
        assert s.check() is SAT  # minted at depth 1
        s.push()
        s.pop()  # unwinds to depth 1 == the minting depth
        assert s._warm_model is None
        assert s._warm_level == 0
        # pop/push/check at the same depth must still answer correctly
        s.push()
        s.add(i.lt(0))
        assert s.check() is UNSAT
        s.pop()
        assert s.check() is SAT

    def test_checks_after_pop_stay_correct(self):
        s = Solver()
        s.add(i.ge(0), i.le(10))
        s.push()
        s.add(i.eq(5))
        assert s.check() is SAT
        s.pop()
        s.push()
        s.add(i.gt(10))
        assert s.check() is UNSAT
        s.pop()
        assert s.check() is SAT

    def test_non_incremental_solver_matches(self):
        for incremental in (True, False):
            s = Solver(incremental=incremental)
            s.add(i.ge(0))
            s.push()
            s.add(i.lt(0))
            assert s.check() is UNSAT
            s.pop()
            assert s.check() is SAT

"""Fortran-flavored pretty printer for the IR.

Produces text close to the paper's listings, including ``!$omp``
pragmas, so generated adjoints can be eyeballed against Figures 1/2 of
the paper. The output round-trips through :mod:`repro.ir.parser`.
"""

from __future__ import annotations

from typing import List, Sequence

from .expr import (ArrayRef, BinOp, Call, CmpOp, Compare, Const, Expr,
                   Logical, LogicOp, Op, UnOp, Var)
from .program import Procedure
from .stmt import Assign, If, Loop, Pop, Push, Stmt
from .types import ArrayType, Intent, ScalarType

_PRECEDENCE = {
    Op.POW: 4,
    Op.NEG: 3,
    Op.MUL: 2,
    Op.DIV: 2,
    Op.ADD: 1,
    Op.SUB: 1,
}


def format_expr(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(expr, Const):
        v = expr.value
        if isinstance(v, bool):
            return ".true." if v else ".false."
        text = repr(v) if isinstance(v, float) else str(v)
        # Negative literals parenthesize like unary minus does, so the
        # printed form is a fixpoint under parse -> print.
        if (isinstance(v, (int, float)) and v < 0) and parent_prec > 0:
            return f"({text})"
        return text
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, ArrayRef):
        return f"{expr.name}({', '.join(format_expr(i) for i in expr.indices)})"
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE[expr.op]
        left = format_expr(expr.left, prec)
        # The right operand always parenthesizes at equal precedence:
        # required for - / ** by syntax, and for + * to keep the
        # floating-point association order faithful under re-parsing
        # (a + (b + c) must not flatten into (a + b) + c).
        right = format_expr(expr.right, prec + 1)
        text = f"{left}{expr.op.value}{right}" if expr.op is Op.POW else f"{left} {expr.op.value} {right}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, UnOp):
        inner = format_expr(expr.operand, _PRECEDENCE[Op.NEG])
        text = f"-{inner}"
        return f"({text})" if parent_prec > 0 else text
    if isinstance(expr, Call):
        return f"{expr.func}({', '.join(format_expr(a) for a in expr.args)})"
    if isinstance(expr, Compare):
        return f"{format_expr(expr.left)} {_fortran_cmp(expr.op)} {format_expr(expr.right)}"
    if isinstance(expr, Logical):
        if expr.op is LogicOp.NOT:
            return f".not. ({format_expr(expr.operands[0])})"
        return f"({format_expr(expr.operands[0])}) {expr.op.value} ({format_expr(expr.operands[1])})"
    raise TypeError(f"not an expression: {expr!r}")  # pragma: no cover


def _fortran_cmp(op: CmpOp) -> str:
    return {
        CmpOp.EQ: ".eq.",
        CmpOp.NE: ".ne.",
        CmpOp.LT: ".lt.",
        CmpOp.LE: ".le.",
        CmpOp.GT: ".gt.",
        CmpOp.GE: ".ge.",
    }[op]


def format_stmt(stmt: Stmt, indent: int = 0) -> List[str]:
    """Render a statement tree as indented source lines."""
    pad = "  " * indent
    if isinstance(stmt, Assign):
        lines = []
        if stmt.atomic:
            lines.append(f"{pad}!$omp atomic")
        lines.append(f"{pad}{format_expr(stmt.target)} = {format_expr(stmt.value)}")
        return lines
    if isinstance(stmt, If):
        lines = [f"{pad}if ({format_expr(stmt.cond)}) then"]
        for s in stmt.then_body:
            lines.extend(format_stmt(s, indent + 1))
        if stmt.else_body:
            lines.append(f"{pad}else")
            for s in stmt.else_body:
                lines.extend(format_stmt(s, indent + 1))
        lines.append(f"{pad}end if")
        return lines
    if isinstance(stmt, Loop):
        lines = []
        if stmt.parallel:
            clauses = ""
            if stmt.private:
                clauses += f" private({', '.join(stmt.private)})"
            for op, name in stmt.reduction:
                clauses += f" reduction({op}:{name})"
            lines.append(f"{pad}!$omp parallel do{clauses}")
        step = ""
        if not (isinstance(stmt.step, Const) and stmt.step.value == 1):
            step = f", {format_expr(stmt.step)}"
        lines.append(f"{pad}do {stmt.var} = {format_expr(stmt.start)}, {format_expr(stmt.stop)}{step}")
        for s in stmt.body:
            lines.extend(format_stmt(s, indent + 1))
        lines.append(f"{pad}end do")
        return lines
    if isinstance(stmt, Push):
        return [f"{pad}call push('{stmt.channel}', {format_expr(stmt.value)})"]
    if isinstance(stmt, Pop):
        return [f"{pad}call pop('{stmt.channel}', {format_expr(stmt.target)})"]
    raise TypeError(f"not a statement: {stmt!r}")  # pragma: no cover


def format_body(body: Sequence[Stmt], indent: int = 0) -> str:
    lines: List[str] = []
    for stmt in body:
        lines.extend(format_stmt(stmt, indent))
    return "\n".join(lines)


def _format_decl(name: str, type_, intent: Intent | None = None) -> str:
    attrs = ""
    if intent is not None and intent is not Intent.LOCAL:
        attrs = f", intent({intent.value})"
    if isinstance(type_, ArrayType):
        dims = ", ".join(str(d) for d in type_.dims)
        return f"  {type_.kind}{attrs} :: {name}({dims})"
    assert isinstance(type_, ScalarType)
    return f"  {type_.kind}{attrs} :: {name}"


def format_procedure(proc: Procedure) -> str:
    """Render the full procedure, declarations included."""
    args = ", ".join(p.name for p in proc.params)
    lines = [f"subroutine {proc.name}({args})"]
    for p in proc.params:
        lines.append(_format_decl(p.name, p.type, p.intent))
    for name, type_ in sorted(proc.locals.items()):
        lines.append(_format_decl(name, type_))
    if proc.params or proc.locals:
        lines.append("")
    lines.append(format_body(proc.body, indent=1))
    lines.append(f"end subroutine {proc.name}")
    return "\n".join(lines)

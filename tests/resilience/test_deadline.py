"""Deadline and escalation-ladder units, plus their SMT-stack hooks.

The contract under test (docs/RESILIENCE.md): a deadline can only ever
turn an answer into UNKNOWN with ``reason="timeout"`` — it never
changes a SAT/UNSAT verdict — and the structured reason taxonomy
(timeout / budget / solver-unknown) is routed from the search layer up
through ``SolverStats`` into ``AnalysisStats``.
"""

import math
import time

import pytest

from repro.analysis.activity import ActivityAnalysis
from repro.experiments.specs import small_stencil_spec
from repro.formad import FormADEngine
from repro.resilience.deadline import NEVER, Deadline, combine, per_question
from repro.resilience.escalate import (NO_ESCALATION, RETRYABLE_REASONS,
                                       EscalationPolicy)
from repro.smt import Int, Solver
from repro.smt.intsolver import Result, check_int
from repro.smt.linform import canonicalize
from repro.smt.search import SearchStats, search


class TestDeadline:
    def test_fresh_deadline_is_not_expired(self):
        assert not Deadline(60.0).expired()

    def test_zero_and_negative_budgets_expire_immediately(self):
        assert Deadline(0.0).expired()
        assert Deadline(-5.0).expired()
        assert Deadline(-5.0).remaining() <= 0.0

    def test_expires_after_its_budget(self):
        d = Deadline(0.02)
        assert not d.expired()
        time.sleep(0.03)
        assert d.expired()

    def test_remaining_is_clamped_and_monotone(self):
        d = Deadline(60.0)
        first = d.remaining()
        assert 0.0 < first <= 60.0
        assert d.remaining() <= first

    def test_never_sentinel(self):
        assert not NEVER.expired()
        assert NEVER.remaining() == math.inf

    def test_tightened_never_loosens(self):
        run = Deadline(60.0)
        tight = run.tightened(1.0)
        assert tight.expires_at < run.expires_at
        # tightening past the original keeps the original
        assert run.tightened(120.0).expires_at == run.expires_at

    def test_combine_picks_the_tighter(self):
        a, b = Deadline(10.0), Deadline(1.0)
        assert combine(a, b).expires_at == b.expires_at
        assert combine(a, None) is a
        assert combine(None, b) is b
        assert combine(None, None) is None

    def test_per_question_caps_under_the_run_deadline(self):
        run = Deadline(60.0)
        q = per_question(run, 0.5)
        assert q is not None and q.expires_at < run.expires_at
        assert per_question(run, None) is run
        assert per_question(None, None) is None
        solo = per_question(None, 0.25)
        assert solo is not None and solo.remaining() <= 0.25


class TestEscalationPolicy:
    def test_default_policy_is_disabled(self):
        assert not NO_ESCALATION.enabled
        assert list(NO_ESCALATION.scales("k")) == []

    def test_retryable_taxonomy(self):
        policy = EscalationPolicy(max_attempts=3)
        assert policy.retryable("timeout")
        assert policy.retryable("budget")
        assert not policy.retryable("solver-unknown")
        assert not policy.retryable(None)
        assert RETRYABLE_REASONS == {"timeout", "budget"}

    def test_scales_grow_deterministically_and_cap(self):
        policy = EscalationPolicy(max_attempts=5, growth=2.0,
                                  max_scale=4.0, jitter=0.25)
        once = list(policy.scales("loop/array/q"))
        again = list(policy.scales("loop/array/q"))
        assert once == again, "jitter must be deterministic per key"
        assert len(once) == 4  # attempts beyond the first
        for n, scale in enumerate(once, start=1):
            nominal = min(2.0 ** n, 4.0)
            assert nominal * 0.75 <= scale <= nominal * 1.25
        assert once == sorted(once) or once[-1] == max(once), \
            "ladder trends upward"

    def test_different_keys_jitter_differently(self):
        policy = EscalationPolicy(max_attempts=4, jitter=0.15)
        assert list(policy.scales("a")) != list(policy.scales("b"))


def _interval(name):
    x = Int(name)
    return [x.ge(0), x.le(5)]


class TestSearchDeadline:
    def test_expired_deadline_yields_timeout_reason(self):
        base = [c for a in _interval("sd1") for c in canonicalize(a)]
        outcome = search(base, [], deadline=Deadline(0.0))
        assert outcome.result is Result.UNKNOWN
        assert outcome.reason == "timeout"

    def test_budget_exhaustion_is_distinct_from_timeout(self):
        base = [c for a in _interval("sd2") for c in canonicalize(a)]
        outcome = search(base, [], max_theory_checks=0)
        assert outcome.result is Result.UNKNOWN
        assert outcome.reason == "budget"

    def test_no_deadline_no_reason_on_sat(self):
        base = [c for a in _interval("sd3") for c in canonicalize(a)]
        outcome = search(base, [])
        assert outcome.result is Result.SAT
        assert outcome.reason is None

    def test_check_int_deadline(self):
        base = [c for a in _interval("sd4") for c in canonicalize(a)]
        outcome = check_int(base, deadline=Deadline(0.0))
        assert outcome.result is Result.UNKNOWN
        assert outcome.reason == "timeout"


class TestSolverDeadline:
    def test_solver_wide_deadline_times_out(self):
        solver = Solver(deadline=Deadline(0.0))
        solver.add(*_interval("sv1"))
        assert solver.check() is Result.UNKNOWN
        assert solver.last_unknown_reason == "timeout"
        assert solver.stats.unknown_timeout == 1
        assert solver.stats.unknown_budget == 0

    def test_per_check_deadline_param(self):
        solver = Solver()
        solver.add(*_interval("sv2"))
        assert solver.check(deadline=Deadline(0.0)) is Result.UNKNOWN
        assert solver.last_unknown_reason == "timeout"
        # the same solver answers honestly without the deadline
        assert solver.check() is Result.SAT
        assert solver.last_unknown_reason is None

    def test_tighter_of_solver_and_call_deadline_wins(self):
        solver = Solver(deadline=Deadline(60.0))
        solver.add(*_interval("sv3"))
        assert solver.check(deadline=Deadline(0.0)) is Result.UNKNOWN
        assert solver.last_unknown_reason == "timeout"

    def test_budget_reason_reaches_solver_stats(self):
        solver = Solver(max_theory_checks=0)
        solver.add(*_interval("sv4"))
        assert solver.check() is Result.UNKNOWN
        assert solver.last_unknown_reason == "budget"
        assert solver.stats.unknown_budget == 1
        assert solver.stats.unknown_timeout == 0

    def test_budget_scale_recovers_a_budget_unknown(self):
        solver = Solver(max_theory_checks=1)
        solver.add(*_interval("sv5"))
        first = solver.check()
        scaled = solver.check(budget_scale=64.0)
        # scale 1 may or may not exhaust; the scaled retry must decide
        assert scaled in (Result.SAT, Result.UNSAT)
        assert first in (Result.SAT, Result.UNSAT, Result.UNKNOWN)

    def test_deadline_never_flips_a_verdict(self):
        # SAT problem and UNSAT problem, with and without deadlines:
        # the decided answers agree wherever both runs decided.
        x, y = Int("sv6a"), Int("sv6b")
        for atoms, expect in [
            ([x.ge(0), x.le(5)], Result.SAT),
            ([x.eq(y + 3), x.lt(y)], Result.UNSAT),
        ]:
            plain = Solver()
            plain.add(*atoms)
            assert plain.check() is expect
            bounded = Solver(deadline=Deadline(60.0))
            bounded.add(*atoms)
            got = bounded.check()
            assert got in (expect, Result.UNKNOWN)
            if got is Result.UNKNOWN:
                assert bounded.last_unknown_reason == "timeout"


class FlakySolver(Solver):
    """Honest during buildModel and on any escalated retry; answers
    UNKNOWN("budget") to every first-attempt exploitation question.
    (Exploitation asks always pass ``budget_scale`` explicitly;
    buildModel consistency checks call ``check()`` bare.) A run with
    escalation enabled must therefore recover every baseline verdict
    on the second rung of the ladder."""

    def check(self, **kwargs):
        if "budget_scale" in kwargs and kwargs["budget_scale"] <= 1.0:
            self.stats.record(Result.UNKNOWN, 0.0, SearchStats(),
                              reason="budget")
            self._model = None
            self.last_unknown_reason = "budget"
            return Result.UNKNOWN
        return super().check(**kwargs)


class TestEngineEscalation:
    def _engine(self, spec, **kwargs):
        activity = ActivityAnalysis(spec.proc, spec.independents,
                                    spec.dependents)
        return FormADEngine(spec.proc, activity, **kwargs)

    def test_escalation_recovers_flaky_unknowns(self):
        spec = small_stencil_spec()
        baseline = self._engine(spec).analyze_all()

        escalated = self._engine(
            spec, solver_factory=lambda **kw: FlakySolver(**kw),
            escalation=EscalationPolicy(max_attempts=2),
        ).analyze_all()

        assert len(escalated) == len(baseline)
        for flaky, honest in zip(escalated, baseline):
            assert {n: v.safe for n, v in flaky.verdicts.items()} \
                == {n: v.safe for n, v in honest.verdicts.items()}
            assert not flaky.degraded
            assert flaky.stats.escalations > 0
            assert flaky.stats.unknown_budget > 0

    def test_without_escalation_flaky_unknowns_stick(self):
        spec = small_stencil_spec()
        baseline = self._engine(spec).analyze_all()
        plain = self._engine(
            spec, solver_factory=lambda **kw: FlakySolver(**kw),
        ).analyze_all()
        for flaky, honest in zip(plain, baseline):
            # arrays whose safety rests on solver answers lose it;
            # nothing gains it (soundness bias)
            assert flaky.safe_arrays() < honest.safe_arrays()
            assert flaky.stats.escalations == 0
            assert flaky.stats.unknown_budget > 0

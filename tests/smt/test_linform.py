"""Tests for linear-form normalization and atom canonicalization."""

import pytest

from repro.smt import (Constraint, Int, LinForm, NonLinearTermError, Rel,
                       TrivialConstraint, canonicalize, linearize)
from repro.smt.terms import TApp, TConst

x, y, z = Int("x"), Int("y"), Int("z")


class TestLinForm:
    def test_linearize_simple(self):
        lf = linearize(x + 2 * y - 3)
        assert lf.coeff_dict() == {"x": 1, "y": 2}
        assert lf.const == -3

    def test_linearize_collects_like_terms(self):
        lf = linearize(x + x + x - 2 * x)
        assert lf.coeff_dict() == {"x": 1}

    def test_zero_coefficients_dropped(self):
        lf = linearize(x - x + 5)
        assert lf.is_constant and lf.const == 5

    def test_scale_and_arithmetic(self):
        a = LinForm.from_dict({"x": 2}, 1)
        b = LinForm.from_dict({"x": -2, "y": 1}, 3)
        s = a + b
        assert s.coeff_dict() == {"y": 1} and s.const == 4
        assert (a - a).is_constant

    def test_evaluate(self):
        lf = linearize(2 * x + y - 7)
        assert lf.evaluate({"x": 3, "y": 4}) == 3

    def test_uf_application_rejected(self):
        app = TApp("c", (x,))
        with pytest.raises(NonLinearTermError):
            linearize(app + 1)

    def test_nonlinear_product_rejected_at_term_level(self):
        with pytest.raises(NonLinearTermError):
            x * y

    def test_content_gcd(self):
        assert linearize(4 * x + 6 * y).content() == 2
        assert linearize(TConst(5)).content() == 0


class TestCanonicalize:
    def test_le(self):
        (c,) = canonicalize((x + 3).le(y))
        assert c.rel is Rel.LE
        assert c.form.coeff_dict() == {"x": 1, "y": -1}
        assert c.bound == -3

    def test_strict_lt_tightens(self):
        (c,) = canonicalize(x.lt(y))
        # x < y over ints is x - y <= -1
        assert c.bound == -1

    def test_ge_flips(self):
        (c,) = canonicalize(x.ge(5))
        assert c.form.coeff_dict() == {"x": -1}
        assert c.bound == -5

    def test_gt_flips_and_tightens(self):
        (c,) = canonicalize(x.gt(5))
        assert c.form.coeff_dict() == {"x": -1} and c.bound == -6

    def test_eq(self):
        (c,) = canonicalize((x + 1).eq(y))
        assert c.rel is Rel.EQ

    def test_ne_rejected(self):
        with pytest.raises(ValueError):
            canonicalize(x.ne(y))

    def test_trivially_true(self):
        with pytest.raises(TrivialConstraint) as exc:
            canonicalize(TConst(1).le(2))
        assert exc.value.truth is True

    def test_trivially_false(self):
        with pytest.raises(TrivialConstraint) as exc:
            canonicalize(TConst(3).le(2))
        assert exc.value.truth is False

    def test_gcd_divisibility_eq_refuted(self):
        # 2x = 2y + 1 has no integer solution: caught at canonicalization.
        with pytest.raises(TrivialConstraint) as exc:
            canonicalize((2 * x).eq(2 * y + 1))
        assert exc.value.truth is False

    def test_gcd_le_tightening(self):
        (c,) = canonicalize((2 * x).le(3))
        assert c.form.coeff_dict() == {"x": 1} and c.bound == 1

    def test_gcd_le_tightening_negative_bound(self):
        (c,) = canonicalize((2 * x).le(-3))
        assert c.bound == -2  # floor(-3/2)

    def test_constraint_holds(self):
        (c,) = canonicalize(x.le(y))
        assert c.holds({"x": 1, "y": 2})
        assert not c.holds({"x": 3, "y": 2})

    def test_canonical_shape_enforced(self):
        with pytest.raises(ValueError):
            Constraint(LinForm.from_dict({"x": 1}), Rel.GT, 0)
        with pytest.raises(ValueError):
            Constraint(LinForm.from_dict({"x": 1}, 5), Rel.LE, 0)

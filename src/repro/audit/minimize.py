"""Greedy delta-debugging shrink for failing audit cases.

Given a :class:`~repro.audit.generator.CaseSpec` and a predicate "does
the failure still reproduce?", repeatedly tries structural
simplifications — drop a statement, drop a read, remove a guard, strip
an atomic, route an index past its table, zero an offset, flatten the
inner loop, shrink the extent — keeping any that preserve the failure,
until a fixpoint. This is ddmin in spirit but greedy and typed: every
candidate is a valid spec by construction, so the predicate never sees
a syntactically broken kernel.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator, List

from .generator import CaseSpec, IndexSpec, StmtSpec

#: Safety bound on predicate evaluations per minimization.
MAX_PROBES = 200


def _simplify_index(ix: IndexSpec) -> Iterator[IndexSpec]:
    if ix.table is not None:
        yield dataclasses.replace(ix, table=None)
    if ix.offset != 0:
        yield dataclasses.replace(ix, offset=0)
    if ix.coeff != 1:
        yield dataclasses.replace(ix, coeff=1)


def _simplify_stmt(stmt: StmtSpec) -> Iterator[StmtSpec]:
    for j in range(len(stmt.reads)):
        yield dataclasses.replace(
            stmt, reads=stmt.reads[:j] + stmt.reads[j + 1:])
    if stmt.guard_gt is not None:
        yield dataclasses.replace(stmt, guard_gt=None)
    if stmt.atomic:
        yield dataclasses.replace(stmt, atomic=False)
    if stmt.index is not None:
        for ix in _simplify_index(stmt.index):
            yield dataclasses.replace(stmt, index=ix)
    for j, read in enumerate(stmt.reads):
        for ix in _simplify_index(read.index):
            new = dataclasses.replace(read, index=ix)
            yield dataclasses.replace(
                stmt, reads=stmt.reads[:j] + (new,) + stmt.reads[j + 1:])


def _normalize(spec: CaseSpec) -> CaseSpec:
    """Drop tables and privates nothing references anymore."""
    used_tables = {ix.table
                   for s in spec.stmts
                   for ix in ([s.index] if s.index else [])
                   + [r.index for r in s.reads]
                   if ix.table is not None}
    used_names = ({ix.base for s in spec.stmts
                   for ix in ([s.index] if s.index else [])
                   + [r.index for r in s.reads]}
                  | {s.target for s in spec.stmts})
    return dataclasses.replace(
        spec,
        tables=tuple(t for t in spec.tables if t[0] in used_tables),
        private=tuple(p for p in spec.private if p in used_names))


def _candidates(spec: CaseSpec) -> Iterator[CaseSpec]:
    if len(spec.stmts) > 1:
        for k in range(len(spec.stmts)):
            yield dataclasses.replace(
                spec, stmts=spec.stmts[:k] + spec.stmts[k + 1:])
    for k, stmt in enumerate(spec.stmts):
        for new in _simplify_stmt(stmt):
            yield dataclasses.replace(
                spec, stmts=spec.stmts[:k] + (new,) + spec.stmts[k + 1:])
    if spec.inner_reps > 0:
        yield dataclasses.replace(spec, inner_reps=0)
    if spec.stride != 1:
        yield dataclasses.replace(spec, stride=1)
    if spec.n > 8:
        yield dataclasses.replace(spec, n=max(8, spec.n // 2))


def minimize(spec: CaseSpec,
             reproduces: Callable[[CaseSpec], bool],
             *, max_probes: int = MAX_PROBES) -> CaseSpec:
    """Smallest spec (under the greedy moves above) still failing.

    ``reproduces`` must treat exceptions as non-reproduction itself if
    it wants crash-tolerance; any exception here aborts the shrink and
    returns the best spec so far.
    """
    current = spec
    probes = 0
    progress = True
    while progress and probes < max_probes:
        progress = False
        for candidate in _candidates(current):
            candidate = _normalize(candidate)
            if candidate == current:
                continue
            probes += 1
            if probes > max_probes:
                break
            try:
                hit = reproduces(candidate)
            except Exception:
                hit = False
            if hit:
                current = candidate
                progress = True
                break
    return current

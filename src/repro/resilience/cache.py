"""The disk-backed cross-run verdict cache (schema ``repro-cache/1``),
managed as a real store.

``analyze --cache-dir DIR`` persists settled analysis results *across*
invocations: run the same analysis twice and the second run answers
its questions from disk instead of the solver. The cache is a
directory of per-invocation journal files —

    <cache_dir>/<fingerprint>.jsonl

— where the fingerprint is :func:`~repro.resilience.journal.
journal_fingerprint` of (source, head, in/out variables, engine
flags). Keying the *file name* on the fingerprint is what makes the
cache sound: an edited source, a different head, or any flag change
produces a different fingerprint, so a stale entry can never be
replayed into a mismatched analysis. Resource flags (deadline,
question timeout, escalation) are deliberately outside the
fingerprint, exactly as for ``--resume``: a SAT/UNSAT answer is valid
under any resource budget.

Each cache file reuses the journal codec (CRC-per-line JSONL, torn
tails dropped on read) and the journal record shapes:

``meta``       schema ``repro-cache/1`` + the invocation fingerprint.
``question``   one *decided* exploitation question (SAT/UNSAT only —
               a timeout or budget UNKNOWN may resolve on a retry and
               is therefore never cached, mirroring the resume
               journal's replay rules).
``verdict`` /  a fully settled, *clean* loop: not degraded, no
``loop_done``  timeouts, no UNKNOWNs, no solver failures, and no
               answers itself replayed from a journal or cache. Clean
               loops replay wholesale — full counters restored — so a
               cache-warm ``analyze --json`` is byte-identical (modulo
               wall-clock timers) to the cold run that populated it.

Question records are the insurance layer: a run that crashes mid-loop
still leaves its decided questions behind, and the next run answers
those from disk even though the loop never settled.

**Writers are exclusive.** A writable :class:`VerdictCache` takes an
advisory ``flock`` on ``<fingerprint>.jsonl.lock`` for its whole
lifetime; a second concurrent writer on the same fingerprint cannot
append (it degrades to read-only lookups with a warning) — two
processes can therefore never interleave contradictory records into
one file. ``--backend process`` serve workers open the file
``readonly`` for question lookups (no lock — the CRC codec drops any
torn tail they race against) and ship new results back to the parent,
the single writer, which stores them.

**The loader never takes a side.** Files written before the lock
existed (or through byte corruption) can carry two records for the
same key with different answers. :func:`reconcile_records` squashes
exact duplicates silently, but a genuinely *conflicting* key — same
(loop, ctx, question) with different results, or a loop with two
disagreeing ``loop_done``/``verdict`` payloads — is logged and dropped
entirely, so the affected question/loop is re-asked instead of
silently trusting whichever record happened to land last.

:class:`CacheStore` is the directory-level manager: it opens
per-fingerprint caches, enforces a size budget with LRU eviction
(recency = file mtime, bumped on every valid open), and compacts
files offline — squashing duplicates and surfacing conflicts as
:class:`CacheConflictError` — using the journal's
write-temp + fsync + atomic-rename idiom so a crash mid-compaction
leaves the original file intact.
"""

from __future__ import annotations

import json
import logging
import os
from typing import Dict, List, Optional, Tuple

from .journal import (JournalWriter, ResumeState, _encode_line, read_journal)

try:  # advisory locking is POSIX-only; elsewhere writers go unlocked
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

logger = logging.getLogger(__name__)

CACHE_SCHEMA = "repro-cache/1"

#: Suffix of the advisory writer-lock file next to each cache file.
LOCK_SUFFIX = ".lock"

#: Suffix of the compaction scratch file (never matched by the store's
#: ``*.jsonl`` listing, so a crash mid-compaction leaves no half-state
#: a loader could pick up).
COMPACT_SUFFIX = ".compact.tmp"


class CacheStoreError(RuntimeError):
    """The store cannot perform the requested maintenance operation."""


class CacheConflictError(CacheStoreError):
    """A cache file carries contradictory records for the same key —
    the fossil of two unlocked concurrent writers. Compaction refuses
    to pick a winner unless explicitly told to drop the conflicting
    keys (they are then re-asked on the next analysis)."""

    def __init__(self, path: str, conflicts: List[str]) -> None:
        self.path = path
        self.conflicts = list(conflicts)
        super().__init__(
            f"{path}: {len(conflicts)} conflicting record key(s): "
            + "; ".join(conflicts))


class FileLock:
    """A non-blocking advisory ``flock`` on one lock file.

    ``flock`` locks are per open-file-description, so two
    :class:`VerdictCache` instances conflict even inside one process —
    exactly the contention the lock exists to detect. On platforms
    without ``fcntl`` the lock degrades to a no-op (documented:
    concurrent writers are only excluded on POSIX)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fd: Optional[int] = None

    def acquire(self) -> bool:
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            return True
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            return False
        self._fd = fd
        return True

    def release(self) -> None:
        if self._fd is not None:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            finally:
                os.close(self._fd)
                self._fd = None

    @property
    def held(self) -> bool:
        return fcntl is None or self._fd is not None


def _record_key(record: dict) -> Optional[tuple]:
    """The identity under which *record* may legally appear once."""
    kind = record.get("kind")
    if kind == "question":
        return ("question", record.get("loop"), record.get("ctx"),
                record.get("q"))
    if kind == "loop_done":
        return ("loop_done", record.get("loop"))
    if kind == "verdict":
        return ("verdict", record.get("loop"), record.get("array"))
    return None


def reconcile_records(records: List[dict], *, path: str = "<cache>",
                      ) -> Tuple[List[dict], int, List[str]]:
    """``(kept, duplicates, conflicts)`` of a recovered record list.

    Exact duplicate records (same key, byte-identical payload — e.g. a
    worker-replayed loop journaled twice) squash to one. A key whose
    records *disagree* is a conflict: every record under it is dropped
    — for a conflicting ``loop_done``/``verdict`` the loop's wholesale
    replay is withdrawn entirely (its question records survive on
    their own keys) — and the conflict is reported, never resolved by
    taking the last writer."""
    canonical: Dict[tuple, str] = {}
    conflicts: List[str] = []
    conflicting_keys: set = set()
    conflicting_loops: set = set()
    duplicates = 0
    for record in records:
        key = _record_key(record)
        if key is None:
            continue
        canon = json.dumps(record, sort_keys=True)
        prev = canonical.get(key)
        if prev is None:
            canonical[key] = canon
        elif prev == canon:
            duplicates += 1
        elif key not in conflicting_keys:
            conflicting_keys.add(key)
            conflicts.append(":".join(str(part) for part in key))
            if key[0] in ("loop_done", "verdict"):
                conflicting_loops.add(record.get("loop"))
    kept: List[dict] = []
    emitted: set = set()
    for record in records:
        key = _record_key(record)
        if key is None:
            kept.append(record)
            continue
        if key in emitted or key in conflicting_keys:
            continue
        if key[0] in ("loop_done", "verdict") \
                and record.get("loop") in conflicting_loops:
            continue
        emitted.add(key)
        kept.append(record)
    if conflicts:
        logger.warning(
            "verdict cache %s holds conflicting records for %d key(s) "
            "(%s): dropping them so they are re-asked — likely two "
            "unlocked concurrent writers; run 'repro cache compact "
            "--drop-conflicts' to repair the file",
            path, len(conflicts), ", ".join(conflicts[:5]))
    return kept, duplicates, conflicts


class VerdictCache:
    """One invocation's slice of the cross-run verdict cache.

    ``readonly=True`` opens the file for lookups only (the serve-worker
    mode): ``record``/``store_*`` become no-ops, and a missing or
    damaged file is simply an empty cache. A writable cache creates
    ``cache_dir`` on demand, takes the fingerprint's advisory writer
    lock — if another writer holds it, this cache degrades to
    read-only lookups (``lock_contended``) instead of corrupting the
    file — and appends through a
    :class:`~repro.resilience.journal.JournalWriter` (fsync off — the
    cache is an accelerator, not the durability layer; a torn tail is
    dropped by the CRC codec on the next load).
    """

    def __init__(self, cache_dir: str, fingerprint: str, *,
                 readonly: bool = False) -> None:
        self.cache_dir = cache_dir
        self.fingerprint = fingerprint
        self.path = os.path.join(cache_dir, f"{fingerprint}.jsonl")
        # Lookup hits / misses / fresh stores, for the end-of-run
        # summary and the ``cache.*`` metric counters.
        self.question_hits = 0
        self.question_misses = 0
        self.loop_hits = 0
        self.loop_misses = 0
        self.question_stores = 0
        self.loop_stores = 0
        #: True when a writable open found another live writer and
        #: degraded to read-only lookups.
        self.lock_contended = False
        self._lock: Optional[FileLock] = None
        if not readonly:
            os.makedirs(cache_dir, exist_ok=True)
            lock = FileLock(self.path + LOCK_SUFFIX)
            if lock.acquire():
                self._lock = lock
            else:
                logger.warning(
                    "verdict cache %s is held by another writer; this "
                    "run degrades to read-only lookups (nothing will "
                    "be stored)", self.path)
                self.lock_contended = True
                readonly = True
        self.readonly = readonly
        state, valid = self._load()
        self._state = state
        #: CRC-damaged lines the loader truncated away on read.
        self.dropped_lines = state.dropped
        self._writer: Optional[JournalWriter] = None
        self.appending = valid
        if not readonly:
            # A damaged/foreign file is abandoned (truncated), not
            # appended to: its records failed validation above.
            self._writer = JournalWriter(
                self.path, append=valid, fsync=False,
                meta={"schema": CACHE_SCHEMA, "fingerprint": fingerprint})
        elif valid:
            # LRU recency for the store's size budget: any valid open
            # counts as a use (writable opens touch mtime by writing).
            try:
                os.utime(self.path, None)
            except OSError:  # pragma: no cover - unwritable directory
                pass

    def _load(self) -> Tuple[ResumeState, bool]:
        """Index the existing cache file; ``valid`` is False when the
        file is absent or its meta does not match this invocation.
        Duplicate records squash; conflicting keys are logged and
        dropped (:func:`reconcile_records`) — never last-writer-wins.
        """
        self.conflicts = 0
        self.duplicate_records = 0
        if not os.path.exists(self.path):
            return ResumeState(None, []), False
        meta, records, dropped = read_journal(self.path)
        if meta is None or meta.get("schema") != CACHE_SCHEMA \
                or meta.get("fingerprint") != self.fingerprint:
            logger.warning("verdict cache %s has a bad or foreign header; "
                           "ignoring its contents", self.path)
            return ResumeState(None, []), False
        if dropped:
            logger.info("verdict cache %s: dropped %d damaged line(s)",
                        self.path, dropped)
        records, self.duplicate_records, conflict_keys = \
            reconcile_records(records, path=self.path)
        self.conflicts = len(conflict_keys)
        return ResumeState(meta, records, dropped), True

    # ------------------------------------------------------------ lookups
    @property
    def settled_loops(self) -> int:
        return self._state.settled_loops

    @property
    def settled_questions(self) -> int:
        return self._state.settled_questions

    def loop_done(self, loop_key: str) -> Optional[dict]:
        """The settled record of a clean cached loop, or None (counted
        as a loop miss — the engine probes exactly once per open
        loop)."""
        done = self._state.loop_done(loop_key)
        if done is None:
            self.loop_misses += 1
        return done

    def verdicts(self, loop_key: str) -> List[dict]:
        return self._state.verdicts(loop_key)

    def question(self, loop_key: str, ctx_path: str, question: str,
                 ) -> Optional[Tuple[str, Optional[Dict[str, int]]]]:
        """A decided (SAT/UNSAT) answer, or None. Bumps the hit
        counter — call only when the answer will actually be used."""
        hit = self._state.question(loop_key, ctx_path, question)
        if hit is not None:
            self.question_hits += 1
        else:
            self.question_misses += 1
        return hit

    def peek_question(self, loop_key: str, ctx_path: str, question: str,
                      ) -> Optional[Tuple[str, Optional[Dict[str, int]]]]:
        """Like :meth:`question` but without bumping the hit counter —
        for *planning* lookups (the question-sharding scheduler decides
        which positions to dispatch without consuming the answer; the
        merge path later calls :meth:`question` for the real, counted
        lookup)."""
        return self._state.question(loop_key, ctx_path, question)

    # ------------------------------------------------------------- stores
    def record(self, kind: str, **fields) -> None:
        """Journal-writer contract entry point (no-op when readonly)."""
        if self._writer is not None:
            self._writer.record(kind, **fields)

    def store_question(self, loop_key: str, array: str, ctx_path: str,
                       question: str, result: str,
                       witness: Optional[Dict[str, int]] = None) -> None:
        """Persist one decided answer. UNKNOWNs are rejected here, not
        at the call site: *never* caching an undecided answer is the
        cache's soundness rule, so it is enforced centrally."""
        if self.readonly or result not in ("sat", "unsat"):
            return
        if self._state.question(loop_key, ctx_path, question) is not None:
            return
        record = {"loop": loop_key, "array": array, "ctx": ctx_path,
                  "q": question, "result": result}
        if result == "sat" and witness is not None:
            record["witness"] = witness
        self.record("question", **record)
        self._state._questions[(loop_key, ctx_path, question)] = (
            result, witness)
        self.question_stores += 1

    def store_loop(self, loop_key: str, done: dict,
                   verdicts: List[dict]) -> None:
        """Persist one *clean* loop's full record set (the caller vouches
        for cleanliness — see :attr:`~repro.formad.engine.LoopAnalysis.
        cacheable`). Degraded records are refused outright: a safeguard
        fallback is not settled knowledge."""
        if self.readonly or done.get("degraded"):
            return
        if self._state.loop_done(loop_key) is not None:
            return
        verdict_records = [
            dict({k: v for k, v in verdict.items() if k != "kind"},
                 loop=loop_key)
            for verdict in verdicts]
        done_record = dict({k: v for k, v in done.items() if k != "kind"},
                           loop=loop_key)
        for record in verdict_records:
            self.record("verdict", **record)
        self.record("loop_done", **done_record)
        self._state._loops[loop_key] = dict(done_record, kind="loop_done")
        self._state._verdicts.setdefault(loop_key, []).extend(
            verdict_records)
        self.loop_stores += 1

    # ------------------------------------------------------------ summary
    @property
    def hits(self) -> int:
        """Total replay hits, loop-wholesale and per-question — the
        one-number health signal ``summary_data`` exports as ``hits``
        (and the CLI as the ``cache.hits`` metric counter)."""
        return self.question_hits + self.loop_hits

    def summary(self) -> str:
        return (f"verdict cache {self.path}: "
                f"{self.loop_hits} loop hit(s), "
                f"{self.question_hits} question hit(s), "
                f"{self.loop_stores} loop(s) and "
                f"{self.question_stores} question(s) stored")

    def summary_data(self) -> dict:
        """The structured end-of-run summary: the ``cache_summary``
        trace event's payload and ``analyze --json``'s ``cache`` key."""
        return {"path": self.path,
                "hits": self.hits,
                "loop_hits": self.loop_hits,
                "question_hits": self.question_hits,
                "loop_misses": self.loop_misses,
                "question_misses": self.question_misses,
                "loop_stores": self.loop_stores,
                "question_stores": self.question_stores,
                "conflicts": self.conflicts,
                "dropped_lines": self.dropped_lines}

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        if self._lock is not None:
            self._lock.release()
            self._lock = None


class CacheStore:
    """The directory-level manager of a ``--cache-dir`` store.

    One store = one directory of per-fingerprint cache files plus
    their writer-lock files. The store adds the lifecycle operations a
    bag of append-only files lacks:

    * :meth:`open` — a (locked) :class:`VerdictCache` for one
      fingerprint;
    * :meth:`evict` — LRU eviction by fingerprint file until the
      store fits ``max_bytes`` (recency = mtime; files whose writer
      lock is currently held are never evicted);
    * :meth:`compact` — offline rewrite squashing duplicate records
      and *detecting* conflicting verdicts
      (:class:`CacheConflictError`) instead of last-writer-wins, via
      write-temp + fsync + atomic rename so a crash mid-compaction
      leaves a loadable store.
    """

    def __init__(self, cache_dir: str,
                 max_bytes: Optional[int] = None) -> None:
        self.cache_dir = cache_dir
        self.max_bytes = max_bytes

    # ------------------------------------------------------------- access
    def open(self, fingerprint: str, *,
             readonly: bool = False) -> VerdictCache:
        return VerdictCache(self.cache_dir, fingerprint, readonly=readonly)

    def usage(self) -> List[Tuple[str, int, float]]:
        """``(fingerprint, bytes, mtime)`` per cache file, least
        recently used first."""
        entries: List[Tuple[str, int, float]] = []
        if not os.path.isdir(self.cache_dir):
            return entries
        for name in os.listdir(self.cache_dir):
            if not name.endswith(".jsonl"):
                continue
            path = os.path.join(self.cache_dir, name)
            try:
                stat = os.stat(path)
            except OSError:  # pragma: no cover - raced deletion
                continue
            entries.append((name[:-len(".jsonl")], stat.st_size,
                            stat.st_mtime))
        entries.sort(key=lambda entry: (entry[2], entry[0]))
        return entries

    def total_bytes(self) -> int:
        return sum(size for _, size, _ in self.usage())

    def stats(self) -> dict:
        usage = self.usage()
        return {"cache_dir": self.cache_dir,
                "files": len(usage),
                "total_bytes": sum(size for _, size, _ in usage),
                "max_bytes": self.max_bytes}

    # ----------------------------------------------------------- eviction
    def evict(self, max_bytes: Optional[int] = None) -> List[str]:
        """Delete least-recently-used fingerprint files until the store
        fits the byte budget. Files whose writer lock is currently held
        are in live use and are skipped. Returns the evicted
        fingerprints, oldest first."""
        budget = self.max_bytes if max_bytes is None else max_bytes
        if budget is None:
            return []
        usage = self.usage()
        total = sum(size for _, size, _ in usage)
        evicted: List[str] = []
        for fingerprint, size, _ in usage:
            if total <= budget:
                break
            path = os.path.join(self.cache_dir, f"{fingerprint}.jsonl")
            lock = FileLock(path + LOCK_SUFFIX)
            if not lock.acquire():
                logger.info("cache evict: %s is in live use; skipped",
                            path)
                continue
            try:
                try:
                    os.unlink(path)
                except FileNotFoundError:  # pragma: no cover - raced
                    continue
                try:
                    os.unlink(path + LOCK_SUFFIX)
                except OSError:  # pragma: no cover
                    pass
            finally:
                lock.release()
            total -= size
            evicted.append(fingerprint)
            logger.info("cache evict: removed %s (%d bytes)", path, size)
        return evicted

    # --------------------------------------------------------- compaction
    def compact(self, fingerprint: Optional[str] = None, *,
                drop_conflicts: bool = False) -> List[dict]:
        """Rewrite cache files without their duplicate records.

        Conflicting keys (contradictory verdicts for the same
        question or loop) raise :class:`CacheConflictError` unless
        ``drop_conflicts`` is set, in which case they are removed so
        the next analysis re-asks them. Each file is rewritten under
        its writer lock via the journal's write-temp + fsync + atomic
        rename idiom: a crash at any point leaves either the old or
        the new file, both loadable. Returns one summary dict per
        compacted file."""
        fingerprints = ([fingerprint] if fingerprint is not None
                        else [fp for fp, _, _ in self.usage()])
        summaries: List[dict] = []
        for fp in fingerprints:
            path = os.path.join(self.cache_dir, f"{fp}.jsonl")
            if not os.path.exists(path):
                raise CacheStoreError(f"no cache file for fingerprint "
                                      f"{fp!r} in {self.cache_dir}")
            lock = FileLock(path + LOCK_SUFFIX)
            if not lock.acquire():
                raise CacheStoreError(
                    f"{path} is held by a live writer; compact later")
            try:
                summaries.append(self._compact_one(fp, path,
                                                   drop_conflicts))
            finally:
                lock.release()
        return summaries

    def _compact_one(self, fingerprint: str, path: str,
                     drop_conflicts: bool) -> dict:
        meta, records, dropped = read_journal(path)
        if meta is None or meta.get("schema") != CACHE_SCHEMA:
            raise CacheStoreError(f"{path} has no valid repro-cache/1 "
                                  f"header; refusing to compact")
        kept, duplicates, conflicts = reconcile_records(records, path=path)
        if conflicts and not drop_conflicts:
            raise CacheConflictError(path, conflicts)
        tmp = path + COMPACT_SUFFIX
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(_encode_line(meta))
            for record in kept:
                fh.write(_encode_line(record))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        dirfd = os.open(os.path.dirname(os.path.abspath(path)),
                        os.O_RDONLY)
        try:
            os.fsync(dirfd)
        finally:
            os.close(dirfd)
        return {"fingerprint": fingerprint,
                "records_before": len(records),
                "records_after": len(kept),
                "duplicates_squashed": duplicates,
                "conflicts_dropped": len(conflicts),
                "damaged_lines_dropped": dropped}

"""Concrete-execution oracles for FormAD verdicts.

FormAD answers questions about *future adjoint accesses* (§5.4/§5.5):
every primal read of an active array becomes an adjoint increment (a
write), every primal write becomes an adjoint load-and-zero (a write),
and only exact primal increments become pure adjoint reads. A "safe"
verdict therefore claims: across any two distinct iterations of the
parallel loop, no two of these future accesses (at least one of them a
write) land on the same element.

:class:`AdjointShadowTracer` checks that claim without ever building
the adjoint. It runs the *primal* under the interpreter, classifies
every array reference the interpreter touches by its §5.4 adjoint
role — the interpreter hands the tracer the exact AST node of every
access, so classification is a dictionary lookup, not expression
re-evaluation — and logs ``(iteration, element)`` pairs. A cross-
iteration pair on one element, at least one side a future write, is a
concrete counterexample: if FormAD said "safe" for that array, the
proof is wrong; if FormAD said SAT ("possible conflict"), the witness
is corroborated rather than spurious.

This mirrors :func:`repro.analysis.references.collect_region_references`
on purpose: the oracle must judge the engine's claims over exactly the
access inventory the engine reasoned about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.increments import match_increment
from ..ir.expr import ArrayRef, Expr, walk
from ..ir.program import Procedure
from ..ir.stmt import Assign, If, Loop, Pop, Push, Stmt
from ..runtime.interp import Interpreter, Tracer
from ..runtime.memory import Memory

#: Adjoint roles of a primal access (§5.4).
ADJ_READ = "adjoint-read"      # primal exact increment
ADJ_WRITE = "adjoint-write"    # primal read (increment) or write (load+zero)


def adjoint_kind_map(loop: Loop) -> Dict[int, Tuple[str, str]]:
    """``id(AST node) -> (array, adjoint role)`` for one parallel region.

    Keyed by object identity of the :class:`ArrayRef` nodes because the
    interpreter reports exactly those nodes back through the tracer's
    ``ref`` argument.
    """
    kinds: Dict[int, Tuple[str, str]] = {}

    def reads(expr: Expr) -> None:
        for node in walk(expr):
            if isinstance(node, ArrayRef):
                kinds[id(node)] = (node.name, ADJ_WRITE)

    def visit(stmts: Sequence[Stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, Assign):
                inc = match_increment(stmt)
                if inc is not None and isinstance(stmt.target, ArrayRef):
                    kinds[id(stmt.target)] = (stmt.target.name, ADJ_READ)
                    for idx in stmt.target.indices:
                        reads(idx)
                    reads(inc.delta)
                    continue
                if isinstance(stmt.target, ArrayRef):
                    kinds[id(stmt.target)] = (stmt.target.name, ADJ_WRITE)
                    for idx in stmt.target.indices:
                        reads(idx)
                reads(stmt.value)
            elif isinstance(stmt, If):
                reads(stmt.cond)
                visit(stmt.then_body)
                visit(stmt.else_body)
            elif isinstance(stmt, Loop):
                for e in (stmt.start, stmt.stop, stmt.step):
                    reads(e)
                visit(stmt.body)
            elif isinstance(stmt, Push):
                reads(stmt.value)
            elif isinstance(stmt, Pop):
                if isinstance(stmt.target, ArrayRef):
                    kinds[id(stmt.target)] = (stmt.target.name, ADJ_WRITE)
                    for idx in stmt.target.indices:
                        reads(idx)
    visit(loop.body)
    return kinds


@dataclass(frozen=True)
class Collision:
    """A concrete cross-iteration conflict among future adjoint accesses."""

    loop: str            # loop counter name
    array: str
    flat: int            # flat element index
    iter_a: int
    iter_b: int
    kind_a: str
    kind_b: str

    def __str__(self) -> str:
        return (f"{self.array}[flat {self.flat}]: {self.kind_a} at "
                f"{self.loop}={self.iter_a} vs {self.kind_b} at "
                f"{self.loop}={self.iter_b}")


class AdjointShadowTracer(Tracer):
    """Logs future-adjoint accesses during one primal interpretation."""

    def __init__(self, proc: Procedure) -> None:
        self._maps = {loop.uid: adjoint_kind_map(loop)
                      for loop in proc.parallel_loops()}
        self._names = {loop.uid: loop.var for loop in proc.parallel_loops()}
        self._active: Optional[int] = None
        self._iteration: Optional[int] = None
        # (loop_uid, array) -> flat -> list of (iteration, role)
        self.log: Dict[Tuple[int, str], Dict[int, List[Tuple[int, str]]]] = {}

    # -- interpreter callbacks ----------------------------------------
    def on_parallel_loop_begin(self, loop: Loop, iterations) -> None:
        if loop.uid in self._maps:
            self._active = loop.uid

    def on_parallel_loop_end(self, loop: Loop) -> None:
        if self._active == loop.uid:
            self._active = None

    def on_parallel_iteration_begin(self, loop: Loop, value: int) -> None:
        if self._active == loop.uid:
            self._iteration = value

    def on_parallel_iteration_end(self, loop: Loop, value: int) -> None:
        if self._active == loop.uid:
            self._iteration = None

    def _record(self, flat: int, ref) -> None:
        if self._active is None or self._iteration is None or ref is None:
            return
        entry = self._maps[self._active].get(id(ref))
        if entry is None:
            return
        array, role = entry
        per = self.log.setdefault((self._active, array), {})
        per.setdefault(flat, []).append((self._iteration, role))

    def on_read(self, array: str, flat: int, ref=None) -> None:
        self._record(flat, ref)

    def on_write(self, array: str, flat: int, *, atomic: bool,
                 ref=None) -> None:
        self._record(flat, ref)

    # -- oracle queries ------------------------------------------------
    def collision(self, loop_uid: int, array: str) -> Optional[Collision]:
        """First concrete cross-iteration conflict on *array*, if any."""
        per = self.log.get((loop_uid, array), {})
        loop_name = self._names.get(loop_uid, "?")
        for flat, entries in sorted(per.items()):
            writes = [(it, role) for it, role in entries
                      if role is ADJ_WRITE]
            for it_a, role_a in writes:
                for it_b, role_b in entries:
                    if it_b != it_a:
                        return Collision(loop_name, array, flat,
                                         it_a, it_b, role_a, role_b)
        return None

    def arrays_touched(self, loop_uid: int) -> List[str]:
        return sorted({a for uid, a in self.log if uid == loop_uid})


def run_shadow(
    proc: Procedure,
    bindings: Mapping[str, object] = (),
    extents: Mapping[str, Sequence[int]] = (),
    *,
    deadline=None,
) -> AdjointShadowTracer:
    """Interpret *proc* once under the shadow tracer. ``deadline``
    interrupts a pathological kernel between loop iterations."""
    memory = Memory.for_procedure(proc, bindings, extents)
    shadow = AdjointShadowTracer(proc)
    Interpreter(proc, memory, shadow, deadline=deadline).run()
    return shadow

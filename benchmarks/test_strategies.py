"""Deterministic codegen counters for every registered safeguard
strategy.

One kernel (the small stencil spec at reduced size) is differentiated
once per registered strategy and the *structure* of the generated
adjoint is counted: atomic statements, reduction clauses, parallel
loops, preaccumulation temporaries. The counts are machine-independent
— the same code must produce the same numbers anywhere — so
``check_regression.py`` compares them exactly against the committed
baseline (key ``strategies``). A drift means the code generator
changed behavior, not that the machine was slow.

Alphabetically after ``test_serving.py``: loads the existing
``BENCH_ANALYSIS.json`` (written fresh by ``test_analysis_perf.py``)
and updates it in place.
"""

import json
from pathlib import Path

from repro import differentiate
from repro.ad.strategies import registered_strategies
from repro.experiments.specs import small_stencil_spec
from repro.ir.stmt import Assign, Loop, walk_stmts

KERNEL = "stencil_small"


def _codegen_counters(proc) -> dict:
    stmts = list(walk_stmts(proc.body))
    return {
        "atomic_statements": sum(
            1 for s in stmts if isinstance(s, Assign) and s.atomic),
        "reduction_clauses": sum(
            len(s.reduction) for s in stmts
            if isinstance(s, Loop) and s.parallel),
        "parallel_loops": sum(
            1 for s in stmts if isinstance(s, Loop) and s.parallel),
        "preacc_temps": sum(
            1 for name in proc.locals if name.startswith("ad_pre")),
        "statements": len(stmts),
    }


def test_strategy_codegen_counters_recorded():
    spec = small_stencil_spec(n=64)
    section = {"kernel": KERNEL}
    for strategy in registered_strategies():
        adj = differentiate(spec.proc, spec.independents, spec.dependents,
                            strategy=strategy.name)
        section[strategy.name] = _codegen_counters(adj.procedure)

    # Sanity bars the counters must clear regardless of the baseline:
    # atomics guard every shared increment, reduction privatizes
    # instead, preaccumulate flushes once per buffered location, and
    # the fully hoisted transposed adjoint needs no safeguard at all.
    assert section["atomic"]["atomic_statements"] > 0
    assert section["reduction"]["reduction_clauses"] > 0
    assert section["reduction"]["atomic_statements"] == 0
    assert section["preaccumulate"]["preacc_temps"] > 0
    assert section["preaccumulate"]["atomic_statements"] == \
        section["preaccumulate"]["preacc_temps"]
    assert section["transposed"]["atomic_statements"] == 0
    assert section["transposed"]["reduction_clauses"] == 0
    assert section["transposed"]["parallel_loops"] >= 2
    assert section["shared"]["atomic_statements"] == 0

    path = Path(__file__).resolve().parent.parent / "BENCH_ANALYSIS.json"
    doc = {}
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except ValueError:
            doc = {}
    doc["strategies"] = section
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

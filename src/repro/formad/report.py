"""Rendering of FormAD analysis results (Table 1 of the paper).

One :class:`AnalysisReport` per analyzed kernel, with the paper's
columns: analysis time, model size, query count, unique index
expression count, and the region size in source lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .engine import LoopAnalysis


@dataclass
class AnalysisReport:
    """Table-1 row: one problem, aggregated over its parallel loops."""

    problem: str
    analyses: List[LoopAnalysis]

    @property
    def time_seconds(self) -> float:
        return sum(a.stats.time_seconds for a in self.analyses)

    @property
    def model_size(self) -> int:
        return sum(a.stats.model_size for a in self.analyses)

    @property
    def queries(self) -> int:
        return sum(a.stats.queries for a in self.analyses)

    @property
    def unique_exprs(self) -> int:
        return sum(a.stats.unique_exprs for a in self.analyses)

    @property
    def region_loc(self) -> int:
        return sum(a.stats.region_loc for a in self.analyses)

    @property
    def all_safe(self) -> bool:
        return all(a.all_safe for a in self.analyses)

    def row(self) -> tuple:
        return (self.problem, self.time_seconds, self.model_size,
                self.queries, self.unique_exprs, self.region_loc)


def format_table1(reports: Sequence[AnalysisReport]) -> str:
    """Render the Table-1 layout of the paper."""
    header = f"{'problem':<12} {'time':>7} {'Z3 size':>8} {'queries':>8} " \
             f"{'exprs':>6} {'loc':>5}"
    lines = [header, "-" * len(header)]
    for r in reports:
        lines.append(f"{r.problem:<12} {r.time_seconds:>7.3f} "
                     f"{r.model_size:>8d} {r.queries:>8d} "
                     f"{r.unique_exprs:>6d} {r.region_loc:>5d}")
    return "\n".join(lines)


def format_verdicts(analysis: LoopAnalysis) -> str:
    lines = [f"parallel loop over {analysis.loop.var!r}:"]
    for verdict in analysis.verdicts.values():
        lines.append(f"  {verdict}")
    if not analysis.verdicts:
        lines.append("  (no active shared arrays)")
    return "\n".join(lines)

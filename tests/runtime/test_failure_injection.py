"""Failure injection: the runtime must fail loudly and precisely when
programs violate its dynamic contracts."""

import numpy as np
import pytest

from repro.ir import (Assign, Call, Loop, ProcedureBuilder, REAL, Var,
                      INTEGER, parse_procedure, real_array)
from repro.runtime import (BoundsError, Interpreter, InterpreterError, Memory,
                           TapeError, run_procedure)


class TestBoundsViolations:
    def test_read_out_of_bounds(self):
        src = """
subroutine oob(x, y, n)
  integer, intent(in) :: n
  real, intent(in) :: x(10)
  real, intent(out) :: y
  y = x(n)
end subroutine oob
"""
        proc = parse_procedure(src)
        with pytest.raises(BoundsError, match="axis 0"):
            run_procedure(proc, {"x": np.zeros(10), "n": 11})
        with pytest.raises(BoundsError):
            run_procedure(proc, {"x": np.zeros(10), "n": 0})

    def test_write_out_of_bounds_through_indirection(self):
        src = """
subroutine oob(y, c, n)
  integer, intent(in) :: n
  real, intent(inout) :: y(10)
  integer, intent(in) :: c(5)
  !$omp parallel do
  do i = 1, n
    y(c(i)) = 1.0
  end do
end subroutine oob
"""
        proc = parse_procedure(src)
        c = np.array([1, 2, 99, 4, 5])
        with pytest.raises(BoundsError, match="'y'"):
            run_procedure(proc, {"y": np.zeros(10), "c": c, "n": 5})

    def test_error_message_names_array_and_range(self):
        src = """
subroutine oob(x, y)
  real, intent(in) :: x(3)
  real, intent(out) :: y
  y = x(7)
end subroutine oob
"""
        with pytest.raises(BoundsError, match=r"\[1, 3\]"):
            run_procedure(parse_procedure(src), {"x": np.zeros(3)})


class TestDomainErrors:
    def test_sqrt_of_negative(self):
        src = """
subroutine bad(x, y)
  real, intent(in) :: x
  real, intent(out) :: y
  y = sqrt(x)
end subroutine bad
"""
        proc = parse_procedure(src)
        with pytest.raises(InterpreterError, match="sqrt"):
            run_procedure(proc, {"x": -1.0})

    def test_log_of_zero(self):
        src = """
subroutine bad(x, y)
  real, intent(in) :: x
  real, intent(out) :: y
  y = log(x)
end subroutine bad
"""
        proc = parse_procedure(src)
        with pytest.raises(InterpreterError, match="log"):
            run_procedure(proc, {"x": 0.0})


class TestTapeContract:
    def test_double_pop(self):
        b = ProcedureBuilder("p")
        x = b.param("x", REAL)
        b.push("ch", 1.0)
        b.pop("ch", x)
        b.pop("ch", x)
        with pytest.raises(TapeError, match="'ch'"):
            run_procedure(b.build())

    def test_wrong_channel(self):
        b = ProcedureBuilder("p")
        x = b.param("x", REAL)
        b.push("a", 1.0)
        b.pop("b", x)
        with pytest.raises(TapeError, match="'b'"):
            run_procedure(b.build())

    def test_cross_iteration_pop_fails(self):
        # A pop keyed to a different parallel iteration must not see
        # another iteration's pushes.
        b = ProcedureBuilder("p")
        a = b.param("a", real_array(4))
        with b.parallel_do("i", 1, 4) as i:
            b.push("t", a[i])
            b.pop("t", a[i])  # same iteration: fine
        run_procedure(b.build(), {"a": np.ones(4)})
        b2 = ProcedureBuilder("q")
        a2 = b2.param("a", real_array(4))
        with b2.parallel_do("i", 1, 4) as i:
            b2.push("t", a2[i])
        with b2.parallel_do("i2", 11, 14) as i2:  # keys never pushed
            b2.pop("t", a2[i2 - 10])
        with pytest.raises(TapeError):
            run_procedure(b2.build(), {"a": np.ones(4)})


class TestMemoryContracts:
    def test_unknown_scalar_write(self):
        b = ProcedureBuilder("p")
        b.param("x", REAL)
        proc = b.build()
        mem = Memory.for_procedure(proc)
        with pytest.raises(KeyError):
            mem.set_scalar("ghost", 1.0)

    def test_binding_shape_mismatch(self):
        b = ProcedureBuilder("p")
        b.param("x", real_array(5))
        with pytest.raises(ValueError, match="extent"):
            Memory.for_procedure(b.build(), {"x": np.zeros(7)})

    def test_assumed_size_without_data_or_extent(self):
        b = ProcedureBuilder("p")
        b.param("x", real_array(None))
        with pytest.raises(ValueError, match="assumed-size"):
            Memory.for_procedure(b.build())

    def test_assumed_size_with_explicit_extent(self):
        b = ProcedureBuilder("p")
        b.param("x", real_array(None))
        mem = Memory.for_procedure(b.build(), extents={"x": [12]})
        assert mem.array("x").shape == (12,)

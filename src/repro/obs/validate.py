"""Trace/metrics validation: ``python -m repro.obs.validate``.

Two modes::

    python -m repro.obs.validate TRACE.jsonl
    python -m repro.obs.validate --metrics METRICS.json

The first checks a JSONL trace against the version-1 event schema
(structure, unknown-field rejection, span begin/end discipline — this
includes worker-re-emitted events carrying ``worker_id``/``partial``
and the ``repro-metrics/2`` payload of the final ``metrics`` event).
The second checks a standalone metrics snapshot (an ``analyze
--progress`` heartbeat line, or the ``metrics`` payload CI extracts
from a trace) against :mod:`repro.obs.metrics` — accepting both
``repro-metrics/1`` and ``/2`` and rejecting unknown schema versions
with a clear error. Exits 0 when valid, 1 listing the violations
otherwise; CI runs both modes over its recorded artifacts.
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional, Sequence

from .events import validate_events
from .metrics import validate_metrics
from .tracer import load_trace


def validate_file(path: str) -> List[str]:
    """All schema errors of the JSONL trace at *path*."""
    try:
        events = load_trace(path)
    except (OSError, ValueError) as exc:
        return [str(exc)]
    if not events:
        return ["empty trace"]
    return validate_events(events)


def validate_metrics_file(path: str) -> List[str]:
    """All schema errors of the JSON metrics snapshot at *path*."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        return [str(exc)]
    return validate_metrics(doc)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    metrics_mode = "--metrics" in args
    if metrics_mode:
        args.remove("--metrics")
    if len(args) != 1:
        print("usage: python -m repro.obs.validate TRACE.jsonl\n"
              "       python -m repro.obs.validate --metrics METRICS.json",
              file=sys.stderr)
        return 2
    errors = (validate_metrics_file if metrics_mode
              else validate_file)(args[0])
    if errors:
        for error in errors:
            print(f"invalid: {error}", file=sys.stderr)
        return 1
    print(f"{args[0]}: valid")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

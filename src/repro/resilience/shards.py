"""Multiprocess shard scheduler (the ``--backend process`` runtime).

``--jobs N`` with the default thread backend fans loops out over a
``ThreadPoolExecutor`` — but the analysis is pure Python, so the GIL
serializes the actual solving and N threads buy almost nothing. This
module is the fix: N **persistent worker processes** (``python -m
repro.resilience.worker --serve``), each running a real interpreter of
its own, pulling loop-granularity shards from a shared work queue
(work-stealing: a worker that finishes early takes the next loop, so
one slow region never idles the rest of the pool).

Division of labor (docs/SCALING.md):

* **Workers** analyze. They never write the parent's journal, trace
  stream, or verdict cache; each reply carries the journal-shaped
  records, buffered trace events, and cache metadata of one loop.
* **The parent** owns all I/O: it is the single journal writer, the
  single cache writer, and the single trace sink. Each shard's feeder
  thread (named ``shard-<k>`` — the name trace events inherit) applies
  its worker's replies under one lock, so per-loop record blocks stay
  contiguous in the journal.
* **Replay stays parental**: settled loops from a ``--resume`` journal
  and clean loops from the ``--cache-dir`` verdict cache are replayed
  in the parent *before* sharding; only genuinely open loops are
  queued.

Fault handling matches ``--isolate``: a crashed, hung, or killed
worker degrades the loop it was holding (safeguards everywhere,
planned question counts — Table-1 totals stay fault-independent) and
the feeder respawns a fresh worker for its next shard. A
:class:`~repro.formad.engine.PrimalRaceError` reported by any worker
stops the pool and is re-raised, exactly as the inline analysis would.

The default backend stays ``thread``: its output is byte-identical to
the process backend (tests/resilience/test_backend_identity.py keeps
that true), so nothing changes unless ``--backend process`` is asked
for.
"""

from __future__ import annotations

import bisect
import heapq
import json
import logging
import os
import queue
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..obs.clock import ClockSync
from .journal import rebuild_analysis
from .workers import (_DEADLINE_GRACE, IsolationConfig, WorkerOutcome,
                      _worker_env)

logger = logging.getLogger(__name__)


def _fold_worker_events(tracer, items, *, worker_id=None, clock=None,
                        window=None, partial=False) -> int:
    """Re-emit one reply's buffered worker events through the parent's
    tracer, tagging each with its ``worker_id`` and normalizing its
    worker-side timestamp onto the parent timeline (clamped into the
    carrying request's send/receive *window* — see
    :mod:`repro.obs.clock`). ``partial=True`` marks telemetry recovered
    from a shard whose worker died before finishing. Also feeds the
    ``solver.check_seconds`` histogram, which worker-side solvers
    cannot reach. Returns the number of events folded."""
    if not items:
        return 0
    count = 0
    for item in items:
        etype, fields = str(item[0]), dict(item[1])
        if tracer.enabled:
            if worker_id is not None:
                fields["worker_id"] = worker_id
            if partial:
                fields["partial"] = True
            if clock is not None and len(item) > 2 and item[2] is not None:
                pc = clock.to_parent(float(item[2]), window=window)
                if pc is not None:
                    fields["t"] = tracer.to_trace_time(pc)
            tracer.emit(etype, **fields)
        if etype == "solver_check":
            tracer.observe("solver.check_seconds",
                           float(item[1].get("dur_s") or 0.0))
        count += 1
    return count


class WorkerGone(RuntimeError):
    """A serve worker died, went silent, or answered garbage."""

    def __init__(self, status: str, detail: str) -> None:
        super().__init__(detail)
        #: ``crash`` or ``timeout`` — becomes the WorkerOutcome status.
        self.status = status
        self.detail = detail


@dataclass(frozen=True)
class ShardConfig:
    """How ``--backend process`` runs its shard workers."""

    #: Number of worker processes (capped by the open-loop count).
    jobs: int = 2
    #: Hard wall-clock cap per shard request, enforced by SIGKILL.
    kill_timeout: float = 60.0
    #: Interpreter for the worker processes.
    python: str = sys.executable
    #: Extra environment entries for the workers (tests inject
    #: ``REPRO_WORKER_FAULT`` here).
    extra_env: Optional[Dict[str, str]] = None

    def isolation(self) -> IsolationConfig:
        """The equivalent one-shot config (shared env construction)."""
        return IsolationConfig(kill_timeout=self.kill_timeout,
                               python=self.python, extra_env=self.extra_env)


class WorkerClient:
    """One persistent serve worker and its line-protocol plumbing.

    stdout is drained by a dedicated reader thread into a queue, so
    every request gets a *timeout-bounded* wait for its reply line — a
    hung worker surfaces as :class:`WorkerGone` (``timeout``) instead
    of blocking the feeder forever. stderr is drained too (into a
    short tail kept for crash diagnostics) so a chatty worker can
    never deadlock on a full pipe.
    """

    def __init__(self, config: ShardConfig,
                 init_request: Optional[dict] = None,
                 worker_id: Optional[str] = None) -> None:
        #: Stable pool-slot identity ("w0", "w1", ...) stamped onto
        #: every trace event this worker's replies carry.
        self.worker_id = worker_id
        #: The clock-offset handshake estimate (updated every reply).
        self.clock = ClockSync()
        #: The (send, recv) perf_counter bracket of the last request —
        #: the clamp window for its buffered event timestamps.
        self.last_window: Optional[Tuple[float, float]] = None
        #: Wall-clock seconds this client spent serving requests.
        self.busy_s = 0.0
        #: The loop keys the worker sees (a cheap contract check),
        #: populated by :meth:`init`.
        self.loops: List[str] = []
        self._proc = subprocess.Popen(
            [config.python, "-m", "repro.resilience.worker", "--serve"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True,
            env=_worker_env(config.isolation()))
        self._lines: "queue.Queue[Optional[str]]" = queue.Queue()
        self._stderr_tail: deque = deque(maxlen=20)
        threading.Thread(target=self._read_stdout, daemon=True).start()
        threading.Thread(target=self._read_stderr, daemon=True).start()
        if init_request is not None:
            self.init(init_request, timeout=config.kill_timeout)

    def init(self, init_request: dict, timeout: float) -> None:
        """(Re-)initialize the worker for one analysis run. A serve
        worker builds a fresh engine per init (and clears its clausify
        cache), so re-initing an already-warm worker is the pool's way
        of starting a new run without paying the process spawn."""
        reply = self.request(init_request, timeout=timeout)
        if not reply.get("ok"):
            raise WorkerGone("crash", f"worker init failed: {reply!r}")
        self.loops = list(reply.get("loops", []))

    # ------------------------------------------------------------ plumbing
    def _read_stdout(self) -> None:
        try:
            for line in self._proc.stdout:
                self._lines.put(line)
        except ValueError:  # pragma: no cover - file closed under us
            pass
        self._lines.put(None)

    def _read_stderr(self) -> None:
        try:
            for line in self._proc.stderr:
                self._stderr_tail.append(line.rstrip())
        except ValueError:  # pragma: no cover
            pass

    def _death_detail(self, fallback: str) -> str:
        try:
            # The reader saw EOF an instant before the child is
            # reapable; give it a moment so the detail can name the
            # exit status or signal instead of just "closed stdout".
            self._proc.wait(timeout=1.0)
        except subprocess.TimeoutExpired:
            pass
        rc = self._proc.poll()
        if rc is not None and rc < 0:
            detail = f"worker killed by signal {-rc}"
        elif rc is not None:
            detail = f"worker exited with status {rc}"
        else:
            detail = fallback
        if self._stderr_tail:
            detail += f": {self._stderr_tail[-1]}"
        return detail

    # ------------------------------------------------------------ protocol
    def request(self, request: dict, timeout: float) -> dict:
        send_pc = time.perf_counter()
        try:
            self._proc.stdin.write(json.dumps(request) + "\n")
            self._proc.stdin.flush()
        except (BrokenPipeError, OSError) as exc:
            raise WorkerGone(
                "crash", self._death_detail(f"worker pipe broke: {exc}"))
        try:
            line = self._lines.get(timeout=timeout)
        except queue.Empty:
            raise WorkerGone(
                "timeout",
                f"worker exceeded its {timeout:.1f}s kill timeout")
        if line is None:
            raise WorkerGone("crash",
                             self._death_detail("worker closed its stdout"))
        try:
            reply = json.loads(line)
        except ValueError:
            raise WorkerGone("crash", "worker produced unparsable output")
        if not isinstance(reply, dict):
            raise WorkerGone("crash", "worker produced a non-object reply")
        recv_pc = time.perf_counter()
        self.busy_s += recv_pc - send_pc
        self.last_window = (send_pc, recv_pc)
        if isinstance(reply.get("clock"), (int, float)):
            self.clock.update(float(reply["clock"]), send_pc, recv_pc)
        return reply

    def kill(self) -> None:
        if self._proc.poll() is None:
            self._proc.kill()
        try:
            self._proc.wait(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover
            pass

    def shutdown(self) -> None:
        try:
            self._proc.stdin.write(json.dumps({"op": "shutdown"}) + "\n")
            self._proc.stdin.flush()
            self._proc.stdin.close()
        except (BrokenPipeError, OSError):
            pass
        try:
            self._proc.wait(timeout=5)
        except subprocess.TimeoutExpired:
            self.kill()


class WorkerPool:
    """A caller-owned pool of persistent serve workers.

    Historically the pool lived and died inside one
    :func:`analyze_sharded` call, so every invocation paid the full
    spawn + interpreter-boot cost. This class moves pool lifetime to
    the caller: the ``repro serve`` daemon keeps one pool warm across
    requests, while the one-shot CLI path builds a throwaway pool per
    run (same behavior as before).

    The pool is *lazily* populated: slot ``k`` spawns on its first
    :meth:`client` call and stays alive until it dies
    (:meth:`drop`) or the pool shuts down. Each analysis run starts
    with :meth:`begin_run`, which bumps a run tag; a slot whose tag is
    stale is re-initialized (cheap — engine construction, no model
    build) before serving its first request of the run. The re-init is
    mandatory even for a repeated identical run: serve workers memoize
    per-loop results and drain their record buffers per reply, so a
    stale engine would answer a repeat dispatch with empty records.

    Thread-safety: feeders touch disjoint slots (slot ``k`` belongs to
    feeder ``k``), so per-slot state needs no lock; ``begin_run`` /
    ``shutdown`` must not race in-flight feeders (the daemon
    serializes runs).
    """

    def __init__(self, config: ShardConfig, size: int) -> None:
        self.config = config
        self.size = max(1, size)
        self._slots: List[Optional[WorkerClient]] = [None] * self.size
        self._tags: List[int] = [0] * self.size
        self._init_request: Optional[dict] = None
        self._run_tag = 0
        #: Total processes spawned over the pool's lifetime (the
        #: daemon's warm-pool health signal: stops growing once warm).
        self.spawns = 0

    def begin_run(self, init_request: dict) -> None:
        """Start a new analysis run: every slot re-inits with
        *init_request* before serving its first request of the run."""
        self._init_request = init_request
        self._run_tag += 1

    def is_live(self, k: int) -> bool:
        return self._slots[k] is not None

    def peek(self, k: int) -> Optional[WorkerClient]:
        """Slot *k*'s live client, or None — no spawn, no re-init (for
        teardown paths that must not resurrect a dead worker)."""
        return self._slots[k]

    def client(self, k: int, *, tracer=None) -> WorkerClient:
        """The (spawned, run-initialized) worker of slot *k*. Emits the
        ``clock_sync`` trace event on a fresh spawn, exactly as the
        inline spawn path did. Raises :class:`WorkerGone` (with the
        slot already dropped) when the spawn or init fails."""
        if self._init_request is None:
            raise RuntimeError("WorkerPool.begin_run() must run before "
                               "client()")
        client = self._slots[k]
        fresh = client is None
        if fresh:
            client = WorkerClient(self.config, worker_id=f"w{k}")
            self._slots[k] = client
            self._tags[k] = 0
            self.spawns += 1
        if self._tags[k] != self._run_tag:
            try:
                client.init(self._init_request,
                            timeout=self.config.kill_timeout)
            except WorkerGone:
                self.drop(k)
                raise
            self._tags[k] = self._run_tag
        if fresh and tracer is not None and tracer.enabled \
                and client.clock.offset is not None:
            tracer.emit("clock_sync", worker_id=client.worker_id,
                        offset_s=client.clock.offset,
                        rtt_s=client.clock.rtt)
        return client

    def drop(self, k: int) -> None:
        """Kill slot *k*'s worker (it died or answered garbage); the
        next :meth:`client` call respawns it."""
        client = self._slots[k]
        if client is not None:
            client.kill()
            self._slots[k] = None

    def shutdown(self) -> None:
        for k, client in enumerate(self._slots):
            if client is not None:
                client.shutdown()
                self._slots[k] = None


def _init_request(engine, source: str, head: str,
                  independents: Sequence[str], dependents: Sequence[str], *,
                  resume_path: Optional[str],
                  cache_dir: Optional[str],
                  fingerprint: Optional[str]) -> dict:
    return {
        "op": "init",
        "source": source,
        "head": head,
        "independents": list(independents),
        "dependents": list(dependents),
        "flags": engine.fingerprint_flags(),
        "question_timeout": engine.question_timeout,
        "escalation": {
            "max_attempts": engine.escalation.max_attempts,
            "growth": engine.escalation.growth,
            "max_scale": engine.escalation.max_scale,
            "jitter": engine.escalation.jitter,
        },
        "resume": resume_path,
        "cache_dir": cache_dir,
        "fingerprint": fingerprint,
        "trace": engine.tracer.enabled,
    }


def _apply_reply(engine, cache, loop, key: str, reply: dict, *,
                 worker_id=None, clock=None, window=None):
    """Apply one shard reply in the parent: journal its records, store
    its decided questions (and, if clean, the whole loop) in the
    verdict cache, re-emit its trace events, and rebuild the
    :class:`~repro.formad.engine.LoopAnalysis`. Callers hold the
    scheduler's apply lock, so one loop's records stay contiguous.

    A structurally broken reply (no ``loop_done``) still folds whatever
    trace events *did* arrive — marked ``partial`` — before raising;
    silently dropping telemetry that made it across the wire hides
    exactly the failures the trace exists to explain."""
    journal = engine._journal
    tracer = engine.tracer
    done: Optional[dict] = None
    verdicts: List[dict] = []
    for item in reply.get("records", []):
        kind, fields = str(item[0]), dict(item[1])
        if journal is not None:
            journal.record(kind, **fields)
        if kind == "loop_done":
            done = fields
        elif kind == "verdict":
            verdicts.append(fields)
        elif kind == "question" and cache is not None:
            cache.store_question(
                str(fields.get("loop", key)), str(fields.get("array", "")),
                str(fields.get("ctx", "")), str(fields.get("q", "")),
                str(fields.get("result", "")), fields.get("witness"))
    if done is None:
        _fold_worker_events(tracer, reply.get("events"),
                            worker_id=worker_id, clock=clock,
                            window=window, partial=True)
        raise WorkerGone("crash", "worker reply missing its loop_done record")
    if cache is not None:
        cache.question_hits += int(reply.get("cache_hits") or 0)
        if reply.get("cacheable"):
            cache.store_loop(key, done, verdicts)
    _fold_worker_events(tracer, reply.get("events"), worker_id=worker_id,
                        clock=clock, window=window)
    analysis = rebuild_analysis(loop, done, verdicts, resumed=False)
    analysis.cacheable = bool(reply.get("cacheable"))
    return analysis


def analyze_sharded(
    engine,
    source: str,
    head: str,
    independents: Sequence[str],
    dependents: Sequence[str],
    *,
    config: Optional[ShardConfig] = None,
    resume_path: Optional[str] = None,
    cache_dir: Optional[str] = None,
    fingerprint: Optional[str] = None,
    pool: Optional[WorkerPool] = None,
) -> Tuple[List, List[WorkerOutcome]]:
    """Analyze every parallel loop of *engine*'s procedure across a
    pool of persistent worker processes.

    Returns ``(analyses, outcomes)`` in loop order, mirroring
    :func:`~repro.resilience.workers.analyze_isolated` — plus the
    ``resumed``/``cached`` outcomes of loops the parent replayed
    without dispatching a shard.

    *pool* is the caller-owned worker pool; when omitted, a throwaway
    pool is built and torn down inside this call (the one-shot CLI
    behavior). A provided pool is left alive for the next run — that
    is the ``repro serve`` warm path.
    """
    from ..formad.engine import PrimalRaceError

    config = config or ShardConfig()
    tracer = engine.tracer
    cache = engine._vcache
    loops = list(engine.proc.parallel_loops())
    slots: List[Optional[object]] = [None] * len(loops)
    outcomes: List[Optional[WorkerOutcome]] = [None] * len(loops)
    pending: "queue.Queue" = queue.Queue()
    for index, loop in enumerate(loops):
        key = engine.loop_key(loop)
        replayed = engine._replay_settled(loop)
        if replayed is not None:
            slots[index] = replayed
            outcomes[index] = WorkerOutcome(key, "resumed")
            continue
        replayed = engine._replay_cached(loop)
        if replayed is not None:
            slots[index] = replayed
            outcomes[index] = WorkerOutcome(key, "cached")
            continue
        pending.put((index, loop, time.perf_counter()))
    if pending.empty():
        return list(slots), list(outcomes)

    init_request = _init_request(engine, source, head, independents,
                                 dependents, resume_path=resume_path,
                                 cache_dir=cache_dir, fingerprint=fingerprint)
    owned_pool = pool is None
    if pool is None:
        pool = WorkerPool(config, max(1, min(config.jobs, pending.qsize())))
    pool.begin_run(init_request)
    apply_lock = threading.Lock()
    race: List[PrimalRaceError] = []
    tracer.gauge("scheduler.queue_depth", pending.qsize())

    def degrade(index: int, loop, key: str, status: str, detail: str,
                elapsed: float, *, phase: str = "worker",
                worker_id=None) -> None:
        with apply_lock:
            if tracer.enabled:
                extra = ({"worker_id": worker_id}
                         if worker_id is not None else {})
                tracer.emit("worker", loop=key, status=status,
                            dur_s=elapsed, detail=detail, **extra)
            slots[index] = engine.degraded_analysis(
                loop, f"shard {detail}", phase=phase)
            outcomes[index] = WorkerOutcome(key, status, detail, elapsed)

    def shard(k: int) -> None:
        wid = f"w{k}"
        started = time.perf_counter()
        busy = 0.0
        spawned = False
        try:
            while not race:
                try:
                    index, loop, enqueued = pending.get_nowait()
                except queue.Empty:
                    break
                now = time.perf_counter()
                wait_s = now - enqueued
                tracer.gauge("scheduler.queue_depth", pending.qsize())
                tracer.counter("scheduler.dispatched")
                tracer.observe("scheduler.queue_wait_seconds", wait_s)
                key = engine.loop_key(loop)
                if tracer.enabled:
                    tracer.emit("queue_wait", loop=key, wait_s=wait_s,
                                worker_id=wid)
                if index % n != k:
                    # Work-stealing made visible: under a balanced
                    # round-robin this feeder would serve loops with
                    # index ≡ k (mod pool size); any other pull means
                    # it out-ran a sibling and took its share.
                    tracer.counter("scheduler.steals")
                    if tracer.enabled:
                        tracer.emit("steal", loop=key, worker_id=wid)
                deadline = engine.deadline
                if deadline is not None and deadline.expired():
                    degrade(index, loop, key, "timeout",
                            "run deadline expired before the shard was "
                            "dispatched", 0.0, phase="deadline")
                    continue
                start = time.perf_counter()
                try:
                    if not pool.is_live(k) and spawned:
                        # not the lazy first spawn: this feeder's worker
                        # died earlier and a fresh one takes over
                        tracer.counter("scheduler.respawns")
                    client = pool.client(k, tracer=tracer)
                    spawned = True
                    budget = config.kill_timeout
                    if deadline is not None:
                        budget = min(budget,
                                     max(deadline.remaining(), 0.0)
                                     + _DEADLINE_GRACE)
                    with tracer.span("shard.request", loop=key,
                                     worker_id=wid):
                        reply = client.request(
                            {"op": "analyze", "loop_key": key,
                             "deadline_remaining": (deadline.remaining()
                                                    if deadline is not None
                                                    else None)},
                            timeout=budget)
                        elapsed = time.perf_counter() - start
                        busy += elapsed
                        error = reply.get("error")
                        if error is None:
                            with apply_lock:
                                try:
                                    analysis = _apply_reply(
                                        engine, cache, loop, key, reply,
                                        worker_id=wid, clock=client.clock,
                                        window=client.last_window)
                                except WorkerGone as exc:
                                    if tracer.enabled:
                                        tracer.emit("worker", loop=key,
                                                    status=exc.status,
                                                    dur_s=elapsed,
                                                    detail=exc.detail,
                                                    worker_id=wid)
                                    slots[index] = engine.degraded_analysis(
                                        loop, f"shard {exc.detail}")
                                    outcomes[index] = WorkerOutcome(
                                        key, exc.status, exc.detail, elapsed)
                                    continue
                                if tracer.enabled:
                                    tracer.emit("worker", loop=key,
                                                status="ok", dur_s=elapsed,
                                                worker_id=wid)
                                slots[index] = analysis
                                outcomes[index] = WorkerOutcome(
                                    key, "ok", elapsed=elapsed)
                            continue
                except WorkerGone as exc:
                    elapsed = time.perf_counter() - start
                    busy += elapsed
                    pool.drop(k)  # a fresh worker serves the next shard
                    if tracer.enabled:
                        # The worker died holding its event buffer: at
                        # least this shard's telemetry never arrived.
                        tracer.counter("telemetry.dropped_events")
                    degrade(index, loop, key, exc.status, exc.detail,
                            elapsed, worker_id=wid)
                    continue
                # error reply: fold any telemetry it carried, then
                # degrade (PrimalRace aborts the whole pool instead).
                if error.get("type") == "PrimalRaceError":
                    race.append(PrimalRaceError(error.get("message", "")))
                    break
                with apply_lock:
                    _fold_worker_events(tracer, reply.get("events"),
                                        worker_id=wid, clock=client.clock,
                                        window=client.last_window,
                                        partial=True)
                degrade(index, loop, key, "crash",
                        f"worker error: {error.get('message', '')}",
                        elapsed, worker_id=wid)
        finally:
            # The pool (not the feeder) owns worker lifetime now; a
            # caller-provided pool keeps its workers warm for the next
            # run, a throwaway pool shuts down below.
            wall = time.perf_counter() - started
            tracer.counter(f"worker.{wid}.busy_seconds", busy)
            tracer.counter(f"worker.{wid}.idle_seconds",
                           max(wall - busy, 0.0))

    n = max(1, min(pool.size, pending.qsize()))
    threads = [threading.Thread(target=shard, args=(k,), name=f"shard-{k}")
               for k in range(n)]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        if owned_pool:
            pool.shutdown()
    if race:
        raise race[0]
    return list(slots), list(outcomes)


#: Below this many schedulable work items the process pool's spawn and
#: init cost dominates any GIL win, so ``--backend auto`` stays on
#: threads (see :func:`resolve_backend`).
AUTO_PROCESS_MIN_ITEMS = 2


def resolve_backend(backend: str, *, work_items: int,
                    cpus: Optional[int] = None) -> str:
    """Resolve ``--backend auto`` to ``thread`` or ``process``.

    The process backend only pays off when there are at least
    :data:`AUTO_PROCESS_MIN_ITEMS` independent work items (loops for
    ``--shard-unit loop``, Table-1 problems for ``experiments``) *and*
    more than one CPU to run them on; otherwise the spawn/init cost of
    the worker pool buys nothing and ``auto`` picks the thread backend,
    whose output is byte-identical anyway.
    """
    if backend != "auto":
        return backend
    if cpus is None:
        cpus = os.cpu_count() or 1
    if cpus <= 1 or work_items < AUTO_PROCESS_MIN_ITEMS:
        return "thread"
    return "process"


class QuestionShardingLost(RuntimeError):
    """The question-sharding pool could not serve a loop at all — no
    worker survived ``qprepare`` or the worker's question schedule
    disagreed with the parent's. The loop degrades to safeguards."""

    def __init__(self, status: str, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


class _QuestionRemote:
    """Parent-side scheduler of one loop's question-granularity fan-out
    (``--shard-unit question``, docs/SCALING.md).

    The engine's :meth:`~repro.formad.engine.FormADEngine._analyze`
    runs *in the parent* with this object as its ``remote``: the parent
    keeps the plan, the memo/resume/cache lookups, the merge, and every
    journal/cache/trace write, while the persistent serve workers hold
    the solvers. Identity with the serial run rests on three legs:

    * the question schedule is a pure function of the source and flags,
      so parent and workers compute it independently and the wire
      protocol ships bare positions;
    * a worker *fast-forwards* (translate-only) every planned position
      between its cursor and a dispatched position, reproducing the
      serial solver's translate-history, Ackermann naming, and clausify
      cache before answering — so per-question stat deltas and SAT
      witnesses match the serial run's;
    * a SAT answer cancels the rest of that array's block (the serial
      loop breaks there); workers and buffered answers whose state saw
      a cancelled position are conservatively reset/recomputed.

    Answers for positions the run deadline outruns, and re-asks after
    timeout answers (which the memo never stores), are dispatched
    on-demand by the merge side — those runs are already outside the
    byte-identity claim, exactly as for the loop-sharded backend.
    """

    _MAX_RESPAWNS = 2

    def __init__(self, engine, loop, pool: WorkerPool,
                 config: ShardConfig) -> None:
        self._engine = engine
        self._loop = loop
        self._key = engine.loop_key(loop)
        self._pool = pool   # shared across loops; slots index-owned below
        self._config = config
        self._lock = threading.Condition()
        self._schedule: List = []
        self._history: List[int] = []      # planned ask positions, sorted
        self._history_set: Set[int] = set()
        self._pending: List[int] = []      # min-heap of undispatched
        self._enqueued: Dict[int, float] = {}   # position -> push time
        self._answers: Dict[int, tuple] = {}
        self._cancelled: Set[int] = set()
        self._totals: Dict[str, float] = {}
        self._merge_cursor = -1
        self._closing = False
        self._fatal: Optional[str] = None
        self._threads: List[threading.Thread] = []
        self._states = [
            {"cursor": -1, "processed": set(), "needs_reset": False,
             "dead": False}
            for _ in range(pool.size)]

    # -------------------------------------------------- engine-facing API
    def prepare(self, refs, translator) -> dict:
        """Build the parent schedule, warm one worker's context, plan
        the fan-out, and start the feeders. Returns the build facts the
        parent folds into its stats (``consistency_checks``, plus the
        ``degraded`` message when buildModel failed)."""
        from ..formad.engine import PrimalRaceError

        engine = self._engine
        self._schedule = engine.question_schedule(self._loop, refs,
                                                  translator)
        prep = None
        last = "no workers configured"
        for k in range(self._pool.size):
            try:
                client = self._ensure_client(k)
                prep = client.request(
                    {"op": "qprepare", "loop_key": self._key,
                     "deadline_remaining": self._deadline_remaining()},
                    timeout=self._budget())
            except WorkerGone as exc:
                self._drop_client(k)
                last = exc.detail
                continue
            error = prep.get("error")
            if error is not None:
                if error.get("type") == "PrimalRaceError":
                    raise PrimalRaceError(error.get("message", ""))
                self._drop_client(k)
                last = str(error.get("message", error))
                prep = None
                continue
            break
        if prep is None:
            raise QuestionShardingLost(
                "crash", f"no worker survived prepare: {last}")
        if int(prep.get("schedule_len", -1)) != len(self._schedule):
            raise QuestionShardingLost(
                "crash",
                f"schedule desync: worker planned "
                f"{prep.get('schedule_len')} question(s), parent "
                f"{len(self._schedule)}")
        self._fold(prep.get("solver_stats") or {})
        self._emit_events(prep.get("events"), client=client)
        degraded = prep.get("degraded")
        if not degraded:
            self._plan()
            self._start_feeders()
        return {"consistency_checks":
                    int(prep.get("consistency_checks") or 0),
                "degraded": degraded}

    def answer(self, ctx, question, array: str):
        """The engine's asker: block until the worker pool has answered
        the schedule position this (ctx, question, array) ask matches,
        then consume it — folding its solver-stat delta and re-emitting
        its trace events. Mirrors ``_ask_escalating``'s run-deadline
        pre-check, and synthesizes a *contained solver failure* answer
        (safeguard, non-cacheable) when the whole pool is lost."""
        from ..smt.solver import SAT, UNKNOWN, UNSAT

        with self._lock:
            pos = self._match(ctx, question, array)
            deadline = self._engine.deadline
            if deadline is not None and deadline.expired():
                return UNKNOWN, None, "timeout", None, 0, 0.0
            if pos not in self._history_set:
                # The plan expected this position to settle from the
                # memo, but its earlier twin answered with a timeout
                # (never memoized) — dispatch it now. The late ff is a
                # documented stats-drift corner: timeout runs are
                # already outside the byte-identity claim.
                bisect.insort(self._history, pos)
                self._history_set.add(pos)
                self._push(pos)
                self._lock.notify_all()
            while pos not in self._answers:
                if self._fatal is not None:
                    return (UNKNOWN, None, None,
                            f"question worker lost: {self._fatal}", 1, 0.0)
                deadline = self._engine.deadline
                if deadline is not None and deadline.expired():
                    return UNKNOWN, None, "timeout", None, 0, 0.0
                self._lock.wait(timeout=0.2)
            reply, _basis, emitctx = self._answers.pop(pos)
            self._fold(reply.get("solver_stats") or {})
            self._emit_events(reply.get("events"), emitctx=emitctx)
            result = {"SAT": SAT, "UNSAT": UNSAT,
                      "UNKNOWN": UNKNOWN}[str(reply["result"])]
            if result is SAT:
                self._on_sat(pos, array)
            return (result, reply.get("witness"), reply.get("reason"),
                    reply.get("failure"), int(reply.get("attempts") or 0),
                    float(reply.get("dur_s") or 0.0))

    def solver_totals(self) -> Dict[str, float]:
        """Build delta plus every consumed answer's delta — exactly the
        solver work the serial analysis would have absorbed."""
        with self._lock:
            return dict(self._totals)

    def close(self) -> None:
        """Stop the feeders and drop the loop's warm worker contexts.
        The clients themselves stay alive for the next loop."""
        with self._lock:
            self._closing = True
            self._lock.notify_all()
        for thread in self._threads:
            thread.join()
        for k in range(self._pool.size):
            client = self._pool.peek(k)
            if client is None:
                continue
            try:
                client.request({"op": "qdone", "loop_key": self._key},
                               timeout=self._config.kill_timeout)
            except WorkerGone:
                self._drop_client(k)

    # ------------------------------------------------------------ planning
    def _plan(self) -> None:
        """Mirror ``_test_array``'s skip decisions: positions the serial
        run answers from the memo, the resume journal, or the verdict
        cache are not dispatched (the parent's merge resolves them the
        serial way). Lookups here are *peeks* — the counted lookups
        happen in the merge, once each, like the serial run's."""
        engine = self._engine
        key = self._key
        resume = engine._resume
        vcache = engine._vcache
        use_memo = engine.use_question_memo
        seen = set()
        for sq in self._schedule:
            if use_memo:
                mkey = (sq.ctx.uid, sq.question)
                if mkey in seen:
                    continue
                seen.add(mkey)
            if resume is not None and resume.question(
                    key, sq.ctx.path(), str(sq.question)) is not None:
                continue
            if vcache is not None and vcache.peek_question(
                    key, sq.ctx.path(), str(sq.question)) is not None:
                continue
            self._history.append(sq.position)
            self._history_set.add(sq.position)
            self._push(sq.position)

    def _push(self, pos: int) -> None:
        """Enqueue *pos* (caller holds the lock), stamping its push time
        so the dequeue can report scheduler queue-wait."""
        heapq.heappush(self._pending, pos)
        self._enqueued[pos] = time.perf_counter()

    def _match(self, ctx, question, array: str) -> int:
        """The schedule position of the merge's next ask: a forward
        cursor scan, skipping positions the merge resolved without
        asking. Identity matching (``is``) works because contexts are
        shared objects and question formulas are hash-consed."""
        schedule = self._schedule
        i = self._merge_cursor + 1
        while i < len(schedule):
            sq = schedule[i]
            if sq.array == array and sq.ctx is ctx \
                    and sq.question is question:
                self._merge_cursor = i
                return i
            i += 1
        raise QuestionShardingLost(
            "crash", f"merge desync: question for array {array!r} not in "
                     f"the schedule tail")

    def _on_sat(self, pos: int, array: str) -> None:
        """A SAT answer breaks the serial loop out of *array*'s block:
        cancel its later positions, purge answers computed on state
        that saw a cancelled position (recompute the survivors), and
        mark contaminated workers for reset."""
        schedule = self._schedule
        tracer = self._engine.tracer
        fresh = 0
        for i in range(pos + 1, len(schedule)):
            if schedule[i].array == array and i not in self._cancelled:
                self._cancelled.add(i)
                fresh += 1
        if not fresh:
            return
        tracer.counter("scheduler.cancelled", fresh)
        if tracer.enabled:
            tracer.emit("cancel", loop=self._key, count=fresh)
        live = [p for p in self._pending if p not in self._cancelled]
        if len(live) != len(self._pending):
            self._pending[:] = live
            heapq.heapify(self._pending)
        for p in list(self._answers):
            _reply, basis, _emitctx = self._answers[p]
            if p in self._cancelled:
                del self._answers[p]
            elif basis & self._cancelled:
                del self._answers[p]
                self._push(p)
        for state in self._states:
            if state["processed"] & self._cancelled:
                state["needs_reset"] = True
        self._lock.notify_all()

    # ------------------------------------------------------------- feeders
    def _start_feeders(self) -> None:
        n = max(1, min(self._pool.size, len(self._pending)))
        self._threads = [
            threading.Thread(target=self._feed, args=(k,),
                             name=f"qshard-{k}", daemon=True)
            for k in range(n)]
        for thread in self._threads:
            thread.start()

    def _feed(self, k: int) -> None:
        tracer = self._engine.tracer
        wid = f"w{k}"
        respawns = 0
        started = time.perf_counter()
        busy = 0.0
        try:
            while True:
                with self._lock:
                    while not self._pending and not self._closing \
                            and self._fatal is None:
                        self._lock.wait()
                    if self._closing or self._fatal is not None:
                        return
                    pos = heapq.heappop(self._pending)
                    if pos in self._cancelled:
                        continue
                    enqueued = self._enqueued.pop(pos, None)
                    depth = len(self._pending)
                    state = self._states[k]
                    needs_reset = state["needs_reset"]
                    ff = [p for p in self._history
                          if state["cursor"] < p < pos
                          and p not in self._cancelled
                          and p not in state["processed"]]
                tracer.gauge("scheduler.queue_depth", depth)
                tracer.counter("scheduler.dispatched")
                if enqueued is not None:
                    wait_s = max(time.perf_counter() - enqueued, 0.0)
                    tracer.observe("scheduler.queue_wait_seconds", wait_s)
                    if tracer.enabled:
                        tracer.emit("queue_wait", loop=self._key,
                                    wait_s=wait_s, worker_id=wid)
                if ff and state["cursor"] >= 0:
                    # A non-empty fast-forward past an already-warm
                    # cursor means siblings answered the intervening
                    # positions: this pull is a steal off their share.
                    tracer.counter("scheduler.steals")
                    if tracer.enabled:
                        tracer.emit("steal", loop=self._key, worker_id=wid,
                                    position=pos)
                t0 = time.perf_counter()
                try:
                    client = self._ensure_client(k)
                    if needs_reset:
                        client.request(
                            {"op": "qreset", "loop_key": self._key},
                            timeout=self._config.kill_timeout)
                        with self._lock:
                            state["cursor"] = -1
                            state["processed"] = set()
                            state["needs_reset"] = False
                            ff = [p for p in self._history
                                  if p < pos and p not in self._cancelled]
                    with tracer.span("shard.request", loop=self._key,
                                     worker_id=wid):
                        reply = client.request(
                            {"op": "qask", "loop_key": self._key,
                             "position": pos, "ff": ff,
                             "deadline_remaining":
                                 self._deadline_remaining()},
                            timeout=self._budget())
                    emitctx = (wid, client.clock, client.last_window)
                    error = reply.get("error")
                    if error is not None:
                        # The reply arrived, so its buffered telemetry
                        # did too — fold it (marked partial) before the
                        # respawn path runs, and don't count it dropped.
                        with self._lock:
                            self._emit_events(reply.get("events"),
                                              emitctx=emitctx, partial=True)
                        gone = WorkerGone(
                            "crash", f"worker error on question {pos}: "
                                     f"{error.get('message', error)}")
                        gone.events_folded = True
                        raise gone
                except WorkerGone as exc:
                    busy += time.perf_counter() - t0
                    with self._lock:
                        if pos not in self._cancelled:
                            self._push(pos)
                        self._lock.notify_all()
                    self._drop_client(k)
                    if tracer.enabled \
                            and not getattr(exc, "events_folded", False):
                        tracer.counter("telemetry.dropped_events")
                    respawns += 1
                    if respawns > self._MAX_RESPAWNS:
                        self._retire(k, exc.detail)
                        return
                    tracer.counter("scheduler.respawns")
                    with self._lock:
                        state = self._states[k]
                        state["cursor"] = -1
                        state["processed"] = set()
                        state["needs_reset"] = False
                    continue
                busy += time.perf_counter() - t0
                with self._lock:
                    state = self._states[k]
                    state["processed"].update(ff)
                    state["processed"].add(pos)
                    state["cursor"] = max(state["cursor"], pos)
                    contaminated = bool(state["processed"] & self._cancelled)
                    if contaminated:
                        state["needs_reset"] = True
                    if pos in self._cancelled:
                        pass           # the merge will never ask for it
                    elif contaminated:
                        # The answer was computed on state that saw a
                        # cancelled position — recompute on a clean worker.
                        self._push(pos)
                    else:
                        self._answers[pos] = (reply,
                                              frozenset(state["processed"]),
                                              emitctx)
                    self._lock.notify_all()
        finally:
            wall = time.perf_counter() - started
            tracer.counter(f"worker.{wid}.busy_seconds", busy)
            tracer.counter(f"worker.{wid}.idle_seconds",
                           max(wall - busy, 0.0))

    def _retire(self, k: int, detail: str) -> None:
        with self._lock:
            self._states[k]["dead"] = True
            if all(s["dead"] for s in self._states[:len(self._threads)]):
                self._fatal = detail
            self._lock.notify_all()

    # ------------------------------------------------------------ plumbing
    def _ensure_client(self, k: int) -> WorkerClient:
        return self._pool.client(k, tracer=self._engine.tracer)

    def _drop_client(self, k: int) -> None:
        self._pool.drop(k)

    def _deadline_remaining(self) -> Optional[float]:
        deadline = self._engine.deadline
        return deadline.remaining() if deadline is not None else None

    def _budget(self) -> float:
        budget = self._config.kill_timeout
        deadline = self._engine.deadline
        if deadline is not None:
            budget = min(budget,
                         max(deadline.remaining(), 0.0) + _DEADLINE_GRACE)
        return budget

    def _fold(self, delta: Dict[str, float]) -> None:
        for name, value in delta.items():
            self._totals[name] = self._totals.get(name, 0) + value

    def _emit_events(self, events, client: Optional[WorkerClient] = None,
                     emitctx: Optional[tuple] = None,
                     partial: bool = False) -> None:
        """Fold one reply's buffered events through the parent tracer.
        ``emitctx`` is the ``(worker_id, clock, window)`` triple captured
        right after the carrying request (feeders capture it so the
        merge thread can re-emit later without racing the client's
        mutable ``last_window``); ``client`` is the immediate-fold
        shorthand used on the prepare path."""
        if client is not None and emitctx is None:
            emitctx = (client.worker_id, client.clock, client.last_window)
        worker_id, clock, window = emitctx if emitctx else (None, None, None)
        _fold_worker_events(self._engine.tracer, events,
                            worker_id=worker_id, clock=clock,
                            window=window, partial=partial)


def analyze_question_sharded(
    engine,
    source: str,
    head: str,
    independents: Sequence[str],
    dependents: Sequence[str],
    *,
    config: Optional[ShardConfig] = None,
    resume_path: Optional[str] = None,
    cache_dir: Optional[str] = None,
    fingerprint: Optional[str] = None,
    pool: Optional[WorkerPool] = None,
) -> Tuple[List, List[WorkerOutcome]]:
    """Analyze every parallel loop with **question-granularity**
    sharding (``--shard-unit question``): loops run in serial order,
    but each loop's exploitation questions fan out across the
    persistent worker pool, with work-stealing off a shared position
    heap. The parent remains the single journal/cache/trace writer —
    the merge runs the ordinary serial loop body, so ``--json`` output
    is byte-identical to the serial and loop-sharded backends on
    deadline-free runs (tests/resilience/test_backend_identity.py).

    Returns ``(analyses, outcomes)`` exactly like
    :func:`analyze_sharded`; a loop whose pool is lost entirely
    degrades to safeguards with planned question counts.
    """
    config = config or ShardConfig()
    tracer = engine.tracer
    loops = list(engine.proc.parallel_loops())
    slots: List[Optional[object]] = [None] * len(loops)
    outcomes: List[Optional[WorkerOutcome]] = [None] * len(loops)
    open_loops: List[Tuple[int, object]] = []
    for index, loop in enumerate(loops):
        key = engine.loop_key(loop)
        replayed = engine._replay_settled(loop)
        if replayed is not None:
            slots[index] = replayed
            outcomes[index] = WorkerOutcome(key, "resumed")
            continue
        replayed = engine._replay_cached(loop)
        if replayed is not None:
            slots[index] = replayed
            outcomes[index] = WorkerOutcome(key, "cached")
            continue
        open_loops.append((index, loop))
    if not open_loops:
        return list(slots), list(outcomes)

    init_request = _init_request(engine, source, head, independents,
                                 dependents, resume_path=resume_path,
                                 cache_dir=cache_dir, fingerprint=fingerprint)
    owned_pool = pool is None
    if pool is None:
        pool = WorkerPool(config, max(1, config.jobs))
    pool.begin_run(init_request)
    try:
        for index, loop in open_loops:
            key = engine.loop_key(loop)
            deadline = engine.deadline
            if deadline is not None and deadline.expired():
                detail = ("run deadline expired before the loop was "
                          "dispatched")
                if tracer.enabled:
                    tracer.emit("worker", loop=key, status="timeout",
                                dur_s=0.0, detail=detail)
                slots[index] = engine.degraded_analysis(
                    loop, f"shard {detail}", phase="deadline")
                outcomes[index] = WorkerOutcome(key, "timeout", detail, 0.0)
                continue
            start = time.perf_counter()
            remote = _QuestionRemote(engine, loop, pool, config)
            try:
                try:
                    analysis = engine._analyze(loop, remote=remote)
                finally:
                    remote.close()
            except QuestionShardingLost as exc:
                elapsed = time.perf_counter() - start
                if tracer.enabled:
                    tracer.emit("worker", loop=key, status=exc.status,
                                dur_s=elapsed, detail=exc.detail)
                slots[index] = engine.degraded_analysis(
                    loop, f"shard {exc.detail}")
                outcomes[index] = WorkerOutcome(key, exc.status, exc.detail,
                                                elapsed)
                continue
            elapsed = time.perf_counter() - start
            if tracer.enabled:
                tracer.emit("worker", loop=key, status="ok", dur_s=elapsed)
            slots[index] = analysis
            outcomes[index] = WorkerOutcome(key, "ok", elapsed=elapsed)
    finally:
        if owned_pool:
            pool.shutdown()
    return list(slots), list(outcomes)


def analyze_program_remote(
    source: str,
    head: str,
    independents: Sequence[str],
    dependents: Sequence[str],
    *,
    config: Optional[ShardConfig] = None,
    tracer=None,
    deadline=None,
    flags: Optional[dict] = None,
) -> List:
    """One whole program analyzed through the shard runtime — the
    experiments pipeline's process backend. Builds the parent-side
    engine from *source*, runs :func:`analyze_sharded` over its loops,
    and returns the analyses (loop order). The Table-1 sweep calls
    this once per problem from its worker threads, which gives the
    sweep process-level parallelism across problems."""
    from ..analysis.activity import ActivityAnalysis
    from ..formad.engine import FormADEngine
    from ..ir import parse_program
    from ..obs.tracer import NULL_TRACER

    proc = parse_program(source)[head]
    activity = ActivityAnalysis(proc, independents, dependents)
    engine = FormADEngine(proc, activity, tracer=tracer or NULL_TRACER,
                          deadline=deadline, **(flags or {}))
    analyses, _ = analyze_sharded(engine, source, head, independents,
                                  dependents, config=config)
    return analyses

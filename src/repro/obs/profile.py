"""``repro profile`` — render a trace as a per-phase time tree.

Spans reconstruct the call hierarchy (kernel → loop analysis → model
build → per-array testing); ``solver_check`` events attach the solver's
translate/clausify/search phase split to the span they ran under. The
views that come out:

* the **span tree** — every span path with call count, total wall
  time, and the solver phase seconds spent directly inside it;
* the **context table** — exploitation-question time grouped by
  control-flow context path, the "where does solver time go as the
  incremental pipeline evolves" view;
* the **worker lanes** — per-``worker_id`` activity of a distributed
  (``--backend process``) trace: events, questions, solver checks, and
  in-solver seconds on each worker's normalized timeline;
* the **utilization table** — busy/idle seconds per worker from the
  scheduler's registry counters (the "why is the 1-CPU speedup 0.79x"
  view);
* the **critical path** — the longest chain of nested spans, the lower
  bound no amount of extra workers can beat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class SpanNode:
    """Aggregated statistics of one span path in the tree."""

    name: str
    count: int = 0
    total_s: float = 0.0
    translate_s: float = 0.0
    clausify_s: float = 0.0
    search_s: float = 0.0
    checks: int = 0
    children: Dict[str, "SpanNode"] = field(default_factory=dict)

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node


def _span_label(event: dict) -> str:
    attrs = event.get("attrs") or {}
    detail = ",".join(str(v) for k, v in sorted(attrs.items())
                      if k in ("loop", "array", "kernel", "variant", "proc"))
    return f"{event['name']}{{{detail}}}" if detail else event["name"]


def build_span_tree(events: Sequence[dict]) -> SpanNode:
    """Fold a trace's span and solver_check events into one tree."""
    root = SpanNode("trace")
    nodes: Dict[int, SpanNode] = {}          # open span id -> node
    parents: Dict[int, Optional[int]] = {}
    for event in events:
        etype = event["type"]
        if etype == "span_begin":
            parent = event["parent"]
            holder = nodes[parent] if parent in nodes else root
            node = holder.child(_span_label(event))
            node.count += 1
            nodes[event["id"]] = node
            parents[event["id"]] = parent
        elif etype == "span_end":
            node = nodes.pop(event["id"], None)
            parents.pop(event["id"], None)
            if node is not None:
                node.total_s += event["dur_s"]
        elif etype == "solver_check":
            node = nodes.get(event["span"])
            if node is None:
                node = root
            node.checks += 1
            node.translate_s += event["translate_s"]
            node.clausify_s += event["clausify_s"]
            node.search_s += event["search_s"]
    return root


def _render_node(node: SpanNode, indent: str, lines: List[str]) -> None:
    phases = ""
    if node.checks:
        phases = (f"  [checks {node.checks} | translate "
                  f"{node.translate_s * 1000:.1f} ms | clausify "
                  f"{node.clausify_s * 1000:.1f} ms | search "
                  f"{node.search_s * 1000:.1f} ms]")
    lines.append(f"{indent}{node.name}  x{node.count}  "
                 f"{node.total_s * 1000:.1f} ms{phases}")
    for child in node.children.values():
        _render_node(child, indent + "  ", lines)


def context_table(events: Sequence[dict]) -> List[Tuple[str, int, int, float]]:
    """(context path, questions, memo hits, seconds) rows, slowest first."""
    rows: Dict[str, List[float]] = {}
    for event in events:
        if event["type"] != "question":
            continue
        row = rows.setdefault(event["context"], [0, 0, 0.0])
        row[0] += 1
        row[1] += 1 if event["memo_hit"] else 0
        row[2] += event["dur_s"]
    out = [(ctx, int(r[0]), int(r[1]), r[2]) for ctx, r in rows.items()]
    out.sort(key=lambda r: (-r[3], r[0]))
    return out


def resilience_table(events: Sequence[dict]) -> List[Tuple[str, int]]:
    """Resilience tallies of one trace, empty when nothing happened:
    UNKNOWN questions by structured reason (timeout / budget /
    solver-unknown — docs/RESILIENCE.md), escalation retries, resumed
    and cache-answered questions/loops, degraded loops, and worker
    outcomes."""
    counts: Dict[str, int] = {}

    def bump(name: str, by: int = 1) -> None:
        counts[name] = counts.get(name, 0) + by

    for event in events:
        etype = event["type"]
        if etype == "question":
            if event.get("reason"):
                bump(f"unknown[{event['reason']}]")
            if event.get("attempts", 1) > 1:
                bump("escalated questions")
            if event.get("resumed"):
                bump("resumed questions")
            if event.get("cached"):
                bump("cached questions")
        elif etype == "degraded":
            bump(f"degraded loops[{event.get('phase', '?')}]")
        elif etype == "worker" and event.get("status") != "ok":
            bump(f"workers[{event.get('status', '?')}]")
        elif etype == "resumed":
            bump("resumed loops")
        elif etype == "cached":
            bump("cached loops")
    return sorted(counts.items())


def worker_lanes(events: Sequence[dict]
                 ) -> List[Tuple[str, int, int, int, float, float, float]]:
    """Per-worker activity rows of a distributed trace:
    ``(worker_id, events, questions, checks, solver_s, first_t,
    last_t)``, sorted by worker id — empty when no event carries a
    ``worker_id`` (a single-process trace)."""
    lanes: Dict[str, List[float]] = {}
    for event in events:
        wid = event.get("worker_id")
        if wid is None:
            continue
        lane = lanes.setdefault(str(wid), [0, 0, 0, 0.0, float("inf"), 0.0])
        lane[0] += 1
        etype = event["type"]
        if etype == "question":
            lane[1] += 1
        elif etype == "solver_check":
            lane[2] += 1
            lane[3] += event.get("dur_s", 0.0)
        t = event.get("t")
        if isinstance(t, (int, float)):
            lane[4] = min(lane[4], t)
            lane[5] = max(lane[5], t)
    return [(wid, int(l[0]), int(l[1]), int(l[2]), l[3],
             (0.0 if l[4] == float("inf") else l[4]), l[5])
            for wid, l in sorted(lanes.items())]


def utilization_table(events: Sequence[dict]
                      ) -> List[Tuple[str, float, float, float]]:
    """``(worker_id, busy_s, idle_s, utilization)`` rows from the
    scheduler's ``worker.<id>.busy_seconds``/``idle_seconds`` registry
    counters (carried by the final ``metrics`` event)."""
    counters: Dict[str, float] = {}
    for event in events:
        if event["type"] == "metrics":
            counters = event.get("counters") or {}
    busy: Dict[str, float] = {}
    idle: Dict[str, float] = {}
    for name, value in counters.items():
        parts = name.split(".")
        if len(parts) == 3 and parts[0] == "worker":
            if parts[2] == "busy_seconds":
                busy[parts[1]] = float(value)
            elif parts[2] == "idle_seconds":
                idle[parts[1]] = float(value)
    rows = []
    for wid in sorted(set(busy) | set(idle)):
        b, i = busy.get(wid, 0.0), idle.get(wid, 0.0)
        rows.append((wid, b, i, (b / (b + i) if b + i > 0 else 0.0)))
    return rows


def audit_table(events: Sequence[dict]) -> List[Tuple[str, float]]:
    """The soundness-accounting rows of an audit or campaign trace: the
    ``audit.*`` and ``campaign.*`` registry counters (cases run,
    violations, classification histogram, retries, quarantines, worker
    respawns, cases/sec) carried by the final ``metrics`` event. Empty
    for non-audit traces."""
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    for event in events:
        if event["type"] == "metrics":
            counters = event.get("counters") or {}
            gauges = event.get("gauges") or {}
    rows = [(name, float(value)) for name, value in counters.items()
            if name.startswith(("audit.", "campaign."))]
    rows += [(name, float(value)) for name, value in gauges.items()
             if name.startswith(("audit.", "campaign."))]
    return sorted(rows)


def critical_path(events: Sequence[dict]) -> List[Tuple[int, str, float]]:
    """The longest root-to-leaf chain of nested spans:
    ``(depth, label, dur_s)`` rows, outermost first. Every span keeps
    its own wall time (children overlap it), so the chain reads as
    "the run is at least as long as its head, and inside it the
    slowest child, and so on" — the serial backbone parallelism cannot
    remove."""
    spans: Dict[int, dict] = {}
    children: Dict[Optional[int], List[int]] = {}
    for event in events:
        if event["type"] == "span_begin":
            spans[event["id"]] = {"label": _span_label(event),
                                  "parent": event["parent"], "dur": 0.0}
            children.setdefault(event["parent"], []).append(event["id"])
        elif event["type"] == "span_end" and event["id"] in spans:
            spans[event["id"]]["dur"] = event["dur_s"]

    path: List[Tuple[int, str, float]] = []
    candidates = children.get(None, [])
    depth = 0
    while candidates:
        sid = max(candidates, key=lambda s: spans[s]["dur"])
        path.append((depth, spans[sid]["label"], spans[sid]["dur"]))
        candidates = children.get(sid, [])
        depth += 1
    return path


def format_profile(events: Sequence[dict]) -> str:
    """The full ``repro profile`` rendering of one trace."""
    lines: List[str] = ["span tree (count, wall time, solver phases):"]
    root = build_span_tree(events)
    if not root.children and not root.checks:
        lines.append("  (no spans recorded)")
    for child in root.children.values():
        _render_node(child, "  ", lines)
    if root.checks:
        lines.append(f"  (outside any span)  checks {root.checks}  "
                     f"[translate {root.translate_s * 1000:.1f} ms | "
                     f"clausify {root.clausify_s * 1000:.1f} ms | "
                     f"search {root.search_s * 1000:.1f} ms]")
    rows = context_table(events)
    if rows:
        lines.append("")
        lines.append("exploitation-question time by control context:")
        width = max(len(r[0]) for r in rows)
        lines.append(f"  {'context':<{width}}  {'questions':>9} "
                     f"{'memo':>5} {'time':>10}")
        for ctx, count, memo, seconds in rows:
            lines.append(f"  {ctx:<{width}}  {count:>9d} {memo:>5d} "
                         f"{seconds * 1000.0:>7.2f} ms")
    lanes = worker_lanes(events)
    if lanes:
        lines.append("")
        lines.append("worker lanes (distributed trace):")
        lines.append(f"  {'worker':<8} {'events':>7} {'questions':>9} "
                     f"{'checks':>7} {'solver':>10} {'lane':>19}")
        for wid, count, questions, checks, solver_s, first, last in lanes:
            lines.append(
                f"  {wid:<8} {count:>7d} {questions:>9d} {checks:>7d} "
                f"{solver_s * 1000.0:>7.2f} ms "
                f"{first:>8.3f}s..{last:<8.3f}s")
    utilization = utilization_table(events)
    if utilization:
        lines.append("")
        lines.append("worker utilization (busy vs idle in the pool):")
        lines.append(f"  {'worker':<8} {'busy':>10} {'idle':>10} "
                     f"{'util':>6}")
        for wid, busy, idle, util in utilization:
            lines.append(f"  {wid:<8} {busy:>9.3f}s {idle:>9.3f}s "
                         f"{util * 100.0:>5.1f}%")
    path = critical_path(events)
    if path:
        lines.append("")
        lines.append("critical path (longest chain of nested spans):")
        for depth, label, dur_s in path:
            lines.append(f"  {'  ' * depth}{label}  "
                         f"{dur_s * 1000.0:.1f} ms")
    resilience = resilience_table(events)
    if resilience:
        lines.append("")
        lines.append("resilience (timeouts, degradation, recovery):")
        for name, value in resilience:
            lines.append(f"  {name} = {value}")
    audit = audit_table(events)
    if audit:
        lines.append("")
        lines.append("soundness audit/campaign accounting:")
        for name, value in audit:
            rendered = int(value) if value == int(value) else round(value, 3)
            lines.append(f"  {name} = {rendered}")
    for event in events:
        if event["type"] == "metrics" and event["counters"]:
            lines.append("")
            lines.append("counters:")
            for name, value in event["counters"].items():
                lines.append(f"  {name} = {value}")
    return "\n".join(lines)

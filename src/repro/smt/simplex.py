"""General simplex for linear rational arithmetic.

Implements the solver of Dutertre & de Moura ("A fast linear-arithmetic
solver for DPLL(T)", CAV 2006): every constraint ``Σ a_i x_i ⋈ c``
introduces a *slack* variable ``s = Σ a_i x_i`` constrained only by
bounds; the tableau keeps basic variables expressed over nonbasic ones,
and ``check`` pivots (Bland's rule, so termination is guaranteed) until
either all basic variables sit within their bounds (SAT, with a rational
model) or some row proves a bound conflict (UNSAT).

This module decides *conjunctions* over the rationals; integrality is
layered on top by :mod:`repro.smt.intsolver`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple

from .linform import Constraint, LinForm
from .terms import Rel

#: Bounds use None for ±infinity.
Bound = Optional[Fraction]


class Infeasible(Exception):
    """Raised internally when bound assertion detects a direct conflict."""


@dataclass
class _VarState:
    name: str            # problem-variable name, or "!s<k>" for slacks
    lower: Bound = None
    upper: Bound = None
    value: Fraction = Fraction(0)


class SimplexSolver:
    """Decides a conjunction of canonical constraints over the rationals.

    Usage: construct, :meth:`assert_constraint` each constraint (may
    raise nothing — conflicts are found by :meth:`check`), then
    :meth:`check`, then :meth:`model` if SAT.
    """

    def __init__(self) -> None:
        self._vars: List[_VarState] = []
        self._ids: Dict[str, int] = {}
        # rows: basic var id -> {nonbasic var id: coeff}
        self._rows: Dict[int, Dict[int, Fraction]] = {}
        self._basic_of_form: Dict[Tuple[Tuple[str, int], ...], int] = {}
        self._infeasible = False

    # ------------------------------------------------------------------
    # Variable and slack management
    # ------------------------------------------------------------------
    def _var_id(self, name: str) -> int:
        vid = self._ids.get(name)
        if vid is None:
            vid = len(self._vars)
            self._vars.append(_VarState(name))
            self._ids[name] = vid
        return vid

    def _slack_for(self, form: LinForm) -> int:
        """Return the id of the variable representing *form*.

        Single-variable unit forms reuse the problem variable directly;
        anything else gets (or reuses) a slack with a tableau row.
        """
        if len(form.coeffs) == 1 and form.coeffs[0][1] == 1:
            return self._var_id(form.coeffs[0][0])
        key = form.coeffs
        sid = self._basic_of_form.get(key)
        if sid is not None:
            return sid
        sid = len(self._vars)
        self._vars.append(_VarState(f"!slk!{sid}"))
        row: Dict[int, Fraction] = {}
        value = Fraction(0)
        for name, coeff in form.coeffs:
            vid = self._var_id(name)
            contribution = Fraction(coeff)
            if vid in self._rows:
                # The variable is itself basic: substitute its row.
                for nid, c in self._rows[vid].items():
                    row[nid] = row.get(nid, Fraction(0)) + contribution * c
            else:
                row[vid] = row.get(vid, Fraction(0)) + contribution
            value += contribution * self._vars[vid].value
        row = {k: v for k, v in row.items() if v != 0}
        self._rows[sid] = row
        self._vars[sid].value = self._row_value(sid)
        self._basic_of_form[key] = sid
        return sid

    def _row_value(self, basic: int) -> Fraction:
        return sum((c * self._vars[nid].value for nid, c in self._rows[basic].items()),
                   Fraction(0))

    # ------------------------------------------------------------------
    # Constraint assertion
    # ------------------------------------------------------------------
    def assert_constraint(self, constraint: Constraint) -> None:
        """Install the bound(s) implied by a canonical constraint."""
        vid = self._slack_for(constraint.form)
        bound = Fraction(constraint.bound)
        if constraint.rel is Rel.LE:
            self._tighten_upper(vid, bound)
        else:  # EQ
            self._tighten_upper(vid, bound)
            self._tighten_lower(vid, bound)

    def assert_lower(self, name_or_form: str | LinForm, bound: int | Fraction) -> None:
        vid = (self._var_id(name_or_form) if isinstance(name_or_form, str)
               else self._slack_for(name_or_form))
        self._tighten_lower(vid, Fraction(bound))

    def assert_upper(self, name_or_form: str | LinForm, bound: int | Fraction) -> None:
        vid = (self._var_id(name_or_form) if isinstance(name_or_form, str)
               else self._slack_for(name_or_form))
        self._tighten_upper(vid, Fraction(bound))

    def _tighten_upper(self, vid: int, bound: Fraction) -> None:
        var = self._vars[vid]
        if var.upper is None or bound < var.upper:
            var.upper = bound
        if var.lower is not None and var.upper < var.lower:
            self._infeasible = True
            return
        if vid not in self._rows and var.value > var.upper:
            self._update_nonbasic(vid, var.upper)

    def _tighten_lower(self, vid: int, bound: Fraction) -> None:
        var = self._vars[vid]
        if var.lower is None or bound > var.lower:
            var.lower = bound
        if var.upper is not None and var.upper < var.lower:
            self._infeasible = True
            return
        if vid not in self._rows and var.value < var.lower:
            self._update_nonbasic(vid, var.lower)

    def _update_nonbasic(self, vid: int, value: Fraction) -> None:
        """Set a nonbasic variable's value, updating all basic values."""
        delta = value - self._vars[vid].value
        if delta == 0:
            return
        self._vars[vid].value = value
        for basic, row in self._rows.items():
            coeff = row.get(vid)
            if coeff:
                self._vars[basic].value += coeff * delta

    # ------------------------------------------------------------------
    # The check loop
    # ------------------------------------------------------------------
    def check(self, max_pivots: int = 100_000) -> bool:
        """Pivot to feasibility. True = SAT, False = UNSAT.

        Raises :class:`ResourceError` if the pivot budget is exhausted
        (cannot happen with Bland's rule unless the budget is set below
        the finite pivot bound, but callers may pass small budgets).
        """
        if self._infeasible:
            return False
        pivots = 0
        while True:
            violating = self._find_violating_basic()
            if violating is None:
                return True
            basic, need_increase = violating
            entering = self._find_entering(basic, need_increase)
            if entering is None:
                return False
            self._pivot(basic, entering, need_increase)
            pivots += 1
            if pivots > max_pivots:
                raise ResourceError(f"simplex exceeded {max_pivots} pivots")

    def _find_violating_basic(self) -> Optional[Tuple[int, bool]]:
        # Bland's rule: smallest id first.
        for basic in sorted(self._rows):
            var = self._vars[basic]
            if var.lower is not None and var.value < var.lower:
                return basic, True
            if var.upper is not None and var.value > var.upper:
                return basic, False
        return None

    def _find_entering(self, basic: int, need_increase: bool) -> Optional[int]:
        """Find a nonbasic variable whose movement can fix *basic*."""
        row = self._rows[basic]
        for nid in sorted(row):
            coeff = row[nid]
            var = self._vars[nid]
            if need_increase:
                # basic must increase: raise nid if coeff>0 (and nid has
                # headroom above), or lower nid if coeff<0.
                if coeff > 0 and (var.upper is None or var.value < var.upper):
                    return nid
                if coeff < 0 and (var.lower is None or var.value > var.lower):
                    return nid
            else:
                if coeff > 0 and (var.lower is None or var.value > var.lower):
                    return nid
                if coeff < 0 and (var.upper is None or var.value < var.upper):
                    return nid
        return None

    def _pivot(self, basic: int, entering: int, need_increase: bool) -> None:
        """Swap *basic* and *entering*; move basic exactly to its bound."""
        var_b = self._vars[basic]
        target = var_b.lower if need_increase else var_b.upper
        assert target is not None
        row = self._rows.pop(basic)
        a = row[entering]
        # basic = Σ c_j x_j  ⇒  entering = (basic - Σ_{j≠e} c_j x_j) / a
        new_row: Dict[int, Fraction] = {basic: Fraction(1) / a}
        for nid, c in row.items():
            if nid != entering:
                new_row[nid] = -c / a
        # Substitute into every other row that mentions `entering`.
        for other, orow in self._rows.items():
            coeff = orow.pop(entering, None)
            if coeff:
                for nid, c in new_row.items():
                    orow[nid] = orow.get(nid, Fraction(0)) + coeff * c
                    if orow[nid] == 0:
                        del orow[nid]
        self._rows[entering] = {k: v for k, v in new_row.items() if v != 0}
        # Update values: basic moves to its violated bound; entering
        # absorbs the difference; dependent basics get recomputed.
        delta_basic = target - var_b.value
        var_b.value = target
        self._vars[entering].value += delta_basic / a
        for other in self._rows:
            if other != entering:
                self._vars[other].value = self._row_value(other)

    # ------------------------------------------------------------------
    def model(self) -> Dict[str, Fraction]:
        """Rational values for all problem variables (slacks excluded)."""
        return {v.name: v.value for v in self._vars if not v.name.startswith("!slk!")}

    def copy(self) -> "SimplexSolver":
        dup = SimplexSolver()
        dup._vars = [_VarState(v.name, v.lower, v.upper, v.value) for v in self._vars]
        dup._ids = dict(self._ids)
        dup._rows = {b: dict(r) for b, r in self._rows.items()}
        dup._basic_of_form = dict(self._basic_of_form)
        dup._infeasible = self._infeasible
        return dup


class ResourceError(RuntimeError):
    """A solver resource budget (pivots, branch nodes) was exhausted."""

"""The crash-safe verdict journal (schema ``repro-journal/1``).

An append-only JSONL file: one record per line, each line carrying a
CRC-32 of its canonically-serialized payload, so every line is
independently verifiable. The writer flushes and ``fsync``\\ s each
record before returning — a ``kill -9`` therefore loses at most the
one record being written, and that half-line fails its checksum on
recovery instead of poisoning the file.

Record kinds (all carry the structural loop key ``"<ordinal>:<var>"``,
never a process-local uid — uids are not stable across runs):

``meta``       header: schema, fingerprint of (source, head, in/out
               variables, engine flags). Resume refuses a journal whose
               fingerprint does not match the current invocation.
``question``   one settled exploitation question: context path,
               rendered question, result, SAT witness. Resume seeds
               the engine's question memo with the SAT/UNSAT ones.
``verdict``    FormAD's per-(loop, array) answer.
``loop_done``  the loop is fully analyzed: serialized counters,
               safe-write expressions. Resume skips such loops
               entirely and rebuilds the :class:`LoopAnalysis`.

Recovery (:func:`read_journal`) keeps every line that parses *and*
checksums, drops damaged ones, and reports how many were dropped; a
trailing partial line is additionally truncated before appending so a
resumed journal stays line-aligned. Rotation (:meth:`JournalWriter.
rotate`) compacts settled loops into their ``verdict``/``loop_done``
records via write-temp / fsync / atomic rename.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

JOURNAL_SCHEMA = "repro-journal/1"


class JournalError(ValueError):
    """The journal cannot be used (bad header, wrong fingerprint)."""


def _canonical(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _encode_line(record: dict) -> str:
    payload = _canonical(record)
    crc = zlib.crc32(payload.encode("utf-8"))
    return json.dumps({"c": crc, "r": record}, sort_keys=True,
                      separators=(",", ":")) + "\n"


def _decode_line(line: str) -> Optional[dict]:
    """The record of one journal line, or None if damaged."""
    try:
        wrapper = json.loads(line)
        record = wrapper["r"]
        crc = wrapper["c"]
    except (ValueError, KeyError, TypeError):
        return None
    if not isinstance(record, dict) or not isinstance(crc, int):
        return None
    if zlib.crc32(_canonical(record).encode("utf-8")) != crc:
        return None
    return record


def journal_fingerprint(source: str, head: str,
                        independents: Sequence[str],
                        dependents: Sequence[str],
                        flags: Optional[dict] = None) -> str:
    """Identity of one analysis invocation. Two runs with the same
    fingerprint ask the same questions in the same order, which is
    what makes replaying settled records sound."""
    doc = {"source_sha256": hashlib.sha256(source.encode("utf-8",
                                                         "replace"))
           .hexdigest(),
           "head": head,
           "independents": list(independents),
           "dependents": list(dependents),
           "flags": dict(flags or {})}
    return hashlib.sha256(_canonical(doc).encode("utf-8")).hexdigest()


def read_journal(path: str) -> Tuple[Optional[dict], List[dict], int]:
    """Recover ``(meta, records, dropped)`` from a journal file.

    Every intact line contributes; damaged lines (checksum or parse
    failure — a truncated tail, flipped bytes) are counted in
    *dropped*. ``meta`` is the first intact ``meta`` record, if any.
    """
    meta: Optional[dict] = None
    records: List[dict] = []
    dropped = 0
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        content = fh.read()
    lines = content.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for line in lines:
        record = _decode_line(line)
        if record is None:
            if line.strip():
                dropped += 1
            continue
        if record.get("kind") == "meta" and meta is None:
            meta = record
        else:
            records.append(record)
    return meta, records, dropped


def _truncate_partial_tail(path: str) -> None:
    """Drop a trailing half-line so appends stay line-aligned."""
    with open(path, "rb") as fh:
        data = fh.read()
    if not data or data.endswith(b"\n"):
        return
    cut = data.rfind(b"\n") + 1
    with open(path, "r+b") as fh:
        fh.truncate(cut)
        fh.flush()
        os.fsync(fh.fileno())


class JournalWriter:
    """Thread-safe append-only writer with per-record durability.

    **Writer contract** (also implemented by the worker-side record
    collector in :mod:`~repro.resilience.worker` and the verdict
    cache's writer in :mod:`~repro.resilience.cache`): a journal-like
    object exposes ``record(kind, **fields)``, ``close()``, and the
    boolean attribute ``appending`` — True when the writer continues an
    existing file, False when it started a fresh one. The engine's
    resume path *requires* ``appending`` (no duck-typed default): a
    settled loop replayed into a fresh journal must be re-emitted so
    the new journal is itself resumable, and a writer that cannot
    answer the question is a bug, not a "probably appending" guess.
    """

    def __init__(self, path: str, *, meta: Optional[dict] = None,
                 append: bool = False, fsync: bool = True) -> None:
        self.path = path
        self.appending = append
        self._fsync = fsync
        self._lock = threading.Lock()
        self._workers = 0
        if append:
            if os.path.exists(path):
                _truncate_partial_tail(path)
        else:
            open(path, "w").close()  # truncate
        # Always O_APPEND: worker subprocesses append to the same file
        # (strictly sequentially), so the parent's handle must follow
        # the real end of file, not its own cached offset.
        self._fh = open(path, "a", encoding="utf-8")
        if meta is not None and os.path.getsize(path) == 0:
            self._write(dict(meta, kind="meta"))

    # ------------------------------------------------------------------
    def _write(self, record: dict) -> None:
        self._fh.write(_encode_line(record))
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())

    def record(self, kind: str, **fields) -> None:
        with self._lock:
            self._write(dict(fields, kind=kind))

    def attach_worker(self) -> None:
        """Declare that a worker subprocess holds its own ``O_APPEND``
        handle to this journal's file. While any worker is attached,
        :meth:`rotate` refuses to run: rotation replaces the inode, and
        records the workers keep appending to the *old* inode would
        silently vanish from the journal."""
        with self._lock:
            self._workers += 1

    def detach_worker(self) -> None:
        with self._lock:
            if self._workers <= 0:
                raise JournalError("detach_worker without a matching "
                                   "attach_worker")
            self._workers -= 1

    def rotate(self) -> None:
        """Compact in place: settled loops keep only their ``verdict``
        and ``loop_done`` records. Write-temp + fsync + atomic rename,
        so a crash during rotation leaves the old journal intact.

        Refused while worker subprocesses are attached (see
        :meth:`attach_worker`): their ``O_APPEND`` handles point at the
        journal's current inode, and the atomic rename would strand
        every record they write afterwards on the orphaned old file —
        a durability hole a later ``--resume`` could never see."""
        with self._lock:
            if self._workers:
                raise JournalError(
                    f"cannot rotate: {self._workers} worker(s) hold live "
                    f"append handles to {self.path!r}; rotation would "
                    f"orphan their subsequent records")
            self._fh.flush()
            meta, records, _ = read_journal(self.path)
            done = {r["loop"] for r in records if r.get("kind") == "loop_done"}
            kept = [r for r in records
                    if not (r.get("kind") == "question"
                            and r.get("loop") in done)]
            tmp = self.path + ".rotate.tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                if meta is not None:
                    fh.write(_encode_line(meta))
                for record in kept:
                    fh.write(_encode_line(record))
                fh.flush()
                os.fsync(fh.fileno())
            self._fh.close()
            os.replace(tmp, self.path)
            dirfd = os.open(os.path.dirname(os.path.abspath(self.path)),
                            os.O_RDONLY)
            try:
                os.fsync(dirfd)
            finally:
                os.close(dirfd)
            self._fh = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                self._fh.close()


class ResumeState:
    """Indexed view of a recovered journal, keyed structurally."""

    def __init__(self, meta: Optional[dict], records: List[dict],
                 dropped: int = 0) -> None:
        self.meta = meta
        self.dropped = dropped
        self._loops: Dict[str, dict] = {}
        self._verdicts: Dict[str, List[dict]] = {}
        self._questions: Dict[Tuple[str, str, str],
                              Tuple[str, Optional[Dict[str, int]]]] = {}
        for record in records:
            kind = record.get("kind")
            loop = record.get("loop")
            if not isinstance(loop, str):
                continue
            if kind == "loop_done":
                self._loops[loop] = record
            elif kind == "verdict":
                self._verdicts.setdefault(loop, []).append(record)
            elif kind == "question":
                # Only decided answers are settled; UNKNOWN may resolve
                # on a retry and is therefore always re-asked.
                if record.get("result") in ("sat", "unsat"):
                    key = (loop, str(record.get("ctx")),
                           str(record.get("q")))
                    self._questions[key] = (record["result"],
                                            record.get("witness"))

    @classmethod
    def load(cls, path: str) -> "ResumeState":
        meta, records, dropped = read_journal(path)
        return cls(meta, records, dropped)

    def check_fingerprint(self, fingerprint: str) -> None:
        """Refuse to resume a journal written by a different
        invocation (other source, flags, or variable sets)."""
        if self.meta is None:
            raise JournalError("journal has no intact meta record; "
                               "cannot verify it matches this invocation")
        if self.meta.get("schema") != JOURNAL_SCHEMA:
            raise JournalError(f"journal schema "
                               f"{self.meta.get('schema')!r}, expected "
                               f"{JOURNAL_SCHEMA}")
        if self.meta.get("fingerprint") != fingerprint:
            raise JournalError(
                "journal fingerprint does not match this invocation "
                "(different source file, head, variables, or analysis "
                "flags); refusing to replay its verdicts")

    # ------------------------------------------------------------------
    @property
    def settled_loops(self) -> int:
        return len(self._loops)

    @property
    def settled_questions(self) -> int:
        return len(self._questions)

    def loop_done(self, loop_key: str) -> Optional[dict]:
        return self._loops.get(loop_key)

    def verdicts(self, loop_key: str) -> List[dict]:
        return self._verdicts.get(loop_key, [])

    def question(self, loop_key: str, ctx_path: str, question: str,
                 ) -> Optional[Tuple[str, Optional[Dict[str, int]]]]:
        return self._questions.get((loop_key, ctx_path, question))


def rebuild_analysis(loop, done: dict, verdicts: List[dict], *,
                     resumed: bool = True):
    """Reconstruct a :class:`~repro.formad.engine.LoopAnalysis` from a
    settled loop's journal records (the ``--resume`` fast path, and —
    with ``resumed=False`` — the worker-isolation result channel, which
    reuses the same record shapes)."""
    from ..formad.engine import AnalysisStats, ArrayVerdict, LoopAnalysis
    stats = AnalysisStats()
    known = set(AnalysisStats.__dataclass_fields__)
    for name, value in (done.get("stats") or {}).items():
        if name in known:
            setattr(stats, name, value)
    rebuilt = {}
    for record in verdicts:
        rebuilt[record["array"]] = ArrayVerdict(
            array=record["array"], safe=bool(record["safe"]),
            pairs_total=int(record.get("pairs_total", 0)),
            pairs_proven=int(record.get("pairs_proven", 0)),
            reason=str(record.get("reason", "")))
    return LoopAnalysis(loop, rebuilt, stats,
                        list(done.get("safe_writes", [])),
                        list(done.get("offending", [])),
                        degraded=bool(done.get("degraded", False)),
                        resumed=resumed)

"""High-level simulation entry points.

Combines the interpreter, cost tracer, machine model, and race detector
into the calls the experiment harness uses:

* :func:`profile_run` — execute once, returning final memory plus the
  operation profile;
* :func:`simulate_thread_sweep` — turn a profile into simulated wall
  times for a list of thread counts;
* :func:`detect_races` — execute once under the race detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.program import Procedure
from ..ir.stmt import Loop
from .costmodel import (CostTracer, ExecutionProfile, total_time)
from .interp import Interpreter, Tracer
from .machine import BROADWELL_18, MachineModel
from .memory import Memory
from .racecheck import Race, RaceDetector


def _loop_counter_names(proc: Procedure) -> List[str]:
    return [s.var for s in proc.statements() if isinstance(s, Loop)]


def _array_sizes(memory: Memory) -> Dict[str, int]:
    return {name: storage.size for name, storage in memory.arrays.items()}


@dataclass
class ProfiledRun:
    """One execution with its cost profile."""

    memory: Memory
    profile: ExecutionProfile

    def simulated_seconds(self, threads: int,
                          machine: MachineModel = BROADWELL_18) -> float:
        return total_time(self.profile, machine, threads)


def profile_run(
    proc: Procedure,
    bindings: Mapping[str, object] = (),
    extents: Mapping[str, Sequence[int]] = (),
) -> ProfiledRun:
    """Run *proc* once under the cost tracer."""
    memory = Memory.for_procedure(proc, bindings, extents)
    tracer = CostTracer(_loop_counter_names(proc), _array_sizes(memory))
    Interpreter(proc, memory, tracer).run()
    return ProfiledRun(memory, tracer.profile)


def simulate_thread_sweep(
    run: ProfiledRun,
    threads: Sequence[int],
    machine: MachineModel = BROADWELL_18,
) -> Dict[int, float]:
    """Simulated wall time for each thread count."""
    return {t: run.simulated_seconds(t, machine) for t in threads}


@dataclass
class RaceReport:
    races: List[Race]
    memory: Memory

    @property
    def race_free(self) -> bool:
        return not self.races

    def __str__(self) -> str:
        if self.race_free:
            return "no races detected"
        lines = [f"{len(self.races)} race(s) detected:"]
        lines += [f"  {r}" for r in self.races[:10]]
        return "\n".join(lines)


def detect_races(
    proc: Procedure,
    bindings: Mapping[str, object] = (),
    extents: Mapping[str, Sequence[int]] = (),
) -> RaceReport:
    """Run *proc* once under the dynamic race detector."""
    memory = Memory.for_procedure(proc, bindings, extents)
    detector = RaceDetector()
    Interpreter(proc, memory, detector).run()
    return RaceReport(detector.races, memory)

"""Model-guided clause search (the DPLL(T) layer).

Decides satisfiability of ``base ∧ clauses`` over the integers, where
*base* is a conjunction of canonical constraints and each clause is a
disjunction of atoms.

The search is model-guided: solve the LIA conjunction of the currently
asserted constraints; if the resulting integer model already satisfies
every clause we are done (SAT). Otherwise pick the first clause whose
literals are all false under the model and branch on its literals —
once a literal from a clause is asserted, that clause stays satisfied
on the whole subtree, so the branch depth is bounded by the number of
clauses. UNSAT requires every branch to be LIA-refuted, keeping the
overall UNSAT answer a sound proof.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from .clausify import Clause
from .intsolver import Result, check_int
from .linform import Constraint, TrivialConstraint, canonicalize
from .presolve import (ConstraintEntailed, PresolveInfeasible,
                       presolve, reduce_constraint)
from .terms import FAtom


@dataclass
class SearchStats:
    """Counters for one :func:`search` call.

    ``propagations`` counts clause-to-unit promotions: clauses whose
    literals were narrowed down to one surviving atom (by trivial
    filtering, the substitution presolve, or per-literal theory checks)
    and therefore asserted into the base without branching.
    """

    theory_checks: int = 0
    branches: int = 0
    propagations: int = 0


@dataclass
class SearchOutcome:
    result: Result
    model: Optional[Dict[str, int]] = None
    stats: SearchStats = field(default_factory=SearchStats)
    #: Why the result is UNKNOWN: ``"timeout"`` (deadline expired),
    #: ``"budget"`` (theory-check budget exhausted), or
    #: ``"solver-unknown"`` (the integer layer gave up). None
    #: otherwise — FormAD's stats and traces surface this so budget
    #: exhaustion is distinguishable from a genuine unknown.
    reason: Optional[str] = None


class _Budget:
    """Theory-check budget plus the cooperative deadline tick: one
    poll of the (optional) deadline per simplex-backed check, so an
    expired search stops within a single theory check."""

    def __init__(self, max_theory_checks: int, deadline=None) -> None:
        self.remaining = max_theory_checks
        self.deadline = deadline
        self.reason: Optional[str] = None

    def spend(self) -> bool:
        if self.deadline is not None and self.deadline.expired():
            self.reason = "timeout"
            return False
        self.remaining -= 1
        if self.remaining < 0:
            self.reason = "budget"
            return False
        return True

    def note_unknown(self, reason: Optional[str]) -> None:
        """Record the first underlying UNKNOWN reason seen."""
        if self.reason is None:
            self.reason = reason or "solver-unknown"


@lru_cache(maxsize=200_000)
def _atom_constraints(atom: FAtom) -> Optional[Tuple[Constraint, ...]]:
    """Canonical constraints for an atom; None if trivially false and
    ``()`` if trivially true. Cached — the same atoms recur across
    thousands of checks in a FormAD analysis."""
    try:
        return canonicalize(atom)
    except TrivialConstraint as t:
        return () if t.truth else None


def _atom_holds(atom: FAtom, model: Dict[str, int]) -> bool:
    cons = _atom_constraints(atom)
    if cons is None:
        return False
    full_model = dict(model)
    for c in cons:
        for name in c.form.variables():
            full_model.setdefault(name, 0)
    return all(c.holds(full_model) for c in cons)


def _model_satisfies(model: Dict[str, int], base: Sequence[Constraint],
                     clauses: Sequence[Clause]) -> bool:
    """Pure evaluation: does *model* (0-defaulted) satisfy everything?"""
    full = dict(model)

    def constraint_holds(c: Constraint) -> bool:
        for name in c.form.variables():
            full.setdefault(name, 0)
        return c.holds(full)

    if not all(constraint_holds(c) for c in base):
        return False
    for clause in clauses:
        if not any(_atom_holds(atom, full) for atom in clause):
            return False
    return True


def _spread_model(base: Sequence[Constraint], clauses: Sequence[Clause]) -> Dict[str, int]:
    """A heuristic all-distinct, widely-spaced assignment.

    Disjointness-dominated problems (FormAD's buildModel consistency
    checks) are almost always satisfied by giving every variable a
    distinct huge value; evaluating this guess costs no simplex calls.

    Variables are enumerated through ``form.coeffs`` (sorted by name)
    rather than ``form.variables()`` (a set): which value each variable
    receives decides whether this guess already satisfies the query,
    and set iteration order varies with the interpreter's hash seed —
    the answer must not differ between the parent and a worker process.
    """
    names: List[str] = []
    seen = set()
    for c in base:
        for n, _ in c.form.coeffs:
            if n not in seen:
                seen.add(n)
                names.append(n)
    for clause in clauses:
        for atom in clause:
            cons = _atom_constraints(atom) or ()
            for c in cons:
                for n, _ in c.form.coeffs:
                    if n not in seen:
                        seen.add(n)
                        names.append(n)
    return {n: (k + 1) * 1_000_003 for k, n in enumerate(names)}


def search(
    base: Sequence[Constraint],
    clauses: Sequence[Clause],
    *,
    max_theory_checks: int = 20000,
    node_budget: int = 2000,
    initial_model: Optional[Dict[str, int]] = None,
    deadline=None,
) -> SearchOutcome:
    """Decide ``∧base ∧ ∧clauses`` over the integers.

    ``initial_model`` is an optional warm-start guess (e.g. the model of
    the previous check on an incrementally-grown assertion set); if it
    or the spread heuristic satisfies everything, no search runs.
    ``deadline`` bounds the search in wall-clock time: it is polled
    before every theory check and inside the integer layer's branch &
    bound, and expiry yields UNKNOWN with ``reason="timeout"``.
    """
    stats = SearchStats()
    budget = _Budget(max_theory_checks, deadline)
    for guess in ([initial_model] if initial_model else []):
        if _model_satisfies(guess, base, clauses):
            return SearchOutcome(Result.SAT, dict(guess), stats)
    spread = _spread_model(base, clauses)
    if _model_satisfies(spread, base, clauses):
        return SearchOutcome(Result.SAT, spread, stats)

    # Preprocess clauses: drop trivially-true ones, strip trivially
    # false literals, and promote unit clauses into the base.
    base_list: List[Constraint] = list(base)
    pending: List[Clause] = []
    for clause in clauses:
        literals: List[FAtom] = []
        trivially_true = False
        for atom in clause:
            cons = _atom_constraints(atom)
            if cons is None:
                continue  # literal is false, drop it
            if cons == ():
                trivially_true = True
                break
            literals.append(atom)
        if trivially_true:
            continue
        if not literals:
            return SearchOutcome(Result.UNSAT, stats=stats)
        if len(literals) == 1:
            stats.propagations += 1
            base_list.extend(_atom_constraints(literals[0]) or ())
        else:
            pending.append(tuple(literals))

    # Cheap substitution-based unit propagation: run the equality
    # presolve on the base once, then push every clause literal through
    # the substitution chain. A literal collapsing to "false" is
    # dropped; a clause whose literals all collapse is an outright
    # refutation; a literal collapsing to "true" discharges its clause.
    # This is pure arithmetic (no simplex) and catches FormAD's common
    # UNSAT shape — the asserted question equality directly contradicts
    # one knowledge clause — without exploring an exponential tree.
    try:
        pres = presolve(base_list)
    except PresolveInfeasible:
        return SearchOutcome(Result.UNSAT, stats=stats)
    filtered: List[Clause] = []
    for clause in pending:
        kept: List[FAtom] = []
        entailed = False
        for atom in clause:
            cons = _atom_constraints(atom)
            assert cons  # trivial literals already stripped
            try:
                for c in cons:
                    reduce_constraint(c, pres.substitutions)
            except PresolveInfeasible:
                continue  # literal is false under the base equalities
            except ConstraintEntailed:
                # Conservative: only single-constraint literals are
                # certainly entailed when their constraint is.
                if len(cons) == 1:
                    entailed = True
                    break
                kept.append(atom)
                continue
            kept.append(atom)
        if entailed:
            continue
        if not kept:
            return SearchOutcome(Result.UNSAT, stats=stats)
        if len(kept) == 1:
            stats.propagations += 1
            base_list.extend(_atom_constraints(kept[0]) or ())
            try:
                pres = presolve(base_list)
            except PresolveInfeasible:
                return SearchOutcome(Result.UNSAT, stats=stats)
        else:
            filtered.append(tuple(kept))
    pending = filtered

    # Stronger (theory-check) unit propagation for small problems only:
    # each literal costs one simplex solve, which pays off when a few
    # clauses gate a deep search but is too expensive at LBM scale.
    if len(pending) <= 60:
        for _round in range(10):
            changed = False
            survivors: List[Clause] = []
            for clause in pending:
                kept = []
                for atom in clause:
                    cons = _atom_constraints(atom)
                    assert cons
                    if not budget.spend():
                        return SearchOutcome(Result.UNKNOWN, stats=stats,
                                             reason=budget.reason)
                    stats.theory_checks += 1
                    outcome = check_int(base_list + list(cons),
                                        node_budget=node_budget,
                                        deadline=budget.deadline)
                    if outcome.result is not Result.UNSAT:
                        kept.append(atom)
                if not kept:
                    return SearchOutcome(Result.UNSAT, stats=stats)
                if len(kept) == 1:
                    stats.propagations += 1
                    base_list.extend(_atom_constraints(kept[0]) or ())
                    changed = True  # stronger base: re-filter survivors
                else:
                    survivors.append(tuple(kept))
            pending = survivors
            if not changed:
                break

    result, model = _search_node(base_list, pending, stats, budget, node_budget)
    reason = budget.reason if result is Result.UNKNOWN else None
    return SearchOutcome(result, model, stats,
                         reason=(reason or "solver-unknown")
                         if result is Result.UNKNOWN else None)


def _search_node(
    constraints: List[Constraint],
    clauses: List[Clause],
    stats: SearchStats,
    budget: _Budget,
    node_budget: int,
) -> Tuple[Result, Optional[Dict[str, int]]]:
    if not budget.spend():
        return Result.UNKNOWN, None
    stats.theory_checks += 1
    outcome = check_int(constraints, node_budget=node_budget,
                        deadline=budget.deadline)
    if outcome.result is Result.UNSAT:
        return Result.UNSAT, None
    if outcome.result is Result.UNKNOWN:
        budget.note_unknown(outcome.reason)
        return Result.UNKNOWN, None
    model = outcome.model
    assert model is not None
    # Find the first clause falsified by the model.
    violated: Optional[Clause] = None
    for clause in clauses:
        if not any(_atom_holds(atom, model) for atom in clause):
            violated = clause
            break
    if violated is None:
        return Result.SAT, model
    saw_unknown = False
    remaining = [c for c in clauses if c is not violated]
    stats.branches += 1
    for atom in violated:
        cons = _atom_constraints(atom)
        assert cons  # trivial literals were stripped during preprocessing
        result, submodel = _search_node(constraints + list(cons), remaining,
                                        stats, budget, node_budget)
        if result is Result.SAT:
            return Result.SAT, submodel
        if result is Result.UNKNOWN:
            saw_unknown = True
    return (Result.UNKNOWN if saw_unknown else Result.UNSAT), None

"""Green-Gauss gradients (paper §7.4).

Edge-based finite-volume gradient accumulation on an unstructured mesh,
parallelized with the coloring approach of Hückelheim et al.: edges are
grouped into colors such that no two edges of one color share a node,
and each color's edge range is processed by one parallel loop::

    do ic = 1, ncolors
      !$omp parallel do private(i, j, dvface)
      do ie = color_ia(ic), color_ia(ic + 1) - 1
        i = edge2nodes(1, ie)
        j = edge2nodes(2, ie)
        if (i .ne. j) then
          dvface = 0.5d0 * (dv(i) + dv(j))
          grad(i) = grad(i) + dvface * sij(ie)
          grad(j) = grad(j) - dvface * sij(ie)
        end if
      end do
    end do

The paper's test mesh is linear (node k connects to k+1), needing only
2 colors; it applies the kernel 10,000 times to 100,000 nodes.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ir.parser import parse_procedure
from ..ir.program import Procedure

#: Paper-scale parameters (§7.4).
PAPER_NODES = 100_000
PAPER_APPLICATIONS = 10_000


def build_greengauss(applications: int = 1) -> Procedure:
    """The colored edge-loop gradient kernel."""
    src = f"""
subroutine greengauss(dv, grad, sij, edge2nodes, color_ia, ncolors)
  integer, intent(in) :: ncolors
  real, intent(in) :: dv(*)
  real, intent(inout) :: grad(*)
  real, intent(in) :: sij(*)
  integer, intent(in) :: edge2nodes(2, *)
  integer, intent(in) :: color_ia(*)
  integer :: i, j
  real :: dvface

  do app = 1, {applications}
    do ic = 1, ncolors
      !$omp parallel do private(i, j, dvface)
      do ie = color_ia(ic), color_ia(ic + 1) - 1
        i = edge2nodes(1, ie)
        j = edge2nodes(2, ie)
        if (i .ne. j) then
          dvface = 0.5d0 * (dv(i) + dv(j))
          grad(i) = grad(i) + dvface * sij(ie)
          grad(j) = grad(j) - dvface * sij(ie)
        end if
      end do
    end do
  end do
end subroutine greengauss
"""
    return parse_procedure(src)


def make_linear_mesh(nnodes: int, seed: int = 0) -> Dict[str, object]:
    """The paper's simple linear mesh with a 2-coloring.

    Edges connect node k to k+1; even-k edges form color 1, odd-k edges
    color 2 — no two edges of a color share a node, so each color's
    parallel loop is correctly parallelized.
    """
    rng = np.random.default_rng(seed)
    nedges = nnodes - 1
    color1 = [e for e in range(nedges) if e % 2 == 0]
    color2 = [e for e in range(nedges) if e % 2 == 1]
    order = color1 + color2
    edge2nodes = np.ones((2, nedges), dtype=np.int64)
    for pos, e in enumerate(order):
        edge2nodes[0, pos] = e + 1
        edge2nodes[1, pos] = e + 2
    color_ia = np.array([1, 1 + len(color1), 1 + nedges], dtype=np.int64)
    return {
        "dv": rng.standard_normal(nnodes),
        "grad": np.zeros(nnodes),
        "sij": rng.standard_normal(nedges),
        "edge2nodes": edge2nodes,
        "color_ia": color_ia,
        "ncolors": 2,
    }

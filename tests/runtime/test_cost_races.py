"""Tests for the cost model, machine model, and race detector."""

import numpy as np
import pytest

from repro.ir import (Assign, ProcedureBuilder, REAL, Var, integer_array,
                      parse_procedure, real_array, INTEGER)
from repro.runtime import (BROADWELL_18, MachineModel, OpCounts, detect_races,
                           loop_time, profile_run, simulate_thread_sweep,
                           static_chunks)
from repro.runtime.costmodel import classify_ref_streaming


SAXPY = """
subroutine saxpy(a, x, y, n)
  integer, intent(in) :: n
  real, intent(in) :: a
  real, intent(in) :: x(50000)
  real, intent(inout) :: y(50000)
  !$omp parallel do
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
end subroutine saxpy
"""

RACY_WRITE = """
subroutine racy(y, n)
  integer, intent(in) :: n
  real, intent(inout) :: y(10)
  !$omp parallel do
  do i = 1, n
    y(1) = y(1) + 1.0
  end do
end subroutine racy
"""

ATOMIC_GUARDED = """
subroutine guarded(y, n)
  integer, intent(in) :: n
  real, intent(inout) :: y(10)
  !$omp parallel do
  do i = 1, n
    !$omp atomic
    y(1) = y(1) + 1.0
  end do
end subroutine guarded
"""


class TestStaticChunks:
    def test_exact_division(self):
        assert static_chunks(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_first(self):
        chunks = static_chunks(10, 4)
        sizes = [e - b for b, e in chunks]
        assert sizes == [3, 3, 2, 2] and chunks[-1][1] == 10

    def test_more_threads_than_iterations(self):
        chunks = static_chunks(2, 4)
        sizes = [e - b for b, e in chunks]
        assert sizes == [1, 1, 0, 0]


class TestClassification:
    def test_counter_affine_is_streaming(self):
        ref = Var("u")[Var("i") - 1]
        assert classify_ref_streaming(ref, frozenset({"i"}))

    def test_indirection_is_gather(self):
        ref = Var("y")[Var("c")[Var("i")]]
        assert not classify_ref_streaming(ref, frozenset({"i"}))

    def test_data_dependent_scalar_is_gather(self):
        ref = Var("grad")[Var("node")]
        assert not classify_ref_streaming(ref, frozenset({"ie"}))


class TestProfiling:
    def test_saxpy_profile_counts(self):
        proc = parse_procedure(SAXPY)
        run = profile_run(proc, {"a": 2.0, "x": np.ones(50000),
                                 "y": np.zeros(50000), "n": 50000})
        assert len(run.profile.parallel_loops) == 1
        rec = run.profile.parallel_loops[0]
        assert len(rec.per_iteration) == 50000
        total = rec.total()
        # y read + x read + y write = 3 streaming accesses per iteration
        assert total.stream_mem == 150000
        assert total.flops == 100000  # one mul + one add per iteration
        assert total.atomics == 0

    def test_atomic_counted(self):
        proc = parse_procedure(ATOMIC_GUARDED)
        run = profile_run(proc, {"y": np.zeros(10), "n": 100})
        total = run.profile.parallel_loops[0].total()
        assert total.atomics == 100

    def test_results_unaffected_by_tracing(self):
        proc = parse_procedure(SAXPY)
        run = profile_run(proc, {"a": 2.0, "x": np.ones(50000),
                                 "y": np.zeros(50000), "n": 50000})
        np.testing.assert_allclose(run.memory.array("y").data, 2.0)


class TestCostModel:
    def _saxpy_run(self):
        proc = parse_procedure(SAXPY)
        return profile_run(proc, {"a": 2.0, "x": np.ones(50000),
                                  "y": np.zeros(50000), "n": 50000})

    def test_parallel_speedup_monotone_without_atomics(self):
        run = self._saxpy_run()
        times = simulate_thread_sweep(run, [1, 2, 4, 8])
        assert times[1] > times[2] > times[4]

    def test_atomic_version_slows_down_with_threads(self):
        proc = parse_procedure(ATOMIC_GUARDED)
        run = profile_run(proc, {"y": np.zeros(10), "n": 10000})
        times = simulate_thread_sweep(run, [1, 8, 18])
        # Atomics dominate; contention makes more threads worse.
        assert times[18] > times[1]

    def test_atomic_cost_formula(self):
        m = MachineModel()
        uncontended = m.atomic_cost(1000, 1)
        assert uncontended == pytest.approx(1000 * m.atomic_s)
        contended = m.atomic_cost(1000, 18)
        assert contended > uncontended

    def test_reduction_cost_grows_with_threads(self):
        m = MachineModel()
        assert m.reduction_cost(10_000, 18) > m.reduction_cost(10_000, 2)

    def test_serial_seconds_positive(self):
        c = OpCounts(flops=100, stream_mem=50)
        assert c.serial_seconds(BROADWELL_18) > 0

    def test_load_imbalance_hurts(self):
        # A loop where the first half of iterations are 100x heavier:
        # with 2 threads the static schedule puts all heavy iterations
        # on thread 0, capping speedup well below 2x.
        src = """
subroutine imb(x, y, n)
  integer, intent(in) :: n
  real, intent(in) :: x(100)
  real, intent(inout) :: y(100)
  !$omp parallel do
  do i = 1, n
    if (i .le. 50) then
      do k = 1, 100
        y(i) = y(i) + x(i) * 0.001
      end do
    else
      y(i) = y(i) + x(i)
    end if
  end do
end subroutine imb
"""
        proc = parse_procedure(src)
        run = profile_run(proc, {"x": np.ones(100), "y": np.zeros(100), "n": 100})
        times = simulate_thread_sweep(run, [1, 2])
        speedup = times[1] / times[2]
        assert speedup < 1.5  # imbalance visible

    def test_gather_heavy_loop_saturates(self):
        src = """
subroutine gath(x, y, c, n)
  integer, intent(in) :: n
  real, intent(in) :: x(1000)
  real, intent(inout) :: y(1000)
  integer, intent(in) :: c(1000)
  !$omp parallel do
  do i = 1, n
    y(c(i)) = x(c(i))
  end do
end subroutine gath
"""
        proc = parse_procedure(src)
        perm = np.random.default_rng(0).permutation(1000) + 1
        run = profile_run(proc, {"x": np.ones(1000), "y": np.zeros(1000),
                                 "c": perm, "n": 1000})
        times = simulate_thread_sweep(run, [1, 18])
        speedup = times[1] / times[18]
        # Gather-bound loops saturate far below the core count.
        assert speedup < 6


class TestRaceDetector:
    def test_clean_loop_race_free(self):
        proc = parse_procedure(SAXPY)
        report = detect_races(proc, {"a": 1.0, "x": np.ones(50000),
                                     "y": np.zeros(50000), "n": 100})
        assert report.race_free

    def test_shared_increment_is_a_race(self):
        proc = parse_procedure(RACY_WRITE)
        report = detect_races(proc, {"y": np.zeros(10), "n": 10})
        assert not report.race_free
        kinds = {r.kinds for r in report.races}
        assert any("write" in k for pair in kinds for k in pair)

    def test_atomic_increments_not_flagged(self):
        proc = parse_procedure(ATOMIC_GUARDED)
        report = detect_races(proc, {"y": np.zeros(10), "n": 10})
        assert report.race_free

    def test_private_scalar_not_flagged(self):
        src = """
subroutine p(x, y, n)
  integer, intent(in) :: n
  real, intent(in) :: x(100)
  real, intent(inout) :: y(100)
  real :: t
  !$omp parallel do private(t)
  do i = 1, n
    t = x(i) * 2.0
    y(i) = t
  end do
end subroutine p
"""
        proc = parse_procedure(src)
        report = detect_races(proc, {"x": np.ones(100), "y": np.zeros(100),
                                     "n": 100})
        assert report.race_free

    def test_shared_scalar_write_flagged(self):
        src = """
subroutine p(x, y, n)
  integer, intent(in) :: n
  real, intent(in) :: x(100)
  real, intent(inout) :: y(100)
  real :: t
  !$omp parallel do
  do i = 1, n
    t = x(i) * 2.0
    y(i) = t
  end do
end subroutine p
"""
        proc = parse_procedure(src)
        report = detect_races(proc, {"x": np.ones(100), "y": np.zeros(100),
                                     "n": 100})
        assert not report.race_free
        assert any(r.scalar == "t" for r in report.races)

    def test_reduction_array_not_flagged(self):
        src = """
subroutine p(x, g, n)
  integer, intent(in) :: n
  real, intent(in) :: x(100)
  real, intent(inout) :: g(10)
  !$omp parallel do reduction(+:g)
  do i = 1, n
    g(1) = g(1) + x(i)
  end do
end subroutine p
"""
        proc = parse_procedure(src)
        report = detect_races(proc, {"x": np.ones(100), "g": np.zeros(10),
                                     "n": 100})
        assert report.race_free

    def test_write_read_conflict_detected(self):
        src = """
subroutine p(y, n)
  integer, intent(in) :: n
  real, intent(inout) :: y(100)
  !$omp parallel do
  do i = 1, n
    y(i) = y(1) + 1.0
  end do
end subroutine p
"""
        proc = parse_procedure(src)
        report = detect_races(proc, {"y": np.zeros(100), "n": 50})
        assert not report.race_free


class TestScalingRegressions:
    """Fractional profiling scales must not zero safeguard costs.

    The old cost path truncated ``total_atomics * iter_scale`` and
    ``elems * elem_scale`` to int, so a kernel profiled at reduced size
    and extrapolated *down* (iter_scale < 1) lost its atomic and
    reduction overhead entirely."""

    def _atomic_record(self, n=10):
        proc = parse_procedure(ATOMIC_GUARDED)
        run = profile_run(proc, {"y": np.zeros(10), "n": n})
        return run.profile.parallel_loops[0]

    def test_fractional_iter_scale_keeps_atomic_cost(self):
        from repro.ad.strategies import ATOMIC

        m = MachineModel()
        record = self._atomic_record(n=10)
        # 10 atomics at iter_scale=0.05 -> 0.5 scaled atomics. int()
        # made this 0; the pro-rata float cost must survive.
        cost = ATOMIC.loop_cost(record, m, 18, iter_scale=0.05)
        assert cost > 0
        assert cost == pytest.approx(m.atomic_cost(0.5, 18))

    def test_atomic_cost_is_pro_rata_in_count(self):
        m = MachineModel()
        assert m.atomic_cost(0.5, 4) == pytest.approx(m.atomic_cost(1.0, 4) / 2)
        assert m.atomic_cost(0.0, 4) == 0.0
        assert m.atomic_cost(-3.0, 4) == 0.0

    def test_fractional_elem_scale_keeps_reduction_cost(self):
        from repro.ad.strategies import REDUCTION

        src = """
subroutine p(x, g, n)
  integer, intent(in) :: n
  real, intent(in) :: x(100)
  real, intent(inout) :: g(10)
  !$omp parallel do reduction(+:g)
  do i = 1, n
    g(1) = g(1) + x(i)
  end do
end subroutine p
"""
        proc = parse_procedure(src)
        run = profile_run(proc, {"x": np.ones(100), "g": np.zeros(10),
                                 "n": 100})
        record = run.profile.parallel_loops[0]
        m = MachineModel()
        cost = REDUCTION.loop_cost(record, m, 8, elem_scale=0.25)
        assert cost > 0
        assert cost == pytest.approx(m.reduction_cost(10 * 0.25, 8))

    def test_total_time_elem_scale_defaults_to_iter_scale(self):
        from repro.runtime.costmodel import total_time

        src = """
subroutine p(x, g, n)
  integer, intent(in) :: n
  real, intent(in) :: x(100)
  real, intent(inout) :: g(10)
  !$omp parallel do reduction(+:g)
  do i = 1, n
    g(1) = g(1) + x(i)
  end do
end subroutine p
"""
        proc = parse_procedure(src)
        run = profile_run(proc, {"x": np.ones(100), "g": np.zeros(10),
                                 "n": 100})
        m = MachineModel()
        defaulted = total_time(run.profile, m, 8, iter_scale=40.0)
        explicit = total_time(run.profile, m, 8, iter_scale=40.0,
                              elem_scale=40.0)
        pinned = total_time(run.profile, m, 8, iter_scale=40.0,
                            elem_scale=1.0)
        assert defaulted == pytest.approx(explicit)
        assert defaulted > pinned  # the default really scales volumes

    def test_loop_time_with_more_threads_than_iterations(self):
        record = self._atomic_record(n=3)
        t = loop_time(record, MachineModel(), 18)
        assert np.isfinite(t) and t > 0
        # Trailing threads get empty chunks; fork/join still charged.
        assert t >= MachineModel().fork_join_cost(18)


class TestSharedStrategyRaces:
    def test_all_shared_adjoint_of_gather_kernel_races(self):
        """ALL_SHARED drops every safeguard; on a gather kernel whose
        index table repeats values, the shared adjoint increments
        collide and the race oracle must say so."""
        from repro import differentiate
        from repro.audit.numcheck import adjoint_bindings

        src = """
subroutine gather(x, z, t, n)
  integer, intent(in) :: n
  real, intent(in) :: x(8)
  real, intent(inout) :: z(16)
  integer, intent(in) :: t(16)
  !$omp parallel do
  do i = 1, n
    z(i) = z(i) + 2.0 * x(t(i))
  end do
end subroutine gather
"""
        proc = parse_procedure(src)
        bindings = {"x": np.ones(8), "z": np.zeros(16),
                    "t": np.array([1, 1, 2, 2, 3, 3, 4, 4,
                                   5, 5, 6, 6, 7, 7, 8, 8]), "n": 16}
        adj = differentiate(proc, ["x"], ["z"], strategy="shared")
        abind = adjoint_bindings(adj, bindings, ["x"], ["z"], seed=1)
        report = detect_races(adj.procedure, abind)
        assert not report.race_free
        assert any(r.array == "xb" for r in report.races)
        # The atomic build of the same adjoint is clean.
        safe = differentiate(proc, ["x"], ["z"], strategy="atomic")
        sbind = adjoint_bindings(safe, bindings, ["x"], ["z"], seed=1)
        assert detect_races(safe.procedure, sbind).race_free

"""Tests for instance numbering (§5.2) and control contexts (§5.1)."""

from repro.cfg import (build_cfg, build_contexts, compute_reaching_definitions,
                       dominates, immediate_dominators, number_instances,
                       ENTRY_DEF)
from repro.ir import Assign, If, Loop, Var


class TestReachingDefinitions:
    def test_entry_definition_reaches_first_use(self):
        s1 = Assign(Var("a"), Var("k") + 1)
        cfg = build_cfg([s1])
        rd = compute_reaching_definitions(cfg, ["k", "a"])
        assert rd.reaching_at_stmt(s1, "k") == frozenset({ENTRY_DEF})

    def test_assignment_kills_entry_definition(self):
        s1 = Assign(Var("k"), 5)
        s2 = Assign(Var("a"), Var("k"))
        cfg = build_cfg([s1, s2])
        rd = compute_reaching_definitions(cfg, ["k", "a"])
        assert rd.reaching_at_stmt(s2, "k") == frozenset({s1.uid})

    def test_merge_unions_definitions(self):
        s_then = Assign(Var("k"), 1)
        s_else = Assign(Var("k"), 2)
        use = Assign(Var("a"), Var("k"))
        body = [If(Var("x").gt(0), [s_then], [s_else]), use]
        cfg = build_cfg(body)
        rd = compute_reaching_definitions(cfg, ["k", "a", "x"])
        assert rd.reaching_at_stmt(use, "k") == frozenset({s_then.uid, s_else.uid})

    def test_loop_body_sees_entry_and_iteration_defs(self):
        redef = Assign(Var("k"), Var("k") + 1)
        loop = Loop("j", 1, 10, body=[redef])
        cfg = build_cfg([loop])
        rd = compute_reaching_definitions(cfg, ["k"])
        assert rd.reaching_at_stmt(redef, "k") == frozenset({ENTRY_DEF, redef.uid})

    def test_loop_counter_defined_by_head(self):
        use = Assign(Var("a"), Var("j"))
        loop = Loop("j", 1, 10, body=[use])
        cfg = build_cfg([loop])
        rd = compute_reaching_definitions(cfg, ["a", "j"])
        assert rd.reaching_at_stmt(use, "j") == frozenset({loop.uid})


class TestInstanceNumbering:
    def test_same_value_same_instance(self):
        u1 = Assign(Var("a"), Var("k"))
        u2 = Assign(Var("b"), Var("k"))
        inst = number_instances([u1, u2], ["k", "a", "b"])
        assert inst.instance_at(u1, "k") == inst.instance_at(u2, "k")

    def test_redefinition_changes_instance(self):
        u1 = Assign(Var("a"), Var("k"))
        redef = Assign(Var("k"), Var("k") + 1)
        u2 = Assign(Var("b"), Var("k"))
        inst = number_instances([u1, redef, u2], ["k", "a", "b"])
        assert inst.instance_at(u1, "k") != inst.instance_at(u2, "k")

    def test_merge_creates_fresh_instance(self):
        s_then = Assign(Var("k"), 1)
        use_then = Assign(Var("a"), Var("k"))
        use_after = Assign(Var("b"), Var("k"))
        body = [If(Var("x").gt(0), [s_then, use_then], []), use_after]
        inst = number_instances(body, ["k", "a", "b", "x"])
        i_then = inst.instance_at(use_then, "k")
        i_after = inst.instance_at(use_after, "k")
        assert i_then != i_after

    def test_loop_entry_renews_instance(self):
        # §5.2: at entry into a loop that overwrites k, the instance
        # must represent either the entry value or the previous
        # iteration's value — distinct from the pre-loop instance.
        use_before = Assign(Var("a"), Var("k"))
        use_in = Assign(Var("b"), Var("k"))
        redef = Assign(Var("k"), Var("k") + 1)
        loop = Loop("j", 1, 10, body=[use_in, redef])
        use_after = Assign(Var("c"), Var("k"))
        inst = number_instances([use_before, loop, use_after],
                                ["k", "a", "b", "c"])
        i_before = inst.instance_at(use_before, "k")
        i_in = inst.instance_at(use_in, "k")
        assert i_before != i_in

    def test_untouched_variable_keeps_instance_through_loop(self):
        use_before = Assign(Var("a"), Var("m"))
        use_in = Assign(Var("b"), Var("m"))
        loop = Loop("j", 1, 10, body=[use_in])
        inst = number_instances([use_before, loop], ["m", "a", "b"])
        assert inst.instance_at(use_before, "m") == inst.instance_at(use_in, "m")

    def test_qualified_name_format(self):
        u1 = Assign(Var("a"), Var("k"))
        inst = number_instances([u1], ["k", "a"])
        assert inst.qualified_name(u1, "k") == "k_0"


class TestContexts:
    def test_root_context_for_straight_line(self):
        s1 = Assign(Var("a"), 1)
        cm = build_contexts([s1])
        assert cm.context_of(s1) is cm.root

    def test_if_branches_get_child_contexts(self):
        t = Assign(Var("a"), 1)
        e = Assign(Var("a"), 2)
        stmt = If(Var("x").gt(0), [t], [e])
        after = Assign(Var("b"), 3)
        cm = build_contexts([stmt, after])
        ct, ce = cm.context_of(t), cm.context_of(e)
        assert ct is not ce
        assert ct.parent is cm.root and ce.parent is cm.root
        assert cm.context_of(stmt) is cm.root
        assert cm.context_of(after) is cm.root

    def test_inclusion_and_common_root(self):
        t = Assign(Var("a"), 1)
        inner = Assign(Var("a"), 2)
        nested = If(Var("y").gt(0), [inner])
        stmt = If(Var("x").gt(0), [t, nested])
        cm = build_contexts([stmt])
        c_t = cm.context_of(t)
        c_inner = cm.context_of(inner)
        assert c_t.includes(c_inner)
        assert not c_inner.includes(c_t)
        assert cm.root.includes(c_inner)
        assert c_t.common_root(c_inner) is c_t
        e = Assign(Var("a"), 3)
        stmt2 = If(Var("x").gt(0), [t], [e])
        cm2 = build_contexts([stmt2])
        assert cm2.context_of(t).common_root(cm2.context_of(e)) is cm2.root

    def test_sequential_loop_opens_context(self):
        inner = Assign(Var("a")[Var("j")], 0.0)
        loop = Loop("j", 1, 10, body=[inner])
        cm = build_contexts([loop])
        assert cm.context_of(inner).parent is cm.root
        assert cm.context_of(loop) is cm.root

    def test_contexts_agree_with_dominators(self):
        # Structural contexts must match the dominator-based rule: if
        # context(A) includes context(B) then A's node dominates B's or
        # post-dominates it (for structured code, the statement's branch
        # arm entry dominates everything in that arm).
        t = Assign(Var("a"), 1)
        inner = Assign(Var("b"), 2)
        nested = If(Var("y").gt(0), [inner])
        after = Assign(Var("c"), 3)
        body = [If(Var("x").gt(0), [t, nested]), after]
        cm = build_contexts(body)
        cfg = build_cfg(body)
        idom = immediate_dominators(cfg)
        # t's context includes inner's context; correspondingly t's CFG
        # node dominates inner's node.
        assert cm.context_of(t).includes(cm.context_of(inner))
        assert dominates(idom, cfg.stmt_node(t), cfg.stmt_node(inner))
        # after's context (root) includes everything, and indeed nothing
        # inside the if dominates `after`.
        assert not dominates(idom, cfg.stmt_node(t), cfg.stmt_node(after))

    def test_all_contexts_enumeration(self):
        t = Assign(Var("a"), 1)
        e = Assign(Var("a"), 2)
        stmt = If(Var("x").gt(0), [t], [e])
        cm = build_contexts([stmt])
        assert len(cm.all_contexts()) == 3

"""The paper's benchmark kernels (§7) and their workload generators."""

from .stencil import (PAPER_POINTS, PAPER_SWEEPS, build_large_stencil,
                      build_small_stencil, build_stencil,
                      make_stencil_workload)
from .gfmc import PAPER_REPS, build_gfmc, build_gfmc_star, make_gfmc_workload
from .lbm import DIRECTIONS, WEIGHTS, build_lbm, make_lbm_workload
from .greengauss import (PAPER_APPLICATIONS, PAPER_NODES, build_greengauss,
                         make_linear_mesh)

__all__ = [
    "PAPER_POINTS", "PAPER_SWEEPS", "build_large_stencil",
    "build_small_stencil", "build_stencil", "make_stencil_workload",
    "PAPER_REPS", "build_gfmc", "build_gfmc_star", "make_gfmc_workload",
    "DIRECTIONS", "WEIGHTS", "build_lbm", "make_lbm_workload",
    "PAPER_APPLICATIONS", "PAPER_NODES", "build_greengauss",
    "make_linear_mesh",
]

"""LBM — lattice-Boltzmann stream-collide kernel (paper §7.3).

A Fortran rendering of the Parboil LBM structure: the distribution
functions of all cells live in one flat array per grid (``srcgrid`` /
``dstgrid``); direction ``d`` of cell ``i`` sits at
``base_d + n_cell_entries * stream_offset_d + i`` where the 19 base
scalars (``c``, ``n``, ``s``, ... ``wb``) and the per-direction stream
offsets come from the D3Q19 neighborhood on a 120 × 120 grid plane
(y-stride 120, z-stride 14400 — the exact constants of the paper's
listing).

Every cell *reads* its own 19 distributions from ``srcgrid``
(offset 0) and *writes* the post-collision values into the neighbors'
slots of ``dstgrid`` (push scheme). The adjoint therefore increments
``srcgridb`` at the 19 *read* positions — and those are **not** all
members of the known-safe write-expression set, so FormAD correctly
refuses to drop the safeguards (the paper's negative example).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..ir.parser import parse_procedure
from ..ir.program import Procedure

#: The paper's grid strides: x-stride 1, y-stride 120, z-stride 14400.
Y_STRIDE = 120
Z_STRIDE = 14400

#: D3Q19 directions: (name, stream offset in flattened cells), exactly
#: the 19 safe write expressions of the paper's listing.
DIRECTIONS: List[Tuple[str, int]] = [
    ("c", 0),
    ("n", Y_STRIDE),
    ("s", -Y_STRIDE),
    ("e", 1),
    ("w", -1),
    ("t", Z_STRIDE),
    ("b", -Z_STRIDE),
    ("ne", Y_STRIDE + 1),
    ("nw", Y_STRIDE - 1),
    ("se", -Y_STRIDE + 1),
    ("sw", -Y_STRIDE - 1),
    ("nt", Z_STRIDE + Y_STRIDE),
    ("nb", -Z_STRIDE + Y_STRIDE),
    ("st", Z_STRIDE - Y_STRIDE),
    ("sb", -Z_STRIDE - Y_STRIDE),
    ("et", Z_STRIDE + 1),
    ("eb", -Z_STRIDE + 1),
    ("wt", Z_STRIDE - 1),
    ("wb", -Z_STRIDE - 1),
]

#: One-cell collision weight per direction (BGK-flavored).
WEIGHTS = {name: (1.0 / 3.0 if name == "c" else
                  1.0 / 18.0 if abs(off) in (1, Y_STRIDE, Z_STRIDE) else
                  1.0 / 36.0)
           for name, off in DIRECTIONS}


def build_lbm(sweeps: int = 1) -> Procedure:
    """The stream-collide kernel over the interior cells."""
    dir_params = "\n".join(
        f"  integer, intent(in) :: {name}" for name, _ in DIRECTIONS)
    # Collision: relax each distribution toward 1/19 of the local
    # density, then stream into the neighbor slot of dstgrid.
    reads = " + ".join(f"srcgrid({name} + n_cell_entries * 0 + i)"
                       for name, _ in DIRECTIONS)
    writes = "\n".join(
        f"      dstgrid({name} + n_cell_entries * {off} + i) = "
        f"(1.0 - omega) * srcgrid({name} + n_cell_entries * 0 + i) "
        f"+ omega * {WEIGHTS[name]!r} * rho"
        for name, off in DIRECTIONS)
    src = f"""
subroutine lbm(srcgrid, dstgrid, omega, n_cell_entries, ifirst, ilast{"".join(", " + name for name, _ in DIRECTIONS)})
  real, intent(in) :: srcgrid(*)
  real, intent(inout) :: dstgrid(*)
  real, intent(in) :: omega
  integer, intent(in) :: n_cell_entries
  integer, intent(in) :: ifirst
  integer, intent(in) :: ilast
{dir_params}
  real :: rho

  do sweep = 1, {sweeps}
    !$omp parallel do private(rho)
    do i = ifirst, ilast
      rho = {reads}
{writes}
    end do
  end do
end subroutine lbm
"""
    return parse_procedure(src)


def make_lbm_workload(ncells: int = 600, seed: int = 0) -> Dict[str, object]:
    """A scaled-down flat grid with the paper's direction layout.

    ``ncells`` interior cells are updated; the flat arrays carry enough
    halo for the largest stream offset (±(Z_STRIDE + Y_STRIDE) cells).
    """
    rng = np.random.default_rng(seed)
    max_off = max(abs(off) for _, off in DIRECTIONS)
    bases = {}
    cursor = 0
    total_span = 19 * (ncells + 2 * max_off + 1)
    for name, _ in DIRECTIONS:
        # Each direction owns one contiguous block of n_cell_entries
        # slots; base points at the block start offset by the halo.
        bases[name] = cursor + max_off + 1
        cursor += ncells + 2 * max_off + 1
    n_cell_entries = 1  # flat layout: offsets are in cells already
    size = cursor
    return {
        "srcgrid": rng.uniform(0.1, 1.0, size),
        "dstgrid": np.zeros(size),
        "omega": 1.2,
        "n_cell_entries": n_cell_entries,
        "ifirst": 1,
        "ilast": ncells,
        **bases,
    }

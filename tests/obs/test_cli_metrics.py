"""CLI surface of the metrics v2 layer: ``--progress`` heartbeats,
the ``cache_summary``/JSON cache section, the ``--metrics`` validator
mode, and the distributed-trace views of ``repro profile``."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.metrics import METRICS_SCHEMA, METRICS_SCHEMA_V2
from repro.obs.validate import main as validate_main, validate_file

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"
STENCIL_F90 = str(EXAMPLES / "stencil_small.f90")
STENCIL = ["-i", "uold", "-o", "unew"]


class TestValidateMetricsMode:
    def _write(self, tmp_path, doc):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(doc))
        return str(path)

    def test_v2_snapshot_is_valid(self, tmp_path, capsys):
        path = self._write(tmp_path, {
            "schema": METRICS_SCHEMA_V2,
            "counters": {"scheduler.dispatched": 2}, "gauges": {},
            "histograms": {"solver.check_seconds": {
                "buckets": [0.1], "counts": [3, 0], "count": 3,
                "sum": 0.05}}})
        assert validate_main(["--metrics", path]) == 0
        assert "valid" in capsys.readouterr().out

    def test_v1_mapping_is_valid_through_migration(self, tmp_path):
        path = self._write(tmp_path, {"schema": METRICS_SCHEMA,
                                      "queries": 3})
        assert validate_main(["--metrics", path]) == 0

    def test_unknown_schema_is_rejected_with_a_clear_error(self, tmp_path,
                                                           capsys):
        path = self._write(tmp_path, {"schema": "repro-metrics/99"})
        assert validate_main(["--metrics", path]) == 1
        err = capsys.readouterr().err
        assert "repro-metrics/99" in err and METRICS_SCHEMA_V2 in err

    def test_usage_without_a_file(self, capsys):
        assert validate_main(["--metrics"]) == 2
        assert "--metrics" in capsys.readouterr().err


class TestProgressHeartbeat:
    def _snapshots(self, err):
        out = []
        for line in err.splitlines():
            if line.startswith("{"):
                doc = json.loads(line)
                if doc.get("schema") == METRICS_SCHEMA_V2:
                    out.append(doc)
        return out

    def test_final_snapshot_always_lands_on_stderr(self, capsys):
        assert main(["analyze", STENCIL_F90, *STENCIL,
                     "--progress", "30"]) == 0
        snapshots = self._snapshots(capsys.readouterr().err)
        assert snapshots, "no repro-metrics/2 heartbeat on stderr"
        final = snapshots[-1]
        # The solver histogram fills even without --trace: the
        # RegistryTracer records metrics while events stay off.
        assert final["histograms"]["solver.check_seconds"]["count"] > 0

    def test_progress_keeps_json_stdout_clean(self, capsys):
        assert main(["analyze", STENCIL_F90, *STENCIL, "--json",
                     "--progress", "30"]) == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)      # stdout parses as one doc
        assert doc["schema"] == "repro-analyze/1"
        assert self._snapshots(captured.err)

    def test_heartbeats_validate_as_metrics_files(self, tmp_path, capsys):
        assert main(["analyze", STENCIL_F90, *STENCIL,
                     "--progress", "30"]) == 0
        snapshot = self._snapshots(capsys.readouterr().err)[-1]
        path = tmp_path / "beat.json"
        path.write_text(json.dumps(snapshot))
        assert validate_main(["--metrics", str(path)]) == 0


class TestCacheSummary:
    def test_json_gains_a_cache_section_only_with_cache_dir(self, tmp_path,
                                                            capsys):
        assert main(["analyze", STENCIL_F90, *STENCIL, "--json"]) == 0
        assert "cache" not in json.loads(capsys.readouterr().out)

        cache_dir = str(tmp_path / "vcache")
        assert main(["analyze", STENCIL_F90, *STENCIL, "--json",
                     "--cache-dir", cache_dir]) == 0
        cold = json.loads(capsys.readouterr().out)["cache"]
        assert cold["loop_stores"] > 0
        assert cold["loop_hits"] == 0
        assert cold["dropped_lines"] == 0

        assert main(["analyze", STENCIL_F90, *STENCIL, "--json",
                     "--cache-dir", cache_dir]) == 0
        warm = json.loads(capsys.readouterr().out)["cache"]
        assert warm["loop_hits"] == cold["loop_stores"]
        assert warm["loop_misses"] == 0

    def test_trace_carries_cache_summary_event_and_counters(self, tmp_path,
                                                            capsys):
        trace = str(tmp_path / "trace.jsonl")
        cache_dir = str(tmp_path / "vcache")
        assert main(["analyze", STENCIL_F90, *STENCIL,
                     "--cache-dir", cache_dir, "--trace", trace]) == 0
        assert validate_file(trace) == []
        events = [json.loads(line) for line in open(trace)]
        summaries = [e for e in events if e["type"] == "cache_summary"]
        assert len(summaries) == 1
        assert summaries[0]["loop_stores"] > 0
        metrics = events[-1]
        assert metrics["type"] == "metrics"
        assert metrics["counters"]["cache.loop_stores"] \
            == summaries[0]["loop_stores"]
        assert "cache.question_misses" in metrics["counters"]

    def test_human_mode_keeps_the_stderr_summary_line(self, tmp_path,
                                                      capsys):
        cache_dir = str(tmp_path / "vcache")
        assert main(["analyze", STENCIL_F90, *STENCIL,
                     "--cache-dir", cache_dir]) == 0
        assert "cache:" in capsys.readouterr().err


class TestDistributedProfile:
    @pytest.fixture(scope="class")
    def process_trace(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("dist") / "process.jsonl")
        assert main(["analyze", str(EXAMPLES / "multiloop.f90"),
                     "-i", "x", "-o", "a,b,c,d,e,f",
                     "--backend", "process", "--jobs", "2",
                     "--trace", path]) == 0
        return path

    def test_profile_renders_the_distributed_views(self, process_trace,
                                                   capsys):
        assert main(["profile", process_trace]) == 0
        out = capsys.readouterr().out
        assert "worker lanes (distributed trace):" in out
        assert "worker utilization (busy vs idle in the pool):" in out
        assert "critical path (longest chain of nested spans):" in out
        assert "w0" in out

    def test_single_process_profile_omits_the_worker_views(self, capsys,
                                                           tmp_path):
        trace = str(tmp_path / "inline.jsonl")
        assert main(["analyze", STENCIL_F90, *STENCIL,
                     "--trace", trace]) == 0
        capsys.readouterr()
        assert main(["profile", trace]) == 0
        out = capsys.readouterr().out
        assert "worker lanes" not in out
        assert "worker utilization" not in out
        assert "critical path" in out     # spans exist in any trace

"""Statement AST for the mini-language.

Statements have *identity* semantics (two structurally equal statements
are still distinct program points), because every static analysis in
this package keys facts by program point. Each statement gets a unique
``uid`` at construction.

The statement set mirrors what the paper's benchmarks need:

* ``Assign`` — possibly marked ``atomic`` (OpenMP ``!$omp atomic``).
* ``If`` — structured two-way branch.
* ``Loop`` — counted ``do`` loop; ``parallel=True`` models an
  ``!$omp parallel do`` with ``private`` / ``reduction`` clauses.
* ``Push`` / ``Pop`` — tape operations emitted by the AD engine
  (Tapenade's PUSH/POP primitives).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from .expr import ArrayRef, Const, Expr, Op, UnOp, Var, as_expr

_uid_counter = itertools.count(1)


class Stmt:
    """Base class for all statements."""

    __slots__ = ("uid",)

    def __init__(self) -> None:
        self.uid: int = next(_uid_counter)

    # Identity-based equality/hash inherited from object is intended.

    def child_bodies(self) -> Tuple[List["Stmt"], ...]:
        """Nested statement lists (empty for simple statements)."""
        return ()


class Assign(Stmt):
    """``target = value`` where target is a scalar or array element.

    ``atomic=True`` renders as an ``!$omp atomic`` update; the runtime
    charges the atomic latency for it.
    """

    __slots__ = ("target", "value", "atomic")

    def __init__(self, target: Var | ArrayRef, value, *, atomic: bool = False) -> None:
        super().__init__()
        if not isinstance(target, (Var, ArrayRef)):
            raise TypeError(f"assignment target must be Var or ArrayRef, got {target!r}")
        self.target = target
        self.value: Expr = as_expr(value)
        self.atomic = bool(atomic)

    def __repr__(self) -> str:
        pre = "atomic " if self.atomic else ""
        return f"<{pre}{self.target} = {self.value}>"


class If(Stmt):
    """A structured two-way conditional."""

    __slots__ = ("cond", "then_body", "else_body")

    def __init__(self, cond, then_body: Sequence[Stmt], else_body: Sequence[Stmt] = ()) -> None:
        super().__init__()
        self.cond: Expr = as_expr(cond)
        self.then_body: List[Stmt] = list(then_body)
        self.else_body: List[Stmt] = list(else_body)

    def child_bodies(self) -> Tuple[List[Stmt], ...]:
        return (self.then_body, self.else_body)

    def __repr__(self) -> str:
        return f"<if {self.cond} then[{len(self.then_body)}] else[{len(self.else_body)}]>"


class Loop(Stmt):
    """A counted ``do`` loop; optionally an OpenMP ``parallel do``.

    ``reduction`` holds ``(op, varname)`` pairs, e.g. ``("+", "s")``.
    Per the OpenMP standard the loop counter of a parallel loop is
    implicitly private; it does not need to be listed in ``private``.
    """

    __slots__ = ("var", "start", "stop", "step", "body", "parallel",
                 "private", "reduction", "nowait", "label")

    def __init__(
        self,
        var: str,
        start,
        stop,
        step=1,
        body: Sequence[Stmt] = (),
        *,
        parallel: bool = False,
        private: Iterable[str] = (),
        reduction: Iterable[Tuple[str, str]] = (),
        nowait: bool = False,
        label: Optional[str] = None,
    ) -> None:
        super().__init__()
        if not isinstance(var, str) or not var:
            raise TypeError(f"loop variable must be a name, got {var!r}")
        self.var = var
        self.start: Expr = as_expr(start)
        self.stop: Expr = as_expr(stop)
        self.step: Expr = as_expr(step)
        self.body: List[Stmt] = list(body)
        self.parallel = bool(parallel)
        self.private: Tuple[str, ...] = tuple(private)
        self.reduction: Tuple[Tuple[str, str], ...] = tuple(tuple(r) for r in reduction)
        self.nowait = bool(nowait)
        self.label = label

    @property
    def step_const(self) -> Optional[int]:
        """The step as an integer if it is a literal, else ``None``."""
        step = self.step
        neg = False
        while isinstance(step, UnOp) and step.op is Op.NEG:
            neg = not neg
            step = step.operand
        if isinstance(step, Const) and step.is_integer:
            value = int(step.value)
            return -value if neg else value
        return None

    def private_names(self) -> set[str]:
        """All names private to each thread: clause vars + loop counter."""
        names = set(self.private) | {self.var}
        names.update(name for _, name in self.reduction)
        return names

    def child_bodies(self) -> Tuple[List[Stmt], ...]:
        return (self.body,)

    def __repr__(self) -> str:
        tag = "parallel do" if self.parallel else "do"
        return f"<{tag} {self.var}={self.start},{self.stop},{self.step} body[{len(self.body)}]>"


class Push(Stmt):
    """Push the value of an expression onto a named tape channel.

    Channels are resolved by the runtime; inside a parallel loop each
    iteration owns a separate stack, mirroring Tapenade's per-thread
    tapes while remaining deterministic under simulation.
    """

    __slots__ = ("channel", "value")

    def __init__(self, channel: str, value) -> None:
        super().__init__()
        self.channel = channel
        self.value: Expr = as_expr(value)

    def __repr__(self) -> str:
        return f"<push[{self.channel}] {self.value}>"


class Pop(Stmt):
    """Pop the top of a tape channel into a scalar or array element."""

    __slots__ = ("channel", "target")

    def __init__(self, channel: str, target: Var | ArrayRef) -> None:
        super().__init__()
        if not isinstance(target, (Var, ArrayRef)):
            raise TypeError(f"pop target must be Var or ArrayRef, got {target!r}")
        self.channel = channel
        self.target = target

    def __repr__(self) -> str:
        return f"<pop[{self.channel}] -> {self.target}>"


def walk_stmts(body: Sequence[Stmt]) -> Iterator[Stmt]:
    """Yield every statement in *body*, recursively, pre-order."""
    for stmt in body:
        yield stmt
        for child in stmt.child_bodies():
            yield from walk_stmts(child)


def find_parallel_loops(body: Sequence[Stmt]) -> List[Loop]:
    """All ``parallel do`` loops in *body* (outermost occurrences too)."""
    return [s for s in walk_stmts(body) if isinstance(s, Loop) and s.parallel]


def copy_stmt(stmt: Stmt) -> Stmt:
    """Deep-copy a statement tree, assigning fresh uids."""
    if isinstance(stmt, Assign):
        return Assign(stmt.target, stmt.value, atomic=stmt.atomic)
    if isinstance(stmt, If):
        return If(stmt.cond, [copy_stmt(s) for s in stmt.then_body],
                  [copy_stmt(s) for s in stmt.else_body])
    if isinstance(stmt, Loop):
        return Loop(stmt.var, stmt.start, stmt.stop, stmt.step,
                    [copy_stmt(s) for s in stmt.body], parallel=stmt.parallel,
                    private=stmt.private, reduction=stmt.reduction,
                    nowait=stmt.nowait, label=stmt.label)
    if isinstance(stmt, Push):
        return Push(stmt.channel, stmt.value)
    if isinstance(stmt, Pop):
        return Pop(stmt.channel, stmt.target)
    raise TypeError(f"not a statement: {stmt!r}")  # pragma: no cover


def copy_body(body: Sequence[Stmt]) -> List[Stmt]:
    """Deep-copy a statement list with fresh uids."""
    return [copy_stmt(s) for s in body]


def strip_parallel(body: Sequence[Stmt]) -> List[Stmt]:
    """Deep-copy *body* with every OpenMP pragma removed: parallel
    loops become plain loops (clauses dropped), atomics become plain
    assignments. This is the paper's "serial version (without any
    OpenMP pragmas)" used as the speedup baseline."""
    out: List[Stmt] = []
    for stmt in body:
        if isinstance(stmt, Assign):
            out.append(Assign(stmt.target, stmt.value, atomic=False))
        elif isinstance(stmt, If):
            out.append(If(stmt.cond, strip_parallel(stmt.then_body),
                          strip_parallel(stmt.else_body)))
        elif isinstance(stmt, Loop):
            out.append(Loop(stmt.var, stmt.start, stmt.stop, stmt.step,
                            strip_parallel(stmt.body), parallel=False,
                            label=stmt.label))
        else:
            out.append(copy_stmt(stmt))
    return out

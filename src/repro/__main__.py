"""``python -m repro`` — the command-line front end."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())

"""Unit tests for the exploitation-question memo.

The memo answers a repeated (common-root context, question) pair
without re-entering the solver. These tests pin its three contracts:
a repeated question is a hit, questions asked under *different*
contexts never share answers, and the stats counters stay consistent
with the Table-1 totals (``exploitation_checks`` counts every question
asked, memoized or not, so ``queries`` is memo-invariant;
``solver_checks = queries - memo_hits`` is what actually reached the
solver).
"""

import pytest

from repro import parse_procedure
from repro.analysis import ActivityAnalysis
from repro.formad import FormADEngine

# Two independent arrays read through the same index expression: the
# disjointness question for x's adjoint and for z's adjoint is the
# same formula at the same (root) context, so the second one must be
# a memo hit.
SHARED_QUESTION = """
subroutine shared(x, z, y, c, n)
  integer, intent(in) :: n
  real, intent(in) :: x(40)
  real, intent(in) :: z(40)
  real, intent(inout) :: y(20)
  integer, intent(in) :: c(20)
  !$omp parallel do
  do i = 1, n
    y(c(i)) = x(c(i) + 7) * z(c(i) + 7)
  end do
end subroutine shared
"""

# The same index expression read under *different* branches: the
# questions live at different common-root contexts, so nothing may be
# shared between them.
BRANCHED = """
subroutine branched(x, z, y, c, b, n)
  integer, intent(in) :: n
  real, intent(in) :: x(40)
  real, intent(in) :: z(40)
  real, intent(inout) :: y(20)
  integer, intent(in) :: c(20)
  integer, intent(in) :: b(20)
  !$omp parallel do
  do i = 1, n
    if (b(i) > 0) then
      y(c(i)) = x(c(i) + 7)
    else
      y(c(i)) = z(c(i) + 7)
    end if
  end do
end subroutine branched
"""


def _analyze(source, independents, dependents, **flags):
    proc = parse_procedure(source)
    activity = ActivityAnalysis(proc, independents, dependents)
    engine = FormADEngine(proc, activity, **flags)
    (analysis,) = engine.analyze_all()
    return analysis


class TestMemoHits:
    def test_repeated_question_hits_memo(self):
        analysis = _analyze(SHARED_QUESTION, ["x", "z"], ["y"])
        assert analysis.verdicts["x"].safe
        assert analysis.verdicts["z"].safe
        assert analysis.stats.memo_hits >= 1

    def test_memo_does_not_change_question_count(self):
        with_memo = _analyze(SHARED_QUESTION, ["x", "z"], ["y"])
        without = _analyze(SHARED_QUESTION, ["x", "z"], ["y"],
                           use_question_memo=False)
        assert without.stats.memo_hits == 0
        # Table-1 invariant: the memo changes who answers, not what is
        # asked. Verdicts and counts must be identical.
        assert with_memo.stats.exploitation_checks == \
            without.stats.exploitation_checks
        assert with_memo.stats.consistency_checks == \
            without.stats.consistency_checks
        assert with_memo.stats.queries == without.stats.queries
        assert {a: v.safe for a, v in with_memo.verdicts.items()} == \
            {a: v.safe for a, v in without.verdicts.items()}

    def test_memoized_answers_skip_the_solver(self):
        analysis = _analyze(SHARED_QUESTION, ["x", "z"], ["y"])
        s = analysis.stats
        assert s.solver_checks == s.queries - s.memo_hits
        assert s.solver_checks < s.queries


class TestNoCrossContextSharing:
    def test_questions_under_different_branches_are_distinct(self):
        analysis = _analyze(BRANCHED, ["x", "z"], ["y"])
        # x is read only in the then-branch, z only in the else-branch:
        # their questions are asked at different common-root contexts
        # and must not be conflated, even though the index expressions
        # coincide syntactically.
        assert analysis.stats.memo_hits == 0
        assert analysis.verdicts["x"].safe
        assert analysis.verdicts["z"].safe

    def test_branch_verdicts_match_memo_off(self):
        with_memo = _analyze(BRANCHED, ["x", "z"], ["y"])
        without = _analyze(BRANCHED, ["x", "z"], ["y"],
                           use_question_memo=False)
        assert with_memo.stats.queries == without.stats.queries
        assert {a: v.safe for a, v in with_memo.verdicts.items()} == \
            {a: v.safe for a, v in without.verdicts.items()}


class TestCounterConsistency:
    @pytest.mark.parametrize("source,ind,dep", [
        (SHARED_QUESTION, ["x", "z"], ["y"]),
        (BRANCHED, ["x", "z"], ["y"]),
    ])
    def test_queries_decompose(self, source, ind, dep):
        s = _analyze(source, ind, dep).stats
        assert s.queries == s.consistency_checks + s.exploitation_checks
        assert 0 <= s.memo_hits <= s.exploitation_checks
        assert s.solver_checks == s.queries - s.memo_hits

"""The crash-safe verdict journal: recovery, rotation, engine resume.

The durability story under test: every line checksums independently,
damage (a truncated tail from ``kill -9``, flipped bytes from a bad
disk) drops only the damaged records, and a resumed analysis replays
the surviving SAT/UNSAT answers to reproduce the uninterrupted
verdicts and counts.
"""

import json
import os
import zlib

import pytest

from repro.analysis.activity import ActivityAnalysis
from repro.formad import FormADEngine
from repro.ir import parse_program
from repro.resilience.journal import (JOURNAL_SCHEMA, JournalError,
                                      JournalWriter, ResumeState,
                                      _decode_line, _encode_line,
                                      journal_fingerprint, read_journal)

TWO_LOOPS = """
subroutine two(x, y, z, n)
  real, intent(in) :: x(1000)
  real, intent(out) :: y(1000)
  real, intent(out) :: z(1000)
  integer, intent(in) :: n
  !$omp parallel do
  do i = 2, n
    y(i) = x(i) + x(i - 1)
  end do
  !$omp parallel do
  do j = 2, n
    z(j) = x(j) * x(j - 1)
  end do
end subroutine two
"""


def _meta(fingerprint="fp"):
    return {"schema": JOURNAL_SCHEMA, "fingerprint": fingerprint}


class TestLineCodec:
    def test_round_trip(self):
        record = {"kind": "verdict", "loop": "0:i", "array": "y",
                  "safe": True}
        line = _encode_line(record)
        assert line.endswith("\n")
        assert _decode_line(line) == record

    def test_flipped_byte_fails_checksum(self):
        line = _encode_line({"kind": "question", "loop": "0:i",
                             "result": "unsat"})
        # flip a byte inside the payload, keeping valid JSON
        damaged = line.replace('"unsat"', '"unsat"'.replace("t", "x"))
        assert damaged != line
        assert _decode_line(damaged) is None

    def test_garbage_lines(self):
        assert _decode_line("not json") is None
        assert _decode_line('{"c": 0}') is None
        assert _decode_line(json.dumps({"c": "nope", "r": {}})) is None

    def test_checksum_covers_canonical_form(self):
        record = {"b": 1, "a": 2}
        payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
        wrapper = json.loads(_encode_line(record))
        assert wrapper["c"] == zlib.crc32(payload.encode())


class TestReadJournal:
    def test_writer_read_round_trip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        writer = JournalWriter(path, meta=_meta())
        writer.record("question", loop="0:i", q="a", result="unsat")
        writer.record("verdict", loop="0:i", array="y", safe=True)
        writer.close()
        meta, records, dropped = read_journal(path)
        assert dropped == 0
        assert meta["kind"] == "meta"
        assert meta["fingerprint"] == "fp"
        assert [r["kind"] for r in records] == ["question", "verdict"]

    def test_truncated_tail_drops_one_record(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        writer = JournalWriter(path, meta=_meta())
        writer.record("question", loop="0:i", q="a", result="unsat")
        writer.close()
        intact = os.path.getsize(path)
        # simulate kill -9 mid-write: half a record, no newline
        with open(path, "a") as fh:
            fh.write(_encode_line({"kind": "question", "loop": "0:i",
                                   "q": "b", "result": "sat"})[:-9])
        meta, records, dropped = read_journal(path)
        assert meta is not None
        assert len(records) == 1 and dropped == 1
        # append mode truncates the half-line so the file stays aligned
        writer = JournalWriter(path, append=True)
        assert os.path.getsize(path) == intact
        writer.record("question", loop="0:i", q="c", result="unsat")
        writer.close()
        _, records, dropped = read_journal(path)
        assert dropped == 0
        assert [r["q"] for r in records] == ["a", "c"]

    def test_flipped_byte_mid_file_drops_only_that_record(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        writer = JournalWriter(path, meta=_meta())
        for q in ("a", "b", "c"):
            writer.record("question", loop="0:i", q=q, result="unsat")
        writer.close()
        lines = open(path).read().splitlines(keepends=True)
        lines[2] = lines[2].replace('"q":"b"', '"q":"x"', 1)
        with open(path, "w") as fh:
            fh.writelines(lines)
        meta, records, dropped = read_journal(path)
        assert meta is not None
        assert dropped == 1
        assert [r["q"] for r in records] == ["a", "c"]

    def test_fresh_mode_truncates_but_appends(self, tmp_path):
        # the handle itself must be O_APPEND even in fresh mode so a
        # worker subprocess can interleave its own appends
        path = str(tmp_path / "j.jsonl")
        writer = JournalWriter(path, meta=_meta())
        with open(path, "a") as other:
            other.write(_encode_line({"kind": "question", "loop": "1:j",
                                      "q": "w", "result": "sat"}))
        writer.record("verdict", loop="0:i", array="y", safe=True)
        writer.close()
        _, records, dropped = read_journal(path)
        assert dropped == 0
        assert [r["kind"] for r in records] == ["question", "verdict"]


class TestRotate:
    def test_rotation_compacts_settled_loops(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        writer = JournalWriter(path, meta=_meta())
        writer.record("question", loop="0:i", q="a", result="unsat")
        writer.record("verdict", loop="0:i", array="y", safe=True)
        writer.record("loop_done", loop="0:i", stats={}, safe_writes=[],
                      offending=[], degraded=False)
        writer.record("question", loop="1:j", q="b", result="sat",
                      witness={"i": 1})
        writer.rotate()
        # the writer still works after rotation
        writer.record("question", loop="1:j", q="c", result="unsat")
        writer.close()
        meta, records, dropped = read_journal(path)
        assert meta is not None and dropped == 0
        kinds = [(r["kind"], r["loop"]) for r in records]
        assert ("question", "0:i") not in kinds       # compacted
        assert ("verdict", "0:i") in kinds
        assert ("loop_done", "0:i") in kinds
        assert kinds.count(("question", "1:j")) == 2  # unsettled: kept


class TestRotateWorkerFence:
    """Rotation must refuse while isolated workers hold live O_APPEND
    handles on the journal.

    Regression: ``rotate()`` replaces the file via rename, but a worker
    subprocess appends through its *own* O_APPEND handle on the old
    inode — rotating under it silently discards every verdict the
    worker writes afterwards. The writer now counts attached workers
    and refuses to rotate until they detach."""

    def test_rotate_refuses_while_worker_attached(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        writer = JournalWriter(path, meta=_meta())
        writer.record("question", loop="0:i", q="a", result="unsat")
        writer.attach_worker()
        with pytest.raises(JournalError, match="live append handle"):
            writer.rotate()
        # the refusal must not have disturbed the journal
        writer.record("question", loop="0:i", q="b", result="sat",
                      witness={"i": 1})
        writer.detach_worker()
        writer.close()
        _, records, dropped = read_journal(path)
        assert dropped == 0
        assert [r["q"] for r in records] == ["a", "b"]

    def test_rotate_works_again_after_detach(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        writer = JournalWriter(path, meta=_meta())
        writer.record("question", loop="0:i", q="a", result="unsat")
        writer.record("verdict", loop="0:i", array="y", safe=True)
        writer.record("loop_done", loop="0:i", stats={}, degraded=False)
        writer.attach_worker()
        writer.attach_worker()
        writer.detach_worker()
        with pytest.raises(JournalError):
            writer.rotate()       # one worker still attached
        writer.detach_worker()
        writer.rotate()           # all detached: compaction allowed
        writer.close()
        _, records, dropped = read_journal(path)
        assert dropped == 0
        kinds = [r["kind"] for r in records]
        assert "question" not in kinds  # settled loop compacted
        assert kinds == ["verdict", "loop_done"]

    def test_detach_without_attach_is_an_error(self, tmp_path):
        writer = JournalWriter(str(tmp_path / "j.jsonl"), meta=_meta())
        with pytest.raises(JournalError, match="detach"):
            writer.detach_worker()
        writer.close()


class TestAppendingContract:
    """``appending`` is a *required* attribute of anything passed as a
    journal: the engine decides whether to re-emit resume-settled loops
    by reading it directly, without a duck-typed ``getattr`` default
    that would silently pick a wrong behavior for a new writer kind."""

    def test_journal_like_without_appending_is_rejected(self, tmp_path):
        class Recorder:  # record()/close() but no `appending`
            def __init__(self):
                self.rows = []

            def record(self, kind, **fields):
                self.rows.append((kind, fields))

            def close(self):
                pass

        proc = parse_program(TWO_LOOPS)["two"]
        path = str(tmp_path / "j.jsonl")
        _journaled_run(proc, path)
        state = ResumeState.load(path)
        engine = _engine(proc, resume=state)
        engine.attach_run_state(journal=Recorder())
        with pytest.raises(AttributeError, match="appending"):
            engine.analyze_all()

    def test_resume_into_fresh_journal_reemits_settled_loops(self, tmp_path):
        """Resuming from journal A while writing journal B afresh must
        copy A's settled verdicts into B — otherwise B claims to
        describe the run but is missing its loops."""
        proc = parse_program(TWO_LOOPS)["two"]
        old = str(tmp_path / "old.jsonl")
        new = str(tmp_path / "new.jsonl")
        baseline, fingerprint = _journaled_run(proc, old)

        state = ResumeState.load(old)
        writer = JournalWriter(new, meta=_meta(fingerprint))
        assert not writer.appending
        resumed = _engine(proc, resume=state, journal=writer).analyze_all()
        writer.close()
        assert all(a.resumed for a in resumed)

        fresh_state = ResumeState.load(new)
        assert fresh_state.settled_loops == 2
        for key in ("0:i", "1:j"):
            assert fresh_state.loop_done(key) is not None
        # the new journal resumes exactly like the old one
        again = _engine(proc, resume=fresh_state).analyze_all()
        for a, b in zip(again, baseline):
            assert a.resumed
            assert {n: v.safe for n, v in a.verdicts.items()} \
                == {n: v.safe for n, v in b.verdicts.items()}

    def test_appending_journal_does_not_duplicate_settled_loops(self, tmp_path):
        """Resuming *into the same journal* (append mode) must not
        re-emit: the records are already there."""
        proc = parse_program(TWO_LOOPS)["two"]
        path = str(tmp_path / "j.jsonl")
        _journaled_run(proc, path)
        before = len(read_journal(path)[1])

        state = ResumeState.load(path)
        writer = JournalWriter(path, append=True)
        assert writer.appending
        resumed = _engine(proc, resume=state, journal=writer).analyze_all()
        writer.close()
        assert all(a.resumed for a in resumed)
        assert len(read_journal(path)[1]) == before


class TestResumeState:
    def test_only_decided_questions_settle(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        writer = JournalWriter(path, meta=_meta())
        writer.record("question", loop="0:i", ctx="[root]", q="a",
                      result="unsat")
        writer.record("question", loop="0:i", ctx="[root]", q="b",
                      result="sat", witness={"i": 3})
        writer.record("question", loop="0:i", ctx="[root]", q="c",
                      result="unknown", reason="timeout")
        writer.close()
        state = ResumeState.load(path)
        assert state.settled_questions == 2
        assert state.question("0:i", "[root]", "a") == ("unsat", None)
        assert state.question("0:i", "[root]", "b") == ("sat", {"i": 3})
        assert state.question("0:i", "[root]", "c") is None
        assert state.question("0:i", "[other]", "a") is None

    def test_loop_indexing(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        writer = JournalWriter(path, meta=_meta())
        writer.record("verdict", loop="0:i", array="y", safe=True)
        writer.record("loop_done", loop="0:i", stats={}, degraded=False)
        writer.close()
        state = ResumeState.load(path)
        assert state.settled_loops == 1
        assert state.loop_done("0:i")["kind"] == "loop_done"
        assert state.loop_done("1:j") is None
        assert [v["array"] for v in state.verdicts("0:i")] == ["y"]

    def test_fingerprint_refusal(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        JournalWriter(path, meta=_meta("good")).close()
        state = ResumeState.load(path)
        state.check_fingerprint("good")  # matching: no raise
        with pytest.raises(JournalError, match="fingerprint"):
            state.check_fingerprint("other")
        with pytest.raises(JournalError, match="meta"):
            ResumeState(None, []).check_fingerprint("good")
        bad_schema = ResumeState({"kind": "meta", "schema": "v0",
                                  "fingerprint": "good"}, [])
        with pytest.raises(JournalError, match="schema"):
            bad_schema.check_fingerprint("good")

    def test_fingerprint_is_sensitive_to_inputs(self):
        base = journal_fingerprint("src", "two", ["x"], ["y"], {"f": 1})
        assert base == journal_fingerprint("src", "two", ["x"], ["y"],
                                           {"f": 1})
        assert base != journal_fingerprint("src2", "two", ["x"], ["y"],
                                           {"f": 1})
        assert base != journal_fingerprint("src", "two", ["x"], ["z"],
                                           {"f": 1})
        assert base != journal_fingerprint("src", "two", ["x"], ["y"],
                                           {"f": 2})


def _engine(proc, **kwargs):
    activity = ActivityAnalysis(proc, ["x"], ["y", "z"])
    return FormADEngine(proc, activity, **kwargs)


def _journaled_run(proc, path):
    engine = _engine(proc)
    fingerprint = journal_fingerprint(
        TWO_LOOPS, "two", ["x"], ["y", "z"], engine.fingerprint_flags())
    writer = JournalWriter(path, meta=_meta(fingerprint))
    engine.attach_run_state(journal=writer)
    analyses = engine.analyze_all()
    writer.close()
    return analyses, fingerprint


class TestEngineResume:
    def test_settled_loops_replay_without_reanalysis(self, tmp_path):
        proc = parse_program(TWO_LOOPS)["two"]
        path = str(tmp_path / "j.jsonl")
        baseline, fingerprint = _journaled_run(proc, path)

        state = ResumeState.load(path)
        state.check_fingerprint(fingerprint)
        assert state.settled_loops == 2
        resumed = _engine(proc, resume=state).analyze_all()

        assert len(resumed) == len(baseline) == 2
        for again, honest in zip(resumed, baseline):
            assert again.resumed
            assert {n: v.safe for n, v in again.verdicts.items()} \
                == {n: v.safe for n, v in honest.verdicts.items()}
            assert again.stats.exploitation_checks \
                == honest.stats.exploitation_checks

    def test_damaged_journal_falls_back_to_question_replay(self, tmp_path):
        proc = parse_program(TWO_LOOPS)["two"]
        path = str(tmp_path / "j.jsonl")
        baseline, fingerprint = _journaled_run(proc, path)

        # destroy the second loop's loop_done record (as if the run had
        # been killed before finishing it); its questions survive
        lines = open(path).read().splitlines(keepends=True)
        kept = [ln for ln in lines
                if not (_decode_line(ln) or {}).get("kind") == "loop_done"
                or (_decode_line(ln) or {}).get("loop") != "1:j"]
        assert len(kept) == len(lines) - 1
        with open(path, "w") as fh:
            fh.writelines(kept)

        state = ResumeState.load(path)
        state.check_fingerprint(fingerprint)
        assert state.settled_loops == 1
        resumed = _engine(proc, resume=state).analyze_all()

        assert resumed[0].resumed
        assert not resumed[1].resumed
        # the re-analyzed loop replays its settled answers instead of
        # re-asking the solver, and lands on identical verdicts
        assert resumed[1].stats.resumed_questions > 0
        for again, honest in zip(resumed, baseline):
            assert {n: v.safe for n, v in again.verdicts.items()} \
                == {n: v.safe for n, v in honest.verdicts.items()}

    def test_degraded_loop_done_is_not_replayed(self, tmp_path):
        proc = parse_program(TWO_LOOPS)["two"]
        path = str(tmp_path / "j.jsonl")
        engine = _engine(proc)
        loops = list(proc.parallel_loops())
        writer = JournalWriter(path, meta=_meta("fp"))
        engine.attach_run_state(journal=writer)
        engine.degraded_analysis(loops[0], "worker crash")
        writer.close()

        state = ResumeState.load(path)
        done = state.loop_done("0:i")
        assert done is not None and done["degraded"]
        fresh = _engine(proc, resume=state).analyze_all()
        # the degraded record is a fallback, not settled knowledge:
        # the resumed run re-analyzes and proves the loop honestly
        assert not fresh[0].resumed
        assert not fresh[0].degraded
        assert fresh[0].safe_arrays() == {"y"}

"""Tests for the experiment harness: specs, scaling, variant builds,
and the report renderers (fast, reduced-size runs)."""

import pytest

from repro.experiments import (ADJOINT_STRATEGIES, PAPER, PAPER_THREADS,
                               format_figure_pair, gfmc_spec,
                               greengauss_spec, run_kernel_experiment,
                               small_stencil_spec)
from repro.experiments.harness import _serialized
from repro.ir import Loop, walk_stmts
from repro.runtime import MachineModel, profile_run
from repro.runtime.costmodel import loop_time, total_time


@pytest.fixture(scope="module")
def stencil_exp():
    return run_kernel_experiment(small_stencil_spec(n=2000))


class TestSerializedBuild:
    def test_no_parallel_loops_or_atomics(self):
        spec = small_stencil_spec(n=500)
        serial = _serialized(spec.proc)
        assert not any(s.parallel for s in walk_stmts(serial.body)
                       if isinstance(s, Loop))

    def test_same_results(self):
        import numpy as np
        from repro.runtime import run_procedure
        spec = small_stencil_spec(n=500)
        serial = _serialized(spec.proc)
        m1 = run_procedure(spec.proc, spec.bindings)
        m2 = run_procedure(serial, spec.bindings)
        np.testing.assert_array_equal(m1.array("unew").data,
                                      m2.array("unew").data)


class TestScaling:
    def test_iter_scale_scales_loop_time_linearly(self):
        spec = small_stencil_spec(n=1000)
        run = profile_run(spec.proc, spec.bindings)
        machine = MachineModel()
        rec = run.profile.parallel_loops[0]
        t1 = loop_time(rec, machine, 4, iter_scale=1.0)
        t10 = loop_time(rec, machine, 4, iter_scale=10.0)
        # Fork/join is constant; the body scales 10x.
        fj = machine.fork_join_cost(4)
        assert (t10 - fj) == pytest.approx(10 * (t1 - fj), rel=1e-6)

    def test_invocation_scale_multiplies_total(self):
        spec = small_stencil_spec(n=1000)
        run = profile_run(spec.proc, spec.bindings)
        machine = MachineModel()
        t1 = total_time(run.profile, machine, 4, invocation_scale=1.0)
        t5 = total_time(run.profile, machine, 4, invocation_scale=5.0)
        assert t5 == pytest.approx(5 * t1, rel=1e-9)


class TestKernelExperiment:
    def test_all_variants_present(self, stencil_exp):
        assert set(stencil_exp.adjoints) == set(ADJOINT_STRATEGIES)
        for strategy in ADJOINT_STRATEGIES:
            assert set(stencil_exp.adjoints[strategy].times) == set(PAPER_THREADS)

    def test_speedups_relative_to_serial(self, stencil_exp):
        sp = stencil_exp.primal_speedups()
        assert sp[1] == pytest.approx(
            stencil_exp.primal_serial_time / stencil_exp.primal.times[1])

    def test_format_figure_pair_renders(self, stencil_exp):
        text = format_figure_pair(stencil_exp, "caption here")
        assert "adj-formad" in text and "speedups" in text
        assert "caption here" in text

    def test_strategies_subset(self):
        exp = run_kernel_experiment(small_stencil_spec(n=500),
                                    strategies=("formad",))
        assert set(exp.adjoints) == {"formad"}

    def test_variant_best_helpers(self, stencil_exp):
        atomic = stencil_exp.adjoints["atomic"]
        assert atomic.best() == min(atomic.times.values())
        assert atomic.times[atomic.best_threads()] == atomic.best()


class TestSpecs:
    def test_paper_scale_factors(self):
        spec = small_stencil_spec(n=20_000)
        assert spec.iter_scale == pytest.approx(50.0)
        assert spec.invocation_scale == 1000
        assert spec.elem_scale == spec.iter_scale

    def test_gfmc_spec_buildable(self):
        spec = gfmc_spec(npair=10, nwalk=4, ngroups_max=5)
        assert spec.proc.parallel_loops()
        assert spec.independents == ["cl", "cr"]

    def test_greengauss_spec_buildable(self):
        spec = greengauss_spec(nnodes=200)
        assert spec.bindings["ncolors"] == 2

    def test_paper_reference_complete(self):
        for key in ("stencil_small", "stencil_large", "gfmc", "greengauss"):
            assert PAPER[key].primal_serial > 0

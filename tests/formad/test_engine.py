"""FormAD engine tests: knowledge extraction, verdicts, and the
paper's worked examples (Fig. 2, the compact stencil, §7 behaviors)."""

import numpy as np
import pytest

from repro import analyze_formad, differentiate, parse_procedure
from repro.analysis import ActivityAnalysis
from repro.formad import (FormADEngine, FormADGuardPolicy, PrimalRaceError,
                          extract_knowledge, format_table1, AnalysisReport)
from repro.ir import Assign, Loop, Var, walk_stmts

FIG2 = """
subroutine fig2(x, y, c, n)
  integer, intent(in) :: n
  real, intent(in) :: x(30)
  real, intent(inout) :: y(20)
  integer, intent(in) :: c(20)
  !$omp parallel do
  do i = 1, n
    y(c(i)) = x(c(i) + 7)
  end do
end subroutine fig2
"""

STENCIL = """
subroutine sten(uold, unew, n)
  integer, intent(in) :: n
  real, intent(in) :: uold(40)
  real, intent(inout) :: unew(40)
  !$omp parallel do
  do i = 2, n - 2, 2
    unew(i) = unew(i) + 0.3 * uold(i - 1)
    unew(i) = unew(i) + 0.4 * uold(i)
    unew(i - 1) = unew(i - 1) + 0.3 * uold(i)
  end do
end subroutine sten
"""

OVERLAPPING = """
subroutine bad(x, y, n)
  integer, intent(in) :: n
  real, intent(in) :: x(30)
  real, intent(inout) :: y(30)
  !$omp parallel do
  do i = 1, n
    y(i) = x(i) + x(i + 1)
  end do
end subroutine bad
"""


class TestFig2:
    def test_both_adjoints_proven_safe(self):
        proc = parse_procedure(FIG2)
        (analysis,) = analyze_formad(proc, ["x"], ["y"])
        assert analysis.verdicts["x"].safe
        assert analysis.verdicts["y"].safe
        assert analysis.all_safe

    def test_knowledge_comes_from_y_writes(self):
        proc = parse_procedure(FIG2)
        (analysis,) = analyze_formad(proc, ["x"], ["y"])
        # One write ref to y -> one self-pair assertion; plus root axiom.
        assert analysis.stats.model_size == 2

    def test_formad_strategy_produces_unguarded_adjoint(self):
        proc = parse_procedure(FIG2)
        adj = differentiate(proc, ["x"], ["y"], strategy="formad")
        atomics = [s for s in walk_stmts(adj.procedure.body)
                   if isinstance(s, Assign) and s.atomic]
        assert not atomics
        loops = [s for s in walk_stmts(adj.procedure.body)
                 if isinstance(s, Loop) and s.parallel]
        # The forward sweep is sliced away entirely (paper Fig. 2).
        assert len(loops) == 1
        assert not any(loop.reduction for loop in loops)

    def test_formad_adjoint_race_free_and_correct(self):
        from repro.runtime import detect_races
        from tests.ad.adcheck import dot_product_test
        proc = parse_procedure(FIG2)
        adj = differentiate(proc, ["x"], ["y"], strategy="formad")
        rng = np.random.default_rng(0)
        c = rng.permutation(20) + 1
        bindings = {"x": rng.standard_normal(30), "y": rng.standard_normal(20),
                    "c": c, "n": 20}
        dot_product_test(proc, adj, bindings, ["x"], ["y"])
        adj_bindings = dict(bindings)
        adj_bindings[adj.adjoint_name("x")] = np.zeros(30)
        adj_bindings[adj.adjoint_name("y")] = np.ones(20)
        assert detect_races(adj.procedure, adj_bindings).race_free


class TestStencil:
    def test_uold_adjoint_proven_safe(self):
        proc = parse_procedure(STENCIL)
        (analysis,) = analyze_formad(proc, ["uold"], ["unew"])
        assert analysis.verdicts["uold"].safe
        assert analysis.verdicts["unew"].safe

    def test_table1_shape_for_stencil(self):
        # Paper Table 1, "stencil 1": 2 unique exprs, 3 exploitation
        # queries for the 3-point compact scheme.
        proc = parse_procedure(STENCIL)
        (analysis,) = analyze_formad(proc, ["uold"], ["unew"])
        assert analysis.stats.unique_exprs == 2
        assert analysis.stats.exploitation_checks == 3
        # model size = 1 (root axiom) + e^2 knowledge assertions
        assert analysis.stats.model_size == 1 + 4

    def test_increment_only_array_needs_no_queries(self):
        proc = parse_procedure(STENCIL)
        (analysis,) = analyze_formad(proc, ["uold"], ["unew"])
        v = analysis.verdicts["unew"]
        assert v.safe and v.pairs_total == 0


class TestUnsafePatterns:
    def test_overlapping_reads_rejected(self):
        # x is read at i and i+1: the adjoint increments xb at both, and
        # x(i+1) of iteration i collides with x(i) of iteration i+1.
        proc = parse_procedure(OVERLAPPING)
        (analysis,) = analyze_formad(proc, ["x"], ["y"])
        assert not analysis.verdicts["x"].safe
        assert analysis.verdicts["y"].safe  # y writes stay disjoint

    def test_formad_falls_back_to_atomics_for_unsafe_arrays(self):
        proc = parse_procedure(OVERLAPPING)
        adj = differentiate(proc, ["x"], ["y"], strategy="formad")
        atomics = [s for s in walk_stmts(adj.procedure.body)
                   if isinstance(s, Assign) and s.atomic]
        assert atomics

    def test_reduction_fallback(self):
        proc = parse_procedure(OVERLAPPING)
        adj = differentiate(proc, ["x"], ["y"], strategy="formad",
                            fallback="reduction")
        loops = [s for s in walk_stmts(adj.procedure.body)
                 if isinstance(s, Loop) and s.parallel and s.reduction]
        assert loops

    def test_racy_primal_detected(self):
        src = """
subroutine racy(x, y, n)
  integer, intent(in) :: n
  real, intent(in) :: x(10)
  real, intent(inout) :: y(10)
  !$omp parallel do
  do i = 1, n
    y(1) = x(i)
  end do
end subroutine racy
"""
        proc = parse_procedure(src)
        with pytest.raises(PrimalRaceError):
            analyze_formad(proc, ["x"], ["y"])

    def test_atomic_primal_increments_prove_nothing(self):
        src = """
subroutine ok(x, y, s, n)
  integer, intent(in) :: n
  real, intent(in) :: x(10)
  real, intent(inout) :: y(10)
  real, intent(inout) :: s(10)
  !$omp parallel do
  do i = 1, n
    !$omp atomic
    s(1) = s(1) + x(i)
    y(i) = x(i)
  end do
end subroutine ok
"""
        proc = parse_procedure(src)
        # The atomic increment to s(1) is legal in the primal and must
        # neither raise PrimalRaceError nor contribute knowledge.
        analyses = analyze_formad(proc, ["x"], ["y", "s"])
        (analysis,) = analyses
        # s is accessed atomically: its adjoint cannot be analyzed and
        # stays guarded.
        assert not analysis.verdicts["s"].safe


class TestContextSensitivity:
    def test_branch_local_knowledge(self):
        # Writes under the same if-branch: knowledge lives in the branch
        # context and suffices for the matching adjoint accesses.
        src = """
subroutine br(x, y, c, n)
  integer, intent(in) :: n
  real, intent(in) :: x(30)
  real, intent(inout) :: y(20)
  integer, intent(in) :: c(20)
  !$omp parallel do
  do i = 1, n
    if (c(i) .gt. 0) then
      y(c(i)) = x(c(i) + 7)
    end if
  end do
end subroutine br
"""
        proc = parse_procedure(src)
        (analysis,) = analyze_formad(proc, ["x"], ["y"])
        assert analysis.verdicts["x"].safe
        assert analysis.verdicts["y"].safe

    def test_disjoint_branches_give_no_cross_knowledge(self):
        # Writes to y in *different* branches of one if: no context
        # certainly executes both, so no knowledge pair is extracted
        # for that pair — but each branch still self-proves, and the
        # branches write disjoint halves anyway.
        src = """
subroutine two(x, y, c, d, n)
  integer, intent(in) :: n
  real, intent(in) :: x(30)
  real, intent(inout) :: y(30)
  integer, intent(in) :: c(10)
  integer, intent(in) :: d(10)
  !$omp parallel do
  do i = 1, n
    if (c(i) .gt. 0) then
      y(c(i)) = x(c(i))
    else
      y(d(i)) = x(d(i))
    end if
  end do
end subroutine two
"""
        proc = parse_procedure(src)
        (analysis,) = analyze_formad(proc, ["x"], ["y"])
        assert analysis.stats.skipped_pairs >= 2
        # Cross-branch pairs cannot be proven: y(c(i')) vs y(d(i)) has
        # no knowledge, so the verdict must be unsafe (conservative).
        assert not analysis.verdicts["x"].safe


class TestInstanceNumbering:
    def test_cross_instance_knowledge_still_proves(self):
        # k is redefined mid-iteration; both y writes go through k but
        # through *different instances* (k_0 = c(i), k_1 = c(i)+1). The
        # extracted knowledge covers all cross-iteration write pairs of
        # both instances, so x's adjoint increments (at the same two
        # instances) are provably safe.
        src = """
subroutine inst(x, y, c, n)
  integer, intent(in) :: n
  real, intent(in) :: x(90)
  real, intent(inout) :: y(90)
  integer, intent(in) :: c(30)
  integer :: k
  !$omp parallel do private(k)
  do i = 1, n
    k = c(i)
    y(k) = x(k)
    k = c(i) + 1
    y(k) = x(k) * 2.0
  end do
end subroutine inst
"""
        proc = parse_procedure(src)
        (analysis,) = analyze_formad(proc, ["x"], ["y"])
        assert analysis.verdicts["x"].safe
        assert analysis.verdicts["y"].safe
        # The two k uses must have received distinct instance names.
        assert set(analysis.safe_write_expressions) == {"k_0", "k_1"}

    def test_stale_knowledge_not_misapplied_to_new_instance(self):
        # The write uses k_0 = c(i); the read uses k_1 = d(i) after a
        # redefinition. Without instance numbers, the knowledge
        # "y(k') != y(k)" would be wrongly applied to the read's index
        # and produce an unsound proof. With instances, the question
        # about k_1 has no supporting knowledge and x stays guarded.
        src = """
subroutine stale(x, y, c, d, n)
  integer, intent(in) :: n
  real, intent(in) :: x(90)
  real, intent(inout) :: y(90)
  integer, intent(in) :: c(30)
  integer, intent(in) :: d(30)
  integer :: k
  !$omp parallel do private(k)
  do i = 1, n
    k = c(i)
    y(k) = 1.5
    k = d(i)
    y(i) = x(k)
  end do
end subroutine stale
"""
        proc = parse_procedure(src)
        (analysis,) = analyze_formad(proc, ["x"], ["y"])
        assert not analysis.verdicts["x"].safe
        assert analysis.verdicts["y"].safe


class TestTable1Report:
    def test_report_formatting(self):
        proc = parse_procedure(STENCIL)
        analyses = analyze_formad(proc, ["uold"], ["unew"])
        report = AnalysisReport("stencil 1", analyses)
        text = format_table1([report])
        assert "stencil 1" in text and "queries" in text
        assert report.unique_exprs == 2


class TestEngineConfigImmutable:
    """The per-loop result cache is keyed on ``loop.uid`` alone; that
    is only sound because an engine's flags cannot change after
    construction (regression: the flags used to be plain mutable
    attributes, so flipping one silently served stale analyses)."""

    def _engine(self, **flags):
        proc = parse_procedure(FIG2)
        activity = ActivityAnalysis(proc, ["x"], ["y"])
        return FormADEngine(proc, activity, **flags)

    @pytest.mark.parametrize("flag", [
        "use_increment_detection", "use_activity", "use_instances",
        "use_contexts", "incremental", "use_question_memo",
        "max_theory_checks", "node_budget",
    ])
    def test_flags_cannot_be_reassigned(self, flag):
        engine = self._engine()
        assert getattr(engine, flag) is not None
        with pytest.raises(AttributeError):
            setattr(engine, flag, False)

    def test_cache_serves_same_object_for_same_loop(self):
        engine = self._engine()
        proc = engine.proc
        (loop,) = proc.parallel_loops()
        first = engine.analyze_loop(loop)
        assert engine.analyze_loop(loop) is first

    def test_flag_choice_needs_a_new_engine(self):
        full = self._engine()
        ablated = self._engine(use_activity=False)
        (loop,) = full.proc.parallel_loops()
        assert full.analyze_loop(loop).stats.exploitation_checks <= \
            ablated.analyze_loop(ablated.proc.parallel_loops()[0]).stats.exploitation_checks
